"""Shared helpers for benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import os

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def scale_note() -> str:
    """One-line provenance header for every emitted table."""
    return f"(seed={BENCH_SEED}, scale={BENCH_SCALE} of paper population)"
