"""Shared helpers for benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.atomicio import atomic_write_json, atomic_write_text

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

RESULTS_DIR = Path(__file__).parent / "results"


def scale_note() -> str:
    """One-line provenance header for every emitted table."""
    return f"(seed={BENCH_SEED}, scale={BENCH_SCALE} of paper population)"


def write_result_text(name: str, text: str) -> Path:
    """Atomically write ``results/<name>.txt`` (DESIGN.md §13).

    Routed through :func:`repro.atomicio.atomic_write_text` so an
    interrupted benchmark run leaves the previous complete artifact,
    never a torn one — CI uploads these files directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")


def write_result_json(name: str, payload: Any, **dumps_kwargs: Any) -> Path:
    """Atomically write ``results/<name>.json``."""
    dumps_kwargs.setdefault("indent", 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    return atomic_write_json(RESULTS_DIR / f"{name}.json", payload, **dumps_kwargs)
