"""Shared helpers for benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.atomicio import atomic_write_json, atomic_write_text

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

RESULTS_DIR = Path(__file__).parent / "results"

#: Append-only cross-run log of every JSON bench result; ``repro obs
#: ingest-bench`` folds it into a store's ``bench_results`` table so
#: performance trends survive CI artifact expiry (DESIGN.md §14).
TRAJECTORY_PATH = RESULTS_DIR / "TRAJECTORY.jsonl"


def scale_note() -> str:
    """One-line provenance header for every emitted table."""
    return f"(seed={BENCH_SEED}, scale={BENCH_SCALE} of paper population)"


def write_result_text(name: str, text: str) -> Path:
    """Atomically write ``results/<name>.txt`` (DESIGN.md §13).

    Routed through :func:`repro.atomicio.atomic_write_text` so an
    interrupted benchmark run leaves the previous complete artifact,
    never a torn one — CI uploads these files directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")


def write_result_json(name: str, payload: Any, **dumps_kwargs: Any) -> Path:
    """Atomically write ``results/<name>.json`` and append to the trajectory."""
    dumps_kwargs.setdefault("indent", 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = atomic_write_json(RESULTS_DIR / f"{name}.json", payload, **dumps_kwargs)
    append_trajectory(name, payload)
    return path


def append_trajectory(name: str, payload: Any, recorded_unix: float = None) -> Path:
    """Append one ``{name, recorded_unix, payload}`` line to TRAJECTORY.jsonl.

    Read-modify-rewrite through the atomic-replace path: a kill mid-append
    leaves the previous complete trajectory, never a torn tail line.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    existing = (
        TRAJECTORY_PATH.read_text(encoding="utf-8")
        if TRAJECTORY_PATH.exists()
        else ""
    )
    if existing and not existing.endswith("\n"):
        existing += "\n"
    entry = {
        "name": name,
        "recorded_unix": time.time() if recorded_unix is None else recorded_unix,
        "payload": payload,
    }
    line = json.dumps(entry, sort_keys=True, default=str)
    return atomic_write_text(TRAJECTORY_PATH, existing + line + "\n")
