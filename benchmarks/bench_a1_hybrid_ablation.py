"""A1 — ablation of the hybrid TOP-classifier design (§4.1).

The paper argues the two arms are complementary: the ML classifier
"can learn new patterns" while heuristics "automate the search of TOPs
with known characteristics" (3 456 vs 2 676 extractions, overlap 1 995).
This ablation scores each arm alone against the hybrid union on a
held-out annotated set, and reports the union's recall advantage.
"""

import numpy as np
import pytest

from repro.core import HybridTopClassifier
from repro.ml import confusion_matrix, train_test_split

from _common import scale_note


def test_a1(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset
    truth = bench_world.forums.thread_types
    selection = bench_report.selection

    rng = np.random.default_rng(99)
    n_sample = min(1000, len(selection))
    indices = rng.choice(len(selection), size=n_sample, replace=False)
    annotated = [selection[int(i)] for i in indices]
    labels = np.array([truth.get(t.thread_id) == "top" for t in annotated])
    split = train_test_split(
        n_sample, train_fraction=0.8, seed=1, stratify_labels=labels.astype(int)
    )
    train = [annotated[i] for i in split.train_indices]
    train_y = labels[split.train_indices]
    test = [annotated[i] for i in split.test_indices]
    test_y = labels[split.test_indices]

    classifier = HybridTopClassifier()
    classifier.fit(dataset, train, list(train_y))

    def evaluate_arms():
        ml = classifier.predict_ml(dataset, test)
        heuristic = classifier.predict_heuristic(dataset, test)
        return {
            "ML only": confusion_matrix(test_y, ml),
            "heuristics only": confusion_matrix(test_y, heuristic),
            "hybrid union": confusion_matrix(test_y, ml | heuristic),
            "intersection": confusion_matrix(test_y, ml & heuristic),
        }

    results = benchmark.pedantic(evaluate_arms, rounds=2, iterations=1)

    lines = [
        "A1 — hybrid vs single-arm TOP classification " + scale_note(),
        f"test set: {len(test)} threads, {int(test_y.sum())} TOPs",
        f"{'variant':<18}{'precision':>11}{'recall':>9}{'F1':>7}",
    ]
    for name, cm in results.items():
        lines.append(f"{name:<18}{cm.precision:>11.2%}{cm.recall:>9.2%}{cm.f1:>7.2f}")
    lines.append("")
    lines.append("design claim: the union's recall >= each arm's recall,")
    lines.append("at a precision cost bounded by the weaker arm.")
    emit("a1_hybrid_ablation", "\n".join(lines))

    union = results["hybrid union"]
    # The union can only add true positives relative to each arm…
    assert union.recall >= results["ML only"].recall - 1e-9
    assert union.recall >= results["heuristics only"].recall - 1e-9
    # …at the cost of pooling both arms' false positives: the precision
    # trade-off stays bounded (the paper accepts it for coverage).
    assert union.precision > 0.6
    assert results["intersection"].precision >= max(
        results["ML only"].precision, results["heuristics only"].precision
    ) - 1e-9
