"""A2 — ablation of Algorithm 1's OCR branch (§4.4).

Algorithm 1 rescues low-NSFW-score images with many OCR words into the
SFV class.  The ablation compares the full algorithm against a pure
NSFW-threshold classifier across thresholds, showing that (a) without
OCR, reaching zero false negatives forces a much higher false-positive
rate, and (b) the paper's conservative thresholds sit at the 0-miss
corner of the trade-off.
"""

import numpy as np
import pytest

from repro.core import NsfvClassifier
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.vision import NsfwScorer

from _common import scale_note

NSFV_KINDS = [(ImageKind.MODEL_NUDE, 40), (ImageKind.MODEL_SEXUAL, 20),
              (ImageKind.MODEL_DRESSED, 30)]
SFV_KINDS = [(ImageKind.PROOF_SCREENSHOT, 40), (ImageKind.CHAT_SCREENSHOT, 20),
             (ImageKind.DOCUMENT, 20), (ImageKind.LANDSCAPE, 20),
             (ImageKind.GAME_SCREENSHOT, 10), (ImageKind.MEME, 10)]


@pytest.fixture(scope="module")
def labelled_images():
    rng = np.random.default_rng(777)
    images = []
    for kind, count in NSFV_KINDS:
        for i in range(count):
            images.append((SyntheticImage(0, sample_latent(rng, kind, model_id=i)), True))
    for kind, count in SFV_KINDS:
        for _ in range(count):
            images.append((SyntheticImage(0, sample_latent(rng, kind)), False))
    return images


def test_a2(labelled_images, benchmark, emit):
    scorer = NsfwScorer()
    scores = np.array([scorer.score(img.pixels) for img, _ in labelled_images])
    labels = np.array([is_nsfv for _, is_nsfv in labelled_images])

    full = NsfvClassifier()

    def run_full():
        return [full.classify(img.pixels).nsfv for img, _ in labelled_images]

    full_flags = np.array(benchmark.pedantic(run_full, rounds=2, iterations=1))

    lines = [
        "A2 — Algorithm 1 vs NSFW-threshold-only " + scale_note(),
        f"labelled set: {len(labelled_images)} images, {int(labels.sum())} NSFV",
        "",
        f"{'variant':<34}{'missed NSFV':>12}{'false pos':>11}",
    ]
    full_miss = int(np.sum(labels & ~full_flags))
    full_fp = int(np.sum(~labels & full_flags))
    lines.append(f"{'Algorithm 1 (NSFW + OCR)':<34}{full_miss:>12}{full_fp:>11}")

    threshold_results = {}
    for threshold in (0.01, 0.05, 0.1, 0.3, 0.5):
        flags = scores > threshold
        miss = int(np.sum(labels & ~flags))
        fp = int(np.sum(~labels & flags))
        threshold_results[threshold] = (miss, fp)
        lines.append(
            f"{'NSFW-only, threshold ' + format(threshold, '.2f'):<34}{miss:>12}{fp:>11}"
        )
    lines.append("")
    lines.append("claim: only the zero-miss NSFW-only variants pay more false")
    lines.append("positives than Algorithm 1; higher thresholds miss indecent images.")
    emit("a2_nsfv_ablation", "\n".join(lines))

    assert full_miss == 0
    # A pure threshold achieving zero misses needs a threshold low enough
    # to flag many text/benign images that OCR would have rescued.
    zero_miss = [fp for miss, fp in threshold_results.values() if miss == 0]
    if zero_miss:
        assert min(zero_miss) >= full_fp
    # Aggressive thresholds (>= 0.3) must miss clothed models.
    assert threshold_results[0.3][0] > 0
