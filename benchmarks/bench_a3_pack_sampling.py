"""A3 — ablation of the 3-images-per-pack sampling rule (§4.5).

Reverse-searching every pack image was infeasible for the paper (111k
images against a paid API), so it samples 3 per pack at the NSFW-score
extremes, assuming pack images share provenance.  The ablation measures
what the sampling loses: match-classification agreement and
provenance-domain recall versus exhaustive querying.
"""

import pytest

from repro.core import PackSampling, ProvenanceAnalyzer

from _common import scale_note


def analyzer_with(bench_world, per_pack):
    return ProvenanceAnalyzer(
        bench_world.reverse_index,
        archive=bench_world.archive,
        sampling=PackSampling(per_pack=per_pack),
    )


def test_a3(bench_world, bench_report, benchmark, emit):
    clean_pack_images = [
        c for c in bench_report.crawl.pack_images if bench_report.abuse.is_clean(c)
    ]
    if not clean_pack_images:
        pytest.skip("no pack images at this scale")

    sampled = benchmark.pedantic(
        lambda: analyzer_with(bench_world, 3).analyze(clean_pack_images, []),
        rounds=1,
        iterations=1,
    )
    five = analyzer_with(bench_world, 5).analyze(clean_pack_images, [])
    exhaustive = analyzer_with(bench_world, 10_000).analyze(clean_pack_images, [])

    def domains_of(result):
        return set(result.matched_domains)

    def zero_match(result):
        return result.zero_match_pack_ids

    rows = [
        ("3 per pack (paper)", sampled),
        ("5 per pack", five),
        ("all images", exhaustive),
    ]
    full_domains = domains_of(exhaustive)
    full_zero = zero_match(exhaustive)
    lines = [
        "A3 — per-pack sampling vs exhaustive reverse search " + scale_note(),
        f"packs: {len(bench_report.crawl.packs)}, unique pack images: "
        f"{len({c.digest for c in clean_pack_images})}",
        f"{'variant':<22}{'queries':>9}{'domains':>9}{'dom recall':>12}"
        f"{'zero-match packs':>18}",
    ]
    for name, result in rows:
        domains = domains_of(result)
        recall = len(domains & full_domains) / max(len(full_domains), 1)
        lines.append(
            f"{name:<22}{len(result.pack_outcomes):>9}{len(domains):>9}"
            f"{recall:>12.1%}{len(zero_match(result)):>18}"
        )
    agreement = len(zero_match(sampled) & full_zero) / max(len(full_zero), 1) if full_zero else 1.0
    lines.append("")
    lines.append(
        f"zero-match packs found by sampling that are truly zero-match: {agreement:.0%}"
    )
    emit("a3_pack_sampling", "\n".join(lines))

    # Sampling must slash query volume while keeping most domain coverage.
    assert len(sampled.pack_outcomes) < len(exhaustive.pack_outcomes) or (
        len({c.digest for c in clean_pack_images}) <= 3 * len(bench_report.crawl.packs)
    )
    recall3 = len(domains_of(sampled) & full_domains) / max(len(full_domains), 1)
    assert recall3 > 0.3
    # Exhaustive never finds *fewer* zero-match packs false: sampled
    # zero-match packs must be a superset of truly zero-match packs.
    assert full_zero <= zero_match(sampled)
