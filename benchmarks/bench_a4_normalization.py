"""A4 — extension: forum-text normalisation (§4.1 limitation).

§4.1 lists noisy forum text (jargon, leet-speak, grammar errors) as a
limitation of the NLP features and suggests normalising the data into a
common format.  The synthetic world writes ~8% of eWhoring headings in
leet/stretched form; this ablation measures the classifier with and
without the normaliser on exactly those corrupted headings.
"""

import numpy as np
import pytest

from repro.core import HybridTopClassifier
from repro.ml import confusion_matrix, train_test_split
from repro.text import normalize_forum_text

from _common import scale_note


def _is_corrupted(heading: str) -> bool:
    return normalize_forum_text(heading).lower() != " ".join(heading.split()).lower()


def test_a4(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset
    truth = bench_world.forums.thread_types
    selection = bench_report.selection

    rng = np.random.default_rng(123)
    n_sample = min(1000, len(selection))
    indices = rng.choice(len(selection), size=n_sample, replace=False)
    annotated = [selection[int(i)] for i in indices]
    labels = np.array([truth.get(t.thread_id) == "top" for t in annotated])
    split = train_test_split(
        n_sample, train_fraction=0.8, seed=3, stratify_labels=labels.astype(int)
    )
    train = [annotated[i] for i in split.train_indices]
    train_y = list(labels[split.train_indices])
    test = [annotated[i] for i in split.test_indices]
    test_y = labels[split.test_indices]

    plain = HybridTopClassifier().fit(dataset, train, train_y)
    normalised = HybridTopClassifier.with_normalization().fit(dataset, train, train_y)

    def evaluate_both():
        return (
            confusion_matrix(test_y, plain.predict(dataset, test)),
            confusion_matrix(test_y, normalised.predict(dataset, test)),
        )

    cm_plain, cm_norm = benchmark.pedantic(evaluate_both, rounds=2, iterations=1)

    # Focused view: corrupted TOP headings only (where the extension acts).
    corrupted_tops = [
        t for t in selection
        if truth.get(t.thread_id) == "top" and _is_corrupted(t.heading)
    ]
    plain_hits = int(plain.predict(dataset, corrupted_tops).sum()) if corrupted_tops else 0
    norm_hits = int(normalised.predict(dataset, corrupted_tops).sum()) if corrupted_tops else 0
    heur_plain = int(plain.predict_heuristic(dataset, corrupted_tops).sum()) if corrupted_tops else 0
    heur_norm = int(normalised.predict_heuristic(dataset, corrupted_tops).sum()) if corrupted_tops else 0

    lines = [
        "A4 — forum-text normalisation extension " + scale_note(),
        f"{'variant':<22}{'precision':>11}{'recall':>9}{'F1':>7}",
        f"{'without normaliser':<22}{cm_plain.precision:>11.2%}{cm_plain.recall:>9.2%}{cm_plain.f1:>7.2f}",
        f"{'with normaliser':<22}{cm_norm.precision:>11.2%}{cm_norm.recall:>9.2%}{cm_norm.f1:>7.2f}",
        "",
        f"leeted TOP headings in the corpus: {len(corrupted_tops)}",
        f"  heuristics recover {heur_norm}/{len(corrupted_tops)} with the normaliser "
        f"vs {heur_plain}/{len(corrupted_tops)} without",
        f"  hybrid recovers {norm_hits}/{len(corrupted_tops)} vs {plain_hits}/{len(corrupted_tops)}",
    ]
    emit("a4_normalization", "\n".join(lines))

    if len(corrupted_tops) >= 5:
        assert heur_norm > heur_plain, "normaliser must recover leeted keywords"
        assert norm_hits >= plain_hits
    assert cm_norm.recall >= cm_plain.recall - 0.05
