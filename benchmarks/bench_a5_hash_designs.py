"""A5 — ablation: perceptual-hash design for matching and evasion.

§4.3 relies on robust hashing surviving "compression algorithms or
geometric distortions"; §4.5 relies on matching surviving platform
re-hosting while mirroring defeats it.  This ablation measures three
classic hash designs (DCT / average / difference) on exactly those axes:

* same-image robustness: Hamming distance under recompression, resize,
  watermark, crop;
* evasion: distance under mirroring (should be LARGE — a hash that
  "survives" mirroring here would be *wrong*, because the measured
  ecosystem's evasion economics depend on mirroring working);
* separation: distance between distinct images (should be large).
"""

import numpy as np
import pytest

from repro.media import ImageKind, SyntheticImage, apply_transform, sample_latent
from repro.vision import hamming_distance
from repro.vision.hashes import HASH_FUNCTIONS

from _common import scale_note

BENIGN = ("recompress", "resize_small", "watermark", "crop_border")
N_IMAGES = 40


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(31)
    images = []
    for i in range(N_IMAGES):
        kind = (ImageKind.MODEL_NUDE, ImageKind.MODEL_DRESSED,
                ImageKind.LANDSCAPE)[i % 3]
        latent = sample_latent(rng, kind, model_id=i if kind.is_model else None)
        images.append(SyntheticImage(i, latent).pixels)
    return images


def test_a5(samples, benchmark, emit):
    def measure():
        rows = {}
        for name, fn in HASH_FUNCTIONS.items():
            base = [fn(p) for p in samples]
            benign = []
            for transform in BENIGN:
                for i, pixels in enumerate(samples):
                    out = apply_transform(transform, pixels, seed=i + 1)
                    benign.append(hamming_distance(base[i], fn(out)))
            mirrored = [
                hamming_distance(base[i], fn(apply_transform("mirror", p)))
                for i, p in enumerate(samples)
            ]
            distinct = [
                hamming_distance(base[i], base[j])
                for i in range(0, N_IMAGES, 4)
                for j in range(1, N_IMAGES, 7)
                if i != j
            ]
            rows[name] = (
                float(np.mean(benign)),
                float(np.mean(mirrored)),
                float(np.mean(distinct)),
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "A5 — perceptual-hash designs (mean Hamming distance / 64 bits) " + scale_note(),
        f"{'hash':<16}{'benign edits':>14}{'mirror':>9}{'distinct':>10}",
    ]
    for name, (benign, mirror, distinct) in rows.items():
        lines.append(f"{name:<16}{benign:>14.1f}{mirror:>9.1f}{distinct:>10.1f}")
    lines += [
        "",
        "requirements: benign << match radius (9) << mirror ~ distinct;",
        "a hash where mirror is small would break the ecosystem's evasion",
        "economics rather than improve the measurement.",
    ]
    emit("a5_hash_designs", "\n".join(lines))

    for name, (benign, mirror, distinct) in rows.items():
        assert benign < mirror, name
        assert benign < distinct, name
    # The default DCT hash must sit inside the match radius on benign
    # edits and outside it on mirrors.
    dct_benign, dct_mirror, _ = rows["dct (default)"]
    assert dct_benign < 9.0
    assert dct_mirror > 9.0
