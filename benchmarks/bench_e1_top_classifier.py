"""E1 — §4.1 result: the hybrid TOP classifier.

Paper: on 1 000 annotated threads (175 TOPs), trained on 800 / tested on
200: precision 92%, recall 93%, F1 92.  Over the full corpus the ML arm
extracted 3 456 TOPs, the heuristics 2 676, with 1 995 found by both —
the union argument for the hybrid design.
"""

from _common import scale_note


def test_e1(bench_world, bench_report, benchmark, emit):
    report = bench_report
    evaluation = report.top_evaluation
    stats = report.extraction_stats

    # Benchmark the trained hybrid's prediction pass over the selection.
    from repro.core import HybridTopClassifier

    dataset = bench_world.dataset
    selection = report.selection

    def retrain_and_predict():
        truth = bench_world.forums.thread_types
        sample = selection[: min(400, len(selection))]
        labels = [truth.get(t.thread_id) == "top" for t in sample]
        classifier = HybridTopClassifier()
        classifier.fit(dataset, sample, labels)
        return classifier.predict(dataset, sample)

    benchmark.pedantic(retrain_and_predict, rounds=2, iterations=1)

    truth_tops = sum(
        1 for v in bench_world.forums.thread_types.values() if v == "top"
    )
    lines = [
        "E1 — hybrid TOP classifier (§4.1) " + scale_note(),
        f"annotated sample: {report.n_annotated} threads, {report.n_annotated_tops} TOPs "
        "(paper: 1 000 / 175)",
        f"precision = {evaluation.precision:.2%}  (paper: 92%)",
        f"recall    = {evaluation.recall:.2%}  (paper: 93%)",
        f"F1        = {evaluation.f1:.2%}  (paper: 92%)",
        "",
        f"extraction over the full selection (ground truth TOPs: {truth_tops}):",
        f"  hybrid union   : {stats.n_hybrid}  (paper: 4 137)",
        f"  ML arm         : {stats.n_ml}  (paper: 3 456)",
        f"  heuristic arm  : {stats.n_heuristic}  (paper: 2 676)",
        f"  found by both  : {stats.n_both}  (paper: 1 995)",
        f"  ML-only        : {stats.ml_only}",
        f"  heuristic-only : {stats.heuristic_only}",
    ]
    emit("e1_top_classifier", "\n".join(lines))

    assert evaluation.precision > 0.7
    assert evaluation.recall > 0.8
    # Hybrid-union structure: both arms contribute, union ≥ each arm.
    assert stats.n_hybrid >= max(stats.n_ml, stats.n_heuristic)
    assert stats.n_both > 0
