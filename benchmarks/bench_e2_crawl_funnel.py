"""E2 — §4.2 result: the download funnel.

Paper: links could be extracted from 774 of 4 137 TOPs (18.7%); the
crawler downloaded 5 788 preview images and 111 288 images in 1 255
packs; deduplication left 53 948 unique files (some images recur in 20+
packs).  Shape: a minority of TOPs yield links, pack images dominate the
volume, and heavy duplication shrinks the unique set by roughly half.
"""

from repro.web import Crawler, FetchStatus

from _common import scale_note


def test_e2(bench_world, bench_report, benchmark, emit):
    report = bench_report
    links = report.links
    crawl = report.crawl

    benchmark.pedantic(
        lambda: Crawler(bench_world.internet).crawl(links.all_links),
        rounds=2,
        iterations=1,
    )

    n_tops = len(report.tops)
    with_links = len(links.threads_with_links)
    n_all = len(crawl.all_images)
    stats = crawl.stats
    lines = [
        "E2 — crawl funnel (§4.2) " + scale_note(),
        f"TOPs with extractable links: {with_links}/{n_tops} "
        f"({with_links / max(n_tops, 1):.1%}; paper 774/4 137 = 18.7%)",
        f"preview links: {len(links.preview_links)} (paper 7 314), "
        f"pack links: {len(links.pack_links)} (paper 1 719)",
        "",
        "link outcomes:",
    ]
    for status in FetchStatus:
        count = stats.count(status)
        if count:
            lines.append(f"  {status.value:<24}{count:>7}")
    lines += [
        "",
        f"preview images downloaded : {len(crawl.preview_images)} (paper 5 788)",
        f"packs downloaded          : {len(crawl.packs)} (paper 1 255)",
        f"pack images               : {len(crawl.pack_images)} (paper 111 288)",
        f"unique files after dedup  : {crawl.n_unique_files} of {n_all} "
        f"({crawl.n_unique_files / max(n_all, 1):.0%}; paper 53 948/117 076 = 46%)",
    ]
    histogram = crawl.duplicate_histogram()
    if histogram:
        most = max(histogram.values())
        lines.append(f"most-duplicated file seen {most}× (paper: 127 images in ≥20 packs)")
    emit("e2_crawl_funnel", "\n".join(lines))

    assert 0.05 < with_links / max(n_tops, 1) < 0.45
    assert len(crawl.pack_images) > len(crawl.preview_images)
    if n_all > 500:
        assert crawl.n_unique_files < n_all  # duplication must exist
    # Registration walls stop pack downloads, not link extraction.
    assert stats.count(FetchStatus.REGISTRATION_REQUIRED) >= 0
