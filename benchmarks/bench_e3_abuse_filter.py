"""E3 — §4.3 result: filtering and reporting child-abuse material.

Paper: 36 downloaded images matched the PhotoDNA hashlist; the IWF
actioned 61 URLs (20 category A, 36 B, 5 C) hosted mostly in North
America and Europe; the links appeared in 36 threads to which 476
distinct actors replied — a lower bound on exposure.

The default world's realistic abuse rates yield almost no matches at
benchmark scale, so this experiment builds a dedicated world with the
rates raised until the *expected* match count corresponds to the
paper's 36-per-54k-unique-files density (documented in DESIGN.md).
"""

import pytest

from repro import build_world, run_pipeline
from repro.synth import WorldConfig
from repro.vision import AbuseSeverity

from _common import BENCH_SCALE, BENCH_SEED, scale_note


@pytest.fixture(scope="module")
def abuse_report():
    world = build_world(
        WorldConfig(
            seed=BENCH_SEED + 1,
            scale=max(BENCH_SCALE, 0.03),
            underage_rate=0.08,
            hashlist_rate=0.4,
        )
    )
    return world, run_pipeline(world)


def test_e3(abuse_report, benchmark, emit):
    world, report = abuse_report
    result = report.abuse

    from repro.core import AbuseFilter

    def sweep():
        abuse_filter = AbuseFilter(
            world.hashlist,
            reverse_index=world.reverse_index,
            domain_info=lambda d: (world.internet.region_of(d),
                                   world.internet.site_type_of(d)),
        )
        return abuse_filter.sweep(report.crawl.all_images, dataset=world.dataset)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    severity = {k.value: v for k, v in result.severity_histogram.items()}
    lines = [
        "E3 — child-abuse filtering (§4.3), elevated-rate world " + scale_note(),
        f"hashlist entries: {world.hashlist.n_entries}",
        f"matched images  : {result.n_matched_images} (paper: 36)",
        f"actioned URLs   : {result.n_actioned_urls} (paper: 61)",
        f"severity (A/B/C): {severity.get('A', 0)}/{severity.get('B', 0)}/{severity.get('C', 0)} "
        "(paper: 20/36/5)",
        f"hosting regions : {dict(result.region_histogram)} "
        "(paper: 30 NA, 30 EU, 1 UK)",
        f"affected threads: {len(result.affected_thread_ids)} (paper: 36)",
        f"exposed actors  : {len(result.exposed_actor_ids)} (paper: >=476)",
    ]
    emit("e3_abuse_filter", "\n".join(lines))

    assert result.n_matched_images > 0
    # Every matched image is excluded from later stages.
    for crawled in report.crawl.all_images:
        if crawled.digest in result.matched_digests:
            assert not result.is_clean(crawled)
    # Exposure lower bound grows beyond the thread count.
    if len(result.affected_thread_ids) >= 3:
        assert len(result.exposed_actor_ids) > len(result.affected_thread_ids)
