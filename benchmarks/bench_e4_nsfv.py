"""E4 — §4.4 result: Algorithm 1 on the validation set.

Paper: thresholds tuned on 240 labelled images (180 sexual/non-sexual
from Lopes et al. plus 60 with/without text) reach 100% detection of
NSFV images with ~8% false positives; of 5 788 preview-link downloads,
3 496 were NSFV.

The reproduction builds the analogous 240-image validation set (nude /
clothed / text / non-text classes) and scores Algorithm 1 on it.
"""

import numpy as np
import pytest

from repro.core import NsfvClassifier
from repro.media import ImageKind, SyntheticImage, sample_latent

from _common import scale_note

#: Validation-set composition: the Lopes et al. analogue (nude vs
#: non-nude photographs) plus the authors' 60 text/non-text images.
VALIDATION_MIX = [
    (ImageKind.MODEL_NUDE, 60, True),
    (ImageKind.MODEL_SEXUAL, 30, True),
    (ImageKind.MODEL_DRESSED, 30, True),
    # The authors' own 60 extra images: with text (documents, code,
    # screenshots) and without (landscapes, games, "pictures taken from
    # random people") — all non-nude, so NSFV flags on them count as
    # false positives, exactly the paper's hard cases.
    (ImageKind.PERSON_CASUAL, 15, False),
    (ImageKind.LANDSCAPE, 30, False),
    (ImageKind.DOCUMENT, 15, False),
    (ImageKind.SOURCE_CODE, 15, False),
    (ImageKind.PROOF_SCREENSHOT, 15, False),
    (ImageKind.GAME_SCREENSHOT, 15, False),
]


@pytest.fixture(scope="module")
def validation_set():
    rng = np.random.default_rng(2024)
    images = []
    for kind, count, is_nsfv in VALIDATION_MIX:
        for i in range(count):
            latent = sample_latent(rng, kind, model_id=i if kind.is_model else None)
            images.append((SyntheticImage(0, latent), is_nsfv))
    return images


def test_e4(validation_set, bench_report, benchmark, emit):
    classifier = NsfvClassifier()

    def classify_all():
        return [classifier.classify(img.pixels) for img, _ in validation_set]

    verdicts = benchmark.pedantic(classify_all, rounds=2, iterations=1)

    detected = sum(
        1 for (_, is_nsfv), v in zip(validation_set, verdicts) if is_nsfv and v.nsfv
    )
    n_nsfv = sum(1 for _, is_nsfv in validation_set if is_nsfv)
    false_pos = sum(
        1 for (_, is_nsfv), v in zip(validation_set, verdicts) if not is_nsfv and v.nsfv
    )
    n_sfv = len(validation_set) - n_nsfv

    total_previews = len(bench_report.preview_verdicts)
    lines = [
        "E4 — Algorithm 1 on the 240-image validation set " + scale_note(),
        f"validation set: {len(validation_set)} images ({n_nsfv} NSFV-class)",
        f"NSFV detection : {detected}/{n_nsfv} = {detected / n_nsfv:.1%} (paper: 100%)",
        f"false positives: {false_pos}/{n_sfv} = {false_pos / n_sfv:.1%} (paper: ~8%)",
        "",
        f"pipeline previews classified NSFV: {bench_report.n_nsfv_previews}/{total_previews} "
        f"({bench_report.n_nsfv_previews / max(total_previews, 1):.0%}; "
        "paper 3 496/5 788 = 60%)",
    ]
    emit("e4_nsfv", "\n".join(lines))

    assert detected == n_nsfv, "Algorithm 1 must not miss indecent images"
    assert false_pos / n_sfv < 0.25
