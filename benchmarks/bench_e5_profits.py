"""E5 — §5.2 headline: the financial-profit estimates.

Paper: 661 actors posted 1 868 proof-of-earnings images totalling
~US$511k (mean US$774 per actor, top reporters >US$20k); ~60% of proofs
itemise transactions, averaging US$41.90 each; AGC (934) and PayPal
(795) dominate the platform mix with 35 Bitcoin proofs.
"""

import numpy as np

from repro.finance import PaymentPlatform

from _common import BENCH_SCALE, scale_note


def test_e5(bench_world, bench_report, benchmark, emit):
    earnings = bench_report.earnings

    benchmark(earnings.per_actor_totals)

    totals = earnings.per_actor_totals()
    histogram = earnings.platform_histogram()
    top_actor = max(totals.values()) if totals else 0.0

    lines = [
        "E5 — financial profits (§5.2) " + scale_note(),
        f"funnel: {earnings.n_threads_matched} threads -> "
        f"{earnings.n_posts_with_links} posts -> {earnings.n_unique_urls} URLs -> "
        f"{earnings.n_downloaded} downloads -> {earnings.n_analyzable} analyzable "
        "(paper: 1 084 threads, 1 276 posts, 2 694 URLs, 2 366, 2 067)",
        f"proofs: {earnings.n_proofs} by {len(totals)} actors "
        f"(paper: 1 868 by 661); non-proofs: {earnings.n_non_proofs} (paper: 199)",
        f"indecent images filtered before viewing: {earnings.n_indecent_filtered} "
        f"(paper: 299); hashlist matches: {earnings.n_abuse_matched} (paper: 0)",
        "",
        f"total reported      : ${earnings.total_usd:,.0f} "
        f"(paper ${511_000:,} at ~{1/BENCH_SCALE:.0f}x this scale)",
        f"mean per actor      : ${earnings.mean_per_actor_usd:,.2f} (paper $774)",
        f"top reporter        : ${top_actor:,.0f} (paper >$20k)",
        f"itemised proofs     : {earnings.n_with_transaction_detail}/{earnings.n_proofs} "
        f"({earnings.n_with_transaction_detail / max(earnings.n_proofs, 1):.0%}; paper ~60%)",
        f"mean transaction    : ${earnings.mean_transaction_usd():,.2f} (paper $41.90)",
        "",
        "platform histogram (paper: AGC 934, PayPal 795, BTC 35):",
    ]
    for platform, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {platform.value:<18}{count:>6}")
    emit("e5_profits", "\n".join(lines))

    assert 150 < earnings.mean_per_actor_usd < 4000
    assert 15 < earnings.mean_transaction_usd() < 110
    detail_rate = earnings.n_with_transaction_detail / max(earnings.n_proofs, 1)
    assert 0.4 < detail_rate < 0.8
    agc = histogram.get(PaymentPlatform.AMAZON_GIFT_CARD, 0)
    paypal = histogram.get(PaymentPlatform.PAYPAL, 0)
    btc = histogram.get(PaymentPlatform.BITCOIN, 0)
    assert agc + paypal > 5 * max(btc, 1)
