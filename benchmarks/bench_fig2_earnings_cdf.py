"""F2 — Figure 2: CDFs of reported earnings and proof counts per actor.

Paper: most actors report under US$1k (the left CDF rises steeply);
actors reporting more money post more proof images — over 50% of the
>US$5k earners posted 8+ images; one actor posted 46 images.
"""

import numpy as np

from _common import scale_note


def test_fig2(bench_report, benchmark, emit):
    earnings = bench_report.earnings

    cdf = benchmark(earnings.earnings_cdf)
    proof_counts = earnings.proof_count_cdf()

    totals = earnings.per_actor_totals()
    counts = earnings.per_actor_proof_counts()

    lines = [
        "Figure 2 — cumulative distributions per actor " + scale_note(),
        f"actors with proofs: {len(totals)} (paper: 661)",
        "",
        "Left: % of actors reporting at most $X (paper: ~most under $1k):",
    ]
    for threshold in (100, 500, 1000, 5000, 15000):
        share = float(np.mean(cdf <= threshold)) if cdf.size else 0.0
        lines.append(f"  <= ${threshold:>6}: {share:6.1%}")
    lines.append("")
    lines.append("Right: % of actors posting at most N proofs:")
    for n in (1, 2, 4, 8, 16, 46):
        share = float(np.mean(proof_counts <= n)) if proof_counts.size else 0.0
        lines.append(f"  <= {n:>3} proofs: {share:6.1%}")

    # The paper's joint observation: high earners post more proofs.
    if totals:
        high = [counts[a] for a, t in totals.items() if t > 2000]
        low = [counts[a] for a, t in totals.items() if t <= 2000]
        if high and low:
            lines.append("")
            lines.append(
                f"mean proofs: earners >$2k: {np.mean(high):.1f}, "
                f"others: {np.mean(low):.1f} (paper: heavy earners post more)"
            )
    emit("fig2_earnings_cdf", "\n".join(lines))

    if cdf.size >= 15:
        # Most actors report modest sums; a heavy tail exists.
        assert float(np.mean(cdf <= 1000)) > 0.5
        assert cdf.max() > 4 * np.median(cdf)
    if totals and len(totals) >= 15:
        high = [counts[a] for a, t in totals.items() if t > 2000]
        low = [counts[a] for a, t in totals.items() if t <= 2000]
        if len(high) >= 3 and len(low) >= 3:
            assert np.mean(high) > np.mean(low)
