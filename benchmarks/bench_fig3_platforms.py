"""F3 — Figure 3: monthly proof counts using Amazon Gift Cards vs PayPal.

Paper: PayPal dominates until ~2015, the curves cross around 2016, and
"since 2016 Amazon has become the preferred payment platform".  The
reproduction aggregates the same series by year for readability and
asserts the crossover.
"""

from collections import defaultdict

from repro.finance import PaymentPlatform

from _common import scale_note


def test_fig3(bench_report, benchmark, emit):
    earnings = bench_report.earnings
    platforms = (PaymentPlatform.AMAZON_GIFT_CARD, PaymentPlatform.PAYPAL)

    series = benchmark(lambda: earnings.monthly_platform_series(platforms))

    yearly = {p: defaultdict(int) for p in platforms}
    for platform, months in series.items():
        for month, count in months.items():
            yearly[platform][month[:4]] += count

    years = sorted(set().union(*(set(d) for d in yearly.values())) or {"-"})
    lines = [
        "Figure 3 — proof-of-earnings per platform over time " + scale_note(),
        f"{'year':<6}{'AGC':>6}{'PayPal':>8}",
    ]
    for year in years:
        lines.append(
            f"{year:<6}{yearly[platforms[0]].get(year, 0):>6}"
            f"{yearly[platforms[1]].get(year, 0):>8}"
        )
    emit("fig3_platforms", "\n".join(lines))

    early_agc = sum(v for y, v in yearly[platforms[0]].items() if y < "2015")
    early_pp = sum(v for y, v in yearly[platforms[1]].items() if y < "2015")
    late_agc = sum(v for y, v in yearly[platforms[0]].items() if y >= "2017")
    late_pp = sum(v for y, v in yearly[platforms[1]].items() if y >= "2017")
    if early_agc + early_pp >= 10:
        assert early_pp > early_agc, "PayPal must dominate the early years"
    if late_agc + late_pp >= 10:
        assert late_agc > late_pp, "AGC must dominate after 2016"
