"""F4 — Figure 4: CDFs of actor activity metrics by cohort.

Paper: four CDF panels over the ≥N-posts cohorts — post counts,
eWhoring percentage, days posting before, days posting after.  Shapes:
bigger cohorts concentrate at low post counts; the eWhoring share CDF
shifts right for heavier cohorts; days-after distributions shift left
(heavier actors stop posting elsewhere sooner).
"""

import numpy as np

from _common import scale_note

THRESHOLDS = (1, 10, 50)
QUANTILES = (0.25, 0.50, 0.75, 0.90)


def test_fig4(bench_report, benchmark, emit):
    metrics = bench_report.actor_analyzer.metrics()

    def panels():
        result = {}
        for threshold in THRESHOLDS:
            cohort = [m for m in metrics.values() if m.n_ewhoring_posts >= threshold]
            if not cohort:
                continue
            result[threshold] = {
                "posts": np.quantile([m.n_ewhoring_posts for m in cohort], QUANTILES),
                "pct": np.quantile([m.pct_ewhoring for m in cohort], QUANTILES),
                "before": np.quantile([m.days_before for m in cohort], QUANTILES),
                "after": np.quantile([m.days_after for m in cohort], QUANTILES),
            }
        return result

    data = benchmark(panels)

    lines = ["Figure 4 — actor metric quantiles by cohort " + scale_note()]
    for panel in ("posts", "pct", "before", "after"):
        lines.append("")
        lines.append(f"{panel} quantiles (p25/p50/p75/p90):")
        for threshold, row in data.items():
            values = "/".join(f"{v:8.1f}" for v in row[panel])
            lines.append(f"  >= {threshold:<4} posts (n={sum(1 for m in metrics.values() if m.n_ewhoring_posts >= threshold):>6}): {values}")
    emit("fig4_actor_cdfs", "\n".join(lines))

    if 1 in data and 10 in data:
        # Post-count CDF shifts right with the cohort threshold.
        assert data[10]["posts"][1] > data[1]["posts"][1]
        # Days-after mass shifts left for heavier cohorts (Fig 4 bottom-right).
        if 50 in data:
            assert data[50]["after"][1] <= data[1]["after"][1] + 1e-9
