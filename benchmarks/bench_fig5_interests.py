"""F5 — Figure 5: interests of key actors before / during / after eWhoring.

Paper: key actors arrive through gaming and hacking boards; once they
start eWhoring, market-board activity takes over, with a slight rise of
the Common category after.  The reproduction prints the category
percentages per phase and asserts those two transitions.
"""

from repro.core import interest_evolution

from _common import scale_note


def test_fig5(bench_world, bench_report, benchmark, emit):
    metrics = bench_report.actor_analyzer.metrics()
    key_ids = bench_report.key_actors.groups.all_key_actors()

    evolution = benchmark.pedantic(
        lambda: interest_evolution(bench_world.dataset, metrics, key_ids),
        rounds=3,
        iterations=1,
    )
    percentages = evolution.percentages()

    categories = sorted(
        {c for row in percentages.values() for c in row}
    )
    lines = [
        f"Figure 5 — interests of {len(key_ids)} key actors " + scale_note(),
        f"{'category':<12}" + "".join(f"{phase:>10}" for phase in ("before", "during", "after")),
    ]
    for category in categories:
        lines.append(
            f"{category:<12}"
            + "".join(f"{percentages[phase].get(category, 0.0):>9.1f}%" for phase in ("before", "during", "after"))
        )
    lines.append("(paper: gaming/hacking lead before; market dominates during/after)")
    emit("fig5_interests", "\n".join(lines))

    before = percentages["before"]
    during = percentages["during"]
    if before and during:
        assert during.get("Market", 0) > before.get("Market", 0)
        assert before.get("Gaming", 0) > during.get("Gaming", 0)
        assert before.get("Gaming", 0) + before.get("Hacking", 0) > before.get("Market", 0)
