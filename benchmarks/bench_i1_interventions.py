"""I1 — the §8 intervention proposals, made measurable.

The paper recommends three disruption avenues; this benchmark executes
each against the synthetic ecosystem and reports the supply/income
reduction it buys:

1. a stakeholder-shared hash blacklist enforced by hosting services;
2. payment-platform account takedown of detected earners;
3. regulation of gift-card → cryptocurrency exchange.
"""

import pytest

from repro.core import (
    BlacklistIntervention,
    payment_account_takedown,
    regulate_gift_card_exchange,
)

from _common import scale_note


def test_i1(bench_world, bench_report, benchmark, emit):
    crawl = bench_report.crawl

    # 1. Blacklist: seed from the first half of packs ("known images"),
    #    evaluate on the second half (future re-circulation).
    packs = crawl.packs
    if len(packs) < 4:
        pytest.skip("too few packs for the blacklist split")
    seed_ids = {p.pack_id for p in packs[: len(packs) // 2]}
    seed_images = [c for c in crawl.pack_images if c.pack_id in seed_ids]
    future_images = [c for c in crawl.pack_images if c.pack_id not in seed_ids]
    future_packs = [p for p in packs if p.pack_id not in seed_ids]

    from repro.web.crawler import CrawlResult, CrawlStats

    future_crawl = CrawlResult(
        preview_images=[], pack_images=future_images,
        packs=future_packs, stats=CrawlStats(),
    )

    def run_blacklist():
        blacklist = BlacklistIntervention()
        blacklist.seed_from_images(seed_images)
        return blacklist.evaluate_on_future_crawl(future_crawl)

    outcome = benchmark.pedantic(run_blacklist, rounds=1, iterations=1)

    # 2. Payment takedown at two aggressiveness levels.
    mild = payment_account_takedown(bench_report.earnings, detection_rate=0.3, seed=1)
    harsh = payment_account_takedown(bench_report.earnings, detection_rate=0.9, seed=1)

    # 3. Gift-card exchange regulation.
    regulation = regulate_gift_card_exchange(
        bench_world.dataset, bench_report.currency_exchange
    )

    lines = [
        "I1 — §8 intervention simulations " + scale_note(),
        "",
        "1. shared hash blacklist at hosting services:",
        f"   seeded with {outcome.blacklist_size} known-image hashes",
        f"   blocks {outcome.n_images_blocked}/{outcome.n_images_checked} "
        f"({outcome.block_rate:.0%}) of future unique uploads",
        f"   disrupts {outcome.n_packs_disrupted}/{outcome.n_packs_checked} "
        f"({outcome.pack_disruption_rate:.0%}) of future packs",
        f"   evasion leak (mirrored images passing): {outcome.evasion_leak_rate:.0%}",
        "",
        "2. payment-account takedown:",
        f"   detection 30%: {mild.n_actors_hit}/{mild.n_actors} actors hit, "
        f"income -{mild.income_reduction:.0%} (${mild.income_removed_usd:,.0f})",
        f"   detection 90%: {harsh.n_actors_hit}/{harsh.n_actors} actors hit, "
        f"income -{harsh.income_reduction:.0%} (${harsh.income_removed_usd:,.0f})",
        "",
        "3. gift-card → crypto exchange regulation:",
        f"   blocks {regulation.n_blocked}/{regulation.n_threads} CE threads "
        f"({regulation.blocked_share:.0%}); {regulation.agc_to_crypto_blocked} "
        "were AGC→BTC laundering flows",
    ]
    emit("i1_interventions", "\n".join(lines))

    # The interventions must bite, and the blacklist's documented weakness
    # (mirroring) must remain visible.
    assert outcome.block_rate > 0.2, "saturated supply means heavy reuse"
    assert harsh.income_reduction >= mild.income_reduction
    assert regulation.n_blocked > 0
