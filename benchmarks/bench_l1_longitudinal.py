"""L1 — the longitudinal frame of the study (§1/§3).

The paper's dataset spans 11/2008–03/2019 with activity growing over
the decade (Hackforums' dedicated board accumulates >36k threads).
This benchmark reproduces the longitudinal frame: the activity
timeline's span, the growth of the community, and the recruitment
(new-actors-per-month) series behind the "gateway into offending"
narrative.
"""

from repro.core.longitudinal import activity_timeline, new_actor_series

from _common import scale_note


def test_l1(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset
    selection = bench_report.selection

    timeline = benchmark.pedantic(
        lambda: activity_timeline(dataset, selection), rounds=2, iterations=1
    )
    recruits = new_actor_series(dataset, selection)

    yearly_posts = timeline.posts.yearly()
    yearly_recruits = recruits.yearly()
    years = sorted(set(yearly_posts) | set(yearly_recruits))

    lines = [
        "L1 — longitudinal activity " + scale_note(),
        f"span: {timeline.first_post:%m/%Y} – {timeline.last_post:%m/%Y} "
        f"({timeline.span_years:.1f} years; paper: 11/2008 – 03/2019)",
        f"growth ratio (last third / first third of the span): "
        f"{timeline.growth_ratio():.1f}x",
        "",
        f"{'year':<6}{'posts':>8}{'new actors':>12}",
    ]
    for year in years:
        lines.append(
            f"{year:<6}{yearly_posts.get(year, 0):>8}{yearly_recruits.get(year, 0):>12}"
        )
    peak = timeline.posts.peak_month()
    if peak:
        lines.append(f"peak month: {peak[0]} ({peak[1]} posts)")
    emit("l1_longitudinal", "\n".join(lines))

    assert timeline.span_years > 8.0, "the decade-long frame must hold"
    assert timeline.growth_ratio() > 1.5, "activity must grow over the span"
    assert recruits.total == len(
        {p.author_id for t in selection
         for p in dataset.posts_in_thread(t.thread_id)}
    )
