"""O1 — telemetry overhead and determinism gates (DESIGN.md §9).

Two questions, one gate each:

1. **What does full tracing cost end-to-end?**  The complete pipeline is
   timed with tracing disabled (the default :data:`NULL_TRACER`
   recorder) and with a recording :class:`~repro.obs.Tracer` — spans on
   every stage, every link fetch and every batched vision kernel.
   Acceptance: overhead **< 3%** (with a small absolute floor so
   sub-second runs don't fail on scheduler noise).
2. **Does telemetry perturb the measurement?**  The traced and untraced
   runs must agree exactly on the deterministic telemetry view — funnel
   counts and every non-``*_seconds`` metric (the DESIGN.md §9
   determinism contract, also property-tested at unit scale in
   ``tests/test_obs_pipeline.py``).

Emits ``benchmarks/results/BENCH_telemetry.json`` (CI artifact) plus
the human-readable table.
"""

from __future__ import annotations

import time

from repro import run_pipeline
from repro.obs import ProfilingTracer, RunTelemetry, Tracer

from _common import BENCH_SCALE, BENCH_SEED, scale_note, write_result_json


REPEATS = 3
OVERHEAD_TARGET = 0.03
#: Profiling *disabled* must be structurally free — the profiler lives
#: entirely in a Tracer subclass, so an unprofiled run executes exactly
#: the NULL_TRACER path.  Gated far tighter than tracing itself.
PROFILE_DISABLED_TARGET = 0.01
#: Sub-second absolute slack: scheduler noise on small CI worlds can
#: exceed 3% of a short run without reflecting any real per-record cost.
ABSOLUTE_FLOOR_SECONDS = 0.25


def _timed_run(world, tracer):
    """One timed full pipeline run; returns (seconds, telemetry)."""
    telemetry = RunTelemetry(tracer=tracer)
    start = time.perf_counter()
    run_pipeline(world, telemetry=telemetry)
    return time.perf_counter() - start, telemetry


def test_o1_telemetry_overhead(bench_world, benchmark, emit):
    # Warm-up (caches, lazy imports) before any timed round, then
    # *interleave* traced/untraced rounds so drift in shared world
    # state cannot bias either side; take the best of each.
    run_pipeline(bench_world, telemetry=RunTelemetry(tracer=Tracer()))
    t_off = t_on = float("inf")
    tele_off = tele_on = None
    for _ in range(REPEATS):
        seconds, tele_off = _timed_run(bench_world, None)
        t_off = min(t_off, seconds)
        seconds, tele_on = _timed_run(bench_world, Tracer())
        t_on = min(t_on, seconds)
    overhead = t_on / t_off - 1.0
    delta = t_on - t_off
    benchmark.pedantic(
        lambda: run_pipeline(
            bench_world, telemetry=RunTelemetry(tracer=Tracer())
        ),
        rounds=1,
        iterations=1,
    )

    n_spans = len(tele_on.tracer.spans())
    n_events = tele_on.tracer.n_events

    # ---- gate 2: telemetry must not perturb the measurement ----------
    view_off = tele_off.deterministic_snapshot()
    view_on = tele_on.deterministic_snapshot()
    deterministic = view_off == view_on

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "repeats": REPEATS,
        },
        "pipeline_seconds": {
            "tracing_off": round(t_off, 4),
            "tracing_on": round(t_on, 4),
        },
        "overhead": round(overhead, 4),
        "overhead_seconds": round(delta, 4),
        "overhead_target": OVERHEAD_TARGET,
        "absolute_floor_seconds": ABSOLUTE_FLOOR_SECONDS,
        "n_spans": n_spans,
        "n_events": n_events,
        "funnel": tele_on.funnel(),
        "deterministic_views_equal": deterministic,
    }
    write_result_json("BENCH_telemetry", payload)

    lines = [
        "O1 — telemetry overhead and determinism " + scale_note(),
        f"pipeline, tracing off: {t_off:.3f}s (best of {REPEATS})",
        f"pipeline, tracing on : {t_on:.3f}s ({n_spans} spans, {n_events} events)",
        f"overhead             : {overhead:+.2%} ({delta:+.3f}s; "
        f"target < {OVERHEAD_TARGET:.0%} or < {ABSOLUTE_FLOOR_SECONDS}s absolute)",
        f"deterministic views  : {'identical' if deterministic else 'DIVERGED'}",
        "",
        "funnel (traced run):",
    ]
    for row in tele_on.funnel():
        lines.append(f"  {row['stage']:<22} {row['count']}")
    emit("BENCH_telemetry", "\n".join(lines))

    # Acceptance gates.
    assert deterministic, (
        "tracing changed the deterministic telemetry view — it must be "
        "a pure observer"
    )
    assert overhead < OVERHEAD_TARGET or delta < ABSOLUTE_FLOOR_SECONDS, (
        f"full tracing costs {overhead:.1%} ({delta:.3f}s) end-to-end "
        f"(target < {OVERHEAD_TARGET:.0%})"
    )
    assert n_spans > 0 and tele_on.tracing_enabled


def test_o1_profiler_disabled_overhead(bench_world, benchmark, emit):
    """Profiling OFF must cost < 1% — including after a profiler ran.

    The "after" rounds run once a :class:`ProfilingTracer` (allocation
    tracking on) has been started and stopped in this process, so the
    gate also catches ambient leakage — a sampler thread or tracemalloc
    left running would show up here even though the timed runs
    themselves use the plain NULL_TRACER path.
    """
    run_pipeline(bench_world, telemetry=RunTelemetry())  # warm-up

    # Baseline: the process has never started a profiler.
    t_never = min(_timed_run(bench_world, None)[0] for _ in range(REPEATS))

    # Exercise (and tear down) a full profiled run, allocations on —
    # the worst case for anything it could leave behind.
    t_prof = float("inf")
    profiler = ProfilingTracer(allocations=True, sample_interval=0.01)
    profiler.start()
    try:
        seconds, tele_prof = _timed_run(bench_world, profiler)
        t_prof = min(t_prof, seconds)
    finally:
        profiler.stop()

    # Disabled-after-use rounds, interleaved with fresh never-style
    # rounds in alternating order so position bias cancels; each side
    # takes its min.
    t_before, t_after = t_never, float("inf")
    tele_before = tele_after = None
    for i in range(REPEATS * 2):
        seconds, tele = _timed_run(bench_world, None)
        if i % 2 == 0:
            t_after, tele_after = min(t_after, seconds), tele
        else:
            t_before, tele_before = min(t_before, seconds), tele
    overhead = t_after / t_before - 1.0
    delta = t_after - t_before
    benchmark.pedantic(
        lambda: run_pipeline(bench_world, telemetry=RunTelemetry()),
        rounds=1,
        iterations=1,
    )

    # Determinism across off / profiled: the profiler is a pure
    # observer too — profile.* attrs are runtime metrics, excluded
    # from the deterministic view.
    view_off = tele_before.deterministic_snapshot()
    view_prof = tele_prof.deterministic_snapshot()
    deterministic = view_off == view_prof

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "repeats": REPEATS,
        },
        "pipeline_seconds": {
            "profiling_never": round(t_never, 4),
            "profiling_off": round(t_before, 4),
            "profiling_disabled_after_use": round(t_after, 4),
            "profiling_on": round(t_prof, 4),
        },
        "disabled_overhead": round(overhead, 4),
        "disabled_overhead_seconds": round(delta, 4),
        "disabled_overhead_target": PROFILE_DISABLED_TARGET,
        "absolute_floor_seconds": ABSOLUTE_FLOOR_SECONDS,
        "profiled_overhead": round(t_prof / t_before - 1.0, 4),
        "profile_samples": len(tele_prof.tracer.samples()),
        "deterministic_views_equal": deterministic,
    }
    write_result_json("BENCH_profiler", payload)

    emit(
        "BENCH_profiler",
        "\n".join(
            [
                "O1b — profiler overhead " + scale_note(),
                f"profiling never used : {t_never:.3f}s (best of {REPEATS})",
                f"profiling off        : {t_before:.3f}s",
                f"disabled (after use) : {t_after:.3f}s",
                f"profiling on         : {t_prof:.3f}s "
                f"({len(tele_prof.tracer.samples())} resource samples)",
                f"disabled overhead    : {overhead:+.2%} ({delta:+.3f}s; "
                f"target < {PROFILE_DISABLED_TARGET:.0%} or "
                f"< {ABSOLUTE_FLOOR_SECONDS}s absolute)",
                f"deterministic views  : "
                f"{'identical' if deterministic else 'DIVERGED'}",
            ]
        ),
    )

    assert deterministic, (
        "profiling changed the deterministic telemetry view — it must "
        "be a pure observer"
    )
    assert overhead < PROFILE_DISABLED_TARGET or delta < ABSOLUTE_FLOOR_SECONDS, (
        f"disabled profiling costs {overhead:.1%} ({delta:.3f}s) — a "
        f"stopped profiler must leave nothing running "
        f"(target < {PROFILE_DISABLED_TARGET:.0%})"
    )
