"""O1 — telemetry overhead and determinism gates (DESIGN.md §9).

Two questions, one gate each:

1. **What does full tracing cost end-to-end?**  The complete pipeline is
   timed with tracing disabled (the default :data:`NULL_TRACER`
   recorder) and with a recording :class:`~repro.obs.Tracer` — spans on
   every stage, every link fetch and every batched vision kernel.
   Acceptance: overhead **< 3%** (with a small absolute floor so
   sub-second runs don't fail on scheduler noise).
2. **Does telemetry perturb the measurement?**  The traced and untraced
   runs must agree exactly on the deterministic telemetry view — funnel
   counts and every non-``*_seconds`` metric (the DESIGN.md §9
   determinism contract, also property-tested at unit scale in
   ``tests/test_obs_pipeline.py``).

Emits ``benchmarks/results/BENCH_telemetry.json`` (CI artifact) plus
the human-readable table.
"""

from __future__ import annotations

import time

from repro import run_pipeline
from repro.obs import RunTelemetry, Tracer

from _common import BENCH_SCALE, BENCH_SEED, scale_note, write_result_json


REPEATS = 3
OVERHEAD_TARGET = 0.03
#: Sub-second absolute slack: scheduler noise on small CI worlds can
#: exceed 3% of a short run without reflecting any real per-record cost.
ABSOLUTE_FLOOR_SECONDS = 0.25


def _timed_run(world, tracer):
    """One timed full pipeline run; returns (seconds, telemetry)."""
    telemetry = RunTelemetry(tracer=tracer)
    start = time.perf_counter()
    run_pipeline(world, telemetry=telemetry)
    return time.perf_counter() - start, telemetry


def test_o1_telemetry_overhead(bench_world, benchmark, emit):
    # Warm-up (caches, lazy imports) before any timed round, then
    # *interleave* traced/untraced rounds so drift in shared world
    # state cannot bias either side; take the best of each.
    run_pipeline(bench_world, telemetry=RunTelemetry(tracer=Tracer()))
    t_off = t_on = float("inf")
    tele_off = tele_on = None
    for _ in range(REPEATS):
        seconds, tele_off = _timed_run(bench_world, None)
        t_off = min(t_off, seconds)
        seconds, tele_on = _timed_run(bench_world, Tracer())
        t_on = min(t_on, seconds)
    overhead = t_on / t_off - 1.0
    delta = t_on - t_off
    benchmark.pedantic(
        lambda: run_pipeline(
            bench_world, telemetry=RunTelemetry(tracer=Tracer())
        ),
        rounds=1,
        iterations=1,
    )

    n_spans = len(tele_on.tracer.spans())
    n_events = tele_on.tracer.n_events

    # ---- gate 2: telemetry must not perturb the measurement ----------
    view_off = tele_off.deterministic_snapshot()
    view_on = tele_on.deterministic_snapshot()
    deterministic = view_off == view_on

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "repeats": REPEATS,
        },
        "pipeline_seconds": {
            "tracing_off": round(t_off, 4),
            "tracing_on": round(t_on, 4),
        },
        "overhead": round(overhead, 4),
        "overhead_seconds": round(delta, 4),
        "overhead_target": OVERHEAD_TARGET,
        "absolute_floor_seconds": ABSOLUTE_FLOOR_SECONDS,
        "n_spans": n_spans,
        "n_events": n_events,
        "funnel": tele_on.funnel(),
        "deterministic_views_equal": deterministic,
    }
    write_result_json("BENCH_telemetry", payload)

    lines = [
        "O1 — telemetry overhead and determinism " + scale_note(),
        f"pipeline, tracing off: {t_off:.3f}s (best of {REPEATS})",
        f"pipeline, tracing on : {t_on:.3f}s ({n_spans} spans, {n_events} events)",
        f"overhead             : {overhead:+.2%} ({delta:+.3f}s; "
        f"target < {OVERHEAD_TARGET:.0%} or < {ABSOLUTE_FLOOR_SECONDS}s absolute)",
        f"deterministic views  : {'identical' if deterministic else 'DIVERGED'}",
        "",
        "funnel (traced run):",
    ]
    for row in tele_on.funnel():
        lines.append(f"  {row['stage']:<22} {row['count']}")
    emit("BENCH_telemetry", "\n".join(lines))

    # Acceptance gates.
    assert deterministic, (
        "tracing changed the deterministic telemetry view — it must be "
        "a pure observer"
    )
    assert overhead < OVERHEAD_TARGET or delta < ABSOLUTE_FLOOR_SECONDS, (
        f"full tracing costs {overhead:.1%} ({delta:.3f}s) end-to-end "
        f"(target < {OVERHEAD_TARGET:.0%})"
    )
    assert n_spans > 0 and tele_on.tracing_enabled
