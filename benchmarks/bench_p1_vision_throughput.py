"""P1 — vision throughput: batched hashing vs the seed scalar loop.

Emits ``benchmarks/results/BENCH_vision.json`` with images/second for

* ``seed_scalar``   — a faithful copy of the seed implementation of
  :func:`robust_hash` (per-image NumPy calls, per-bit Python packing,
  reduceat-only resize), the pre-batching baseline;
* ``scalar``        — the current per-image :func:`robust_hash` (shares
  the vectorised resize/pack kernels);
* ``batched``       — :func:`repro.vision.batch.hash_batch` over the
  whole stack;

plus the VisionCache hit rate of a full pipeline run and the acceptance
ratio ``batched / seed_scalar`` (target: ≥ 3×).

Env knobs: ``REPRO_BENCH_VISION_N`` (raster count, default 512),
``REPRO_BENCH_VISION_REPEATS`` (timing repeats, best-of, default 3).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from scipy import fft as scipy_fft

from repro.vision import hash_batch, robust_hash
from repro.vision.batch import prepare_thumbnails

from _common import BENCH_SCALE, BENCH_SEED, scale_note, write_result_json


N_RASTERS = int(os.environ.get("REPRO_BENCH_VISION_N", "512"))
REPEATS = int(os.environ.get("REPRO_BENCH_VISION_REPEATS", "3"))
RASTER_SHAPE = (64, 64, 3)  # the synthetic renderer's native raster size


# ---------------------------------------------------------------------------
# Seed-era scalar implementation (pre-batching baseline), kept verbatim so
# the speedup is measured against what the repository actually shipped.
# ---------------------------------------------------------------------------

_HASH_GRID = 32


def _seed_block_mean_resize(gray: np.ndarray, target: int) -> np.ndarray:
    rows, cols = gray.shape
    if rows < target or cols < target:
        row_idx = np.clip((np.arange(target) * rows / target).astype(int), 0, rows - 1)
        col_idx = np.clip((np.arange(target) * cols / target).astype(int), 0, cols - 1)
        return gray[np.ix_(row_idx, col_idx)].astype(np.float64)
    row_edges = np.linspace(0, rows, target + 1).astype(int)
    col_edges = np.linspace(0, cols, target + 1).astype(int)
    summed = np.add.reduceat(
        np.add.reduceat(gray, row_edges[:-1], axis=0), col_edges[:-1], axis=1
    )
    counts = np.outer(np.diff(row_edges), np.diff(col_edges)).astype(np.float64)
    return summed / counts


def _seed_robust_hash(pixels: np.ndarray) -> int:
    gray = np.asarray(pixels, dtype=np.float64)
    if gray.ndim == 3:
        gray = gray.mean(axis=2)
    small = _seed_block_mean_resize(gray, _HASH_GRID)
    spectrum = scipy_fft.dctn(small, norm="ortho")
    block = spectrum[:8, :8].flatten()
    block[0] = spectrum[8, 8]
    median = np.median(block)
    bits = block > median
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


# ---------------------------------------------------------------------------


def _make_rasters(n: int) -> list:
    rng = np.random.default_rng(BENCH_SEED)
    return [rng.uniform(0.0, 1.0, size=RASTER_SHAPE) for _ in range(n)]


def _best_rate(fn, n_images: int, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` throughput in images/second."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n_images / best


@pytest.fixture(scope="module")
def rasters():
    return _make_rasters(N_RASTERS)


def test_p1_vision_throughput(rasters, bench_report, benchmark, emit):
    # Correctness gate before timing anything: all three paths agree.
    sample = rasters[:32]
    seed_hashes = [_seed_robust_hash(r) for r in sample]
    assert [robust_hash(r) for r in sample] == seed_hashes
    assert [int(h) for h in hash_batch(sample)] == seed_hashes

    seed_rate = _best_rate(lambda: [_seed_robust_hash(r) for r in rasters], len(rasters))
    scalar_rate = _best_rate(lambda: [robust_hash(r) for r in rasters], len(rasters))
    batched_rate = _best_rate(lambda: hash_batch(rasters), len(rasters))
    benchmark.pedantic(lambda: hash_batch(rasters), rounds=1, iterations=1)

    cache_stats = bench_report.vision_cache_stats
    payload = {
        "config": {
            "n_rasters": len(rasters),
            "raster_shape": list(RASTER_SHAPE),
            "repeats": REPEATS,
            "seed": BENCH_SEED,
            "pipeline_scale": BENCH_SCALE,
            "numpy": np.__version__,
        },
        "images_per_second": {
            "seed_scalar": round(seed_rate, 1),
            "scalar": round(scalar_rate, 1),
            "batched": round(batched_rate, 1),
        },
        "speedup": {
            "batched_vs_seed_scalar": round(batched_rate / seed_rate, 2),
            "batched_vs_scalar": round(batched_rate / scalar_rate, 2),
            "scalar_vs_seed_scalar": round(scalar_rate / seed_rate, 2),
        },
        "vision_cache": (
            {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "hit_rate": round(cache_stats.hit_rate, 4),
                "evictions": cache_stats.evictions,
                "entries": cache_stats.n_entries,
            }
            if cache_stats is not None
            else None
        ),
    }
    write_result_json("BENCH_vision", payload)

    speed = payload["speedup"]["batched_vs_seed_scalar"]
    lines = [
        "P1 — vision throughput " + scale_note(),
        f"rasters          : {len(rasters)} × {RASTER_SHAPE}",
        f"seed scalar loop : {seed_rate:,.0f} img/s",
        f"current scalar   : {scalar_rate:,.0f} img/s",
        f"batched          : {batched_rate:,.0f} img/s",
        f"speedup (vs seed): {speed:.2f}× (target ≥ 3×)",
        f"vision cache     : "
        + (cache_stats.summary() if cache_stats is not None else "n/a"),
    ]
    emit("BENCH_vision", "\n".join(lines))

    # Acceptance: the batched engine must beat the seed loop ≥ 3×.
    assert speed >= 3.0, f"batched speedup {speed:.2f}× below the 3× target"


def test_p1_thumbnails_bit_identical(rasters):
    """The batched thumbnail path must equal the scalar resize exactly."""
    thumbs = prepare_thumbnails(rasters[:64])
    for raster, thumb in zip(rasters[:64], thumbs):
        expected = _seed_block_mean_resize(raster.mean(axis=2), _HASH_GRID)
        np.testing.assert_array_equal(thumb, expected)
