"""P2 — sharded parallel crawl: throughput scaling + bit-identity.

Benchmarks the §4.2 crawl executor (:mod:`repro.web.parallel`) with the
crawl→vision streaming overlap, and enforces the tentpole invariant that
parallel output is *bit-identical* to serial.

Two workloads:

* **throughput arena** — a balanced multi-domain link set with
  *pre-rendered* payloads.  Rendering simulates the origin server's
  work of producing the payload bytes; a real crawler downloads bytes,
  it does not synthesise them, so the arena warms every raster first
  and the timed region contains exactly the crawler's own work:
  fetch + ingest validation + content digest + streamed ``hash_batch``
  (the GIL-releasing path that sharding can actually scale).
* **pipeline identity** — full ``run_pipeline`` worlds at bench scale,
  serial vs ``workers ∈ {1, 4}``, for the ``none`` and ``hostile``
  fault *and* payload profiles: ``CrawlResult.digest``, quarantine
  ledger, and the deterministic telemetry views must match exactly.

Emits ``benchmarks/results/BENCH_parallel.json``.  The ≥1.5× speedup
gate (workers 4 vs 1) is asserted when the machine has ≥ 4 CPUs; on
smaller machines the ratio is recorded and the gate is reported as
``enforced: false`` (a thread pool cannot beat the clock on one core).

Env knobs: ``REPRO_BENCH_PAR_DOMAINS`` (default 16),
``REPRO_BENCH_PAR_LINKS`` (links per domain, default 12),
``REPRO_BENCH_PAR_REPEATS`` (timing repeats, best-of, default 3).
"""

from __future__ import annotations

import json
import os
import sys
import time
from datetime import datetime
from pathlib import Path

import numpy as np

from repro import build_world, run_pipeline
from repro.core.abuse_filter import StreamMatcher
from repro.core.quarantine import Quarantine
from repro.obs import RunTelemetry
from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.synth import WorldConfig
from repro.vision.cache import VisionCache
from repro.web import (
    Crawler,
    FaultInjector,
    HostingService,
    LinkRecord,
    PayloadFaultInjector,
    RetryPolicy,
    ServiceKind,
    SimulatedInternet,
    crawl_sharded,
    fault_profile,
    payload_profile,
)

from _common import BENCH_SCALE, BENCH_SEED, write_result_json

RESULTS_DIR = Path(__file__).parent / "results"
T0 = datetime(2014, 5, 1)

N_DOMAINS = int(os.environ.get("REPRO_BENCH_PAR_DOMAINS", "16"))
LINKS_PER_DOMAIN = int(os.environ.get("REPRO_BENCH_PAR_LINKS", "12"))
REPEATS = int(os.environ.get("REPRO_BENCH_PAR_REPEATS", "3"))
PIPELINE_SCALE = min(BENCH_SCALE, 0.02)

SPEEDUP_TARGET = 1.5
CPUS = os.cpu_count() or 1
GATE_ENFORCED = CPUS >= 4


# ---------------------------------------------------------------------------
# Throughput arena: balanced domains, pre-rendered payloads
# ---------------------------------------------------------------------------

def _build_arena():
    rng = np.random.default_rng(BENCH_SEED)
    net = SimulatedInternet(seed=BENCH_SEED)
    links = []
    image_id = 1
    for d in range(N_DOMAINS):
        service = HostingService(
            f"svc{d}", f"svc{d}.example", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0
        )
        for i in range(LINKS_PER_DOMAIN):
            if i % 3 == 0:
                images = [
                    SyntheticImage(
                        image_id + j,
                        sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1),
                    )
                    for j in range(6)
                ]
                image_id += len(images)
                resource = Pack(pack_id=1000 * d + i, model_id=1, images=images)
            else:
                resource = SyntheticImage(
                    image_id, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
                )
                image_id += 1
            url = net.host_on_service(service, resource, T0, False)
            links.append(
                LinkRecord(url=url, link_kind="pack" if i % 3 == 0 else "preview")
            )
    # Warm every raster: payload production is the origin server's cost,
    # not the crawler's, so it is excluded from the timed region.
    n_rasters = 0
    for link in links:
        hosted = net.hosted(link.url)
        resource = hosted.resource
        images = resource.images if isinstance(resource, Pack) else [resource]
        for image in images:
            _ = image.pixels
            n_rasters += 1
    return net, links, n_rasters


def _timed_crawl(net, links, workers):
    crawler = Crawler(
        net,
        retry_policy=RetryPolicy(max_attempts=3),
        breaker_threshold=4,
        breaker_cooldown=5.0,
    )
    stream = StreamMatcher(cache=VisionCache(), validate=True)
    quarantine = Quarantine()
    start = time.perf_counter()
    result = crawl_sharded(
        crawler,
        links,
        workers=workers,
        quarantine=quarantine,
        on_lane=stream.on_lane,
    )
    elapsed = time.perf_counter() - start
    return result, quarantine, stream, elapsed


def _best_time(net, links, workers):
    best = None
    result = quarantine = stream = None
    for _ in range(REPEATS):
        result, quarantine, stream, elapsed = _timed_crawl(net, links, workers)
        best = elapsed if best is None else min(best, elapsed)
    return result, quarantine, stream, best


def _crawl_view(result, quarantine):
    return {
        "digest": result.digest(),
        "stats": result.stats.to_dict(),
        "breakers": result.breaker_summary,
        "attempt_logs": [log.to_dict() for log in result.attempt_logs],
        "quarantine": [record.to_dict() for record in quarantine.records],
    }


# ---------------------------------------------------------------------------
# Pipeline identity across worker counts and hostile profiles
# ---------------------------------------------------------------------------

def _pipeline_views(profile, workers):
    kwargs = dict(seed=BENCH_SEED, scale=PIPELINE_SCALE)
    if profile == "hostile":
        kwargs.update(fault_profile="hostile", payload_profile="hostile")
    world = build_world(WorldConfig(**kwargs))
    telemetry = RunTelemetry()
    report = run_pipeline(world, workers=workers, telemetry=telemetry)
    return {
        "digest": report.crawl.digest(),
        "quarantine": [r.to_dict() for r in report.quarantine.records],
        "funnel": telemetry.funnel(),
        "snapshot": telemetry.deterministic_snapshot() if workers else None,
    }


# ---------------------------------------------------------------------------
# The benchmark
# ---------------------------------------------------------------------------

def test_p2_parallel_crawl(emit):
    net, links, n_rasters = _build_arena()

    # ---- identity on the arena, every profile ------------------------
    for faults, payloads in (("none", "none"), ("hostile", "hostile")):
        net.set_fault_injector(
            None
            if faults == "none"
            else FaultInjector(fault_profile(faults), seed=21)
        )
        net.set_payload_injector(
            None
            if payloads == "none"
            else PayloadFaultInjector(payload_profile(payloads), seed=33)
        )
        reference = None
        for workers in (1, 2, 4):
            result, quarantine, _, _ = _timed_crawl(net, links, workers)
            view = _crawl_view(result, quarantine)
            if reference is None:
                reference = view
            else:
                assert view == reference, (
                    f"arena identity broken: workers={workers} "
                    f"faults={faults} payloads={payloads}"
                )
        net.set_fault_injector(None)
        net.set_payload_injector(None)

    # ---- throughput: workers 4 vs 1 on the clean arena ---------------
    _, _, stream1, t1 = _best_time(net, links, 1)
    result4, _, stream4, t4 = _best_time(net, links, 4)
    assert stream4.n_streamed == stream1.n_streamed > 0
    speedup = t1 / t4 if t4 > 0 else float("inf")

    # ---- pipeline identity (serial vs workers, none/hostile) ---------
    pipeline_identity = {}
    for profile in ("none", "hostile"):
        views = {w: _pipeline_views(profile, w) for w in (None, 1, 4)}
        base = {k: v for k, v in views[None].items() if k != "snapshot"}
        for workers in (1, 4):
            trimmed = {k: v for k, v in views[workers].items() if k != "snapshot"}
            assert trimmed == base, f"pipeline view mismatch: {profile}/{workers}"
        assert views[1]["snapshot"] == views[4]["snapshot"]
        pipeline_identity[profile] = {
            "digest": base["digest"],
            "n_quarantined": len(base["quarantine"]),
        }

    payload = {
        # Top-level so results tooling never has to dig for them: how many
        # CPUs the run saw, and whether the speedup gate was actually
        # asserted (false = recorded-only run on a small machine).
        "cpu_count": CPUS,
        "gate_enforced": GATE_ENFORCED,
        "config": {
            "n_domains": N_DOMAINS,
            "links_per_domain": LINKS_PER_DOMAIN,
            "n_links": len(links),
            "n_rasters_prewarmed": n_rasters,
            "repeats": REPEATS,
            "seed": BENCH_SEED,
            "pipeline_scale": PIPELINE_SCALE,
            "cpus": CPUS,
            "numpy": np.__version__,
        },
        "seconds": {"workers_1": round(t1, 4), "workers_4": round(t4, 4)},
        "links_per_second": {
            "workers_1": round(len(links) / t1, 1),
            "workers_4": round(len(links) / t4, 1),
        },
        "speedup_4_vs_1": round(speedup, 3),
        "gate": {
            "threshold": SPEEDUP_TARGET,
            "enforced": GATE_ENFORCED,
            "passed": bool(speedup >= SPEEDUP_TARGET),
            "note": (
                "enforced on >=4-CPU machines; a thread pool cannot beat "
                "the wall clock on fewer cores"
            ),
        },
        "identity": {
            "arena_profiles_checked": ["none/none", "hostile/hostile"],
            "arena_digest": result4.digest(),
            "pipeline": pipeline_identity,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_parallel.json"
    # A gate-enforced recording (>= 4 CPUs, speedup asserted) must never
    # be silently replaced by an unenforced one: a 1-CPU run writing
    # 0.9x over an enforced 1.5x+ artifact would read as a regression —
    # or worse, as a pass — to anything consuming the file.  Unenforced
    # runs on machines that previously produced an enforced artifact go
    # to a side file instead.
    if not GATE_ENFORCED and artifact.exists():
        try:
            existing_enforced = bool(
                json.loads(artifact.read_text(encoding="utf-8")).get("gate_enforced")
            )
        except (json.JSONDecodeError, OSError):
            existing_enforced = False
        if existing_enforced:
            side = RESULTS_DIR / "BENCH_parallel.unenforced.json"
            write_result_json(side.name[: -len(".json")], payload)
            print(
                f"\n!!! refusing to overwrite gate-enforced {artifact.name} "
                f"with an unenforced {CPUS}-CPU recording; wrote {side.name}",
                file=sys.stderr,
            )
            artifact = None
    if artifact is not None:
        write_result_json(artifact.name[: -len(".json")], payload)

    lines = [
        "P2 parallel crawl "
        f"(domains={N_DOMAINS}, links={len(links)}, cpus={CPUS})",
        f"workers=1: {t1:.3f}s   workers=4: {t4:.3f}s   "
        f"speedup={speedup:.2f}x (target {SPEEDUP_TARGET}x, "
        f"gate {'ENFORCED' if GATE_ENFORCED else 'recorded only'})",
        "identity: arena (none+hostile) and pipeline (none+hostile) "
        "bit-identical across workers",
    ]
    if not GATE_ENFORCED:
        warning = (
            f"WARNING: the {SPEEDUP_TARGET}x speedup gate was SKIPPED — this "
            f"machine has only {CPUS} CPU(s) (gate needs >= 4). The measured "
            f"ratio ({speedup:.2f}x) is recorded in BENCH_parallel.json but "
            "NOT asserted; do not read this run as a performance pass."
        )
        lines.append(warning)
        print(f"\n!!! {warning}", file=sys.stderr)
    emit("BENCH_parallel", "\n".join(lines))

    if GATE_ENFORCED:
        assert speedup >= SPEEDUP_TARGET, (
            f"parallel crawl speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET}x gate on a {CPUS}-CPU machine"
        )


def test_p2_checkpoint_round_trip(tmp_path):
    """Interrupt a workers-4 crawl, resume serial (and the reverse):
    the final digest equals an uninterrupted serial crawl."""
    net, links, _ = _build_arena()
    net.set_fault_injector(FaultInjector(fault_profile("hostile"), seed=21))
    try:
        def crawler():
            return Crawler(
                net,
                retry_policy=RetryPolicy(max_attempts=3),
                breaker_threshold=4,
                breaker_cooldown=5.0,
            )

        baseline = crawler().crawl(links)
        for first, second in ((4, None), (None, 4)):
            path = tmp_path / f"ckpt-{first}-{second}.json"
            split = len(links) // 2
            crawler().crawl(
                links[:split], checkpoint=str(path), checkpoint_every=5,
                workers=first,
            )
            resumed = crawler().crawl(links, checkpoint=str(path), workers=second)
            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
    finally:
        net.set_fault_injector(None)
