"""P3 — executor scaling: links/sec and peak RSS vs workers × executor.

Measures the multi-core crawl (:mod:`repro.web.procpool`) against the
thread executor over ``workers ∈ {1, 2, 4}``, on the same pre-rendered
throughput arena bench_p2 uses.  Every configuration is measured in its
**own subprocess** so ``ru_maxrss`` is a per-configuration high-water
mark, not a monotonic artifact of measurement order; the parent only
collates.

Checks:

* every configuration's crawl digest equals the in-process serial
  crawl (bit-identity is the tentpole invariant, re-asserted here);
* the ≥1.5× speedup gate (process executor, workers 4 vs 1) is
  asserted when the machine has ≥ 4 CPUs; on smaller machines the
  ratio is recorded, the gate is reported ``enforced: false`` with a
  loud warning, and a previously *enforced* ``BENCH_scale.json`` is
  never overwritten by an unenforced recording (side file instead);
* parent peak RSS under the process executor stays flat relative to
  the thread executor at the same worker count — the shared-memory
  arena ships rasters as views, never as pickled pixel copies.

Emits ``benchmarks/results/BENCH_scale.json`` (+ TRAJECTORY.jsonl).

Env knobs: ``REPRO_BENCH_SCALE_DOMAINS`` (default 12),
``REPRO_BENCH_SCALE_LINKS`` (links per domain, default 10),
``REPRO_BENCH_SCALE_REPEATS`` (timing repeats, best-of, default 3).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from datetime import datetime
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"
if str(SRC_DIR) not in sys.path:  # direct-execution worker mode
    sys.path.insert(0, str(SRC_DIR))

import numpy as np

from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.web import (
    Crawler,
    HostingService,
    LinkRecord,
    RetryPolicy,
    ServiceKind,
    SimulatedInternet,
)

from _common import BENCH_SEED, write_result_json

RESULTS_DIR = Path(__file__).parent / "results"
T0 = datetime(2014, 5, 1)

N_DOMAINS = int(os.environ.get("REPRO_BENCH_SCALE_DOMAINS", "12"))
LINKS_PER_DOMAIN = int(os.environ.get("REPRO_BENCH_SCALE_LINKS", "10"))
REPEATS = int(os.environ.get("REPRO_BENCH_SCALE_REPEATS", "3"))

WORKER_COUNTS = (1, 2, 4)
EXECUTORS = ("thread", "process")

SPEEDUP_TARGET = 1.5
CPUS = os.cpu_count() or 1
GATE_ENFORCED = CPUS >= 4

#: Parent RSS under the process executor may exceed the thread run by at
#: most this factor (plus slack for allocator noise): anything larger
#: means pixel bytes crossed the pipe instead of the arena.
RSS_FLAT_FACTOR = 1.5
RSS_FLAT_SLACK_KB = 64 * 1024


def _build_arena():
    """bench_p2's balanced multi-domain arena, pre-rendered."""
    rng = np.random.default_rng(BENCH_SEED)
    net = SimulatedInternet(seed=BENCH_SEED)
    links = []
    image_id = 1
    for d in range(N_DOMAINS):
        service = HostingService(
            f"svc{d}", f"svc{d}.example", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0
        )
        for i in range(LINKS_PER_DOMAIN):
            if i % 3 == 0:
                images = [
                    SyntheticImage(
                        image_id + j,
                        sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1),
                    )
                    for j in range(6)
                ]
                image_id += len(images)
                resource = Pack(pack_id=1000 * d + i, model_id=1, images=images)
            else:
                resource = SyntheticImage(
                    image_id, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
                )
                image_id += 1
            url = net.host_on_service(service, resource, T0, False)
            links.append(
                LinkRecord(url=url, link_kind="pack" if i % 3 == 0 else "preview")
            )
    for link in links:
        hosted = net.hosted(link.url)
        resource = hosted.resource
        images = resource.images if isinstance(resource, Pack) else [resource]
        for image in images:
            _ = image.pixels
    return net, links


def _crawler(net):
    return Crawler(
        net,
        retry_policy=RetryPolicy(max_attempts=3),
        breaker_threshold=4,
        breaker_cooldown=5.0,
    )


def _measure(executor, workers):
    """One configuration, best-of-REPEATS, run inside a fresh process."""
    from repro.core.abuse_filter import StreamMatcher
    from repro.core.quarantine import Quarantine
    from repro.vision.cache import VisionCache

    net, links = _build_arena()
    best = None
    digest = None
    for _ in range(REPEATS):
        stream = StreamMatcher(cache=VisionCache(), validate=True)
        start = time.perf_counter()
        result = _crawler(net).crawl(
            links,
            workers=workers,
            executor=executor,
            quarantine=Quarantine(),
            on_lane=stream.on_lane,
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        digest = result.digest()

    import resource

    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return {
        "executor": executor,
        "workers": workers,
        "seconds": round(best, 4),
        "links_per_second": round(len(links) / best, 1),
        "digest": digest,
        "rss_parent_kb": int(self_rss),
        "rss_children_kb": int(child_rss),
        "n_links": len(links),
    }


def _measure_in_subprocess(executor, workers):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--measure", executor, str(workers)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, (
        f"scale probe {executor}/{workers} failed:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


def test_p3_scale(emit):
    net, links = _build_arena()
    serial_digest = _crawler(net).crawl(links).digest()

    rows = {}
    for executor in EXECUTORS:
        for workers in WORKER_COUNTS:
            row = _measure_in_subprocess(executor, workers)
            rows[(executor, workers)] = row
            assert row["digest"] == serial_digest, (
                f"{executor}/{workers} digest diverged from serial"
            )

    speedups = {
        executor: round(
            rows[(executor, 1)]["seconds"] / rows[(executor, 4)]["seconds"], 3
        )
        for executor in EXECUTORS
    }

    # Flat-RSS check: the parent must not balloon when rasters arrive
    # through the shared-memory arena instead of in-process.
    rss_flat = {}
    for workers in WORKER_COUNTS:
        thread_rss = rows[("thread", workers)]["rss_parent_kb"]
        proc_rss = rows[("process", workers)]["rss_parent_kb"]
        bound = thread_rss * RSS_FLAT_FACTOR + RSS_FLAT_SLACK_KB
        rss_flat[workers] = {
            "thread_kb": thread_rss,
            "process_kb": proc_rss,
            "bound_kb": int(bound),
            "flat": bool(proc_rss <= bound),
        }
        assert proc_rss <= bound, (
            f"process-executor parent RSS {proc_rss} kB exceeds "
            f"{bound:.0f} kB (thread run: {thread_rss} kB, workers="
            f"{workers}) — rasters are being copied, not shared"
        )

    payload = {
        "cpu_count": CPUS,
        "gate_enforced": GATE_ENFORCED,
        "config": {
            "n_domains": N_DOMAINS,
            "links_per_domain": LINKS_PER_DOMAIN,
            "n_links": rows[("thread", 1)]["n_links"],
            "repeats": REPEATS,
            "seed": BENCH_SEED,
            "cpus": CPUS,
            "numpy": np.__version__,
        },
        "rows": [rows[(e, w)] for e in EXECUTORS for w in WORKER_COUNTS],
        "speedup_4_vs_1": speedups,
        "rss_flatness": rss_flat,
        "gate": {
            "threshold": SPEEDUP_TARGET,
            "enforced": GATE_ENFORCED,
            "passed": bool(speedups["process"] >= SPEEDUP_TARGET),
            "note": (
                "process-executor speedup enforced on >=4-CPU machines; "
                "no executor can beat the wall clock on fewer cores"
            ),
        },
        "identity": {"serial_digest": serial_digest, "all_match": True},
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_scale.json"
    # Same refusal rule as bench_p2: a gate-enforced recording is never
    # silently replaced by an unenforced small-machine one.
    if not GATE_ENFORCED and artifact.exists():
        try:
            existing_enforced = bool(
                json.loads(artifact.read_text(encoding="utf-8")).get("gate_enforced")
            )
        except (json.JSONDecodeError, OSError):
            existing_enforced = False
        if existing_enforced:
            side = RESULTS_DIR / "BENCH_scale.unenforced.json"
            write_result_json(side.name[: -len(".json")], payload)
            print(
                f"\n!!! refusing to overwrite gate-enforced {artifact.name} "
                f"with an unenforced {CPUS}-CPU recording; wrote {side.name}",
                file=sys.stderr,
            )
            artifact = None
    if artifact is not None:
        write_result_json(artifact.name[: -len(".json")], payload)

    lines = [
        f"P3 executor scaling (domains={N_DOMAINS}, "
        f"links={rows[('thread', 1)]['n_links']}, cpus={CPUS})",
        f"{'executor':<9} " + " ".join(f"w={w:<2} l/s" for w in WORKER_COUNTS),
    ]
    for executor in EXECUTORS:
        lines.append(
            f"{executor:<9} "
            + " ".join(
                f"{rows[(executor, w)]['links_per_second']:>8.1f}"
                for w in WORKER_COUNTS
            )
            + f"   speedup(4v1)={speedups[executor]:.2f}x"
        )
    lines.append(
        f"gate: process >= {SPEEDUP_TARGET}x at workers=4 "
        f"({'ENFORCED' if GATE_ENFORCED else 'recorded only'}); "
        "parent RSS flat across executors"
    )
    if not GATE_ENFORCED:
        warning = (
            f"WARNING: the {SPEEDUP_TARGET}x speedup gate was SKIPPED — this "
            f"machine has only {CPUS} CPU(s) (gate needs >= 4). The measured "
            f"ratio ({speedups['process']:.2f}x) is recorded in "
            "BENCH_scale.json but NOT asserted; do not read this run as a "
            "performance pass."
        )
        lines.append(warning)
        print(f"\n!!! {warning}", file=sys.stderr)
    emit("BENCH_scale", "\n".join(lines))

    if GATE_ENFORCED:
        assert speedups["process"] >= SPEEDUP_TARGET, (
            f"process-executor speedup {speedups['process']:.2f}x below the "
            f"{SPEEDUP_TARGET}x gate on a {CPUS}-CPU machine"
        )


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--measure":
        print(json.dumps(_measure(sys.argv[2], int(sys.argv[3]))))
        raise SystemExit(0)
    raise SystemExit(f"usage: {sys.argv[0]} --measure <executor> <workers>")
