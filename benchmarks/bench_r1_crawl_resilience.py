"""R1 — robustness study: the crawl funnel under transient faults.

The original crawl (§4.2) ran against a live, unreliable web; the
paper reports only the surviving funnel.  This study measures how much
of the funnel a *non*-retrying crawler would lose under each transient
fault profile, and how much a retrying crawler (exponential backoff +
full jitter, per-domain circuit breakers) claws back.

The ISSUE acceptance bar is checked here too: under the ``flaky``
profile the retrying crawler must recover at least 90% of the links a
zero-fault crawl fetches.
"""

from repro.web import Crawler, FaultInjector, RetryPolicy, fault_profile

from _common import scale_note

PROFILES = ("none", "flaky", "hostile", "rate_limited")
FAULT_SEED = 17


def _crawl(world, links, profile, retrying):
    internet = world.internet
    if profile == "none":
        internet.set_fault_injector(None)
    else:
        internet.set_fault_injector(
            FaultInjector(fault_profile(profile), seed=FAULT_SEED)
        )
    try:
        if retrying:
            crawler = Crawler(internet, retry_policy=RetryPolicy(max_attempts=4))
        else:
            crawler = Crawler(internet, retry_policy=RetryPolicy(max_attempts=1))
        return crawler.crawl(links)
    finally:
        internet.set_fault_injector(None)


def test_r1(bench_world, bench_report, benchmark, emit):
    links = bench_report.links.all_links

    baseline = _crawl(bench_world, links, "none", retrying=True)
    base_ok = baseline.stats.n_ok

    rows = []
    flaky_retry = None
    for profile in PROFILES:
        naive = _crawl(bench_world, links, profile, retrying=False)
        retry = _crawl(bench_world, links, profile, retrying=True)
        if profile == "flaky":
            flaky_retry = retry
        rows.append((profile, naive.stats, retry.stats))

    benchmark.pedantic(
        lambda: _crawl(bench_world, links, "flaky", retrying=True),
        rounds=2,
        iterations=1,
    )

    def pct(n):
        return f"{n / max(base_ok, 1):6.1%}"

    lines = [
        "R1 — crawl resilience under transient faults " + scale_note(),
        f"links crawled: {len(links)}; zero-fault OK fetches: {base_ok}",
        "",
        f"{'profile':<14}{'naive OK':>9}{'recov.':>8}"
        f"{'retry OK':>9}{'recov.':>8}{'retries':>9}{'giveups':>9}{'trips':>7}",
    ]
    for profile, naive, retry in rows:
        lines.append(
            f"{profile:<14}{naive.n_ok:>9}{pct(naive.n_ok):>8}"
            f"{retry.n_ok:>9}{pct(retry.n_ok):>8}"
            f"{retry.n_retries:>9}{retry.n_giveups:>9}{retry.n_breaker_skips:>7}"
        )
    lines += [
        "",
        "naive = single attempt, no retries; retry = 4 attempts with",
        "exponential backoff + full jitter and per-domain circuit breakers.",
        "recov. = OK fetches relative to the zero-fault baseline.",
    ]
    emit("r1_crawl_resilience", "\n".join(lines))

    # Acceptance: flaky + retries recovers >= 90% of zero-fault links.
    assert flaky_retry is not None
    assert flaky_retry.stats.n_ok >= 0.9 * base_ok
    # Retrying never does worse than the naive crawler on any profile.
    for _, naive, retry in rows:
        assert retry.n_ok >= naive.n_ok
    # The zero-fault funnel is unchanged by the fault machinery.
    assert baseline.stats.n_retries == 0
    assert baseline.digest() == Crawler(bench_world.internet).crawl(links).digest()
