"""R3 — robustness study: payload corruption, validation overhead, quarantine.

Two questions, one gate each:

1. **What does the ingest validation boundary cost on a clean crawl?**
   The §4.2 crawl is timed with ``validate_payloads`` on and off (pixels
   dropped between rounds so each round pays the full render+ingest
   cost).  Acceptance: overhead **< 5%**.
2. **Does the quarantine ledger account for every injected corruption?**
   The crawl is re-run under the ``dirty`` and ``hostile`` payload
   profiles; the ledger's record count must equal the injector's event
   count exactly, for every profile (the chaos-suite invariant, measured
   here at benchmark scale).

Emits ``benchmarks/results/BENCH_quarantine.json`` (CI artifact) plus
the human-readable table.
"""

from __future__ import annotations

import time

from repro.core.quarantine import Quarantine
from repro.web import Crawler, PayloadFaultInjector, payload_profile

from _common import BENCH_SCALE, BENCH_SEED, scale_note, write_result_json


PROFILES = ("dirty", "hostile")
PAYLOAD_SEED = 29
REPEATS = 5
OVERHEAD_TARGET = 0.05


def _drop_pixels(result) -> None:
    """Release every raster the crawl rendered, so the next timed round
    pays the full render + ingest cost again."""
    for crawled in result.all_images:
        crawled.image.drop_pixels()


def _time_crawl(internet, links, validate: bool) -> float:
    """Best-of-``REPEATS`` wall time of a clean, fully rendering crawl."""
    crawler = Crawler(internet, validate_payloads=validate)
    best = float("inf")
    result = crawler.crawl(links)  # warm-up (also primes any lazy imports)
    _drop_pixels(result)
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = crawler.crawl(links)
        best = min(best, time.perf_counter() - start)
        _drop_pixels(result)
    return best


def test_r3_quarantine(bench_world, bench_report, benchmark, emit):
    internet = bench_world.internet
    links = bench_report.links.all_links
    assert internet.payload_injector is None  # clean benchmark world

    # ---- gate 1: clean-path validation overhead ----------------------
    t_off = _time_crawl(internet, links, validate=False)
    t_on = _time_crawl(internet, links, validate=True)
    overhead = t_on / t_off - 1.0
    benchmark.pedantic(
        lambda: _drop_pixels(Crawler(internet).crawl(links)),
        rounds=1,
        iterations=1,
    )

    # ---- gate 2: ledger completeness under corruption ----------------
    profile_stats = {}
    try:
        for name in PROFILES:
            injector = PayloadFaultInjector(payload_profile(name), seed=PAYLOAD_SEED)
            internet.set_payload_injector(injector)
            ledger = Quarantine()
            result = Crawler(internet).crawl(links, quarantine=ledger)
            _drop_pixels(result)
            profile_stats[name] = {
                "injected": injector.n_injected,
                "quarantined": len(ledger),
                "by_kind": dict(sorted(injector.by_kind.items())),
                "by_error": dict(sorted(ledger.by_error().items())),
                "clean_images": len(result.all_images),
            }
    finally:
        internet.set_payload_injector(None)

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "payload_seed": PAYLOAD_SEED,
            "n_links": len(links),
            "repeats": REPEATS,
        },
        "clean_crawl_seconds": {
            "validate_off": round(t_off, 4),
            "validate_on": round(t_on, 4),
        },
        "validation_overhead": round(overhead, 4),
        "overhead_target": OVERHEAD_TARGET,
        "profiles": profile_stats,
        "ledger_complete": all(
            s["injected"] == s["quarantined"] for s in profile_stats.values()
        ),
    }
    write_result_json("BENCH_quarantine", payload)

    lines = [
        "R3 — payload corruption, ingest validation, quarantine " + scale_note(),
        f"links crawled        : {len(links)}",
        f"clean crawl          : validate off {t_off:.3f}s / on {t_on:.3f}s "
        f"(best of {REPEATS})",
        f"validation overhead  : {overhead:+.2%} (target < {OVERHEAD_TARGET:.0%})",
        "",
        f"{'profile':<10}{'injected':>10}{'quarantined':>13}{'clean imgs':>12}",
    ]
    for name, stats in profile_stats.items():
        lines.append(
            f"{name:<10}{stats['injected']:>10}{stats['quarantined']:>13}"
            f"{stats['clean_images']:>12}"
        )
    lines += [
        "",
        "invariant: every corruption event the injector served is exactly",
        "one quarantine record — nothing lost, nothing double-counted.",
    ]
    emit("BENCH_quarantine", "\n".join(lines))

    # Acceptance gates.
    assert overhead < OVERHEAD_TARGET, (
        f"ingest validation costs {overhead:.1%} on the clean path "
        f"(target < {OVERHEAD_TARGET:.0%})"
    )
    for name, stats in profile_stats.items():
        assert stats["injected"] == stats["quarantined"], (
            f"profile {name}: {stats['injected']} corruptions injected but "
            f"{stats['quarantined']} quarantined"
        )
        assert stats["injected"] > 0, f"profile {name} never fired"
    # More corruption can only shrink the surviving image set.
    assert (
        profile_stats["hostile"]["clean_images"]
        <= profile_stats["dirty"]["clean_images"]
    )
