"""R4 — adversarial drift: per-stage decay and adaptive recovery.

Runs the :mod:`repro.drift` harness for every non-trivial drift profile
(``mild`` / ``aggressive`` / ``hostile``), twice each: the *static*
instrument (defenses off — the epoch-0 classifier frozen, the original
whitelist, the shipped hash radius) and the *adaptive* one
(:meth:`~repro.drift.DefenseConfig.full`).  Two gates per profile:

* **decay** — with defenses off, at least one funnel stage must lose
  ``DECAY_MIN`` recall by the final epoch (if nothing decays, the
  scenario engine isn't doing its job);
* **recovery** — with defenses on, the mean final-epoch recall across
  stages must beat the defenses-off mean by ``RECOVERY_MARGIN`` *and*
  clear the ``RECOVERY_FLOOR`` absolute floor.

Worlds raise ``underage_rate`` / ``hashlist_rate`` (the E3 precedent) so
the abuse stage has ground truth to decay against at bench scale.

Emits ``benchmarks/results/BENCH_drift.json``.

Env knobs: ``REPRO_BENCH_DRIFT_EPOCHS`` (default 2),
``REPRO_BENCH_SCALE`` (shared world scale, capped at 0.02 here).
"""

from __future__ import annotations

import os

from repro.drift import DefenseConfig, STAGE_NAMES, run_drift

from _common import BENCH_SCALE, BENCH_SEED, write_result_json


PROFILES = ("mild", "aggressive", "hostile")
EPOCHS = int(os.environ.get("REPRO_BENCH_DRIFT_EPOCHS", "2"))
SCALE = min(BENCH_SCALE, 0.02)
UNDERAGE_RATE = 0.25
HASHLIST_RATE = 0.5

DECAY_MIN = 0.10
RECOVERY_MARGIN = 0.10
RECOVERY_FLOOR = 0.60


def _final_recalls(report) -> dict:
    return {stage: report.recall_curve(stage)[-1] for stage in STAGE_NAMES}


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_r4_drift_decay_and_recovery(emit):
    results = {}
    lines = [f"R4 drift (seed={BENCH_SEED}, scale={SCALE}, epochs={EPOCHS})"]
    for profile in PROFILES:
        runs = {}
        for key, defenses in (
            ("defenses_off", DefenseConfig.none()),
            ("defenses_on", DefenseConfig.full()),
        ):
            runs[key] = run_drift(
                profile,
                epochs=EPOCHS,
                seed=BENCH_SEED,
                scale=SCALE,
                defenses=defenses,
                underage_rate=UNDERAGE_RATE,
                hashlist_rate=HASHLIST_RATE,
            )

        off, on = runs["defenses_off"], runs["defenses_on"]
        baseline = {stage: off.recall_curve(stage)[0] for stage in STAGE_NAMES}
        off_final = _final_recalls(off)
        on_final = _final_recalls(on)
        max_decay = max(baseline[s] - off_final[s] for s in STAGE_NAMES)
        off_mean = _mean(off_final.values())
        on_mean = _mean(on_final.values())

        decay_ok = max_decay >= DECAY_MIN
        recovery_ok = (
            on_mean >= off_mean + RECOVERY_MARGIN and on_mean >= RECOVERY_FLOOR
        )
        results[profile] = {
            "defenses_off": off.as_dict(),
            "defenses_on": on.as_dict(),
            "gates": {
                "max_recall_decay": round(max_decay, 4),
                "decay_min": DECAY_MIN,
                "decay_passed": decay_ok,
                "off_mean_final_recall": round(off_mean, 4),
                "on_mean_final_recall": round(on_mean, 4),
                "recovery_margin": RECOVERY_MARGIN,
                "recovery_floor": RECOVERY_FLOOR,
                "recovery_passed": recovery_ok,
            },
        }
        lines.append(
            f"{profile:<11} max decay {max_decay:.3f} "
            f"(gate >= {DECAY_MIN}); final mean recall "
            f"off {off_mean:.3f} -> on {on_mean:.3f} "
            f"(gate: on >= off+{RECOVERY_MARGIN} and >= {RECOVERY_FLOOR})"
        )
        for stage in STAGE_NAMES:
            lines.append(
                f"  {stage:<11} off {' -> '.join(f'{v:.3f}' for v in off.recall_curve(stage))}"
                f"   on {' -> '.join(f'{v:.3f}' for v in on.recall_curve(stage))}"
            )

        assert decay_ok, (
            f"{profile}: no stage lost >= {DECAY_MIN} recall with defenses "
            f"off (max decay {max_decay:.3f}) — the drift engine is inert"
        )
        assert recovery_ok, (
            f"{profile}: adaptive defenses did not recover (mean final "
            f"recall off={off_mean:.3f}, on={on_mean:.3f})"
        )

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": SCALE,
            "epochs": EPOCHS,
            "profiles": list(PROFILES),
            "underage_rate": UNDERAGE_RATE,
            "hashlist_rate": HASHLIST_RATE,
        },
        "gates": {
            "decay_min": DECAY_MIN,
            "recovery_margin": RECOVERY_MARGIN,
            "recovery_floor": RECOVERY_FLOOR,
        },
        "profiles": results,
    }
    write_result_json("BENCH_drift", payload, sort_keys=True)
    emit("BENCH_drift", "\n".join(lines))
