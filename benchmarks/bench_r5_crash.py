"""R5-crash — crash-consistency layer: free when idle, cheap to recover.

Benchmarks the DESIGN.md §13 layer against its two performance gates:

* **steady-state overhead** — the instrumentation that makes violent
  death safe (kill points, the deferred single-COMMIT epoch
  transaction, atomic artifact writes) must cost < 2 % of wall time on
  an uninterrupted store epoch.  Measured best-of-``REPEATS`` with an
  *armed but never-firing* chaos monkey against the unarmed path, so
  the number covers the worst case (counting every kill-point hit), and
  backed by a microbenchmark of the disarmed ``kill_point`` call
  itself;
* **recovery cost** — after ``SIGKILL`` mid-epoch, recovering
  (integrity verify + re-running the killed epoch) must cost at most
  1.5× the epoch's cold wall time: rollback means re-doing one epoch's
  work, never a rebuild.

Identity is asserted alongside the clocks: the post-crash re-run's
crawl digest and measurement view must equal an uninterrupted run's.

Emits ``benchmarks/results/BENCH_crash.json``.

Env knobs: ``REPRO_BENCH_CRASH_OVERHEAD`` (overhead gate, default
0.02), ``REPRO_BENCH_CRASH_RECOVERY`` (recovery ratio gate, default
1.5), ``REPRO_BENCH_CRASH_REPEATS`` (default 3).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.chaos import ChaosMonkey, chosen_hit, install, kill_point, uninstall
from repro.store import run_incremental, verify_store

from _common import BENCH_SCALE, BENCH_SEED, write_result_json

OVERHEAD_GATE = float(os.environ.get("REPRO_BENCH_CRASH_OVERHEAD", "0.02"))
RECOVERY_GATE = float(os.environ.get("REPRO_BENCH_CRASH_RECOVERY", "1.5"))
REPEATS = int(os.environ.get("REPRO_BENCH_CRASH_REPEATS", "3"))
PIPELINE_SCALE = min(BENCH_SCALE, 0.02)
KILL_SITE = "store.commit.before"

#: Sub-second absolute slack (same idiom as bench_o1): scheduler noise
#: on small CI worlds can exceed a tight relative gate without
#: reflecting any real per-record cost.
ABSOLUTE_FLOOR_SECONDS = 0.25

SRC_DIR = Path(repro.__file__).resolve().parents[1]


def _timed_epoch(store_path, armed: bool) -> float:
    """One cold store epoch; returns wall seconds."""
    if armed:
        # A real registered site with an unreachable target hit: every
        # kill point pays the full armed bookkeeping, nothing fires.
        install(ChaosMonkey(KILL_SITE, action="raise", hit=10**9))
    try:
        start = time.perf_counter()
        run_incremental(
            store_path, epoch=1, seed=BENCH_SEED, scale=PIPELINE_SCALE,
            epoch_total=1,
        )
        return time.perf_counter() - start
    finally:
        uninstall()


def _interleaved_best(tmp) -> tuple:
    """Best-of-``REPEATS`` for the unarmed and armed paths.

    Rounds interleave the two configurations and alternate their order
    (same idiom as bench_o1): thermal/page-cache drift across a block
    of runs would otherwise read as fake instrumentation overhead.
    """
    times = {False: [], True: []}
    for i in range(REPEATS):
        order = (False, True) if i % 2 == 0 else (True, False)
        for armed in order:
            label = "armed" if armed else "unarmed"
            times[armed].append(_timed_epoch(tmp / f"{label}-{i}.sqlite", armed))
    return min(times[False]), min(times[True])


def _kill_point_ns() -> float:
    """Per-call cost of a disarmed kill point, nanoseconds."""
    uninstall()
    n = 1_000_000
    start = time.perf_counter()
    for _ in range(n):
        kill_point(KILL_SITE)
    return (time.perf_counter() - start) / n * 1e9


def _driver(store_path, chaos: bool, tmp) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS_KILL", None)
    if chaos:
        env["REPRO_CHAOS_KILL"] = KILL_SITE
        env["REPRO_CHAOS_SEED"] = str(BENCH_SEED)
        env["REPRO_CHAOS_HIT"] = str(chosen_hit(BENCH_SEED, KILL_SITE, 1))
    return subprocess.run(
        [sys.executable, "-m", "repro.chaos.driver", "--mode", "store",
         "--store", str(store_path), "--seed", str(BENCH_SEED),
         "--scale", str(PIPELINE_SCALE), "--epoch", "1", "--epoch-total", "1"],
        env=env, cwd=tmp, capture_output=True, text=True, timeout=600,
    )


def test_r5_crash_overhead_and_recovery(emit, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench-crash")

    # ---- gate 1: steady-state overhead of the armed worst case -------
    t_unarmed, t_armed = _interleaved_best(tmp)
    overhead = (t_armed - t_unarmed) / t_unarmed
    ns_per_call = _kill_point_ns()
    overhead_ok = (
        overhead <= OVERHEAD_GATE
        or (t_armed - t_unarmed) <= ABSOLUTE_FLOOR_SECONDS
    )

    # ---- gate 2: SIGKILL mid-epoch, recover, converge ----------------
    start = time.perf_counter()
    cold = _driver(tmp / "cold.sqlite", chaos=False, tmp=tmp)
    t_cold = time.perf_counter() - start
    assert cold.returncode == 0, cold.stderr
    cold_json = json.loads(cold.stdout)

    killed_store = tmp / "killed.sqlite"
    start = time.perf_counter()
    killed = _driver(killed_store, chaos=True, tmp=tmp)
    t_killed = time.perf_counter() - start
    assert killed.returncode == -signal.SIGKILL, killed.stderr

    start = time.perf_counter()
    verify_store(killed_store)  # integrity probe over the rolled-back store
    recovered = _driver(killed_store, chaos=False, tmp=tmp)
    t_recover = time.perf_counter() - start
    assert recovered.returncode == 0, recovered.stderr
    recovered_json = json.loads(recovered.stdout)
    assert recovered_json["crawl_digest"] == cold_json["crawl_digest"]
    assert recovered_json["quarantine"] == cold_json["quarantine"]
    assert recovered_json["measurement"] == cold_json["measurement"]

    recovery_ratio = t_recover / t_cold
    recovery_ok = (
        recovery_ratio <= RECOVERY_GATE
        or (t_recover - t_cold) <= ABSOLUTE_FLOOR_SECONDS
    )

    payload = {
        "scale": PIPELINE_SCALE,
        "seed": BENCH_SEED,
        "kill_site": KILL_SITE,
        "repeats": REPEATS,
        "overhead": {
            "t_unarmed_s": round(t_unarmed, 3),
            "t_armed_s": round(t_armed, 3),
            "relative": round(overhead, 4),
            "kill_point_disarmed_ns": round(ns_per_call, 1),
        },
        "recovery": {
            "t_cold_epoch_s": round(t_cold, 3),
            "t_killed_run_s": round(t_killed, 3),
            "t_recover_s": round(t_recover, 3),
            "ratio_vs_cold": round(recovery_ratio, 3),
            "recovered_equals_cold": True,
        },
        "gates": {
            "overhead": {"threshold": OVERHEAD_GATE, "passed": bool(overhead_ok)},
            "recovery": {"threshold": RECOVERY_GATE, "passed": bool(recovery_ok)},
        },
    }
    write_result_json("BENCH_crash", payload)

    emit(
        "BENCH_crash",
        "\n".join(
            [
                f"R5-crash chaos harness (scale={PIPELINE_SCALE}, "
                f"site={KILL_SITE})",
                f"steady-state: unarmed {t_unarmed:.2f}s, armed "
                f"{t_armed:.2f}s, overhead {overhead * 100:+.1f}% "
                f"(gate <= {OVERHEAD_GATE * 100:.0f}%)",
                f"disarmed kill_point: {ns_per_call:.0f} ns/call",
                f"recovery: cold epoch {t_cold:.2f}s, SIGKILLed run "
                f"{t_killed:.2f}s, verify+rerun {t_recover:.2f}s "
                f"(ratio {recovery_ratio:.2f}, gate <= {RECOVERY_GATE})",
                "recovered run is bit-identical to cold: True",
            ]
        ),
    )

    assert overhead_ok, (
        f"armed chaos instrumentation cost {overhead * 100:.1f}% "
        f"(gate {OVERHEAD_GATE * 100:.0f}%)"
    )
    assert recovery_ok, (
        f"crash recovery cost {recovery_ratio:.2f}x the cold epoch "
        f"(gate {RECOVERY_GATE}x)"
    )
