"""S1 — §4.2 saturation findings: image reuse across packs.

Paper: "127 images were found in at least 20 different packs"; 53 948
unique files among 117 076 downloads (54% duplication).  This benchmark
reproduces the reuse distribution and the per-pack saturation structure
the community's 'unsaturated' vocabulary refers to, and connects it to
reverse-search visibility: saturated packs are the ones reverse search
catches.
"""

import numpy as np

from repro.core.saturation import analyze_saturation

from _common import BENCH_SCALE, scale_note


def test_s1(bench_report, benchmark, emit):
    crawl = bench_report.crawl

    report = benchmark.pedantic(
        lambda: analyze_saturation(crawl), rounds=2, iterations=1
    )

    # Threshold scaled from the paper's "≥20 packs" at 1 255 packs.
    scaled_threshold = max(2, int(round(20 * len(crawl.packs) / 1255)))
    histogram = report.reuse_histogram()
    max_reuse = max(histogram, default=0)

    lines = [
        "S1 — pack saturation (§4.2) " + scale_note(),
        f"packs: {len(crawl.packs)}, unique pack images: {report.n_unique_images}",
        f"duplication: {report.n_unique_images} unique of "
        f"{len(crawl.pack_images)} pack-image downloads "
        f"({report.n_unique_images / max(len(crawl.pack_images), 1):.0%} unique; paper 46%)",
        "",
        "image-reuse distribution (packs carrying an image → #images):",
    ]
    for count in sorted(histogram)[:8]:
        lines.append(f"  {count:>3} packs: {histogram[count]:>6} images")
    lines += [
        f"  max reuse: one image in {max_reuse} packs",
        f"images in >= {scaled_threshold} packs: {report.images_in_at_least(scaled_threshold)} "
        f"(paper: 127 in >= 20 of 1 255 packs)",
        "",
        f"mean per-pack saturation index: {report.mean_saturation():.0%}",
        f"fully fresh packs: {len(report.fully_fresh_packs())}/{len(report.per_pack)}",
        f"packs >= 50% recycled: {len(report.saturated_packs())}/{len(report.per_pack)}",
    ]
    emit("s1_saturation", "\n".join(lines))

    if len(crawl.packs) >= 10:
        assert report.images_in_at_least(2) > 0, "free packs must show reuse"
        assert report.n_unique_images < len(crawl.pack_images)
        # Chronological saturation: later packs recycle earlier material,
        # so fresh packs are a minority once the corpus is big enough.
        assert len(report.fully_fresh_packs()) < len(report.per_pack)
