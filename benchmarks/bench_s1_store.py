"""S1-store — persistent store: delta-run speedup + flat size growth.

Benchmarks the watermark-delta engine of :mod:`repro.store` (DESIGN.md
§12) against its two performance gates:

* **delta speedup** — with the timeline split into ``EPOCH_TOTAL``
  equal-population epochs, the final delta epoch (≤ 10 % new records
  over the previous watermark) must complete in ≤ 40 % of the cold-run
  wall time over the same union, warm memos doing the rest;
* **flat growth** — appending that ≤ 10 % delta must grow the store
  file sub-linearly in runs, not rewrite it: relative size growth is
  capped at ``GROWTH_GATE``.

Identity is asserted alongside the clocks: the delta run's crawl
digest, quarantine ledger and measurement view must equal the cold
run's exactly (the tentpole invariant, also property-tested in
``tests/test_store_incremental.py``).

Emits ``benchmarks/results/BENCH_store.json``.

Env knobs: ``REPRO_BENCH_STORE_EPOCHS`` (default 10),
``REPRO_BENCH_STORE_RATIO`` (speedup gate, default 0.40),
``REPRO_BENCH_STORE_GROWTH`` (relative growth gate, default 0.35).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.store import RunStore, run_incremental

from _common import BENCH_SCALE, BENCH_SEED, write_result_json


EPOCH_TOTAL = int(os.environ.get("REPRO_BENCH_STORE_EPOCHS", "10"))
RATIO_GATE = float(os.environ.get("REPRO_BENCH_STORE_RATIO", "0.40"))
GROWTH_GATE = float(os.environ.get("REPRO_BENCH_STORE_GROWTH", "0.35"))
PIPELINE_SCALE = min(BENCH_SCALE, 0.02)


def _sized(store_path):
    with RunStore(store_path) as store:
        store.checkpoint_wal()
        return store.size_bytes(), store.row_counts()


def test_s1_store_delta_runs(emit, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench-store")
    cfg = dict(seed=BENCH_SEED, scale=PIPELINE_SCALE, epoch_total=EPOCH_TOTAL)

    # ---- cold run over the union (fresh store, no memos) --------------
    start = time.perf_counter()
    cold = run_incremental(tmp / "cold.sqlite", epoch=EPOCH_TOTAL, **cfg)
    t_cold = time.perf_counter() - start

    # ---- warm the incremental store up to the penultimate epoch -------
    inc_path = tmp / "inc.sqlite"
    prior = run_incremental(inc_path, epoch=EPOCH_TOTAL - 1, **cfg)
    size_before, rows_before = _sized(inc_path)

    # ---- the timed delta epoch ---------------------------------------
    start = time.perf_counter()
    delta = run_incremental(inc_path, epoch=EPOCH_TOTAL, **cfg)
    t_delta = time.perf_counter() - start
    size_after, rows_after = _sized(inc_path)

    # ---- identity: delta == cold, bit for bit ------------------------
    assert delta.crawl_digest == cold.crawl_digest
    assert [r.to_dict() for r in delta.report.quarantine.records] == [
        r.to_dict() for r in cold.report.quarantine.records
    ]
    assert delta.measurement == cold.measurement

    # ---- the gates ---------------------------------------------------
    total_rows = sum(rows_after.values())
    delta_fraction = delta.rows_added / total_rows if total_rows else 0.0
    ratio = t_delta / t_cold if t_cold > 0 else float("inf")
    growth = (size_after - size_before) / size_before if size_before else 0.0

    assert delta_fraction <= 0.10 + 1e-9, (
        f"delta epoch added {delta_fraction:.1%} of records; the gate is "
        f"calibrated for <= 10% deltas (raise EPOCH_TOTAL)"
    )

    payload = {
        "config": {
            "seed": BENCH_SEED,
            "scale": PIPELINE_SCALE,
            "epoch_total": EPOCH_TOTAL,
            "cpus": os.cpu_count() or 1,
            "numpy": np.__version__,
        },
        "seconds": {"cold": round(t_cold, 3), "delta": round(t_delta, 3)},
        "ratio_delta_vs_cold": round(ratio, 3),
        "delta_rows_added": delta.rows_added,
        "delta_fraction_of_records": round(delta_fraction, 4),
        "store_bytes": {
            "before_delta": size_before,
            "after_delta": size_after,
            "relative_growth": round(growth, 4),
        },
        "row_counts": rows_after,
        "identity": {
            "crawl_digest": cold.crawl_digest,
            "n_quarantined": len(cold.report.quarantine.records),
            "delta_equals_cold": True,
        },
        "gates": {
            "ratio": {"threshold": RATIO_GATE, "passed": bool(ratio <= RATIO_GATE)},
            "growth": {
                "threshold": GROWTH_GATE,
                "passed": bool(growth <= GROWTH_GATE),
            },
        },
    }
    write_result_json("BENCH_store", payload)

    emit(
        "BENCH_store",
        "\n".join(
            [
                f"S1-store delta runs (epochs={EPOCH_TOTAL}, "
                f"scale={PIPELINE_SCALE})",
                f"cold: {t_cold:.2f}s   delta epoch: {t_delta:.2f}s   "
                f"ratio={ratio:.2f} (gate <= {RATIO_GATE})",
                f"delta rows: {delta.rows_added} "
                f"({delta_fraction:.1%} of {total_rows})",
                f"store size: {size_before} -> {size_after} bytes "
                f"(+{growth:.1%}, gate <= {GROWTH_GATE:.0%})",
                "identity: delta digest/ledger/measurement == cold",
            ]
        ),
    )

    assert ratio <= RATIO_GATE, (
        f"delta epoch took {ratio:.1%} of the cold run "
        f"(gate <= {RATIO_GATE:.0%}): the warm memos are not paying"
    )
    assert growth <= GROWTH_GATE, (
        f"store grew {growth:.1%} on a <= 10% record delta "
        f"(gate <= {GROWTH_GATE:.0%}): appends are rewriting, not appending"
    )
