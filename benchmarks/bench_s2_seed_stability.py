"""S2 — seed stability: are the reproduced shapes seed artefacts?

Every headline ratio the reproduction reports should be a property of
the calibrated generative model, not of one lucky seed.  This benchmark
builds three small worlds under different seeds and reports the spread
of the key ratio metrics; the assertions bound that spread.
"""

import numpy as np
import pytest

from repro import build_world, run_pipeline
from repro.synth import WorldConfig

from _common import scale_note

SEEDS = (101, 202, 303)
SCALE = 0.02


@pytest.fixture(scope="module")
def reports():
    out = []
    for seed in SEEDS:
        world = build_world(WorldConfig(seed=seed, scale=SCALE))
        out.append(run_pipeline(world))
    return out


def test_s2(reports, benchmark, emit):
    def metrics_of(report):
        packs = report.provenance.summary("packs")
        previews = report.provenance.summary("previews")
        links_rate = len(report.links.threads_with_links) / max(len(report.tops), 1)
        return {
            "classifier F1": report.top_evaluation.f1,
            "TOP link rate": links_rate,
            "pack match rate": packs.match_rate,
            "preview match rate": previews.match_rate,
            "NSFV preview share": report.n_nsfv_previews / max(len(report.preview_verdicts), 1),
            "mean $/actor (k)": report.earnings.mean_per_actor_usd / 1000.0,
            "mean $/transaction": report.earnings.mean_transaction_usd(),
        }

    rows = benchmark.pedantic(
        lambda: [metrics_of(r) for r in reports], rounds=1, iterations=1
    )

    lines = [
        f"S2 — seed stability over seeds {SEEDS} at scale {SCALE} " + scale_note(),
        f"{'metric':<22}{'mean':>9}{'std':>9}{'values':>30}",
    ]
    spreads = {}
    for key in rows[0]:
        values = np.array([row[key] for row in rows])
        spreads[key] = (float(values.mean()), float(values.std()))
        lines.append(
            f"{key:<22}{values.mean():>9.3f}{values.std():>9.3f}"
            f"{'  '.join(f'{v:.3f}' for v in values):>30}"
        )
    lines.append("")
    lines.append("paper reference points: F1 0.92; link rate 0.187; pack match 0.74;")
    lines.append("preview match 0.49; NSFV share 0.60; $0.774k/actor; $41.90/tx")
    emit("s2_seed_stability", "\n".join(lines))

    # Shape invariants must hold under EVERY seed, not on average.
    for report in reports:
        packs = report.provenance.summary("packs")
        previews = report.provenance.summary("previews")
        assert packs.match_rate > previews.match_rate
        assert report.top_evaluation.f1 > 0.75
        assert 0.05 < len(report.links.threads_with_links) / max(len(report.tops), 1) < 0.45
        assert 15 < report.earnings.mean_transaction_usd() < 110
    # And the cross-seed spread on the headline ratios stays bounded.
    assert spreads["pack match rate"][1] < 0.15
    assert spreads["mean $/transaction"][1] < 25.0
