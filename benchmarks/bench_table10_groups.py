"""T10 — Table 10: characteristics of key actors, aggregated by group.

Paper (group means): popular actors post most overall (1 089.9) and
share the most packs (9.6); earners report the highest amounts (512.1);
CE actors dominate currency-exchange threads (105.4) with the lowest
eWhoring share (9.5%).  Shape: each group leads on its own defining
metric.
"""

from _common import scale_note

PAPER = {
    "P": (1089.9, 30.0, 246.2, 189.9, 11.7, 14.4, 2.5, 9.6, 26.6),
    "I": (895.3, 49.2, 186.2, 170.3, 10.8, 12.3, 1.8, 5.6, 19.5),
    "Hi": (856.2, 33.9, 222.4, 328.9, 12.3, 14.9, 1.8, 5.8, 28.6),
    "$": (532.3, 44.4, 103.6, 512.1, 8.0, 8.0, 1.0, 4.1, 10.4),
    "Ce": (275.3, 9.5, 150.1, 185.9, 6.8, 6.2, 0.2, 2.3, 105.4),
    "ALL": (481.4, 37.9, 127.0, 449.0, 8.1, 8.0, 0.9, 4.2, 19.5),
}
# Paper label → our group key.
LABELS = {"packs": "P", "influence": "I", "popular": "Hi", "earnings": "$", "ce": "Ce",
          "ALL": "ALL"}

COLUMNS = ("n_posts", "pct_ewhoring", "days_before", "amount",
           "h_index", "i10", "i100", "packs", "ce_threads")


def test_table10(bench_world, bench_report, benchmark, emit):
    selection = bench_report.key_actors

    table = benchmark(selection.group_characteristics)

    lines = [
        "Table 10 — key-actor characteristics by group " + scale_note(),
        f"{'group':<10}" + "".join(f"{c:>12}" for c in COLUMNS),
    ]
    for group, row in table.items():
        if not row:
            continue
        label = LABELS.get(group, group)
        lines.append(
            f"{group:<10}" + "".join(f"{row[c]:>12.1f}" for c in COLUMNS)
        )
        paper = PAPER.get(label)
        if paper:
            lines.append(
                f"  paper({label:<3})" + "".join(f"{v:>12.1f}" for v in paper)
            )
    emit("table10_groups", "\n".join(lines))

    # Shape assertions: each group leads on its defining metric.
    rows = {k: v for k, v in table.items() if v}
    if {"packs", "earnings", "ce", "popular"} <= set(rows):
        others_max = max(v["packs"] for k, v in rows.items() if k not in ("packs", "ALL"))
        assert rows["packs"]["packs"] >= others_max
        others_max = max(v["amount"] for k, v in rows.items() if k not in ("earnings", "ALL"))
        assert rows["earnings"]["amount"] >= others_max
        # CE actors out-trade every non-sharing group (pack sharers also
        # cash out heavily, as the paper's Table 10 shows: P group 26.6).
        for other in ("popular", "influence", "earnings"):
            assert rows["ce"]["ce_threads"] >= rows[other]["ce_threads"] - 1e-9
        assert rows["popular"]["h_index"] >= rows["earnings"]["h_index"] - 1e-9
        assert rows["popular"]["h_index"] >= rows["ce"]["h_index"] - 1e-9
