"""T1 — Table 1: eWhoring threads, posts, TOPs and actors per forum.

Paper (full scale): Hackforums 42 292 threads / 596 827 posts / 4 027
TOPs / 64 035 actors, down to four small forums with ≤6 threads each;
44 520 threads, 626 784 posts, 4 137 TOPs, 72 982 actors in total.  The
benchmark world scales every population by BENCH_SCALE, so the check is
the *shape*: forum ordering, Hackforums dominance, zero TOPs on
BlackHatWorld.
"""

from repro.forum import ewhoring_threads, forum_summaries

from _common import scale_note

#: Paper row order (Table 1), for side-by-side presentation.
PAPER_ROWS = {
    "Hackforums": (42_292, 596_827, 4_027, 64_035),
    "OGUsers": (1_744, 23_974, 76, 5_586),
    "BlackHatWorld": (258, 2_694, 0, 1_420),
    "V3rmillion": (95, 1_348, 6, 697),
    "MPGH": (62, 922, 12, 341),
    "RaidForums": (48, 405, 10, 318),
}


def test_table1(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset

    summaries = benchmark(lambda: forum_summaries(dataset))

    tops_per_forum = bench_report.tops_per_forum
    lines = [
        "Table 1 — eWhoring-related conversations per forum " + scale_note(),
        f"{'Forum':<16}{'#Threads':>10}{'#Posts':>10}{'First':>8}{'#TOPs':>8}{'#Actors':>9}"
        f"   | paper (full scale): threads/posts/TOPs/actors",
    ]
    for summary in summaries:
        paper = PAPER_ROWS.get(summary.forum_name)
        paper_str = (
            f"{paper[0]:>7}/{paper[1]:>7}/{paper[2]:>5}/{paper[3]:>6}"
            if paper
            else "(aggregated as 'Others' in the paper)"
        )
        lines.append(
            f"{summary.forum_name:<16}{summary.n_threads:>10}{summary.n_posts:>10}"
            f"{summary.first_post or '-':>8}{tops_per_forum.get(summary.forum_name, 0):>8}"
            f"{summary.n_actors:>9}   | {paper_str}"
        )
    total_threads = sum(s.n_threads for s in summaries)
    total_posts = sum(s.n_posts for s in summaries)
    total_actors = sum(s.n_actors for s in summaries)
    lines.append(
        f"{'TOTAL':<16}{total_threads:>10}{total_posts:>10}{'':>8}"
        f"{sum(tops_per_forum.values()):>8}{total_actors:>9}"
        f"   | {44_520:>7}/{626_784:>7}/{4_137:>5}/{72_982:>6}"
    )
    emit("table1_forums", "\n".join(lines))

    # Shape assertions: forum ordering and the BHW moderation effect.
    names = [s.forum_name for s in summaries]
    assert names[0] == "Hackforums"
    assert summaries[0].n_threads > 10 * summaries[1].n_threads
    assert tops_per_forum.get("BlackHatWorld", 0) <= 1
