"""T2 — Table 2: methodology keyword lexicons and their coverage.

Table 2 is the methodology's keyword inventory.  The reproduction prints
each lexicon verbatim and measures its *coverage*: how often each
lexicon fires on the ground-truth thread class it was designed for
(e.g. pack keywords on true TOP headings) versus on other classes —
the signal-to-noise the classifiers build on.
"""

from repro.core import (
    EARNINGS_KEYWORDS,
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    TUTORIAL_KEYWORDS,
)

from _common import scale_note

LEXICON_TARGETS = [
    (PACK_KEYWORDS, "top"),
    (REQUEST_KEYWORDS, "request"),
    (TUTORIAL_KEYWORDS, "tutorial"),
]


def coverage(bench_world):
    dataset = bench_world.dataset
    types = bench_world.forums.thread_types
    rows = []
    headings_by_type = {}
    for thread in dataset.threads():
        headings_by_type.setdefault(types[thread.thread_id], []).append(thread.heading)
    for lexicon, target in LEXICON_TARGETS:
        on_target = headings_by_type.get(target, [])
        off_target = [
            h for t, hs in headings_by_type.items() if t not in (target, "other", "ce")
            for h in hs
        ]
        hit_on = sum(1 for h in on_target if lexicon.matches(h))
        hit_off = sum(1 for h in off_target if lexicon.matches(h))
        rows.append(
            (
                lexicon.name,
                len(lexicon),
                hit_on / max(len(on_target), 1),
                hit_off / max(len(off_target), 1),
            )
        )
    return rows


def test_table2(bench_world, benchmark, emit):
    rows = benchmark(coverage, bench_world)

    lines = [
        "Table 2 — methodology keywords " + scale_note(),
        "",
        f"eWhoring selection: {', '.join(EWHORING_KEYWORDS.entries)}",
        f"TOP keywords ({len(PACK_KEYWORDS)}): {', '.join(PACK_KEYWORDS.entries)}",
        f"Request keywords ({len(REQUEST_KEYWORDS)}): {', '.join(REQUEST_KEYWORDS.entries)}",
        f"Tutorial keywords ({len(TUTORIAL_KEYWORDS)}): {', '.join(TUTORIAL_KEYWORDS.entries)}",
        f"Earnings keywords ({len(EARNINGS_KEYWORDS)}): {', '.join(EARNINGS_KEYWORDS.entries)}",
        "",
        "Lexicon coverage on ground-truth thread classes:",
        f"{'lexicon':<12}{'#entries':>9}{'on-target hit rate':>20}{'off-target hit rate':>21}",
    ]
    for name, n, on_rate, off_rate in rows:
        lines.append(f"{name:<12}{n:>9}{on_rate:>20.2%}{off_rate:>21.2%}")
    emit("table2_keywords", "\n".join(lines))

    by_name = {name: (on, off) for name, _, on, off in rows}
    # Each lexicon must fire far more often on its target class.
    for name, (on_rate, off_rate) in by_name.items():
        assert on_rate > 2 * off_rate, name
