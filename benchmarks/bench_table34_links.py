"""T3/T4 — Tables 3 and 4: links per image-sharing site / cloud service.

Paper (full scale): 7 314 image-sharing links led by imgur (3 297),
Gyazo (1 006), ImageShack (679); 1 719 cloud links led by MediaFire
(892), mega (284), Dropbox (130).  The shape to reproduce is the ranking
and the rough proportions.
"""

from repro.core import extract_links
from repro.web import ServiceKind

from _common import scale_note

PAPER_T3 = [("imgur", 3297), ("Gyazo", 1006), ("ImageShack", 679), ("prnt", 383),
            ("photobucket", 311)]
PAPER_T4 = [("MediaFire", 892), ("mega", 284), ("Dropbox", 130), ("oron", 95),
            ("depositfiles", 46)]


def test_tables_3_and_4(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset
    tops = bench_report.tops

    extraction = benchmark.pedantic(
        lambda: extract_links(dataset, tops), rounds=3, iterations=1
    )

    def table(kind, paper_rows, total_paper):
        counts = extraction.links_per_domain(kind)
        total = sum(counts.values())
        lines = [
            f"{'Site':<22}{'#Links':>8}{'share':>8}   | paper share",
            ]
        paper_share = {name.lower(): count / total_paper for name, count in paper_rows}
        for domain, count in sorted(counts.items(), key=lambda kv: -kv[1])[:12]:
            name = domain.split(".")[0]
            reference = paper_share.get(name.lower())
            ref = f"{reference:.1%}" if reference is not None else "-"
            lines.append(f"{domain:<22}{count:>8}{count / total:>8.1%}   | {ref}")
        lines.append(f"{'Total':<22}{total:>8}")
        return lines, counts, total

    t3_lines, t3_counts, t3_total = table(ServiceKind.IMAGE_SHARING, PAPER_T3, 7314)
    t4_lines, t4_counts, t4_total = table(ServiceKind.CLOUD_STORAGE, PAPER_T4, 1719)

    emit(
        "table34_links",
        "\n".join(
            ["Table 3 — links per image sharing site " + scale_note()]
            + t3_lines
            + ["", "Table 4 — links per cloud storage service"]
            + t4_lines
        ),
    )

    # Shape: the paper's leaders lead here too, and image-sharing links
    # outnumber cloud links by roughly 4:1 (7 314 vs 1 719).
    if t3_counts:
        assert max(t3_counts, key=t3_counts.get) == "imgur.com"
    if t4_total >= 20:
        assert max(t4_counts, key=t4_counts.get) == "mediafire.com"
    assert 2.0 < t3_total / max(t4_total, 1) < 9.0
