"""T5 — Table 5: reverse image search matches and seen-before analysis.

Paper: packs — 3 621 queried, 74% matched, 55.5% seen before, mean 12.7
matches per matched image (max 642); previews — 3 435 queried, 49%
matched, 39% seen before, mean 17.3 (max 1 969).  The shape to hold:
packs match substantially more often than previews (preview
modifications defeat the matcher), seen-before below the match rate,
double-digit mean match counts with a long tail.
"""

from repro.vision import robust_hash

from _common import scale_note

PAPER = {
    "packs": (3621, 0.74, 0.5554, 12.7, 642),
    "previews": (3435, 0.49, 0.3901, 17.3, 1969),
}


def test_table5(bench_world, bench_report, benchmark, emit):
    provenance = bench_report.provenance

    # Benchmark the reverse-search kernel on the queried pack images.
    index = bench_world.reverse_index
    hashes = [outcome for outcome in provenance.pack_outcomes]

    def search_all():
        return [index.search_hash(h) for h in _query_hashes]

    _query_hashes = [
        robust_hash(c.image.pixels)
        for c in bench_report.crawl.pack_images[:30]
    ]
    benchmark.pedantic(search_all, rounds=3, iterations=1)

    lines = [
        "Table 5 — reverse image search results " + scale_note(),
        f"{'group':<10}{'Total':>7}{'Matches':>9}{'Seen Before':>13}{'Ratio':>7}{'Max':>6}"
        "   | paper: total/match%/seen%/ratio/max",
    ]
    for group in ("packs", "previews"):
        summary = provenance.summary(group)
        p_total, p_match, p_seen, p_ratio, p_max = PAPER[group]
        lines.append(
            f"{group:<10}{summary.total:>7}{summary.matches:>6} ({summary.match_rate:.0%})"
            f"{summary.seen_before:>8} ({summary.seen_before_rate:.0%})"
            f"{summary.mean_matches_per_matched:>7.1f}{summary.max_matches:>6}"
            f"   | {p_total}/{p_match:.0%}/{p_seen:.0%}/{p_ratio}/{p_max}"
        )
    zero = len(provenance.zero_match_pack_ids)
    n_packs = len(bench_report.crawl.packs)
    lines.append(
        f"zero-match packs: {zero}/{n_packs} ({zero / max(n_packs, 1):.0%}; paper 203/1255 = 16%)"
    )
    lines.append(f"distinct matched domains: {len(provenance.matched_domains)} (paper 5 917)")
    emit("table5_reverse", "\n".join(lines))

    packs = provenance.summary("packs")
    previews = provenance.summary("previews")
    assert packs.match_rate > previews.match_rate  # the headline contrast
    assert packs.seen_before_rate < packs.match_rate
    assert previews.seen_before_rate < previews.match_rate
    if packs.matches >= 20:
        assert packs.mean_matches_per_matched > 4.0
