"""T6 — Table 6: top categories of provenance domains, per classifier.

Paper: the distribution has a long tail (4–5 categories cover >50% of
tags) and is porn-led for all three services — McAfee: Pornography
28.75% of tags; VirusTotal: adult content / porn / sex ≈ 42.6%
cumulative; OpenDNS: Pornography + no_result + Nudity ≈ 68% cumulative
with ~22% no_result.  The shape to hold: porn-related tags lead, OpenDNS
has far more no_result, long tails everywhere.
"""

from repro.domains import NO_RESULT, tag_distribution

from _common import scale_note


def test_table6(bench_world, bench_report, benchmark, emit):
    provenance = bench_report.provenance
    domains = provenance.matched_domains
    lookup = bench_world.domain_categories.get
    classifiers = {c.name: c for c in __import__(
        "repro.domains", fromlist=["default_classifiers"]
    ).default_classifiers(seed=0)}

    def classify_all():
        return {
            name: [clf.classify(d, lookup(d)) for d in domains]
            for name, clf in classifiers.items()
        }

    verdicts = benchmark.pedantic(classify_all, rounds=2, iterations=1)

    lines = [f"Table 6 — domain categories over {len(domains)} matched domains "
             + scale_note()]
    porn_leads = {}
    no_result_rates = {}
    for name, results in verdicts.items():
        rows = tag_distribution(results)
        lines.append("")
        lines.append(f"{name} (top 10 of {len(rows)} tags):")
        lines.append(f"  {'category':<32}{'#tags':>7}{'cum %':>8}")
        for tag, count, cumulative in rows[:10]:
            lines.append(f"  {tag:<32}{count:>7}{cumulative:>8.2f}")
        total_tags = sum(c for _, c, _ in rows)
        top_tag = rows[0][0] if rows else "-"
        porn_leads[name] = top_tag
        no_result = next((c for t, c, _ in rows if t == NO_RESULT), 0)
        no_result_rates[name] = no_result / max(total_tags, 1)
    lines.append("")
    lines.append(
        "no_result share per classifier: "
        + ", ".join(f"{k}={v:.1%}" for k, v in no_result_rates.items())
        + "  (paper: OpenDNS 22%, others ~6%)"
    )
    emit("table6_domains", "\n".join(lines))

    if len(domains) >= 50:
        porn_tags = {"Pornography", "adult content", "porn", "sex", "Nudity", NO_RESULT}
        for name, top in porn_leads.items():
            assert top in porn_tags, (name, top)
        assert no_result_rates["OpenDNS"] > 2 * no_result_rates["McAfee"]
