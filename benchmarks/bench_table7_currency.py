"""T7 — Table 7: Currency Exchange threads of heavy eWhoring actors.

Paper (9 066 threads by 686 actors): offered — PayPal 3 707, BTC 2 763,
AGC 1 498, ? 839, others 259; wanted — BTC 4 626, PayPal 2 801, ? 1 128,
AGC 310, others 201.  Shape: BTC is the most *wanted* currency while AGC
is offered ~5× more than it is wanted (profits flow AGC/PayPal → BTC).
"""

from repro.core import currency_exchange_table
from repro.finance import CANONICAL_CURRENCIES

from _common import scale_note

PAPER_OFFERED = {"PayPal": 3707, "BTC": 2763, "AGC": 1498, "?": 839, "others": 259}
PAPER_WANTED = {"PayPal": 2801, "BTC": 4626, "AGC": 310, "?": 1128, "others": 201}


def test_table7(bench_world, bench_report, benchmark, emit):
    dataset = bench_world.dataset

    table = benchmark.pedantic(
        lambda: currency_exchange_table(dataset, min_ewhoring_posts=50),
        rounds=3,
        iterations=1,
    )

    lines = [
        "Table 7 — currency exchange by actors with >50 eWhoring posts "
        + scale_note(),
        f"threads={table.n_threads} actors={table.n_actors} "
        f"(paper: 9 066 threads, 686 actors)",
        f"{'Currency':<10}{'Offered':>9}{'Wanted':>9}   | paper offered/wanted",
    ]
    for currency in CANONICAL_CURRENCIES:
        lines.append(
            f"{currency:<10}{table.offered.get(currency, 0):>9}"
            f"{table.wanted.get(currency, 0):>9}"
            f"   | {PAPER_OFFERED.get(currency, 0)}/{PAPER_WANTED.get(currency, 0)}"
        )
    emit("table7_currency", "\n".join(lines))

    if table.n_threads >= 50:
        assert table.wanted.get("BTC", 0) == max(table.wanted.values())
        assert table.offered.get("AGC", 0) > 2 * table.wanted.get("AGC", 1)
        assert table.offered.get("PayPal", 0) > table.offered.get("AGC", 0)
