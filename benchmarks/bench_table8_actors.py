"""T8 — Table 8: actor cohorts by eWhoring post count.

Paper (full scale): ≥1 post: 72 982 actors, mean 8.8 posts, 23.3%
eWhoring share, 165.3 days before / 474.2 after; shrinking to 13 actors
at ≥1000 posts with 412.6 days before.  Shape: cohort sizes fall steeply,
mean posts rise, the eWhoring share grows with involvement, and the
days-after column declines as actors specialise.
"""

from repro.core import ActorAnalyzer, cohort_table

from _common import scale_note

PAPER_ROWS = {
    1: (72_982, 8.8, 23.3, 165.3, 474.2),
    10: (13_014, 37.6, 22.8, 142.7, 449.7),
    50: (2_146, 126.9, 26.0, 133.8, 293.8),
    100: (815, 222.4, 29.1, 132.8, 210.1),
    200: (263, 402.3, 34.9, 153.6, 165.7),
    500: (46, 930.8, 40.6, 157.4, 157.8),
    1000: (13, 1566.8, 37.5, 412.6, 137.3),
}


def test_table8(bench_world, bench_report, benchmark, emit):
    metrics = bench_report.actor_analyzer.metrics()

    rows = benchmark(lambda: cohort_table(metrics))

    lines = [
        "Table 8 — actors by eWhoring post count " + scale_note(),
        f"{'#Posts':>8}{'#Actors':>9}{'Avg posts':>11}{'%ewhor':>8}{'Before':>8}{'After':>8}"
        "   | paper: actors/avg/%/before/after",
    ]
    for row in rows:
        paper = PAPER_ROWS[row.threshold]
        lines.append(
            f">= {row.threshold:<5}{row.n_actors:>9}{row.mean_posts:>11.1f}"
            f"{row.mean_pct_ewhoring:>8.1f}{row.mean_days_before:>8.1f}"
            f"{row.mean_days_after:>8.1f}"
            f"   | {paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}/{paper[4]}"
        )
    emit("table8_actors", "\n".join(lines))

    nonempty = [r for r in rows if r.n_actors > 0]
    counts = [r.n_actors for r in nonempty]
    assert counts == sorted(counts, reverse=True)
    means = [r.mean_posts for r in nonempty]
    assert means == sorted(means)
    # Band-size ratio ≥1 : ≥10 tracks the paper's 72 982 : 13 014 ≈ 5.6.
    if len(nonempty) >= 2:
        ratio = nonempty[0].n_actors / nonempty[1].n_actors
        assert 3.0 < ratio < 10.0
