"""T9 — Table 9: key-actor group intersections.

Paper: 195 key actors across five top-50 groups; the diagonal counts
actors unique to one group, the largest pairwise overlap is popular ∩
influencing (26), and 20 pack sharers are also popular.  Shape: the
popular/influence pair overlaps most, every group retains unique
members, and multi-group membership exists.
"""

from repro.core import select_key_actors
from repro.core.actors import KEY_ACTOR_CATEGORIES

from _common import scale_note

PAPER = {
    ("popular", "popular"): 11, ("popular", "influence"): 26,
    ("popular", "earnings"): 10, ("popular", "ce"): 6, ("popular", "packs"): 20,
    ("influence", "influence"): 19, ("influence", "earnings"): 8,
    ("influence", "ce"): 4, ("influence", "packs"): 16,
    ("earnings", "earnings"): 37, ("earnings", "ce"): 0, ("earnings", "packs"): 5,
    ("ce", "ce"): 44, ("ce", "packs"): 1,
    ("packs", "packs"): 40,
}


def test_table9(bench_world, bench_report, benchmark, emit):
    metrics = bench_report.actor_analyzer.metrics()

    selection = benchmark(lambda: select_key_actors(metrics))

    matrix = selection.intersection_matrix()
    lines = [
        "Table 9 — key-actor group intersections " + scale_note(),
        f"total key actors: {selection.n_key_actors} (paper: 195)",
        f"{'':<12}" + "".join(f"{c:>11}" for c in KEY_ACTOR_CATEGORIES),
    ]
    for i, row_name in enumerate(KEY_ACTOR_CATEGORIES):
        cells = []
        for j, col_name in enumerate(KEY_ACTOR_CATEGORIES):
            if j < i:
                cells.append(f"{'-':>11}")
            else:
                value = matrix[(row_name, col_name)]
                paper = PAPER.get((row_name, col_name), "")
                cells.append(f"{value:>6}({paper:>2})")
        lines.append(f"{row_name:<12}" + "".join(cells))
    lines.append("(cells: measured(paper); diagonal = actors unique to the group)")

    counts = selection.membership_counts()
    multi = sum(1 for v in counts.values() if v >= 2)
    lines.append(f"actors in >=2 groups: {multi} (paper: 44)")
    emit("table9_keyactors", "\n".join(lines))

    groups = selection.groups.as_dict()
    if all(len(g) >= 10 for g in groups.values()):
        # Popular ∩ influence is the dominant overlap, as in the paper.
        pop_inf = matrix[("popular", "influence")]
        assert pop_inf >= matrix[("popular", "ce")]
        assert pop_inf >= matrix[("influence", "ce")]
        assert multi >= 1
