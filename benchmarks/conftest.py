"""Shared benchmark fixtures: one world + one pipeline run per session.

Benchmarks regenerate every table and figure of the paper from a seeded
synthetic world.  The default scale (0.05 of the paper's population
sizes) keeps a full benchmark run in the minutes range; set
``REPRO_BENCH_SCALE`` to 1.0 for a paper-sized world.

Each benchmark writes its reproduced table to ``benchmarks/results/``
and prints it (visible with ``pytest -s``), while the pytest-benchmark
fixture times the stage's core computation.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import build_world, run_pipeline
from repro.synth import WorldConfig

from _common import BENCH_SCALE, BENCH_SEED, scale_note  # noqa: F401

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_world():
    """The benchmark world (Table 1 populations × BENCH_SCALE)."""
    return build_world(WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_report(bench_world):
    """One full pipeline run over the benchmark world."""
    return run_pipeline(bench_world)


@pytest.fixture(scope="session")
def emit():
    """Callable writing a named result table to disk and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{text}")

    return _emit
