"""Shared benchmark fixtures: one world + one pipeline run per session.

Benchmarks regenerate every table and figure of the paper from a seeded
synthetic world.  The default scale (0.05 of the paper's population
sizes) keeps a full benchmark run in the minutes range; set
``REPRO_BENCH_SCALE`` to 1.0 for a paper-sized world.

Each benchmark writes its reproduced table to ``benchmarks/results/``
and prints it (visible with ``pytest -s``), while the pytest-benchmark
fixture times the stage's core computation.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import build_world, run_pipeline
from repro.synth import WorldConfig

from _common import (  # noqa: F401
    BENCH_SCALE,
    BENCH_SEED,
    scale_note,
    write_result_text,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_world():
    """The benchmark world (Table 1 populations × BENCH_SCALE)."""
    return build_world(WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_report(bench_world):
    """One full pipeline run over the benchmark world."""
    return run_pipeline(bench_world)


@pytest.fixture(scope="session")
def emit():
    """Callable writing a named result table to disk and stdout."""
    def _emit(name: str, text: str) -> None:
        write_result_text(name, text)
        print(f"\n=== {name} ===\n{text}")

    return _emit
