#!/usr/bin/env python3
"""Actor study (§6): who does eWhoring, and what else do they do?

Builds the interaction network, computes popularity indices and
eigenvector centrality, selects the five key-actor groups, and traces
the interest shift of Figure 5.

Run:  python examples/actor_study.py
"""

from repro import build_world
from repro.core import (
    ActorAnalyzer,
    cohort_table,
    interest_evolution,
    select_key_actors,
)


def main() -> None:
    import sys

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    world = build_world(seed=5, scale=scale)
    dataset = world.dataset

    analyzer = ActorAnalyzer(dataset)
    metrics = analyzer.metrics()
    analyzer.attach_currency_exchange()

    print(f"interaction graph: {len(metrics)} actors, {len(analyzer.edges())} edges")

    # Table 8: activity cohorts.
    print("\nactivity cohorts (Table 8):")
    print(f"  {'#posts':>8}{'actors':>8}{'avg':>8}{'%ewh':>7}{'before':>8}{'after':>8}")
    for row in cohort_table(metrics):
        if row.n_actors == 0:
            continue
        print(f"  >= {row.threshold:<5}{row.n_actors:>8}{row.mean_posts:>8.1f}"
              f"{row.mean_pct_ewhoring:>7.1f}{row.mean_days_before:>8.0f}"
              f"{row.mean_days_after:>8.0f}")

    # Key actors: attach pack counts from ground truth TOP authorship for
    # this standalone example (the full pipeline derives them from the
    # classifier's TOP set).
    packs_per_actor: dict = {}
    for thread_id, thread_type in world.forums.thread_types.items():
        if thread_type == "top":
            author = dataset.thread(thread_id).author_id
            packs_per_actor[author] = packs_per_actor.get(author, 0) + 1
    analyzer.attach_packs(packs_per_actor)

    selection = select_key_actors(metrics, top_n=15)
    print(f"\nkey actors: {selection.n_key_actors} across 5 groups")
    for name, group in selection.groups.as_dict().items():
        members = [metrics[a] for a in group]
        if not members:
            continue
        mean_posts = sum(m.n_ewhoring_posts for m in members) / len(members)
        print(f"  {name:<10} n={len(group):<4} mean eWhoring posts={mean_posts:.0f}")

    counts = selection.membership_counts()
    multi = sum(1 for v in counts.values() if v >= 2)
    print(f"  actors in 2+ groups: {multi}")

    # Figure 5: interests before/during/after.
    evolution = interest_evolution(dataset, metrics, selection.groups.all_key_actors())
    print("\ninterest evolution of key actors (Figure 5):")
    pct = evolution.percentages()
    categories = sorted({c for row in pct.values() for c in row})
    print(f"  {'category':<10}" + "".join(f"{p:>9}" for p in ("before", "during", "after")))
    for category in categories:
        print(f"  {category:<10}"
              + "".join(f"{pct[phase].get(category, 0):>8.1f}%" for phase in ("before", "during", "after")))


if __name__ == "__main__":
    main()
