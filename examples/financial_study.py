#!/usr/bin/env python3
"""Financial study (§5): how much does eWhoring pay, and through what?

Runs the proof-of-earnings pipeline and the Currency Exchange analysis,
then prints the Figure 2 / Figure 3 / Table 7 views as text.

Run:  python examples/financial_study.py
"""

from collections import defaultdict

import numpy as np

from repro import build_world
from repro.core import EarningsAnalyzer, currency_exchange_table
from repro.finance import CANONICAL_CURRENCIES, PaymentPlatform


def ascii_bar(value: float, maximum: float, width: int = 30) -> str:
    filled = int(round(width * value / maximum)) if maximum else 0
    return "#" * filled


def main() -> None:
    import sys

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    world = build_world(seed=41, scale=scale)
    analyzer = EarningsAnalyzer(
        world.dataset,
        world.internet,
        world.hashlist,
        annotator=world.forums.proof_truth.get,
    )
    result = analyzer.analyze()

    print("funnel:", f"{result.n_threads_matched} threads ->",
          f"{result.n_posts_with_links} posts ->",
          f"{result.n_unique_urls} URLs ->",
          f"{result.n_downloaded} downloads ->",
          f"{result.n_proofs} proofs (+{result.n_non_proofs} non-proofs,",
          f"{result.n_indecent_filtered} indecent filtered)")

    totals = result.per_actor_totals()
    print(f"\n{len(totals)} actors reported ${result.total_usd:,.0f} total; "
          f"mean ${result.mean_per_actor_usd:,.0f}, "
          f"top ${max(totals.values(), default=0):,.0f}")
    print(f"mean itemised transaction: ${result.mean_transaction_usd():.2f}")

    # Figure 2 (left): earnings CDF.
    cdf = result.earnings_cdf()
    print("\nearnings CDF (share of actors at or below):")
    for threshold in (100, 500, 1000, 5000):
        share = float(np.mean(cdf <= threshold)) if cdf.size else 0.0
        print(f"  ${threshold:>5}: {share:6.1%} {ascii_bar(share, 1.0)}")

    # Figure 3: platform evolution by year.
    platforms = (PaymentPlatform.AMAZON_GIFT_CARD, PaymentPlatform.PAYPAL)
    series = result.monthly_platform_series(platforms)
    yearly = {p: defaultdict(int) for p in platforms}
    for platform, months in series.items():
        for month, count in months.items():
            yearly[platform][month[:4]] += count
    years = sorted(set(yearly[platforms[0]]) | set(yearly[platforms[1]]))
    print("\nproofs per platform per year (Figure 3):")
    peak = max((max(d.values(), default=1) for d in yearly.values()), default=1)
    for year in years:
        agc = yearly[platforms[0]].get(year, 0)
        paypal = yearly[platforms[1]].get(year, 0)
        print(f"  {year}  AGC {agc:>3} {ascii_bar(agc, peak, 20):<20} "
              f"PayPal {paypal:>3} {ascii_bar(paypal, peak, 20)}")

    # Table 7: currency exchange.
    table = currency_exchange_table(world.dataset, min_ewhoring_posts=50)
    print(f"\nCurrency Exchange ({table.n_threads} threads by {table.n_actors} "
          "heavy eWhoring actors):")
    print(f"  {'currency':<9}{'offered':>9}{'wanted':>9}")
    for currency in CANONICAL_CURRENCIES:
        print(f"  {currency:<9}{table.offered.get(currency, 0):>9}"
              f"{table.wanted.get(currency, 0):>9}")
    print("  (profits flow: AGC/PayPal offered, Bitcoin wanted)")


if __name__ == "__main__":
    main()
