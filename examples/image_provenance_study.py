#!/usr/bin/env python3
"""Image-provenance study (§4): where do the pack images come from?

Demonstrates the à-la-carte use of the pipeline stages, rather than the
one-shot ``run_pipeline``: manually train the TOP classifier, extract
and crawl links, then reverse-search the images and categorise the
provenance domains — the workflow a researcher adapting the pipeline to
a new forum dataset would follow.

Run:  python examples/image_provenance_study.py
"""

import numpy as np

from repro import build_world
from repro.core import (
    AbuseFilter,
    HybridTopClassifier,
    NsfvClassifier,
    ProvenanceAnalyzer,
    extract_links,
)
from repro.domains import default_classifiers
from repro.forum import ewhoring_threads
from repro.web import Crawler, ServiceKind


def main() -> None:
    import sys

    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    world = build_world(seed=23, scale=scale)
    dataset = world.dataset
    truth = world.forums.thread_types

    # --- stage 1: train on an annotated sample, then extract ----------
    selection = ewhoring_threads(dataset)
    rng = np.random.default_rng(0)
    sample_idx = rng.choice(len(selection), size=min(800, len(selection)), replace=False)
    annotated = [selection[int(i)] for i in sample_idx]
    labels = [truth.get(t.thread_id) == "top" for t in annotated]

    classifier = HybridTopClassifier()
    classifier.fit(dataset, annotated, labels)
    tops, stats = classifier.extract_tops(dataset, selection)
    print(f"TOPs: {stats.n_hybrid} (ML {stats.n_ml} ∪ heuristics {stats.n_heuristic})")

    # --- stage 2: URLs and crawling ------------------------------------
    links = extract_links(dataset, tops)
    print(f"links: {len(links.preview_links)} preview + {len(links.pack_links)} pack "
          f"from {len(links.threads_with_links)} threads")
    for kind, label in ((ServiceKind.IMAGE_SHARING, "image sharing"),
                        (ServiceKind.CLOUD_STORAGE, "cloud storage")):
        top3 = sorted(links.links_per_domain(kind).items(), key=lambda kv: -kv[1])[:3]
        print(f"  top {label}: " + ", ".join(f"{d} ({n})" for d, n in top3))

    crawl = Crawler(world.internet).crawl(links.all_links)
    print(f"downloaded {len(crawl.preview_images)} previews and "
          f"{len(crawl.packs)} packs ({len(crawl.pack_images)} images, "
          f"{crawl.n_unique_files} unique)")

    # --- stage 3: safety first ------------------------------------------
    abuse = AbuseFilter(world.hashlist, reverse_index=world.reverse_index).sweep(
        crawl.all_images, dataset=dataset
    )
    print(f"hashlist matches removed: {abuse.n_matched_images}")
    clean_packs = [c for c in crawl.pack_images if abuse.is_clean(c)]
    clean_previews = [c for c in crawl.preview_images if abuse.is_clean(c)]

    # --- stage 4: NSFV gate ----------------------------------------------
    nsfv = NsfvClassifier()
    nsfv_previews = [c for c in clean_previews if not nsfv.is_sfv(c.image.pixels)]
    print(f"NSFV previews: {len(nsfv_previews)}/{len(clean_previews)}")

    # --- stage 5: reverse search + domain categories ----------------------
    analyzer = ProvenanceAnalyzer(
        world.reverse_index,
        archive=world.archive,
        classifiers=default_classifiers(seed=0),
        category_lookup=world.domain_categories.get,
    )
    result = analyzer.analyze(clean_packs, nsfv_previews)
    for group in ("packs", "previews"):
        summary = result.summary(group)
        print(f"{group}: matched {summary.match_rate:.0%}, "
              f"seen-before {summary.seen_before_rate:.0%}, "
              f"mean {summary.mean_matches_per_matched:.1f} matches (max {summary.max_matches})")
    print(f"zero-match packs: {len(result.zero_match_pack_ids)}/{len(crawl.packs)}")

    print(f"\nprovenance domains ({len(result.matched_domains)}), McAfee-analogue top 5:")
    for tag, count, cumulative in result.domain_tables["McAfee"][:5]:
        print(f"  {tag:<28}{count:>5}  (cum {cumulative:.1f}%)")


if __name__ == "__main__":
    main()
