#!/usr/bin/env python3
"""Quickstart: build a synthetic world and run the full measurement.

Builds a small seeded world (2% of the paper's population sizes), runs
all five pipeline stages plus the §5/§6 analyses, and prints the
headline numbers next to the paper's full-scale values.

Run:  python examples/quickstart.py [scale]
"""

import sys
import time

from repro import build_world, run_pipeline


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Building synthetic world (seed=7, scale={scale}) ...")
    start = time.time()
    world = build_world(seed=7, scale=scale)
    print(f"  {world.dataset} in {time.time() - start:.1f}s")
    print(f"  reverse-search index: {world.reverse_index.n_indexed:,} copies; "
          f"hashlist: {world.hashlist.n_entries} entries")

    print("\nRunning the measurement pipeline ...")
    start = time.time()
    report = run_pipeline(world)
    print(f"  done in {time.time() - start:.1f}s\n")

    evaluation = report.top_evaluation
    print("Stage 1 — TOP extraction (§4.1)")
    print(f"  hybrid classifier: P={evaluation.precision:.0%} R={evaluation.recall:.0%} "
          "(paper: 92%/93%)")
    print(f"  TOPs extracted: {report.extraction_stats.n_hybrid} "
          f"(ML {report.extraction_stats.n_ml}, heuristics "
          f"{report.extraction_stats.n_heuristic}, both {report.extraction_stats.n_both})")

    print("\nStage 2 — crawl (§4.2)")
    print(f"  links: {len(report.links.preview_links)} preview, "
          f"{len(report.links.pack_links)} pack")
    print(f"  downloads: {len(report.crawl.preview_images)} preview images, "
          f"{len(report.crawl.packs)} packs with {len(report.crawl.pack_images)} images; "
          f"{report.crawl.n_unique_files} unique files")

    print("\nStage 3 — abuse filtering (§4.3)")
    print(f"  hashlist matches: {report.abuse.n_matched_images}; "
          f"actioned URLs: {report.abuse.n_actioned_urls}; "
          f"exposed actors: {len(report.abuse.exposed_actor_ids)}")

    print("\nStage 4 — NSFV classification (§4.4)")
    print(f"  previews NSFV: {report.n_nsfv_previews}/{len(report.preview_verdicts)} "
          "(paper: 3 496/5 788)")

    print("\nStage 5 — provenance (§4.5)")
    for group in ("packs", "previews"):
        summary = report.provenance.summary(group)
        print(f"  {group}: {summary.matches}/{summary.total} matched "
              f"({summary.match_rate:.0%}), seen-before {summary.seen_before_rate:.0%}, "
              f"mean {summary.mean_matches_per_matched:.1f} matches/image")
    print(f"  matched domains: {len(report.provenance.matched_domains)}")

    earnings = report.earnings
    print("\n§5 — profits")
    print(f"  {earnings.n_proofs} proofs by {len(earnings.per_actor_totals())} actors, "
          f"total ${earnings.total_usd:,.0f}, mean ${earnings.mean_per_actor_usd:,.0f}/actor "
          "(paper: $774)")
    print(f"  mean transaction ${earnings.mean_transaction_usd():.2f} (paper: $41.90)")

    print("\n§6 — actors")
    row = report.cohorts[0]
    print(f"  actors in the selection: {row.n_actors} "
          f"(mean {row.mean_posts:.1f} eWhoring posts, {row.mean_pct_ewhoring:.0f}% of "
          "their activity)")
    print(f"  key actors: {report.key_actors.n_key_actors} across 5 groups")
    shares = report.interests.percentages()
    if shares.get("before") and shares.get("during"):
        print(f"  market interest before → during: "
              f"{shares['before'].get('Market', 0):.0f}% → "
              f"{shares['during'].get('Market', 0):.0f}% (Figure 5 shift)")


if __name__ == "__main__":
    main()
