#!/usr/bin/env python3
"""The researcher-safety workflow (§4.3 / §4.4 / Appendix).

The paper's pipeline is designed so that no researcher ever views
indecent or illegal material: every download is hashed against the
abuse hashlist *first* (match → report to the hotline, delete), and the
remainder passes the NSFV gate before any human sees it.  This example
walks a batch of images through that exact workflow and shows the audit
trail it leaves.

Run:  python examples/safety_workflow.py
"""

import numpy as np

from repro.core import AbuseFilter, NsfvClassifier
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.vision import AbuseSeverity, HashListService, IndexedCopy, ReverseImageIndex
from repro.web import LinkRecord, Url
from repro.web.crawler import CrawledImage, content_digest
from datetime import datetime

T0 = datetime(2018, 5, 1)


def main() -> None:
    rng = np.random.default_rng(1)

    # A simulated "download batch": proofs, chat screenshots, model
    # images, and one image of a (synthetic) underage model.
    batch_spec = [
        (ImageKind.PROOF_SCREENSHOT, dict()),
        (ImageKind.CHAT_SCREENSHOT, dict()),
        (ImageKind.MODEL_NUDE, dict(model_id=1)),
        (ImageKind.MODEL_DRESSED, dict(model_id=2)),
        (ImageKind.MODEL_SEXUAL, dict(model_id=3, is_underage=True)),
    ]
    batch = []
    for i, (kind, kwargs) in enumerate(batch_spec):
        image = SyntheticImage(i, sample_latent(rng, kind, **kwargs))
        batch.append(
            CrawledImage(
                image=image,
                digest=content_digest(image),
                link=LinkRecord(url=Url("imgur.com", f"/{i}"), thread_id=i,
                                posted_at=T0),
            )
        )

    # The hashlist service knows the abusive image (as PhotoDNA would),
    # and the reverse index knows where else it is hosted.
    hashlist = HashListService()
    abusive = batch[-1].image
    hashlist.add_known_image(abusive.pixels, AbuseSeverity.CATEGORY_A, victim_age=16)
    index = ReverseImageIndex()
    from repro.vision import robust_hash
    index.index_hash(robust_hash(abusive.pixels),
                     IndexedCopy("https://freehost.example/abc", "freehost.example", T0))

    # Step 1: the hash-and-delete sweep runs before anything else.
    result = AbuseFilter(
        hashlist, reverse_index=index,
        domain_info=lambda d: ("Europe", "image sharing site"),
    ).sweep(batch)
    print(f"hashlist sweep: {result.n_matched_images} match(es)")
    for record in result.report_log.records:
        print(f"  -> reported to hotline: severity {record.severity.value}, "
              f"victim age {record.victim_age}, {len(record.urls)} URL(s) actioned")
    print(f"  matched image deleted from storage "
          f"(pixels dropped: {batch[-1].image._pixels is None})")

    # Step 2: the NSFV gate decides what a human may look at.
    nsfv = NsfvClassifier()
    survivors = [c for c in batch if result.is_clean(c)]
    print("\nNSFV gate over the remaining downloads:")
    for crawled in survivors:
        verdict = nsfv.classify(crawled.image.pixels)
        state = "SAFE FOR VIEWING " if verdict.safe_for_viewing else "NOT safe (blocked)"
        print(f"  image {crawled.image.image_id} [{crawled.image.kind.value:<18}] "
              f"NSFW={verdict.nsfw_score:.3f} OCR={verdict.ocr_words:>3} -> {state}")

    viewable = [c for c in survivors if nsfv.is_sfv(c.image.pixels)]
    print(f"\nimages a researcher would see: {len(viewable)}/{len(batch)} "
          "(text screenshots only — exactly the paper's guarantee)")


if __name__ == "__main__":
    main()
