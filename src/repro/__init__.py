"""repro — a full reproduction of *Measuring eWhoring* (IMC 2019).

The package implements the paper's measurement pipeline (Figure 1) plus
every substrate it depends on, replacing restricted data and third-party
services with calibrated synthetic equivalents (see DESIGN.md):

* :mod:`repro.forum` — the CrimeBB-analogue dataset model;
* :mod:`repro.text` / :mod:`repro.ml` — NLP and learning substrates;
* :mod:`repro.media` / :mod:`repro.vision` — synthetic images and the
  OpenNSFW / Tesseract / PhotoDNA / TinEye analogues;
* :mod:`repro.web` — the simulated internet and the crawler;
* :mod:`repro.domains` / :mod:`repro.finance` — domain classification
  and money handling;
* :mod:`repro.synth` — the seeded world generator;
* :mod:`repro.core` — the pipeline itself (§4), the profit analysis
  (§5) and the actor analysis (§6).

Quickstart::

    from repro import build_world, run_pipeline

    world = build_world(seed=7, scale=0.02)
    report = run_pipeline(world)
    print(report.extraction_stats)
"""

from __future__ import annotations

from typing import Optional

from .core.pipeline import EwhoringPipeline, PipelineReport
from .synth.world import World, WorldConfig, build_world

__version__ = "1.0.0"

__all__ = [
    "EwhoringPipeline",
    "PipelineReport",
    "World",
    "WorldConfig",
    "__version__",
    "build_world",
    "pipeline_for_world",
    "run_pipeline",
]


def pipeline_for_world(
    world: World,
    seed: Optional[int] = None,
    selection_fn=None,
    link_extractor=None,
    pretrained_classifier=None,
    vision_cache=None,
) -> EwhoringPipeline:
    """Wire an :class:`EwhoringPipeline` to a synthetic world's components.

    ``selection_fn`` / ``link_extractor`` / ``pretrained_classifier`` are
    the adversarial-drift injection points (see
    :class:`~repro.core.pipeline.EwhoringPipeline`); left ``None`` the
    pipeline reproduces the paper's static methodology exactly.
    ``vision_cache`` supplies a pre-warmed
    :class:`~repro.vision.cache.VisionCache` (a persistent store's
    digest-keyed memo); ``None`` creates a fresh per-pipeline cache.
    """
    return EwhoringPipeline(
        dataset=world.dataset,
        internet=world.internet,
        reverse_index=world.reverse_index,
        hashlist=world.hashlist,
        archive=world.archive,
        category_lookup=world.domain_categories.get,
        seed=world.config.seed if seed is None else seed,
        selection_fn=selection_fn,
        link_extractor=link_extractor,
        pretrained_classifier=pretrained_classifier,
        vision_cache=vision_cache,
    )


def run_pipeline(
    world: World,
    annotate_n: int = 1000,
    seed: Optional[int] = None,
    strict: bool = True,
    checkpoint=None,
    stage_hooks=None,
    telemetry=None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    selection_fn=None,
    link_extractor=None,
    pretrained_classifier=None,
    vision_cache=None,
    persist=None,
) -> PipelineReport:
    """Run the full measurement over a world using its ground-truth oracles.

    The oracles replace the study's human work: thread annotation for
    classifier training (§4.1) and proof-of-earnings annotation (§5.1).
    The key-actor group size (50 in the paper) shrinks with the world's
    scale so the groups keep the paper's selectivity.

    ``strict=False`` degrades gracefully on stage failures instead of
    aborting; ``checkpoint`` (a path or ``CrawlCheckpoint``) makes the
    §4.2 crawl resumable; ``stage_hooks`` force stage failures in tests;
    ``telemetry`` (a :class:`~repro.obs.RunTelemetry`) carries the run's
    span tracer and metrics registry — pass one built around an enabled
    :class:`~repro.obs.Tracer` to capture a trace (DESIGN.md §9).

    ``workers`` runs the §4.2 crawl on a parallel executor with
    crawl→funnel streaming overlap (DESIGN.md §10); ``None`` falls
    back to the world's :attr:`~repro.synth.world.WorldConfig.
    crawl_workers` (itself ``None`` = serial).  ``executor`` picks the
    backend — ``"thread"`` (sharded lanes) or ``"process"`` (true
    multi-core lanes with a shared-memory raster arena); ``None`` falls
    back to :attr:`~repro.synth.world.WorldConfig.crawl_executor`.
    Results are bit-identical for any executor × worker count.

    ``vision_cache`` / ``persist`` plug in a persistent store's warm
    memos (see :mod:`repro.store`); both preserve bit-identity of every
    measured quantity — a warm run only *skips recomputation*.
    """
    import math

    pipeline = pipeline_for_world(
        world,
        seed=seed,
        selection_fn=selection_fn,
        link_extractor=link_extractor,
        pretrained_classifier=pretrained_classifier,
        vision_cache=vision_cache,
    )
    truth = world.forums
    if workers is None:
        workers = world.config.crawl_workers
    if executor is None:
        executor = world.config.crawl_executor
    top_n = max(10, int(round(50 * math.sqrt(world.config.scale))))
    return pipeline.run(
        top_oracle=lambda thread_id: truth.thread_types.get(thread_id) == "top",
        proof_oracle=truth.proof_truth.get,
        annotate_n=annotate_n,
        key_actor_top_n=top_n,
        strict=strict,
        checkpoint=checkpoint,
        stage_hooks=stage_hooks,
        telemetry=telemetry,
        crawl_workers=workers,
        crawl_executor=executor,
        persist=persist,
    )
