"""Seeded random-number plumbing shared by every generator in the package.

All stochastic components in :mod:`repro` draw from a :class:`SeedSequenceTree`
so that a single integer seed reproduces the entire synthetic world, while
independent subsystems (forum generation, image rendering, classifier noise)
consume statistically independent streams.  This mirrors how a measurement
study fixes its data snapshot: the seed *is* the dataset identity.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSequenceTree", "derive_seed", "rng_from"]


def derive_seed(root_seed: int, *path: str) -> int:
    """Derive a stable child seed from ``root_seed`` and a label path.

    The derivation hashes the path with SHA-256 so that adding new labelled
    streams never perturbs existing ones (unlike ``SeedSequence.spawn``,
    which is order-sensitive).

    >>> derive_seed(7, "forum", "hackforums") == derive_seed(7, "forum", "hackforums")
    True
    >>> derive_seed(7, "forum") != derive_seed(8, "forum")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for part in path:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def rng_from(root_seed: int, *path: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a labelled stream."""
    return np.random.default_rng(derive_seed(root_seed, *path))


class SeedSequenceTree:
    """A tree of labelled, independent RNG streams rooted at one seed.

    >>> tree = SeedSequenceTree(42)
    >>> a = tree.rng("images")
    >>> b = tree.rng("forums", "hackforums")
    >>> tree.child("forums").rng("hackforums").random() == b.random()
    True
    """

    def __init__(self, root_seed: int, *prefix: str):
        self.root_seed = int(root_seed)
        self.prefix = tuple(prefix)

    def rng(self, *path: str) -> np.random.Generator:
        """Return a fresh generator for the labelled stream ``path``."""
        return rng_from(self.root_seed, *self.prefix, *path)

    def seed(self, *path: str) -> int:
        """Return the derived integer seed for ``path``."""
        return derive_seed(self.root_seed, *self.prefix, *path)

    def child(self, *path: str) -> "SeedSequenceTree":
        """Return a subtree rooted at ``path`` under this tree."""
        return SeedSequenceTree(self.root_seed, *self.prefix, *path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        joined = "/".join(self.prefix) or "<root>"
        return f"SeedSequenceTree(seed={self.root_seed}, prefix={joined})"
