"""Atomic, durable file writes for every on-disk artifact.

Checkpoints, JSONL datasets, traces, manifests and benchmark results
all leave the process through this module: content is written to a
sibling temp file, flushed and ``fsync``\\ ed, then renamed over the
target with ``os.replace`` (atomic on POSIX within one filesystem), and
the parent directory is fsynced best-effort so the rename itself is
durable.  A crash at any instant therefore leaves either the complete
old artifact or the complete new one — never a torn file.

The torn-write windows are declared as chaos kill sites
(``artifact.tmp_written`` between the temp write and the rename,
``artifact.replaced`` just after), so ``tests/test_chaos_kill.py`` can
prove the either-old-or-new property under real ``SIGKILL``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

from .chaos.sites import kill_point

__all__ = ["atomic_write_json", "atomic_write_text", "fsync_dir"]

#: Suffix of the sibling temp file.  Fixed (not randomized) so a
#: crash's residue is identifiable and simply overwritten by the next
#: successful write of the same artifact.
_TMP_SUFFIX = ".tmp"


def fsync_dir(path: Union[str, Path]) -> None:
    """Best-effort fsync of a directory (durability of renames in it)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    ``durable=False`` skips the fsyncs (for high-frequency artifacts
    like periodic crawl checkpoints where atomicity — no torn file —
    is the contract and the OS page cache is an acceptable window for
    *process* death, the failure mode the chaos harness injects).
    """
    target = Path(path)
    tmp = target.with_name(target.name + _TMP_SUFFIX)
    with open(tmp, "w", encoding=encoding) as handle:
        handle.write(text)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    kill_point("artifact.tmp_written")
    os.replace(tmp, target)
    if durable:
        fsync_dir(target.parent)
    kill_point("artifact.replaced")
    return target


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    durable: bool = True,
    **dumps_kwargs: Any,
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON."""
    dumps_kwargs.setdefault("sort_keys", True)
    return atomic_write_text(
        path, json.dumps(payload, **dumps_kwargs) + "\n", durable=durable
    )
