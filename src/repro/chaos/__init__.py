"""repro.chaos — deterministic kill-point chaos harness (DESIGN.md §13).

Crash consistency is a *tested* property here, not a hope: named kill
sites are threaded through crawl checkpointing, atomic artifact writes
and the store's epoch commit; a subprocess driver
(``python -m repro.chaos.driver``) arms a :class:`ChaosMonkey` through
``REPRO_CHAOS_*`` env vars and dies violently (``SIGKILL``) at one
deterministic ``(seed, site)``-chosen hit.  The kill-matrix tests then
recover and re-run, asserting bit-identical convergence with an
uninterrupted run.

Public surface:

* :func:`kill_point` — declare a crash site (free when unarmed);
* :data:`KILL_SITES` — the canonical site registry;
* :class:`ChaosMonkey` / :func:`install` / :func:`uninstall` /
  :func:`install_from_env` / :func:`chosen_hit` — arming machinery;
* :class:`ChaosCrash` — the in-process crash exception
  (``action="raise"``);
* :class:`SignalInterrupt` / :func:`graceful_signals` — typed graceful
  SIGINT/SIGTERM handling with ``128 + signum`` exit codes.
"""

from .signals import SignalInterrupt, graceful_signals
from .sites import (
    ENV_ACTION,
    ENV_HIT,
    ENV_SEED,
    ENV_SITE,
    KILL_SITES,
    ChaosCrash,
    ChaosMonkey,
    chosen_hit,
    install,
    install_from_env,
    kill_point,
    uninstall,
)

__all__ = [
    "ENV_ACTION",
    "ENV_HIT",
    "ENV_SEED",
    "ENV_SITE",
    "KILL_SITES",
    "ChaosCrash",
    "ChaosMonkey",
    "SignalInterrupt",
    "chosen_hit",
    "graceful_signals",
    "install",
    "install_from_env",
    "kill_point",
    "uninstall",
]
