"""Subprocess entry point for the kill-point chaos harness.

``python -m repro.chaos.driver`` runs one pipeline execution — either a
store-backed incremental epoch (``--mode store``) or a plain
checkpoint-resumable run (``--mode crawl``) — with the chaos monkey
armed from ``REPRO_CHAOS_*`` environment variables.  The parent test
(``tests/test_chaos_kill.py``, ``benchmarks/bench_r5_crash.py``) sends
``SIGKILL`` expectations against the exit status, then recovers and
re-runs to assert bit-identical convergence with an uninterrupted run.

On (non-killed) success the run's identity surface is printed as one
JSON object on stdout: crawl digest, quarantine ledger, measurement
view — exactly the three quantities of the store equivalence contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .sites import install_from_env


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.driver",
        description="chaos-harness pipeline driver (see repro.chaos)",
    )
    parser.add_argument("--mode", choices=("store", "crawl"), default="store")
    parser.add_argument("--store", type=Path, default=None,
                        help="store path (mode=store)")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="crawl checkpoint path (mode=crawl)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--epoch", type=int, default=None)
    parser.add_argument("--epoch-total", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--executor", choices=("thread", "process"), default=None,
                        help="parallel-crawl backend (with --workers)")
    parser.add_argument("--payload-profile", default=None)
    parser.add_argument("--fault-profile", default=None)
    return parser


def run_store_mode(args) -> dict:
    from ..store import run_incremental

    result = run_incremental(
        args.store,
        epoch=args.epoch,
        seed=args.seed,
        scale=args.scale,
        epoch_total=args.epoch_total,
        fault_profile=args.fault_profile,
        payload_profile=args.payload_profile,
        workers=args.workers,
        executor=args.executor,
    )
    quarantine = (
        [r.to_dict() for r in result.report.quarantine.records]
        if result.report.quarantine is not None
        else []
    )
    return {
        "mode": "store",
        "crawl_digest": result.crawl_digest,
        "quarantine": quarantine,
        "measurement": result.measurement,
        "epoch": result.epoch,
        "run_id": result.run_id,
        "rows_added": result.rows_added,
    }


def run_crawl_mode(args) -> dict:
    from .. import build_world, run_pipeline
    from ..obs import RunTelemetry

    world = build_world(
        seed=args.seed,
        scale=args.scale,
        fault_profile=args.fault_profile,
        payload_profile=args.payload_profile,
    )
    telemetry = RunTelemetry()
    report = run_pipeline(
        world,
        telemetry=telemetry,
        checkpoint=args.checkpoint,
        workers=args.workers,
        executor=args.executor,
    )
    quarantine = (
        [r.to_dict() for r in report.quarantine.records]
        if report.quarantine is not None
        else []
    )
    return {
        "mode": "crawl",
        "crawl_digest": report.crawl.digest() if report.crawl is not None else "",
        "quarantine": quarantine,
        "measurement": telemetry.measurement_view(),
    }


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    install_from_env()
    if args.mode == "store":
        if args.store is None:
            raise SystemExit("--mode store requires --store")
        payload = run_store_mode(args)
    else:
        payload = run_crawl_mode(args)
    json.dump(payload, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
