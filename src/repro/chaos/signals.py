"""Graceful SIGINT/SIGTERM handling for long-running measurement runs.

A measurement daemon is asked to stop far more often than it crashes.
:func:`graceful_signals` converts the two conventional stop signals
into a typed :class:`SignalInterrupt` raised at the next bytecode
boundary of the main thread, which unwinds through the same
crash-consistency machinery the chaos harness exercises:

* the crawler's checkpoint is synced and atomically saved on the way
  out (``Crawler.crawl`` saves on any in-flight exception), so the run
  is resumable;
* an open store epoch transaction rolls back — the store stays at the
  previous watermark, exactly as after a ``SIGKILL``;
* the process exits with the conventional distinct code ``128 +
  signum`` (130 for SIGINT, 143 for SIGTERM), so supervisors can tell
  "asked to stop" from "failed".

``SignalInterrupt`` derives from ``BaseException`` (like
``KeyboardInterrupt``) so lenient stage boundaries and ``except
Exception`` cleanup cannot absorb a stop request.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from typing import Iterator, Tuple

__all__ = ["SignalInterrupt", "graceful_signals"]


class SignalInterrupt(BaseException):
    """A stop signal (SIGINT/SIGTERM) converted into an exception."""

    def __init__(self, signum: int):
        self.signum = int(signum)
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(f"interrupted by {name}")

    @property
    def exit_code(self) -> int:
        """The conventional ``128 + signum`` process exit code."""
        return 128 + self.signum


@contextmanager
def graceful_signals(
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Raise :class:`SignalInterrupt` on ``signums`` inside the block.

    Previous handlers are restored on exit.  Installing handlers is
    only legal in the main thread; elsewhere (e.g. a test worker) the
    block is a no-op passthrough rather than an error.
    """
    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _raise_interrupt)
    except ValueError:  # not the main thread: leave handlers alone
        previous = {}
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _raise_interrupt(signum, frame):
    raise SignalInterrupt(signum)
