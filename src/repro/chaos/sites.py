"""Named crash sites and the deterministic chaos monkey behind them.

Crash consistency (DESIGN.md §13) is only credible if it is *tested
against violent death*, not just clean exits.  This module threads
named **kill points** through every durability-critical moment of the
stack — crawl checkpoint saves, atomic artifact replaces, the store's
epoch commit — and provides the :class:`ChaosMonkey` that a subprocess
test driver arms to die (``SIGKILL``), interrupt (``SIGINT``/
``SIGTERM``) or raise at exactly one deterministic hit of one site.

Determinism contract: which hit of a site fires is a pure function of
``(seed, site)`` via :func:`chosen_hit` — no wall clock, no randomness —
so a killed run can be reproduced bit-identically, and the
crash→recover→re-run equivalence asserted by ``tests/test_chaos_kill.py``
is a property, not a flake.

With no monkey installed, :func:`kill_point` is one ``None`` check; the
instrumented sites are per-save/per-commit (never per-record), so the
steady-state overhead is unmeasurable (gated < 2 % by
``benchmarks/bench_r5_crash.py``).
"""

from __future__ import annotations

import hashlib
import os
import signal
from typing import Dict, Optional

__all__ = [
    "KILL_SITES",
    "ChaosCrash",
    "ChaosMonkey",
    "chosen_hit",
    "install",
    "install_from_env",
    "kill_point",
    "uninstall",
]

#: Canonical ordered registry of every kill site threaded through the
#: stack.  Tests iterate this tuple to build the kill matrix; adding an
#: instrumented ``kill_point`` call with a new name requires adding it
#: here (asserted by ``tests/test_chaos_kill.py``).
KILL_SITES = (
    # Crawl checkpointing (repro.web.crawler / repro.web.parallel):
    # after a periodic mid-crawl checkpoint save has hit disk.
    "crawl.checkpoint.saved",
    # Process-pool crawl (repro.web.procpool): every chunk has been
    # received and committed but the canonical merge + final checkpoint
    # sync have not run — dying here must recover bit-identically from
    # the last periodic (per-lane frontier) save.
    "crawl.procpool.merge",
    # Atomic artifact writes (repro.atomicio): the torn-write windows of
    # any checkpoint/trace/manifest/JSONL/bench artifact — the temp file
    # is fully written but the target not yet replaced, and just after
    # the rename.
    "artifact.tmp_written",
    "artifact.replaced",
    # Store epoch transaction (repro.store): mid-epoch, after each
    # logical write group, all inside the single uncommitted transaction.
    "store.dataset.appended",
    "store.memos.saved",
    "store.run.recorded",
    # After the run's telemetry-history insert (span summaries, metric
    # snapshot, funnel, profile samples) — still inside the uncommitted
    # epoch transaction, so dying here must lose the history row too.
    "store.history.recorded",
    # The commit edge itself: dying one instant before the COMMIT must
    # lose the whole epoch; one instant after must keep all of it.
    "store.commit.before",
    "store.commit.after",
)

#: Environment knobs read by :func:`install_from_env` (set by the
#: subprocess chaos driver, honoured by ``repro.cli`` and
#: ``python -m repro.chaos.driver``).
ENV_SITE = "REPRO_CHAOS_KILL"
ENV_SEED = "REPRO_CHAOS_SEED"
ENV_ACTION = "REPRO_CHAOS_ACTION"
ENV_HIT = "REPRO_CHAOS_HIT"

_ACTIONS = ("kill", "sigint", "sigterm", "raise")


class ChaosCrash(BaseException):
    """In-process stand-in for process death (``action="raise"``).

    A ``BaseException`` so it cannot be absorbed by lenient stage
    boundaries or ``except Exception`` cleanup — exactly like a real
    ``SIGKILL``, nothing downstream of the kill point runs normally.
    """


def chosen_hit(seed: int, site: str, max_hits: int = 3) -> int:
    """The 1-based hit of ``site`` at which the monkey fires.

    Pure ``blake2b(seed, site)`` hashing — reproducing a crash needs
    only the ``(seed, site)`` pair.  Bounded by ``max_hits`` so sites
    hit many times per run (periodic checkpoint saves) still fire early.

    >>> chosen_hit(0, "store.commit.before") == chosen_hit(0, "store.commit.before")
    True
    >>> 1 <= chosen_hit(7, "crawl.checkpoint.saved", 3) <= 3
    True
    """
    digest = hashlib.blake2b(
        f"{int(seed)}\x1f{site}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % max(1, int(max_hits)) + 1


class ChaosMonkey:
    """Counts hits per site; acts violently at one deterministic hit.

    ``action``:

    * ``"kill"``    — ``SIGKILL`` to our own pid: un-catchable death,
      the real crash the harness is about;
    * ``"sigint"`` / ``"sigterm"`` — deliver the catchable signal to
      ourselves at the site (deterministic: CPython runs the handler on
      the next bytecode boundary, i.e. before the kill point returns
      to meaningful work) — used to test graceful interruption;
    * ``"raise"``  — raise :class:`ChaosCrash` in-process, for tests
      that want the torn state without a subprocess.
    """

    def __init__(
        self,
        site: str,
        action: str = "kill",
        seed: int = 0,
        hit: Optional[int] = None,
    ):
        if action not in _ACTIONS:
            raise ValueError(f"unknown chaos action {action!r} (one of {_ACTIONS})")
        self.site = site
        self.action = action
        self.seed = int(seed)
        self.target_hit = int(hit) if hit is not None else chosen_hit(seed, site)
        self.counts: Dict[str, int] = {}
        self.fired = False

    def hit(self, site: str) -> None:
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        if self.fired or site != self.site or count != self.target_hit:
            return
        self.fired = True
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "sigint":
            os.kill(os.getpid(), signal.SIGINT)
        elif self.action == "sigterm":
            os.kill(os.getpid(), signal.SIGTERM)
        else:
            raise ChaosCrash(f"chaos crash at {site} (hit {count})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosMonkey(site={self.site!r}, action={self.action!r}, "
            f"hit={self.target_hit})"
        )


#: The installed monkey; ``None`` keeps :func:`kill_point` a no-op.
_MONKEY: Optional[ChaosMonkey] = None


def kill_point(site: str) -> None:
    """Declare a named crash site.  Free when no monkey is installed."""
    if _MONKEY is not None:
        _MONKEY.hit(site)


def install(monkey: ChaosMonkey) -> ChaosMonkey:
    """Install ``monkey`` as the process-wide chaos monkey."""
    global _MONKEY
    _MONKEY = monkey
    return monkey


def uninstall() -> None:
    global _MONKEY
    _MONKEY = None


def install_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[ChaosMonkey]:
    """Arm the monkey from ``REPRO_CHAOS_*`` env vars, if present.

    Called by entry points (``repro.cli``, ``repro.chaos.driver``) so a
    parent test process can arm any subprocess purely through its
    environment.  Returns the installed monkey, or ``None`` when
    :data:`ENV_SITE` is unset.
    """
    env = os.environ if environ is None else environ
    site = env.get(ENV_SITE)
    if not site:
        return None
    if site not in KILL_SITES:
        raise ValueError(
            f"{ENV_SITE}={site!r} is not a registered kill site "
            f"(one of {', '.join(KILL_SITES)})"
        )
    hit_raw = env.get(ENV_HIT)
    return install(
        ChaosMonkey(
            site,
            action=env.get(ENV_ACTION, "kill"),
            seed=int(env.get(ENV_SEED, "0")),
            hit=int(hit_raw) if hit_raw else None,
        )
    )
