"""Command-line interface for the reproduction.

Six subcommands:

* ``repro build``  — generate a synthetic world and save its forum
  dataset as JSONL;
* ``repro run``    — generate a world, run the full pipeline, print the
  measurement digest (optionally writing each table to a directory and
  a span trace + run manifest via ``--trace-out``);
* ``repro tables`` — like ``run``, but only writes the table files;
* ``repro drift``  — the adversarial-drift decay experiment: per-stage
  recall/precision by epoch, defenses off vs on;
* ``repro trace``  — render a previously written trace file as a
  per-stage flame summary and funnel table;
* ``repro store``  — crash-recovery tooling for persistent run stores:
  ``verify`` (integrity probe + watermark/fingerprint report, typed
  exit codes) and ``repair`` (salvage the committed prefix of a
  damaged store);
* ``repro obs``    — cross-run observability over the history tables a
  store-backed run records (DESIGN.md §14): ``runs`` (history table),
  ``top`` (hottest spans by self-time/CPU/RSS), ``diff`` (deltas
  between two runs), ``regressions`` (SLO gate with a typed non-zero
  exit for CI), ``ingest-bench`` / ``ingest-trace`` (fold benchmark
  artifacts and trace files into the history).

Examples::

    repro run --seed 7 --scale 0.02
    repro run --trace-out trace.jsonl            # + trace.manifest.json
    repro run --profile --store store.sqlite     # resource-profiled run, history persisted
    repro trace trace.jsonl
    repro --log-level debug --log-json run --seed 7
    repro run --fault-profile flaky --resume          # unreliable network, resumable crawl
    repro run --fault-profile hostile --lenient       # degrade instead of aborting
    repro run --payload-profile hostile               # corrupt payloads, quarantined per record
    repro run --drift-profile aggressive --drift-epoch 2   # measure a drifted world
    repro drift --profile hostile --epochs 2 --out drift.json
    repro build --seed 11 --scale 0.05 --out world.jsonl
    repro tables --seed 11 --scale 0.05 --out results/
    repro store verify store.sqlite                   # post-crash health probe
    repro store repair store.sqlite                   # salvage committed epochs
    repro obs runs --store store.sqlite               # wall/CPU/RSS/funnel per run
    repro obs top --store store.sqlite --by cpu       # hottest spans of the latest run
    repro obs diff 1 2 --store store.sqlite           # metric/funnel deltas
    repro obs regressions --store store.sqlite --slo slo.json   # CI gate (exit 5)

Progress goes through :mod:`repro.obs.log` (structured ``logging`` on
stderr, JSON with ``--log-json``); measurement output stays on stdout.

Interruption contract (DESIGN.md §13): SIGINT/SIGTERM during ``run``
checkpoints the crawl, rolls back any open store epoch transaction
(the store stays at its previous watermark), closes the store cleanly
and exits with the conventional distinct code ``128 + signum`` (130
for SIGINT, 143 for SIGTERM).
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from typing import Optional, Sequence

from . import build_world, run_pipeline
from .atomicio import atomic_write_text
from .chaos import SignalInterrupt, graceful_signals, install_from_env
from .obs import RunTelemetry, Tracer, get_logger, setup_logging
from .obs.export import (
    build_manifest,
    manifest_path_for,
    read_trace,
    render_trace,
    write_manifest,
    write_trace,
)
from .drift.profiles import DRIFT_PROFILES
from .web.faults import FAULT_PROFILES
from .web.payload_faults import PAYLOAD_PROFILES
from .core.report_text import (
    render_digest,
    render_earnings,
    render_table1,
    render_table5,
    render_table7,
    render_table8,
    render_telemetry,
)
from .forum.store import save_dataset

__all__ = ["build_parser", "main"]

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _nonneg_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Measuring eWhoring' (IMC 2019) on a synthetic substrate.",
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVELS, default="info",
        help="stderr logging level (default info)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log lines as JSON objects instead of human-readable text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
        p.add_argument(
            "--scale", type=float, default=0.02,
            help="fraction of the paper's population sizes (default 0.02)",
        )

    p_build = sub.add_parser("build", help="generate a world and save the dataset")
    add_world_args(p_build)
    p_build.add_argument("--out", type=Path, required=True, help="output JSONL path")

    p_run = sub.add_parser("run", help="run the full measurement and print the digest")
    add_world_args(p_run)
    p_run.add_argument("--annotate", type=int, default=1000,
                       help="annotation sample size (default 1000)")
    p_run.add_argument("--out", type=Path, default=None,
                       help="also write table files into this directory")
    p_run.add_argument(
        "--trace-out", type=Path, default=None, metavar="TRACE",
        help="enable span tracing and write the JSONL trace here, plus "
             "the run manifest next to it (<stem>.manifest.json); view "
             "the trace with 'repro trace TRACE'",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="enable the resource profiler: per-span CPU time and peak "
             "RSS on every span, plus a background RSS sampler; "
             "measurement output stays bit-identical (profile data is "
             "outside the determinism contract)",
    )
    p_run.add_argument(
        "--profile-alloc", action="store_true",
        help="like --profile, additionally tracking tracemalloc "
             "allocation deltas per pipeline stage (slower)",
    )
    p_run.add_argument(
        "--fault-profile", choices=sorted(FAULT_PROFILES), default=None,
        help="inject transient fetch faults (timeouts/rate limits/5xx) "
             "from this named profile",
    )
    p_run.add_argument(
        "--payload-profile", choices=sorted(PAYLOAD_PROFILES), default=None,
        help="serve corrupt payloads (truncated/NaN/decoy/... rasters) "
             "from this named profile; poison records are quarantined "
             "per record, never allowed to poison the measurement",
    )
    p_run.add_argument(
        "--drift-profile", choices=sorted(DRIFT_PROFILES), default=None,
        help="apply this adversarial-drift scenario to the world before "
             "measuring (see 'repro drift' for the decay experiment)",
    )
    p_run.add_argument(
        "--drift-epoch", type=_nonneg_int, default=1, metavar="E",
        help="how many drift epochs to apply with --drift-profile "
             "(default 1; 0 = build the world but mutate nothing)",
    )
    p_run.add_argument(
        "--resume", type=Path, nargs="?", const=Path("crawl.checkpoint.json"),
        default=None, metavar="CHECKPOINT",
        help="checkpoint the crawl to this file and resume from it if it "
             "exists (default path: crawl.checkpoint.json)",
    )
    p_run.add_argument(
        "--lenient", action="store_true",
        help="degrade gracefully on stage failures (strict=False) instead "
             "of aborting the measurement",
    )
    p_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the crawl on N sharded worker threads with crawl->vision "
             "streaming overlap; results are bit-identical to the serial "
             "crawl (default: serial)",
    )
    p_run.add_argument(
        "--executor", choices=("thread", "process"), default=None,
        help="crawl executor backing --workers: 'thread' (sharded worker "
             "threads, the default) or 'process' (fork-based process pool "
             "with shared-memory rasters and work stealing); either way "
             "the output is bit-identical to the serial crawl",
    )
    p_run.add_argument(
        "--store", type=Path, default=None, metavar="STORE",
        help="persist this run into a SQLite run store and reuse every "
             "memo it already holds; repeated runs with increasing "
             "--epoch become watermark-based delta runs, bit-identical "
             "to a cold run over the union",
    )
    p_run.add_argument(
        "--epoch", type=int, default=None, metavar="E",
        help="observation epoch to measure (1..EPOCH_TOTAL; requires "
             "--store; default: the full timeline)",
    )
    p_run.add_argument(
        "--epoch-total", type=int, default=1, metavar="N",
        help="number of equal-population observation epochs the world's "
             "timeline is divided into (default 1)",
    )

    p_tables = sub.add_parser("tables", help="run the measurement and write table files")
    add_world_args(p_tables)
    p_tables.add_argument("--annotate", type=int, default=1000)
    p_tables.add_argument("--out", type=Path, required=True, help="output directory")

    p_drift = sub.add_parser(
        "drift",
        help="run the adversarial-drift decay experiment (per-stage "
             "recall/precision by epoch, defenses off vs on)",
    )
    add_world_args(p_drift)
    p_drift.add_argument(
        "--profile", choices=sorted(DRIFT_PROFILES), default="aggressive",
        help="drift scenario to run (default aggressive)",
    )
    p_drift.add_argument(
        "--epochs", type=_nonneg_int, default=2,
        help="drift epochs to measure beyond the baseline (default 2)",
    )
    p_drift.add_argument(
        "--defenses", choices=("off", "on", "both"), default="both",
        help="run the static instrument (off), the adaptive one (on), "
             "or both for comparison (default both)",
    )
    p_drift.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="crawl worker threads per epoch run (default: serial)",
    )
    p_drift.add_argument(
        "--out", type=Path, default=None,
        help="write the full decay report as JSON here",
    )

    p_trace = sub.add_parser(
        "trace", help="render a trace file written by 'run --trace-out'"
    )
    p_trace.add_argument("path", type=Path, help="trace JSONL path")
    p_trace.add_argument(
        "--max-depth", type=int, default=6,
        help="flame-summary nesting depth (default 6)",
    )

    p_store = sub.add_parser(
        "store",
        help="inspect and repair persistent run stores (crash recovery)",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_verify = store_sub.add_parser(
        "verify",
        help="integrity probe + watermark/fingerprint report; exit 0 ok, "
             "3 corrupt, 4 config mismatch",
    )
    p_verify.add_argument("path", type=Path, help="store file to probe")
    p_verify.add_argument(
        "--shallow", action="store_true",
        help="skip the full corpus re-validation (page-level probe only)",
    )
    p_repair = store_sub.add_parser(
        "repair",
        help="salvage the committed epochs of a damaged store (torn WAL "
             "drop, then row-level rebuild); refuses when the committed "
             "prefix is unrecoverable",
    )
    p_repair.add_argument("path", type=Path, help="store file to repair")
    p_repair.add_argument(
        "--shallow", action="store_true",
        help="skip the full corpus re-validation in the post-repair verify",
    )
    p_repair.add_argument(
        "--no-backup", action="store_true",
        help="do not keep the damaged original as <store>.corrupt",
    )

    p_obs = sub.add_parser(
        "obs",
        help="cross-run observability: query the run history a store "
             "accumulates, profile hot spans, gate regressions",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    def add_store_arg(p: argparse.ArgumentParser, required: bool = True) -> None:
        p.add_argument(
            "--store", type=Path, required=required, metavar="STORE",
            help="run store holding the history tables",
        )

    p_obs_runs = obs_sub.add_parser(
        "runs", help="run-history table: wall/CPU time, RSS, records, funnel"
    )
    add_store_arg(p_obs_runs)
    p_obs_runs.add_argument(
        "--limit", type=_nonneg_int, default=0, metavar="N",
        help="show only the newest N rows (default: all)",
    )

    p_obs_top = obs_sub.add_parser(
        "top", help="hottest spans of a run by self-time / CPU / RSS"
    )
    add_store_arg(p_obs_top, required=False)
    p_obs_top.add_argument(
        "--trace", type=Path, default=None, metavar="TRACE",
        help="summarise this trace file instead of a store history row",
    )
    p_obs_top.add_argument(
        "--run", type=int, default=None, metavar="ID",
        help="history row to summarise (default: the latest)",
    )
    p_obs_top.add_argument(
        "--by", choices=("self", "total", "cpu", "rss", "alloc"),
        default="self", help="ranking dimension (default self-time)",
    )
    p_obs_top.add_argument(
        "-n", "--top", type=_nonneg_int, default=15, metavar="N",
        help="rows to show (default 15)",
    )

    p_obs_diff = obs_sub.add_parser(
        "diff", help="metric/funnel/resource deltas between two history rows"
    )
    p_obs_diff.add_argument("run_a", type=int, help="baseline history id")
    p_obs_diff.add_argument("run_b", type=int, help="candidate history id")
    add_store_arg(p_obs_diff)
    p_obs_diff.add_argument(
        "--threshold", type=float, default=0.10, metavar="F",
        help="relative change flagged as notable (default 0.10)",
    )

    p_obs_reg = obs_sub.add_parser(
        "regressions",
        help="check the latest run against a baseline via a SLO spec; "
             "exit 5 on any violation (CI gate)",
    )
    add_store_arg(p_obs_reg)
    p_obs_reg.add_argument(
        "--slo", type=Path, default=None, metavar="SPEC",
        help="JSON SLO spec (default: built-in conservative bounds)",
    )
    p_obs_reg.add_argument(
        "--baseline", type=int, default=None, metavar="ID",
        help="baseline history id (default: the first recorded run)",
    )
    p_obs_reg.add_argument(
        "--latest", type=int, default=None, metavar="ID",
        help="candidate history id (default: the most recent run)",
    )

    p_obs_bench = obs_sub.add_parser(
        "ingest-bench",
        help="fold BENCH_*.json artifacts / TRAJECTORY.jsonl into the store",
    )
    add_store_arg(p_obs_bench)
    p_obs_bench.add_argument(
        "paths", type=Path, nargs="*",
        help="result files or directories (default: benchmarks/results)",
    )

    p_obs_trace = obs_sub.add_parser(
        "ingest-trace",
        help="summarise a trace file into the store's history tables",
    )
    p_obs_trace.add_argument("path", type=Path, help="trace JSONL path")
    add_store_arg(p_obs_trace)
    p_obs_trace.add_argument(
        "--label", default=None, help="history label (default: the path)"
    )

    return parser


def _write_tables(report, out_dir: Path) -> list:
    out_dir.mkdir(parents=True, exist_ok=True)
    tables = {
        "table1_forums": render_table1(report),
        "table5_reverse": render_table5(report),
        "table7_currency": render_table7(report.currency_exchange),
        "table8_actors": render_table8(report),
        "earnings": render_earnings(report.earnings),
        "digest": render_digest(report),
    }
    written = []
    for name, text in tables.items():
        written.append(atomic_write_text(out_dir / f"{name}.txt", text + "\n"))
    return written


def _resilience_summary(report) -> str:
    """Retry/breaker/degradation summary lines for the ``run`` command."""
    lines = ["-- crawl resilience --"]
    if report.crawl is not None:
        stats = report.crawl.stats
        lines.append(
            f"retries: {stats.n_retries}  giveups: {stats.n_giveups}  "
            f"breaker skips: {stats.n_breaker_skips}  "
            f"transient faults: {stats.n_transient_faults}"
        )
        if report.crawl.attempt_logs:
            lines.append(f"links that needed the retry machinery: "
                         f"{len(report.crawl.attempt_logs)}")
    else:
        lines.append("crawl unavailable (stage failed or skipped)")
    lines.append("-- stage boundaries --")
    if not report.stage_outcomes:
        lines.append("no stage records")
    elif not report.degraded:
        lines.append(f"all {len(report.stage_outcomes)} stages completed")
    else:
        for outcome in report.stage_outcomes:
            if outcome.status == "failed" and outcome.failure is not None:
                lines.append(f"FAILED  {outcome.failure.summary()}")
            elif outcome.status == "skipped":
                line = f"skipped {outcome.stage} (requires {outcome.skipped_due_to}"
                if (
                    outcome.root_cause is not None
                    and outcome.root_cause != outcome.skipped_due_to
                ):
                    line += f"; root cause {outcome.root_cause}"
                lines.append(line + ")")
            else:
                lines.append(f"ok      {outcome.stage} [{outcome.elapsed:.2f}s]")
    lines.append("-- quarantine --")
    if report.quarantine is not None:
        lines.extend(report.quarantine.summary_lines())
    else:
        lines.append("no quarantine ledger recorded")
    lines.append("-- vision cache --")
    if report.vision_cache_stats is not None:
        lines.append(report.vision_cache_stats.summary())
    else:
        lines.append("no vision-cache statistics recorded")
    return "\n".join(lines)


def _write_trace_artifacts(args, report, telemetry, log) -> None:
    """Write the trace JSONL + run manifest for a traced ``run``."""
    config = {
        "scale": args.scale,
        "annotate": args.annotate,
        "fault_profile": args.fault_profile,
        "payload_profile": args.payload_profile,
        "drift_profile": getattr(args, "drift_profile", None),
        "drift_epoch": getattr(args, "drift_epoch", 0),
        "lenient": bool(args.lenient),
    }
    meta = {
        "seed": args.seed,
        "config": config,
        "funnel": telemetry.funnel(),
        "stages": [outcome.as_dict() for outcome in report.stage_outcomes],
    }
    trace_path = write_trace(args.trace_out, telemetry.tracer.spans(), meta)
    log.info(
        "wrote trace %s (%d spans, %d events)",
        trace_path,
        len(telemetry.tracer.spans()),
        telemetry.tracer.n_events,
    )
    workers = getattr(args, "workers", None)
    executor = {
        "executor": (
            (getattr(args, "executor", None) or "thread")
            if workers is not None else None
        ),
        "workers": workers,
        "cpu_count": os.cpu_count(),
    }
    manifest = build_manifest(
        report, seed=args.seed, config=config, executor=executor
    )
    manifest_path = write_manifest(manifest_path_for(trace_path), manifest)
    log.info("wrote run manifest %s", manifest_path)


def _make_run_telemetry(args) -> RunTelemetry:
    """Telemetry for a ``run`` command: plain, traced, or profiled.

    A started :class:`~repro.obs.ProfilingTracer` when ``--profile`` /
    ``--profile-alloc`` was passed (tracing implied), a plain
    :class:`Tracer` for ``--trace-out``, else the zero-cost default.
    """
    if getattr(args, "profile", False) or getattr(args, "profile_alloc", False):
        from .obs import ProfilingTracer

        tracer = ProfilingTracer(
            allocations=bool(getattr(args, "profile_alloc", False))
        )
        tracer.start()
        return RunTelemetry(tracer=tracer)
    if getattr(args, "trace_out", None) is not None:
        return RunTelemetry(tracer=Tracer())
    return RunTelemetry()


def _stop_profile(telemetry) -> None:
    """Stop a profiling tracer's sampler/tracemalloc (no-op otherwise)."""
    if getattr(telemetry.tracer, "profiled", False):
        telemetry.tracer.stop()


def _print_profile(telemetry, top_n: int = 8) -> None:
    """Print the hot-span summary of a (stopped) profiling tracer."""
    tracer = telemetry.tracer
    if not getattr(tracer, "profiled", False):
        return
    from .obs import aggregate_spans
    from .obs.profile import rss_peak_kb

    rows = aggregate_spans([s.as_dict() for s in tracer.spans()])
    print("-- profile --")
    print(f"peak RSS: {rss_peak_kb() / 1024:.1f} MiB, "
          f"{len(tracer.samples())} resource samples")
    header = (f"{'span':<28} {'count':>7} {'self':>9} {'total':>9} "
              f"{'cpu':>9} {'rss MiB':>8}")
    print(header)
    for row in rows[:top_n]:
        cpu = row.get("cpu_seconds")
        rss = row.get("rss_peak_kb")
        print(
            f"{row['name'][:28]:<28} {row['count']:>7} "
            f"{row['self_seconds']:>8.2f}s {row['total_seconds']:>8.2f}s "
            f"{(f'{cpu:8.2f}s' if cpu is not None else '       -')} "
            f"{(f'{rss / 1024:8.1f}' if rss is not None else '       -')}"
        )


def _run_drift_command(args, log) -> int:
    """The ``repro drift`` decay experiment (defenses off vs on)."""
    import json

    from .drift import DefenseConfig, STAGE_NAMES, run_drift

    configs = []
    if args.defenses in ("off", "both"):
        configs.append(("defenses_off", DefenseConfig.none()))
    if args.defenses in ("on", "both"):
        configs.append(("defenses_on", DefenseConfig.full()))

    payload = {
        "profile": args.profile,
        "seed": args.seed,
        "scale": args.scale,
        "epochs": args.epochs,
        "runs": {},
    }
    for key, defense_config in configs:
        log.info(
            "drift experiment: profile=%s epochs=%d %s",
            args.profile, args.epochs, key,
        )
        start = time.perf_counter()
        report = run_drift(
            args.profile,
            epochs=args.epochs,
            seed=args.seed,
            scale=args.scale,
            defenses=defense_config,
            workers=args.workers,
        )
        log.info("%s done [%.1fs]", key, time.perf_counter() - start)
        payload["runs"][key] = report.as_dict()
        print(f"-- drift {args.profile} / {key.replace('_', ' ')} --")
        print(f"{'stage':<12} " + " ".join(f"epoch{e:>2}" for e in range(args.epochs + 1)))
        for stage in STAGE_NAMES:
            curve = report.recall_curve(stage)
            print(f"{stage:<12} " + " ".join(f"{value:7.3f}" for value in curve))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    return 0


def _run_store_command(args, log) -> int:
    """``repro run --store PATH [--epoch E --epoch-total N]``.

    Builds (or resumes) a persistent run store and executes one
    watermark-delta pipeline run against it; results are bit-identical
    to a storeless cold run over the same observation epoch.
    """
    from .store import StoreError, run_incremental
    from .synth.world import WorldConfig

    config = WorldConfig(
        seed=args.seed,
        scale=args.scale,
        fault_profile=args.fault_profile,
        payload_profile=args.payload_profile,
        drift_profile=args.drift_profile,
        drift_epoch=args.drift_epoch if args.drift_profile else 0,
        epoch_total=args.epoch_total,
    )
    telemetry = _make_run_telemetry(args)
    log.info(
        "store run: %s epoch=%s/%d",
        args.store, args.epoch if args.epoch is not None else "full",
        args.epoch_total,
    )
    start = time.perf_counter()
    try:
        result = run_incremental(
            args.store,
            epoch=args.epoch,
            config=config,
            annotate_n=args.annotate,
            strict=not args.lenient,
            workers=args.workers,
            executor=getattr(args, "executor", None),
            telemetry=telemetry,
        )
    except StoreError as exc:
        log.error("store run refused: %s", exc)
        return 2
    finally:
        _stop_profile(telemetry)
    report = result.report
    log.info(
        "store run done [%.1fs]: epoch %d/%d, run #%d (history #%s), "
        "%d dataset rows appended, store %.1f MiB",
        time.perf_counter() - start, result.epoch, result.epoch_total,
        result.run_id, result.history_id, result.rows_added,
        result.store_size_bytes / (1024 * 1024),
    )
    for line in telemetry.summary_lines():
        log.info("%s", line)
    if report.degraded:
        log.warning("measurement DEGRADED: some sections unavailable")
    else:
        print(render_digest(report))
    print(_resilience_summary(report))
    print("-- telemetry --")
    print(render_telemetry(report))
    _print_profile(telemetry)
    if args.trace_out is not None:
        _write_trace_artifacts(args, report, telemetry, log)
    if args.out is not None and not report.degraded:
        for path in _write_tables(report, args.out):
            log.info("wrote %s", path)
    return 0


def _run_store_tool(args, log) -> int:
    """``repro store verify|repair`` — typed exit codes throughout.

    0 = healthy (or repaired); :data:`~repro.store.EXIT_CORRUPT` (3) =
    damaged / unrecoverable; :data:`~repro.store.EXIT_CONFIG` (4) = the
    file is intact but disagrees with its own bookkeeping or config.
    """
    from .store import (
        EXIT_CONFIG,
        EXIT_CORRUPT,
        StoreConfigError,
        StoreCorruptionError,
        repair_store,
        verify_store,
    )

    deep = not args.shallow
    try:
        if args.store_command == "verify":
            report = verify_store(args.path, deep=deep)
            print("\n".join(report.summary_lines()))
            print("store OK")
        else:
            result = repair_store(
                args.path, deep=deep, backup=not args.no_backup
            )
            print("\n".join(result.summary_lines()))
            if result.repaired:
                log.info("repaired %s (%d actions)", args.path, len(result.actions))
        return 0
    except StoreConfigError as exc:
        log.error("store %s failed: %s", args.store_command, exc)
        return EXIT_CONFIG
    except StoreCorruptionError as exc:
        log.error("store %s failed: %s", args.store_command, exc)
        return EXIT_CORRUPT


def _fmt_opt(value, fmt: str, missing: str = "-") -> str:
    return missing if value is None else format(value, fmt)


def _fmt_executor(run) -> str:
    """``thread/4``-style executor column for the obs runs table."""
    workers = run.get("workers")
    if workers is None:
        return "-"
    return f"{run.get('executor') or 'thread'}/{workers}"


def _print_span_table(rows, by: str, top_n: int) -> None:
    """The ``repro obs top`` table over aggregate span rows."""
    sort_keys = {
        "self": lambda r: r["self_seconds"],
        "total": lambda r: r["total_seconds"],
        "cpu": lambda r: r.get("cpu_seconds") or 0.0,
        "rss": lambda r: r.get("rss_peak_kb") or 0,
        "alloc": lambda r: r.get("alloc_kb") or 0.0,
    }
    rows = sorted(rows, key=sort_keys[by], reverse=True)
    if top_n:
        rows = rows[:top_n]
    print(f"{'span':<32} {'count':>7} {'self':>9} {'total':>9} "
          f"{'max':>9} {'cpu':>9} {'rss MiB':>8} {'alloc kB':>9} {'err':>4}")
    for row in rows:
        rss = row.get("rss_peak_kb")
        print(
            f"{row['name'][:32]:<32} {row['count']:>7} "
            f"{row['self_seconds']:>8.3f}s {row['total_seconds']:>8.3f}s "
            f"{row['max_seconds']:>8.3f}s "
            f"{_fmt_opt(row.get('cpu_seconds'), '8.3f', '       -')}"
            f"{'s' if row.get('cpu_seconds') is not None else ' '} "
            f"{_fmt_opt(None if rss is None else rss / 1024, '8.1f', '       -')} "
            f"{_fmt_opt(row.get('alloc_kb'), '9.1f', '        -')} "
            f"{row['errors']:>4}"
        )


def _obs_ingest_bench(store, paths, log) -> int:
    """Fold BENCH_*.json files and TRAJECTORY.jsonl lines into the store."""
    import json

    if not paths:
        paths = [Path(__file__).resolve().parents[2] / "benchmarks" / "results"]
    files = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("BENCH_*.json")))
            trajectory = path / "TRAJECTORY.jsonl"
            if trajectory.exists():
                files.append(trajectory)
        else:
            files.append(path)
    ingested = skipped = 0
    with store.transaction():
        for path in files:
            if not path.exists():
                log.warning("ingest-bench: %s does not exist, skipping", path)
                continue
            try:
                if path.suffix == ".jsonl":
                    for line in path.read_text(encoding="utf-8").splitlines():
                        line = line.strip()
                        if not line:
                            continue
                        entry = json.loads(line)
                        added = store.ingest_bench(
                            str(entry.get("name", path.stem)),
                            entry.get("payload"),
                            float(entry.get("recorded_unix", 0.0)),
                        )
                        ingested += int(added)
                        skipped += int(not added)
                else:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    added = store.ingest_bench(
                        path.stem, payload, path.stat().st_mtime
                    )
                    ingested += int(added)
                    skipped += int(not added)
            except (json.JSONDecodeError, OSError, ValueError) as exc:
                log.error("ingest-bench: %s unreadable: %s", path, exc)
                return 2
    print(f"ingested {ingested} bench results "
          f"({skipped} already present) from {len(files)} files")
    return 0


def _run_obs_command(args, log) -> int:
    """``repro obs runs|top|diff|regressions|ingest-bench|ingest-trace``.

    Exit codes: 0 ok; 2 usage/value error; 3 corrupt store; 4 config
    mismatch; :data:`~repro.obs.regress.EXIT_REGRESSION` (5) when the
    SLO gate trips — distinct so CI can tell "regressed" from "broken".
    """
    from .obs.history import record_history, summarize_trace
    from .obs.regress import (
        EXIT_REGRESSION,
        check_regressions,
        diff_histories,
        load_slo,
    )
    from .store import (
        EXIT_CONFIG,
        EXIT_CORRUPT,
        RunStore,
        StoreConfigError,
        StoreCorruptionError,
    )

    cmd = args.obs_command

    # `obs top --trace` works without any store at all.
    if cmd == "top" and args.trace is not None:
        try:
            summary = summarize_trace(args.trace)
        except (OSError, ValueError) as exc:
            log.error("obs top: cannot read trace %s: %s", args.trace, exc)
            return 2
        print(f"trace {args.trace}: {summary.n_spans} spans, "
              f"{'profiled' if summary.profiled else 'unprofiled'}")
        _print_span_table(summary.spans, args.by, args.top)
        return 0
    if cmd == "top" and args.store is None:
        log.error("obs top needs --store or --trace")
        return 2

    try:
        store = RunStore(args.store)
    except StoreCorruptionError as exc:
        log.error("obs %s: %s", cmd, exc)
        return EXIT_CORRUPT

    with store:
        try:
            if cmd == "runs":
                runs = store.history_runs()
                if args.limit:
                    runs = runs[-args.limit:]
                if not runs:
                    print("no run history recorded "
                          "(run with --store, or obs ingest-trace)")
                    return 0
                print(f"{'id':>4} {'run':>4} {'epoch':>5} {'wall':>8} "
                      f"{'cpu':>8} {'rss MiB':>8} {'spans':>6} "
                      f"{'records':>8} {'quar':>5} {'prof':>4} "
                      f"{'exec':>10} {'cpus':>4}  label")
                for run in runs:
                    rss = run.get("peak_rss_kb")
                    print(
                        f"{run['history_id']:>4} "
                        f"{_fmt_opt(run.get('run_id'), '>4'):>4} "
                        f"{_fmt_opt(run.get('epoch'), '>5'):>5} "
                        f"{_fmt_opt(run.get('wall_seconds'), '7.2f', '      -')}"
                        f"{'s' if run.get('wall_seconds') is not None else ' '} "
                        f"{_fmt_opt(run.get('cpu_seconds'), '7.2f', '      -')}"
                        f"{'s' if run.get('cpu_seconds') is not None else ' '} "
                        f"{_fmt_opt(None if rss is None else rss / 1024, '8.1f', '       -')} "
                        f"{run['n_spans']:>6} "
                        f"{_fmt_opt(run.get('n_records'), '>8'):>8} "
                        f"{_fmt_opt(run.get('n_quarantined'), '>5'):>5} "
                        f"{'yes' if run.get('profiled') else '-':>4} "
                        f"{_fmt_executor(run):>10} "
                        f"{_fmt_opt(run.get('cpu_count'), '>4'):>4}  "
                        f"{run.get('label') or run.get('source')}"
                    )
                return 0

            if cmd == "top":
                runs = store.history_runs()
                if not runs:
                    log.error("obs top: store has no run history")
                    return 2
                history_id = args.run if args.run is not None else (
                    runs[-1]["history_id"]
                )
                if history_id not in {r["history_id"] for r in runs}:
                    log.error("obs top: history #%d not found", history_id)
                    return 2
                rows = store.history_spans(history_id)
                print(f"history #{history_id}: {len(rows)} span names")
                _print_span_table(rows, args.by, args.top)
                return 0

            if cmd == "diff":
                rows = diff_histories(
                    store, args.run_a, args.run_b, threshold=args.threshold
                )
                flagged = [r for r in rows if r["flagged"]]
                print(f"history #{args.run_a} -> #{args.run_b}: "
                      f"{len(flagged)} of {len(rows)} quantities changed "
                      f"beyond ±{args.threshold:.0%}")
                by_id = {r["history_id"]: r for r in store.history_runs()}
                shapes = [
                    f"#{hid} {_fmt_executor(by_id[hid])}"
                    f" on {_fmt_opt(by_id[hid].get('cpu_count'), '>1')} cpu(s)"
                    for hid in (args.run_a, args.run_b) if hid in by_id
                ]
                if shapes:
                    print("executors: " + " vs ".join(shapes))
                print(f"{'':>2} {'kind':<9} {'name':<36} {'a':>12} "
                      f"{'b':>12} {'ratio':>7}")
                for row in rows:
                    if not row["flagged"] and flagged:
                        continue  # flagged-only view when anything changed
                    mark = "!" if row["flagged"] else " "
                    ratio = row.get("ratio")
                    print(
                        f"{mark:>2} {row['kind']:<9} {row['name'][:36]:<36} "
                        f"{_fmt_opt(row.get('a'), '>12.6g'):>12} "
                        f"{_fmt_opt(row.get('b'), '>12.6g'):>12} "
                        f"{_fmt_opt(ratio, '7.3f'):>7}"
                    )
                return 0

            if cmd == "regressions":
                slo = load_slo(args.slo) if args.slo is not None else None
                report = check_regressions(
                    store, slo,
                    baseline_id=args.baseline, latest_id=args.latest,
                )
                print("\n".join(report.summary_lines()))
                if report.ok:
                    print("no regressions")
                    return 0
                print(f"{len(report.violations)} regression(s) detected")
                return EXIT_REGRESSION

            if cmd == "ingest-bench":
                return _obs_ingest_bench(store, list(args.paths), log)

            # ingest-trace
            summary = summarize_trace(args.path, label=args.label)
            history_id = record_history(store, summary)
            print(f"ingested {args.path} as history #{history_id} "
                  f"({summary.n_spans} spans, "
                  f"{'profiled' if summary.profiled else 'unprofiled'})")
            return 0
        except ValueError as exc:
            log.error("obs %s: %s", cmd, exc)
            return 2
        except StoreConfigError as exc:
            log.error("obs %s: %s", cmd, exc)
            return EXIT_CONFIG
        except StoreCorruptionError as exc:
            log.error("obs %s: %s", cmd, exc)
            return EXIT_CORRUPT


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(level=args.log_level, json_mode=args.log_json)
    log = get_logger("cli")
    # Arm the chaos monkey when a test driver set REPRO_CHAOS_* in our
    # environment (no-op otherwise; see repro.chaos).
    install_from_env()
    try:
        with graceful_signals():
            return _dispatch(args, log)
    except SignalInterrupt as exc:
        # The unwind already did the durable work: crawl checkpoint
        # synced and saved, store epoch transaction rolled back (the
        # store is at its previous watermark) and closed.
        log.error(
            "%s: state checkpointed, store closed cleanly; exiting %d",
            exc, exc.exit_code,
        )
        return exc.exit_code


def _dispatch(args, log) -> int:
    if args.command == "store":
        return _run_store_tool(args, log)

    if args.command == "trace":
        # Tolerant read: renders empty/truncated traces and traces with
        # unknown record types (e.g. from newer writers) best-effort.
        meta, spans = read_trace(args.path, strict=False)
        print(render_trace(meta, spans, max_depth=args.max_depth))
        return 0

    if args.command == "obs":
        return _run_obs_command(args, log)

    if args.command == "drift":
        return _run_drift_command(args, log)

    fault_profile = getattr(args, "fault_profile", None)
    payload_profile = getattr(args, "payload_profile", None)
    drift_profile = getattr(args, "drift_profile", None)

    if (getattr(args, "executor", None) == "process"
            and getattr(args, "workers", None) is None):
        raise SystemExit(
            "--executor process requires --workers N "
            "(see 'repro run --help')"
        )

    if getattr(args, "store", None) is not None:
        return _run_store_command(args, log)
    if getattr(args, "epoch", None) is not None:
        raise SystemExit("--epoch requires --store (see 'repro run --help')")

    log.info(
        "building world",
        extra={
            "seed": args.seed,
            "scale": args.scale,
            "fault_profile": fault_profile,
            "payload_profile": payload_profile,
            "drift_profile": drift_profile,
        },
    )
    start = time.perf_counter()
    world = build_world(
        seed=args.seed,
        scale=args.scale,
        fault_profile=fault_profile,
        payload_profile=payload_profile,
        drift_profile=drift_profile,
        drift_epoch=getattr(args, "drift_epoch", 1) if drift_profile else 0,
    )
    log.info(
        "world ready: %s [%.1fs]", world.dataset, time.perf_counter() - start
    )

    if args.command == "build":
        n_records = save_dataset(world.dataset, args.out)
        print(f"wrote {n_records} records to {args.out}")
        return 0

    trace_out = getattr(args, "trace_out", None)
    telemetry = _make_run_telemetry(args)
    log.info("running pipeline", extra={"tracing": telemetry.tracing_enabled})
    start = time.perf_counter()
    try:
        report = run_pipeline(
            world,
            annotate_n=args.annotate,
            strict=not getattr(args, "lenient", False),
            checkpoint=getattr(args, "resume", None),
            telemetry=telemetry,
            workers=getattr(args, "workers", None),
            executor=getattr(args, "executor", None),
        )
    finally:
        _stop_profile(telemetry)
    log.info("pipeline done [%.1fs]", time.perf_counter() - start)
    for line in telemetry.summary_lines():
        log.info("%s", line)

    if args.command == "run":
        if report.degraded:
            log.warning("measurement DEGRADED: some sections unavailable")
        else:
            print(render_digest(report))
        print(_resilience_summary(report))
        print("-- telemetry --")
        print(render_telemetry(report))
        _print_profile(telemetry)
        if trace_out is not None:
            _write_trace_artifacts(args, report, telemetry, log)
        if args.out is not None and not report.degraded:
            for path in _write_tables(report, args.out):
                log.info("wrote %s", path)
        return 0

    # tables
    for path in _write_tables(report, args.out):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    raise SystemExit(main())
