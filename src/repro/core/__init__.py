"""The paper's contribution: the eWhoring measurement pipeline (§4–§6)."""

from .abuse_filter import AbuseFilter, AbuseFilterResult, StreamMatcher
from .actors import (
    ActorAnalyzer,
    ActorMetrics,
    CohortRow,
    InterestEvolution,
    KeyActorGroups,
    KeyActorSelection,
    cohort_table,
    interest_evolution,
    select_key_actors,
)
from .earnings import (
    CurrencyExchangeTable,
    EarningsAnalyzer,
    EarningsResult,
    ProofRecord,
    currency_exchange_table,
)
from .features import ThreadFeatureExtractor, ThreadStats, thread_document, thread_stats
from .heuristics import HeuristicTopClassifier
from .interventions import (
    BlacklistIntervention,
    BlacklistOutcome,
    CurrencyRegulationOutcome,
    PaymentTakedownOutcome,
    payment_account_takedown,
    regulate_gift_card_exchange,
)
from .longitudinal import (
    ActivityTimeline,
    MonthlySeries,
    activity_timeline,
    new_actor_series,
)
from .report_text import (
    render_digest,
    render_earnings,
    render_table1,
    render_table5,
    render_table7,
    render_table8,
)
from .saturation import (
    PackSaturation,
    SaturationReport,
    analyze_saturation,
    reuse_distribution,
)
from .keywords import (
    EARNINGS_HEADING_TERMS,
    EARNINGS_KEYWORDS,
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    STRONG_PACK_KEYWORDS,
    TABLE2_LEXICONS,
    TRADE_KEYWORDS,
    TUTORIAL_KEYWORDS,
)
from .nsfv import NsfvClassifier, NsfvVerdict
from .pipeline import EwhoringPipeline, PipelineReport
from .quarantine import Quarantine, QuarantineRecord
from .provenance import (
    PackSampling,
    ProvenanceAnalyzer,
    ProvenanceResult,
    QueryOutcome,
    ReverseSearchSummary,
)
from .stage_runner import StageFailure, StageOutcome, StageRunner
from .top_classifier import ExtractionStats, HybridTopClassifier, TopEvaluation
from .url_extraction import LinkExtraction, WhitelistBuilder, extract_links

__all__ = [
    "AbuseFilter",
    "AbuseFilterResult",
    "BlacklistIntervention",
    "BlacklistOutcome",
    "CurrencyRegulationOutcome",
    "PaymentTakedownOutcome",
    "payment_account_takedown",
    "regulate_gift_card_exchange",
    "ActorAnalyzer",
    "ActorMetrics",
    "CohortRow",
    "CurrencyExchangeTable",
    "EARNINGS_HEADING_TERMS",
    "EARNINGS_KEYWORDS",
    "EWHORING_KEYWORDS",
    "EarningsAnalyzer",
    "EarningsResult",
    "EwhoringPipeline",
    "ExtractionStats",
    "HeuristicTopClassifier",
    "HybridTopClassifier",
    "InterestEvolution",
    "KeyActorGroups",
    "KeyActorSelection",
    "LinkExtraction",
    "NsfvClassifier",
    "NsfvVerdict",
    "PACK_KEYWORDS",
    "PackSampling",
    "PipelineReport",
    "ProofRecord",
    "ProvenanceAnalyzer",
    "ProvenanceResult",
    "Quarantine",
    "QuarantineRecord",
    "QueryOutcome",
    "REQUEST_KEYWORDS",
    "ReverseSearchSummary",
    "STRONG_PACK_KEYWORDS",
    "StageFailure",
    "StageOutcome",
    "StageRunner",
    "StreamMatcher",
    "TABLE2_LEXICONS",
    "TRADE_KEYWORDS",
    "TUTORIAL_KEYWORDS",
    "ThreadFeatureExtractor",
    "ThreadStats",
    "TopEvaluation",
    "WhitelistBuilder",
    "cohort_table",
    "currency_exchange_table",
    "extract_links",
    "interest_evolution",
    "select_key_actors",
    "ActivityTimeline",
    "MonthlySeries",
    "PackSaturation",
    "SaturationReport",
    "activity_timeline",
    "analyze_saturation",
    "new_actor_series",
    "render_digest",
    "render_earnings",
    "render_table1",
    "render_table5",
    "render_table7",
    "render_table8",
    "reuse_distribution",
    "thread_document",
    "thread_stats",
]
