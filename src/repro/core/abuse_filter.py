"""Stage 3: filtering and reporting child-abuse material (§4.3).

Every downloaded image is hashed and matched against the
PhotoDNA-analogue hashlist *before* any other processing.  A match
triggers the incident workflow the paper agreed with the IWF:

1. the image's pixels are dropped immediately ("deleted from our
   servers") and the image is excluded from every later stage;
2. for *actionable* entries (age-verified victims) a report is filed
   with the URL set where the image was found online (obtained through
   reverse search), its severity grade, hosting regions and site types;
3. the containing threads and their repliers are recorded, giving the
   lower bound on exposed actors the paper reports (476 actors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..forum.dataset import ForumDataset
from ..vision.batch import hash_batch
from ..vision.cache import VisionCache
from ..vision.photodna import (
    AbuseSeverity,
    HashListService,
    MatchResult,
    ReportLog,
    ReportRecord,
)
from ..vision.reverse_search import ReverseImageIndex
from ..web.crawler import CrawledImage
from .quarantine import Quarantine

__all__ = ["AbuseFilterResult", "AbuseFilter"]

#: How domain metadata (region, site type) is looked up for report URLs.
DomainInfoFn = Callable[[str], Tuple[Optional[str], Optional[str]]]


@dataclass
class AbuseFilterResult:
    """Outcome of the stage-3 sweep (the §4.3 results)."""

    #: Digests of matched images (all copies excluded downstream).
    matched_digests: Set[str]
    #: Distinct matched images (by digest) — the paper's "36 images".
    n_matched_images: int
    #: Actioned URLs across reports — the paper's "61 URLs".
    n_actioned_urls: int
    severity_histogram: Dict[AbuseSeverity, int]
    region_histogram: Dict[str, int]
    site_type_histogram: Dict[str, int]
    #: Threads whose links delivered matched images.
    affected_thread_ids: Set[int]
    #: Actors who replied in those threads (exposure lower bound).
    exposed_actor_ids: Set[int]
    report_log: ReportLog
    #: Digests whose payload failed validation at this stage's boundary
    #: (defence in depth behind crawler ingest); excluded downstream.
    quarantined_digests: Set[str] = field(default_factory=set)

    def is_clean(self, crawled: CrawledImage) -> bool:
        """True when an image survived the filter (and was not poison)."""
        return (
            crawled.digest not in self.matched_digests
            and crawled.digest not in self.quarantined_digests
        )


class AbuseFilter:
    """Hash-match-report-delete sweep over crawled images."""

    def __init__(
        self,
        hashlist: HashListService,
        reverse_index: Optional[ReverseImageIndex] = None,
        domain_info: Optional[DomainInfoFn] = None,
        cache: Optional[VisionCache] = None,
    ):
        self._hashlist = hashlist
        self._reverse_index = reverse_index
        self._domain_info = domain_info if domain_info is not None else (lambda d: (None, None))
        self._cache = cache

    # ------------------------------------------------------------------
    def sweep(
        self,
        images: Sequence[CrawledImage],
        dataset: Optional[ForumDataset] = None,
        quarantine: Optional[Quarantine] = None,
    ) -> AbuseFilterResult:
        """Match all images; report and delete the hits.

        ``dataset`` enables the thread/actor exposure statistics; without
        it only image-level results are produced.

        Hashing is deduplicated by content digest: each distinct image
        is hashed exactly once (through the batched vision engine, and
        through the shared :class:`VisionCache` when one is attached),
        no matter how many crawled copies carry the same digest.

        When a ``quarantine`` ledger is supplied, every representative
        raster crosses a validation boundary before hashing: poison that
        somehow bypassed crawler ingest is admitted to the ledger under
        ``"abuse_filter"`` and its digest excluded from the sweep (and,
        via :meth:`AbuseFilterResult.is_clean`, from every later stage)
        instead of corrupting the batched hash kernel.
        """
        log = ReportLog()
        matched_digests: Set[str] = set()
        affected_threads: Set[int] = set()
        n_matched_images = 0

        # Pass 1: one representative copy per digest, in first-seen order.
        representatives: Dict[str, CrawledImage] = {}
        for crawled in images:
            representatives.setdefault(crawled.digest, crawled)
        digests = list(representatives)
        quarantined_digests: Set[str] = set()
        if quarantine is not None:
            survivors = quarantine.filter_rasters(
                "abuse_filter",
                digests,
                ref=lambda d: d,
                raster=lambda d: representatives[d].image.pixels,
                context=lambda d: {"link_kind": representatives[d].link.link_kind},
            )
            quarantined_digests = set(digests) - set(survivors)
            digests = survivors
        hashes = self._hashes_for(representatives, digests)
        matches = self._hashlist.match_hashes(hashes)
        match_by_digest: Dict[str, MatchResult] = dict(zip(digests, matches))
        hash_by_digest: Dict[str, int] = dict(zip(digests, hashes))

        # Pass 2: apply per-copy semantics in crawl order.
        reported_digests: Set[str] = set()
        for crawled in images:
            match = match_by_digest.get(crawled.digest)
            if match is None:  # digest quarantined in pass 1
                continue
            if not match.matched:
                continue
            if crawled.link.thread_id is not None:
                affected_threads.add(crawled.link.thread_id)
            if crawled.digest not in matched_digests:
                matched_digests.add(crawled.digest)
                n_matched_images += 1
            if crawled.digest not in reported_digests:
                reported_digests.add(crawled.digest)
                entry = match.entry
                assert entry is not None
                if entry.actionable:
                    self._report(
                        log,
                        crawled,
                        hash_by_digest[crawled.digest],
                        entry.severity,
                        entry.victim_age,
                    )
            self._delete(crawled)

        exposed = self._exposed_actors(dataset, affected_threads) if dataset else set()
        return AbuseFilterResult(
            matched_digests=matched_digests,
            n_matched_images=n_matched_images,
            n_actioned_urls=len(log.actioned_urls()),
            severity_histogram=log.severity_histogram(),
            region_histogram=log.region_histogram(),
            site_type_histogram=log.site_type_histogram(),
            affected_thread_ids=affected_threads,
            exposed_actor_ids=exposed,
            report_log=log,
            quarantined_digests=quarantined_digests,
        )

    # ------------------------------------------------------------------
    def _hashes_for(
        self,
        representatives: Dict[str, CrawledImage],
        digests: List[str],
    ) -> List[int]:
        """Perceptual hashes for each digest, batched and cache-aware."""
        if self._cache is not None:
            keyed = [
                (digest, (lambda c=representatives[digest]: c.image.pixels))
                for digest in digests
            ]
            return self._cache.hashes_for(keyed, hash_batch)
        rasters = [representatives[digest].image.pixels for digest in digests]
        return [int(h) for h in hash_batch(rasters)]

    def _report(
        self,
        log: ReportLog,
        crawled: CrawledImage,
        image_hash: int,
        severity: AbuseSeverity,
        victim_age: Optional[int],
    ) -> None:
        """File one report: the online locations of the matched image."""
        urls: List[str] = []
        regions: List[str] = []
        site_types: List[str] = []
        if self._reverse_index is not None:
            report = self._reverse_index.search_hash(image_hash)
            for match in report.matches:
                urls.append(match.copy.url)
                region, site_type = self._domain_info(match.copy.domain)
                if region:
                    regions.append(region)
                if site_type:
                    site_types.append(site_type)
        log.report(
            ReportRecord(
                image_ref=crawled.digest,
                urls=tuple(urls),
                severity=severity,
                victim_age=victim_age,
                hosting_regions=tuple(regions),
                site_types=tuple(site_types),
            )
        )

    @staticmethod
    def _delete(crawled: CrawledImage) -> None:
        """Drop the image's pixels — the 'removed from our servers' step."""
        crawled.image.drop_pixels()

    @staticmethod
    def _exposed_actors(dataset: ForumDataset, thread_ids: Set[int]) -> Set[int]:
        exposed: Set[int] = set()
        for thread_id in thread_ids:
            for post in dataset.replies(thread_id):
                exposed.add(post.author_id)
        return exposed
