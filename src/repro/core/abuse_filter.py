"""Stage 3: filtering and reporting child-abuse material (§4.3).

Every downloaded image is hashed and matched against the
PhotoDNA-analogue hashlist *before* any other processing.  A match
triggers the incident workflow the paper agreed with the IWF:

1. the image's pixels are dropped immediately ("deleted from our
   servers") and the image is excluded from every later stage;
2. for *actionable* entries (age-verified victims) a report is filed
   with the URL set where the image was found online (obtained through
   reverse search), its severity grade, hosting regions and site types;
3. the containing threads and their repliers are recorded, giving the
   lower bound on exposed actors the paper reports (476 actors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..forum.dataset import ForumDataset
from ..media.validate import validate_raster
from ..vision.batch import hash_batch
from ..vision.cache import VisionCache
from ..vision.photodna import (
    AbuseSeverity,
    HashListService,
    MatchResult,
    ReportLog,
    ReportRecord,
)
from ..vision.reverse_search import ReverseImageIndex
from ..web.crawler import CrawledImage
from .quarantine import Quarantine

__all__ = ["AbuseFilterResult", "AbuseFilter", "StreamMatcher"]

#: How domain metadata (region, site type) is looked up for report URLs.
DomainInfoFn = Callable[[str], Tuple[Optional[str], Optional[str]]]


@dataclass
class AbuseFilterResult:
    """Outcome of the stage-3 sweep (the §4.3 results)."""

    #: Digests of matched images (all copies excluded downstream).
    matched_digests: Set[str]
    #: Distinct matched images (by digest) — the paper's "36 images".
    n_matched_images: int
    #: Actioned URLs across reports — the paper's "61 URLs".
    n_actioned_urls: int
    severity_histogram: Dict[AbuseSeverity, int]
    region_histogram: Dict[str, int]
    site_type_histogram: Dict[str, int]
    #: Threads whose links delivered matched images.
    affected_thread_ids: Set[int]
    #: Actors who replied in those threads (exposure lower bound).
    exposed_actor_ids: Set[int]
    report_log: ReportLog
    #: Digests whose payload failed validation at this stage's boundary
    #: (defence in depth behind crawler ingest); excluded downstream.
    quarantined_digests: Set[str] = field(default_factory=set)

    def is_clean(self, crawled: CrawledImage) -> bool:
        """True when an image survived the filter (and was not poison)."""
        return (
            crawled.digest not in self.matched_digests
            and crawled.digest not in self.quarantined_digests
        )


class StreamMatcher:
    """Incremental hashing/validation frontend for the streaming overlap.

    The sharded crawl executor (:mod:`repro.web.parallel`) hands each
    finished lane's outcomes to :meth:`on_lane` while later lanes are
    still crawling; the matcher deduplicates by content digest, runs the
    per-digest validation boundary, and pushes the fresh rasters through
    the batched hash kernel (via the shared :class:`VisionCache` when
    one is attached) — so by the time the crawl barrier falls, most of
    the abuse-filter's hash work is already done.

    Determinism: validation and hashing are pure per-raster functions
    and the matcher performs **exactly one** cache lookup/compute per
    distinct digest — the same count, though not the same order, as the
    batch path — so cache statistics and every deterministic view are
    unchanged.  Poison records are *not* admitted to the shared ledger
    here: they are stashed per digest and admitted by
    :meth:`AbuseFilter.sweep` in canonical first-seen order, so the
    quarantine ledger is byte-identical to the non-streaming sweep.

    With an :class:`~repro.core.nsfv.NsfvClassifier` (and optionally a
    :class:`~repro.vision.reverse_search.ReverseImageIndex`) attached,
    the stream additionally prefetches the stage-4/5 work: NSFW scores
    for every clean digest, OCR word counts for ambiguous-band previews,
    and reverse-search reports for previews it predicts NSFV.  These are
    *memos*, not results: the canonical stages replay them from inside
    their usual cache-miss compute functions, so the whole §3 funnel
    overlaps the crawl while every deterministic view stays bit-identical
    (see :meth:`_prefetch_vision`).

    The matcher is driven from the executor's single consumer thread
    (lanes are delivered in lane order) and needs no locking of its own;
    the :class:`VisionCache` it feeds is itself thread-safe.
    """

    def __init__(
        self,
        cache: Optional[VisionCache] = None,
        validate: bool = True,
        validation_memo=None,
        nsfv=None,
        reverse_index: Optional[ReverseImageIndex] = None,
    ):
        self._cache = cache
        #: Whether the stream ran the validation boundary; when False a
        #: quarantining sweep re-validates (stream results unusable for
        #: the ledger).
        self.validated = validate
        #: Optional :class:`~repro.media.validate.ValidationMemo`; a hit
        #: replays the recorded outcome without materialising pixels.
        self._validation_memo = validation_memo
        #: Optional :class:`~repro.core.nsfv.NsfvClassifier`: when set,
        #: streamed digests are NSFW-scored (and OCR'd inside the
        #: ambiguous band) while the crawl is still running, extending
        #: the overlap into stage 4.
        self._nsfv = nsfv
        #: Optional :class:`~repro.vision.reverse_search.ReverseImageIndex`:
        #: when set together with ``nsfv``, previews the stream predicts
        #: NSFV get their reverse search issued early, extending the
        #: overlap into stage 5.
        self._reverse_index = reverse_index
        self._seen: Set[str] = set()
        #: digest → 64-bit perceptual hash, for every clean streamed digest.
        self.hash_by_digest: Dict[str, int] = {}
        #: digest → the validation exception it raised.
        self.poisoned: Dict[str, Exception] = {}
        #: digest → NSFW score computed by the stream (misses only; a
        #: cache-warm digest is skipped via :meth:`VisionCache.peek`).
        self.nsfw_by_digest: Dict[str, float] = {}
        #: digest → OCR word count for streamed ambiguous-band previews.
        self.ocr_by_digest: Dict[str, int] = {}
        #: perceptual hash → prefetched reverse-search report.
        self.reverse_reports: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def add_images(self, images: Sequence[CrawledImage]) -> None:
        """Hash (and validate) the not-yet-seen digests in ``images``."""
        fresh: List[CrawledImage] = []
        for crawled in images:
            digest = crawled.digest
            if digest in self._seen:
                continue
            self._seen.add(digest)
            if self.validated:
                try:
                    if self._validation_memo is not None:
                        self._validation_memo.validate(
                            digest, lambda c=crawled: c.image.pixels
                        )
                    else:
                        validate_raster(crawled.image.pixels, context=digest)
                except Exception as exc:
                    self.poisoned[digest] = exc
                    continue
            fresh.append(crawled)
        if not fresh:
            return
        if self._cache is not None:
            hashes = self._cache.hashes_for(
                [
                    (crawled.digest, (lambda c=crawled: c.image.pixels))
                    for crawled in fresh
                ],
                hash_batch,
            )
        else:
            hashes = [int(h) for h in hash_batch([c.image.pixels for c in fresh])]
        for crawled, value in zip(fresh, hashes):
            self.hash_by_digest[crawled.digest] = int(value)
        if self._nsfv is not None and self.validated:
            self._prefetch_vision(fresh)

    def _prefetch_vision(self, fresh: Sequence[CrawledImage]) -> None:
        """Score streamed digests ahead of stages 4/5 (best-effort memo).

        The values land in side dicts the canonical stages replay from
        inside their *cache-miss compute functions*: the stages still
        issue exactly their usual cache lookups in exactly their usual
        order, so hit/miss counters, LRU order and every deterministic
        view are bit-identical whether or not the stream ran — a
        mispredicted prefetch merely wastes a pure computation, and a
        missing one merely falls back to computing at the stage.
        """
        nsfv = self._nsfv
        for crawled in fresh:
            digest = crawled.digest
            nsfw = self._peek("nsfw", digest)
            if nsfw is None:
                nsfw = float(nsfv.scorer.score(crawled.image.pixels))
                self.nsfw_by_digest[digest] = nsfw
            else:
                nsfw = float(nsfw)
            if crawled.pack_id is not None:
                # Pack members are never OCR'd or (individually) certain
                # to be queried; their streamed NSFW score still feeds
                # the provenance sampling sort.
                continue
            if nsfw < nsfv.sfv_threshold:
                continue  # clear-cut SFV: no OCR, never reverse-searched
            if nsfw > nsfv.nsfv_threshold:
                predicted_nsfv = True
            else:
                words = self._peek("ocr", digest)
                if words is None:
                    words = int(nsfv.ocr.word_count(crawled.image.pixels))
                    self.ocr_by_digest[digest] = words
                else:
                    words = int(words)
                limit = (
                    nsfv.low_ocr_words
                    if nsfw < nsfv.low_band_threshold
                    else nsfv.high_ocr_words
                )
                predicted_nsfv = not (words > limit)
            if predicted_nsfv and self._reverse_index is not None:
                image_hash = self.hash_by_digest.get(digest)
                if image_hash is not None and image_hash not in self.reverse_reports:
                    self.reverse_reports[image_hash] = self._reverse_index.search_hash(
                        int(image_hash)
                    )

    def _peek(self, field: str, digest: str):
        """Cache-warm check that touches no counters (see ``VisionCache.peek``)."""
        if self._cache is None:
            return None
        return self._cache.peek(digest, field)

    def on_lane(self, lane_index: int, domain: str, outcomes) -> None:
        """Streaming hook for ``Crawler.crawl(..., on_lane=...)``."""
        images: List[CrawledImage] = []
        for outcome in outcomes:
            images.extend(outcome.preview_images)
            images.extend(outcome.pack_images)
        self.add_images(images)

    # ------------------------------------------------------------------
    def hashes_for_digests(
        self,
        digests: Sequence[str],
        fallback: Callable[[List[str]], Sequence[int]],
    ) -> List[int]:
        """Streamed hashes for ``digests``; stragglers go to ``fallback``.

        ``fallback`` receives the (normally empty) list of digests the
        stream never saw and must return their hashes in order.
        """
        missing = [d for d in digests if d not in self.hash_by_digest]
        computed = dict(zip(missing, fallback(missing))) if missing else {}
        return [
            self.hash_by_digest[d] if d in self.hash_by_digest else int(computed[d])
            for d in digests
        ]

    def nsfw_for(self, digest: str, fallback: Callable[[], float]) -> float:
        """Streamed NSFW score for ``digest``; unseen digests compute live.

        Designed to be the *compute function* of a canonical-stage cache
        lookup: the stage's cache traffic is unchanged, only the miss
        cost is (usually) a dict lookup instead of a model inference.
        """
        value = self.nsfw_by_digest.get(digest)
        return float(value) if value is not None else float(fallback())

    def ocr_words_for(self, digest: str, fallback: Callable[[], int]) -> int:
        """Streamed OCR word count for ``digest``, falling back to live."""
        value = self.ocr_by_digest.get(digest)
        return int(value) if value is not None else int(fallback())

    def report_for(self, query_hash: int):
        """Prefetched reverse-search report for ``query_hash``, or ``None``."""
        return self.reverse_reports.get(int(query_hash))

    @property
    def n_streamed(self) -> int:
        """Distinct digests that passed through the stream."""
        return len(self._seen)


class AbuseFilter:
    """Hash-match-report-delete sweep over crawled images."""

    def __init__(
        self,
        hashlist: HashListService,
        reverse_index: Optional[ReverseImageIndex] = None,
        domain_info: Optional[DomainInfoFn] = None,
        cache: Optional[VisionCache] = None,
    ):
        self._hashlist = hashlist
        self._reverse_index = reverse_index
        self._domain_info = domain_info if domain_info is not None else (lambda d: (None, None))
        self._cache = cache

    # ------------------------------------------------------------------
    def sweep(
        self,
        images: Sequence[CrawledImage],
        dataset: Optional[ForumDataset] = None,
        quarantine: Optional[Quarantine] = None,
        precomputed: Optional[StreamMatcher] = None,
    ) -> AbuseFilterResult:
        """Match all images; report and delete the hits.

        ``dataset`` enables the thread/actor exposure statistics; without
        it only image-level results are produced.

        Hashing is deduplicated by content digest: each distinct image
        is hashed exactly once (through the batched vision engine, and
        through the shared :class:`VisionCache` when one is attached),
        no matter how many crawled copies carry the same digest.

        When a ``quarantine`` ledger is supplied, every representative
        raster crosses a validation boundary before hashing: poison that
        somehow bypassed crawler ingest is admitted to the ledger under
        ``"abuse_filter"`` and its digest excluded from the sweep (and,
        via :meth:`AbuseFilterResult.is_clean`, from every later stage)
        instead of corrupting the batched hash kernel.

        ``precomputed`` is a :class:`StreamMatcher` that already hashed
        (and validated) the digests while the crawl streamed lane
        completions: the sweep then consumes its per-digest hashes and
        validation outcomes instead of recomputing, admitting streamed
        poison to the ledger in canonical first-seen order — the result
        and the ledger are bit-identical to a non-streaming sweep.
        """
        log = ReportLog()
        matched_digests: Set[str] = set()
        affected_threads: Set[int] = set()
        n_matched_images = 0

        # Pass 1: one representative copy per digest, in first-seen order.
        representatives: Dict[str, CrawledImage] = {}
        for crawled in images:
            representatives.setdefault(crawled.digest, crawled)
        digests = list(representatives)
        quarantined_digests: Set[str] = set()
        if quarantine is not None:
            if precomputed is not None and precomputed.validated:
                # Replay the stream's per-digest validation outcomes in
                # canonical order (validation is a pure per-raster
                # function, so the outcomes are order-independent; only
                # the ledger's admission order needs restoring here).
                survivors = []
                for digest in digests:
                    exc = precomputed.poisoned.get(digest)
                    if exc is None:
                        survivors.append(digest)
                        continue
                    quarantine.admit(
                        "abuse_filter",
                        digest,
                        exc,
                        {"link_kind": representatives[digest].link.link_kind},
                    )
            else:
                survivors = quarantine.filter_rasters(
                    "abuse_filter",
                    digests,
                    ref=lambda d: d,
                    raster=lambda d: representatives[d].image.pixels,
                    context=lambda d: {"link_kind": representatives[d].link.link_kind},
                )
            quarantined_digests = set(digests) - set(survivors)
            digests = survivors
        if precomputed is not None:
            hashes = precomputed.hashes_for_digests(
                digests, lambda missing: self._hashes_for(representatives, missing)
            )
        else:
            hashes = self._hashes_for(representatives, digests)
        matches = self._hashlist.match_hashes(hashes)
        match_by_digest: Dict[str, MatchResult] = dict(zip(digests, matches))
        hash_by_digest: Dict[str, int] = dict(zip(digests, hashes))

        # Pass 2: apply per-copy semantics in crawl order.
        reported_digests: Set[str] = set()
        for crawled in images:
            match = match_by_digest.get(crawled.digest)
            if match is None:  # digest quarantined in pass 1
                continue
            if not match.matched:
                continue
            if crawled.link.thread_id is not None:
                affected_threads.add(crawled.link.thread_id)
            if crawled.digest not in matched_digests:
                matched_digests.add(crawled.digest)
                n_matched_images += 1
            if crawled.digest not in reported_digests:
                reported_digests.add(crawled.digest)
                entry = match.entry
                assert entry is not None
                if entry.actionable:
                    self._report(
                        log,
                        crawled,
                        hash_by_digest[crawled.digest],
                        entry.severity,
                        entry.victim_age,
                    )
            self._delete(crawled)

        exposed = self._exposed_actors(dataset, affected_threads) if dataset else set()
        return AbuseFilterResult(
            matched_digests=matched_digests,
            n_matched_images=n_matched_images,
            n_actioned_urls=len(log.actioned_urls()),
            severity_histogram=log.severity_histogram(),
            region_histogram=log.region_histogram(),
            site_type_histogram=log.site_type_histogram(),
            affected_thread_ids=affected_threads,
            exposed_actor_ids=exposed,
            report_log=log,
            quarantined_digests=quarantined_digests,
        )

    # ------------------------------------------------------------------
    def _hashes_for(
        self,
        representatives: Dict[str, CrawledImage],
        digests: List[str],
    ) -> List[int]:
        """Perceptual hashes for each digest, batched and cache-aware."""
        if self._cache is not None:
            keyed = [
                (digest, (lambda c=representatives[digest]: c.image.pixels))
                for digest in digests
            ]
            return self._cache.hashes_for(keyed, hash_batch)
        rasters = [representatives[digest].image.pixels for digest in digests]
        return [int(h) for h in hash_batch(rasters)]

    def _report(
        self,
        log: ReportLog,
        crawled: CrawledImage,
        image_hash: int,
        severity: AbuseSeverity,
        victim_age: Optional[int],
    ) -> None:
        """File one report: the online locations of the matched image."""
        urls: List[str] = []
        regions: List[str] = []
        site_types: List[str] = []
        if self._reverse_index is not None:
            report = self._reverse_index.search_hash(image_hash)
            for match in report.matches:
                urls.append(match.copy.url)
                region, site_type = self._domain_info(match.copy.domain)
                if region:
                    regions.append(region)
                if site_type:
                    site_types.append(site_type)
        log.report(
            ReportRecord(
                image_ref=crawled.digest,
                urls=tuple(urls),
                severity=severity,
                victim_age=victim_age,
                hosting_regions=tuple(regions),
                site_types=tuple(site_types),
            )
        )

    @staticmethod
    def _delete(crawled: CrawledImage) -> None:
        """Drop the image's pixels — the 'removed from our servers' step."""
        crawled.image.drop_pixels()

    @staticmethod
    def _exposed_actors(dataset: ForumDataset, thread_ids: Set[int]) -> Set[int]:
        exposed: Set[int] = set()
        for thread_id in thread_ids:
            for post in dataset.replies(thread_id):
                exposed.add(post.author_id)
        return exposed
