"""§6: analysis of eWhoring actors — social network, cohorts, key actors.

Implements the full §6 toolkit:

* per-actor activity metrics (eWhoring posts, total posts, days active
  before/after eWhoring) — Table 8 and Figure 4;
* the interaction graph (quote → quoted author, otherwise reply →
  thread initiator) with eigenvector centrality via power iteration;
* popularity indices over initiated threads (H-index, i-10/i-50/i-100);
* rank-based key-actor selection across the five §6.3 categories, their
  intersections (Table 9) and per-group characteristics (Table 10);
* interest evolution across the before / during / after phases
  (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Post, Thread
from ..forum.query import ewhoring_threads

__all__ = [
    "ActorMetrics",
    "ActorAnalyzer",
    "CohortRow",
    "InterestEvolution",
    "KeyActorGroups",
    "KeyActorSelection",
    "cohort_table",
    "interest_evolution",
    "select_key_actors",
]

#: The five §6.3 key-actor categories.
KEY_ACTOR_CATEGORIES = ("popular", "influence", "earnings", "ce", "packs")


@dataclass
class ActorMetrics:
    """Per-actor measurements used across §6."""

    actor_id: int
    n_ewhoring_posts: int = 0
    n_total_posts: int = 0
    first_ewhoring: Optional[datetime] = None
    last_ewhoring: Optional[datetime] = None
    first_post: Optional[datetime] = None
    last_post: Optional[datetime] = None
    h_index: int = 0
    i10: int = 0
    i50: int = 0
    i100: int = 0
    eigenvector: float = 0.0
    n_packs_shared: int = 0
    n_ce_threads: int = 0
    earnings_usd: float = 0.0

    @property
    def pct_ewhoring(self) -> float:
        """Percentage of the actor's posts that are eWhoring-related."""
        if self.n_total_posts == 0:
            return 0.0
        return 100.0 * self.n_ewhoring_posts / self.n_total_posts

    @property
    def days_before(self) -> float:
        """Days posting on the forum before the first eWhoring post."""
        if self.first_post is None or self.first_ewhoring is None:
            return 0.0
        return max((self.first_ewhoring - self.first_post).total_seconds() / 86_400.0, 0.0)

    @property
    def days_after(self) -> float:
        """Days posting on the forum after the last eWhoring post."""
        if self.last_post is None or self.last_ewhoring is None:
            return 0.0
        return max((self.last_post - self.last_ewhoring).total_seconds() / 86_400.0, 0.0)


class ActorAnalyzer:
    """Computes §6.1 metrics and the interaction network."""

    def __init__(
        self,
        dataset: ForumDataset,
        selection: Optional[Sequence[Thread]] = None,
    ):
        self._dataset = dataset
        self._selection = (
            list(selection) if selection is not None else ewhoring_threads(dataset)
        )
        self._metrics: Optional[Dict[int, ActorMetrics]] = None
        self._edges: Optional[Dict[Tuple[int, int], float]] = None

    @property
    def selection(self) -> List[Thread]:
        return list(self._selection)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[int, ActorMetrics]:
        """Per-actor metrics for everyone active in the selection."""
        if self._metrics is None:
            self._compute()
        assert self._metrics is not None
        return self._metrics

    def edges(self) -> Dict[Tuple[int, int], float]:
        """Weighted interaction edges (responder → responded-to)."""
        if self._edges is None:
            self._compute()
        assert self._edges is not None
        return self._edges

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        dataset = self._dataset
        metrics: Dict[int, ActorMetrics] = {}
        edges: Dict[Tuple[int, int], float] = {}
        thread_replies: Dict[int, List[int]] = {}

        def metric(actor_id: int) -> ActorMetrics:
            record = metrics.get(actor_id)
            if record is None:
                record = ActorMetrics(actor_id=actor_id)
                metrics[actor_id] = record
            return record

        for thread in self._selection:
            posts = dataset.posts_in_thread(thread.thread_id)
            if not posts:
                continue
            thread_replies.setdefault(thread.author_id, []).append(len(posts) - 1)
            post_by_id = {post.post_id: post for post in posts}
            for post in posts:
                record = metric(post.author_id)
                record.n_ewhoring_posts += 1
                if record.first_ewhoring is None or post.created_at < record.first_ewhoring:
                    record.first_ewhoring = post.created_at
                if record.last_ewhoring is None or post.created_at > record.last_ewhoring:
                    record.last_ewhoring = post.created_at
                if post.is_initial:
                    continue
                # §6.1 response rules: explicit quote wins, otherwise the
                # reply responds to the thread initiator.
                if post.quoted_post_id is not None and post.quoted_post_id in post_by_id:
                    target = post_by_id[post.quoted_post_id].author_id
                else:
                    target = thread.author_id
                if target != post.author_id:
                    key = (post.author_id, target)
                    edges[key] = edges.get(key, 0.0) + 1.0

        # Popularity indices from initiated-thread reply counts.
        for actor_id, reply_counts in thread_replies.items():
            record = metric(actor_id)
            counts = sorted(reply_counts, reverse=True)
            h = 0
            for rank, count in enumerate(counts, start=1):
                if count >= rank:
                    h = rank
                else:
                    break
            record.h_index = h
            record.i10 = sum(1 for c in counts if c >= 10)
            record.i50 = sum(1 for c in counts if c >= 50)
            record.i100 = sum(1 for c in counts if c >= 100)

        # Whole-forum activity spans and totals.
        for actor_id, record in metrics.items():
            posts = dataset.posts_by_actor(actor_id)
            record.n_total_posts = len(posts)
            if posts:
                dates = [p.created_at for p in posts]
                record.first_post = min(dates)
                record.last_post = max(dates)

        # Eigenvector centrality on the symmetrised interaction graph.
        centrality = _eigenvector_centrality(edges)
        for actor_id, value in centrality.items():
            metric(actor_id).eigenvector = value

        self._metrics = metrics
        self._edges = edges

    # ------------------------------------------------------------------
    def attach_packs(self, packs_per_actor: Mapping[int, int]) -> None:
        """Record pack-sharing counts (from the classified TOPs)."""
        metrics = self.metrics()
        for actor_id, count in packs_per_actor.items():
            if actor_id in metrics:
                metrics[actor_id].n_packs_shared = count

    def attach_earnings(self, totals: Mapping[int, float]) -> None:
        """Record per-actor reported earnings (from §5)."""
        metrics = self.metrics()
        for actor_id, total in totals.items():
            if actor_id in metrics:
                metrics[actor_id].earnings_usd = total

    def attach_currency_exchange(self) -> None:
        """Count CE-board threads per actor, after their first eWhoring post."""
        metrics = self.metrics()
        ce_boards = {
            b.board_id for b in self._dataset.boards() if b.is_currency_exchange
        }
        for board_id in ce_boards:
            for thread in self._dataset.threads_in_board(board_id):
                record = metrics.get(thread.author_id)
                if record is None or record.first_ewhoring is None:
                    continue
                if thread.created_at > record.first_ewhoring:
                    record.n_ce_threads += 1


def _eigenvector_centrality(
    edges: Mapping[Tuple[int, int], float],
    iterations: int = 100,
    tolerance: float = 1e-10,
) -> Dict[int, float]:
    """Power iteration on the symmetrised weighted adjacency matrix."""
    if not edges:
        return {}
    nodes = sorted({a for a, _ in edges} | {b for _, b in edges})
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    adjacency = np.zeros((n, n), dtype=np.float64)
    for (a, b), weight in edges.items():
        adjacency[index[a], index[b]] += weight
        adjacency[index[b], index[a]] += weight
    vector = np.full(n, 1.0 / np.sqrt(n))
    for _ in range(iterations):
        nxt = adjacency @ vector
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            break
        nxt /= norm
        if np.linalg.norm(nxt - vector) < tolerance:
            vector = nxt
            break
        vector = nxt
    return {node: float(vector[index[node]]) for node in nodes}


# ----------------------------------------------------------------------
# Table 8: activity cohorts
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CohortRow:
    """One ``#Posts >= threshold`` row of Table 8."""

    threshold: int
    n_actors: int
    mean_posts: float
    mean_pct_ewhoring: float
    mean_days_before: float
    mean_days_after: float


def cohort_table(
    metrics: Mapping[int, ActorMetrics],
    thresholds: Sequence[int] = (1, 10, 50, 100, 200, 500, 1000),
) -> List[CohortRow]:
    """Aggregate actors into the cumulative activity bands of Table 8."""
    records = list(metrics.values())
    rows: List[CohortRow] = []
    for threshold in thresholds:
        cohort = [r for r in records if r.n_ewhoring_posts >= threshold]
        if not cohort:
            rows.append(CohortRow(threshold, 0, 0.0, 0.0, 0.0, 0.0))
            continue
        rows.append(
            CohortRow(
                threshold=threshold,
                n_actors=len(cohort),
                mean_posts=float(np.mean([r.n_ewhoring_posts for r in cohort])),
                mean_pct_ewhoring=float(np.mean([r.pct_ewhoring for r in cohort])),
                mean_days_before=float(np.mean([r.days_before for r in cohort])),
                mean_days_after=float(np.mean([r.days_after for r in cohort])),
            )
        )
    return rows


# ----------------------------------------------------------------------
# §6.3: key actors
# ----------------------------------------------------------------------

@dataclass
class KeyActorGroups:
    """Actor-id sets per key-actor category."""

    popular: Set[int]
    influence: Set[int]
    earnings: Set[int]
    ce: Set[int]
    packs: Set[int]

    def as_dict(self) -> Dict[str, Set[int]]:
        return {
            "popular": self.popular,
            "influence": self.influence,
            "earnings": self.earnings,
            "ce": self.ce,
            "packs": self.packs,
        }

    def all_key_actors(self) -> Set[int]:
        result: Set[int] = set()
        for group in self.as_dict().values():
            result |= group
        return result


@dataclass
class KeyActorSelection:
    """Groups plus the Table 9 intersection structure."""

    groups: KeyActorGroups
    metrics: Dict[int, ActorMetrics]

    @property
    def n_key_actors(self) -> int:
        return len(self.groups.all_key_actors())

    def intersection_matrix(self) -> Dict[Tuple[str, str], int]:
        """Pairwise intersections; the diagonal counts actors unique to
        that category (Table 9's convention)."""
        named = self.groups.as_dict()
        matrix: Dict[Tuple[str, str], int] = {}
        for i, name_a in enumerate(KEY_ACTOR_CATEGORIES):
            for name_b in KEY_ACTOR_CATEGORIES[i:]:
                if name_a == name_b:
                    others: Set[int] = set()
                    for name_c, group in named.items():
                        if name_c != name_a:
                            others |= group
                    matrix[(name_a, name_a)] = len(named[name_a] - others)
                else:
                    matrix[(name_a, name_b)] = len(named[name_a] & named[name_b])
        return matrix

    def membership_counts(self) -> Dict[int, int]:
        """How many groups each key actor belongs to."""
        counts: Dict[int, int] = {}
        for group in self.groups.as_dict().values():
            for actor_id in group:
                counts[actor_id] = counts.get(actor_id, 0) + 1
        return counts

    def group_characteristics(self) -> Dict[str, Dict[str, float]]:
        """Mean metrics per group plus the ALL row — Table 10."""
        result: Dict[str, Dict[str, float]] = {}
        named = self.groups.as_dict()
        for name, group in list(named.items()) + [("ALL", self.groups.all_key_actors())]:
            members = [self.metrics[a] for a in group if a in self.metrics]
            if not members:
                result[name] = {}
                continue
            result[name] = {
                "n_posts": float(np.mean([m.n_total_posts for m in members])),
                "pct_ewhoring": float(np.mean([m.pct_ewhoring for m in members])),
                "days_before": float(np.mean([m.days_before for m in members])),
                "amount": float(np.mean([m.earnings_usd for m in members])),
                "h_index": float(np.mean([m.h_index for m in members])),
                "i10": float(np.mean([m.i10 for m in members])),
                "i100": float(np.mean([m.i100 for m in members])),
                "packs": float(np.mean([m.n_packs_shared for m in members])),
                "ce_threads": float(np.mean([m.n_ce_threads for m in members])),
            }
        return result


def select_key_actors(
    metrics: Mapping[int, ActorMetrics],
    top_n: int = 50,
    packs_min_shared: int = 6,
) -> KeyActorSelection:
    """Rank-based key-actor selection (§6.3).

    ``top_n`` actors per category (50 in the paper); the pack group takes
    everyone who shared at least ``packs_min_shared`` packs (63 actors at
    full scale).  Ties break on actor id for determinism.
    """
    records = list(metrics.values())

    def top_by(key, pool=None) -> Set[int]:
        candidates = pool if pool is not None else records
        ranked = sorted(candidates, key=lambda m: (-key(m), m.actor_id))
        return {m.actor_id for m in ranked[:top_n] if key(m) > 0}

    packs_group = {
        m.actor_id for m in records if m.n_packs_shared >= packs_min_shared
    }
    if not packs_group:  # tiny worlds: fall back to rank selection
        packs_group = top_by(lambda m: m.n_packs_shared)

    ce_scores: Dict[int, float] = {}
    for m in records:
        if m.n_ce_threads > 0:
            total_threads = m.n_ce_threads + max(m.n_ewhoring_posts, 1)
            pct = m.n_ce_threads / total_threads
            ce_scores[m.actor_id] = pct * total_threads

    ce_ranked = sorted(ce_scores.items(), key=lambda kv: (-kv[1], kv[0]))
    groups = KeyActorGroups(
        popular=top_by(lambda m: m.h_index),
        influence=top_by(lambda m: m.eigenvector),
        earnings=top_by(lambda m: m.earnings_usd),
        ce={actor_id for actor_id, _ in ce_ranked[:top_n]},
        packs=packs_group,
    )
    return KeyActorSelection(groups=groups, metrics=dict(metrics))


# ----------------------------------------------------------------------
# Figure 5: interest evolution
# ----------------------------------------------------------------------

@dataclass
class InterestEvolution:
    """Posts per category per phase, with percentage views (Figure 5)."""

    counts: Dict[str, Dict[str, int]]  # phase -> category -> posts

    def percentages(self) -> Dict[str, Dict[str, float]]:
        result: Dict[str, Dict[str, float]] = {}
        for phase, categories in self.counts.items():
            total = sum(categories.values())
            result[phase] = {
                category: (100.0 * count / total if total else 0.0)
                for category, count in categories.items()
            }
        return result


def interest_evolution(
    dataset: ForumDataset,
    metrics: Mapping[int, ActorMetrics],
    actor_ids: Iterable[int],
    exclude_board_names: Sequence[str] = (),
) -> InterestEvolution:
    """Categorised activity of ``actor_ids`` before/during/after eWhoring.

    Counts posts on categorised boards, excluding the eWhoring board
    itself (the defining activity, not an 'interest') and any board named
    in ``exclude_board_names`` (the paper removes 'The Lounge').
    """
    excluded_names = {name.lower() for name in exclude_board_names}
    board_category: Dict[int, Optional[str]] = {}
    for board in dataset.boards():
        if board.is_ewhoring_board or board.name.lower() in excluded_names:
            board_category[board.board_id] = None
        else:
            board_category[board.board_id] = board.category

    counts: Dict[str, Dict[str, int]] = {
        "before": {}, "during": {}, "after": {}
    }
    for actor_id in actor_ids:
        record = metrics.get(actor_id)
        if record is None or record.first_ewhoring is None or record.last_ewhoring is None:
            continue
        for post in dataset.posts_by_actor(actor_id):
            thread = dataset.thread(post.thread_id)
            category = board_category.get(thread.board_id)
            if category is None:
                continue
            if post.created_at < record.first_ewhoring:
                phase = "before"
            elif post.created_at > record.last_ewhoring:
                phase = "after"
            else:
                phase = "during"
            bucket = counts[phase]
            bucket[category] = bucket.get(category, 0) + 1
    return InterestEvolution(counts=counts)
