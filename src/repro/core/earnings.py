"""§5: financial profits — proof-of-earnings pipeline and CE analysis.

The earnings pipeline mirrors §5.1 step by step:

1. select earnings threads ('you make' / 'earn' in the heading, plus the
   Bragging Rights board) and posts combining 'proof' with trading terms;
2. extract image-sharing URLs, crawl them;
3. apply the same safety stages as the image pipeline — hashlist sweep,
   then NSFV filtering — before anything reaches the (simulated) human
   annotator;
4. annotate the safe images: payment platform, currency, transactions,
   totals; convert everything to USD with the historical rate at the
   transaction date;
5. aggregate: per-actor totals, platform histograms and the monthly
   PayPal-vs-AGC series of Figure 3.

The Currency Exchange analysis (Table 7) parses [H]/[W] headings of CE
threads started by actors with more than 50 eWhoring posts, counted only
after their first eWhoring post.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..finance.money import Currency, Money, PaymentPlatform
from ..finance.parser import UNCLASSIFIED, parse_exchange_heading
from ..finance.rates import HistoricalRates
from ..forum.dataset import ForumDataset
from ..forum.models import Post, Thread
from ..forum.query import ewhoring_threads
from ..synth.earnings_gen import ProofPlan
from ..vision.photodna import HashListService, robust_hash
from ..web.crawler import CrawledImage, Crawler, LinkRecord
from ..web.internet import SimulatedInternet
from ..web.sites import ServiceKind, service_by_domain
from ..web.url import extract_urls
from .keywords import EARNINGS_HEADING_TERMS, TRADE_KEYWORDS
from .nsfv import NsfvClassifier
from .quarantine import Quarantine

__all__ = [
    "CurrencyExchangeTable",
    "EarningsAnalyzer",
    "EarningsResult",
    "ProofRecord",
    "currency_exchange_table",
]

#: The oracle standing in for the human annotator of §5.1: image id →
#: the proof's ground truth, or None when the image is not a proof.
AnnotatorFn = Callable[[int], Optional[ProofPlan]]


@dataclass(frozen=True)
class ProofRecord:
    """One annotated proof-of-earnings image."""

    image_id: int
    digest: str
    post_id: Optional[int]
    author_id: Optional[int]
    posted_at: Optional[datetime]
    platform: PaymentPlatform
    currency: Currency
    n_transactions: int
    shows_transactions: bool
    total_usd: float
    #: USD amounts per transaction when itemised; empty otherwise.
    transaction_usd: Tuple[float, ...] = ()


@dataclass
class EarningsResult:
    """Everything §5 measures."""

    n_threads_matched: int
    n_posts_with_links: int
    n_unique_urls: int
    n_downloaded: int
    n_abuse_matched: int
    n_indecent_filtered: int
    n_analyzable: int
    records: List[ProofRecord]
    n_non_proofs: int

    # ------------------------------------------------------------------
    @property
    def n_proofs(self) -> int:
        return len(self.records)

    def per_actor_totals(self) -> Dict[int, float]:
        """USD total per actor over their proofs."""
        totals: Dict[int, float] = {}
        for record in self.records:
            if record.author_id is None:
                continue
            totals[record.author_id] = totals.get(record.author_id, 0.0) + record.total_usd
        return totals

    def per_actor_proof_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.records:
            if record.author_id is None:
                continue
            counts[record.author_id] = counts.get(record.author_id, 0) + 1
        return counts

    @property
    def total_usd(self) -> float:
        return float(sum(r.total_usd for r in self.records))

    @property
    def mean_per_actor_usd(self) -> float:
        totals = self.per_actor_totals()
        return float(np.mean(list(totals.values()))) if totals else 0.0

    def mean_transaction_usd(self) -> float:
        """Average itemised transaction value (§5.2: US$41.90)."""
        amounts = [a for r in self.records for a in r.transaction_usd]
        return float(np.mean(amounts)) if amounts else 0.0

    @property
    def n_with_transaction_detail(self) -> int:
        return sum(1 for r in self.records if r.shows_transactions)

    def platform_histogram(self) -> Dict[PaymentPlatform, int]:
        histogram: Dict[PaymentPlatform, int] = {}
        for record in self.records:
            histogram[record.platform] = histogram.get(record.platform, 0) + 1
        return histogram

    def monthly_platform_series(
        self, platforms: Sequence[PaymentPlatform]
    ) -> Dict[PaymentPlatform, Dict[str, int]]:
        """Proof counts per month per platform — the Figure 3 series."""
        series: Dict[PaymentPlatform, Dict[str, int]] = {p: {} for p in platforms}
        for record in self.records:
            if record.platform not in series or record.posted_at is None:
                continue
            key = record.posted_at.strftime("%Y-%m")
            bucket = series[record.platform]
            bucket[key] = bucket.get(key, 0) + 1
        return series

    def earnings_cdf(self) -> np.ndarray:
        """Sorted per-actor USD totals — the Figure 2 (left) data."""
        return np.sort(np.array(list(self.per_actor_totals().values())))

    def proof_count_cdf(self) -> np.ndarray:
        """Sorted per-actor proof counts — the Figure 2 (right) data."""
        return np.sort(np.array(list(self.per_actor_proof_counts().values())))


class EarningsAnalyzer:
    """Runs the §5.1 measurement pipeline."""

    def __init__(
        self,
        dataset: ForumDataset,
        internet: SimulatedInternet,
        hashlist: HashListService,
        annotator: AnnotatorFn,
        nsfv: Optional[NsfvClassifier] = None,
        rates: Optional[HistoricalRates] = None,
        quarantine: Optional[Quarantine] = None,
        cache=None,
        ingest_memo=None,
        checkpoint=None,
    ):
        self._dataset = dataset
        self._internet = internet
        self._hashlist = hashlist
        self._annotator = annotator
        self._nsfv = nsfv if nsfv is not None else NsfvClassifier()
        self._rates = rates if rates is not None else HistoricalRates()
        self._quarantine = quarantine
        #: Optional :class:`~repro.vision.cache.VisionCache`: hash and
        #: NSFV scores are then memoised by digest, so a warm run (the
        #: persistent-store delta path) never renders proof rasters.
        self._cache = cache
        #: Optional :class:`~repro.web.crawler.IngestMemo` + crawl
        #: checkpoint for the §5.1 crawl, see ``repro.store``.
        self._ingest_memo = ingest_memo
        self._checkpoint = checkpoint

    # ------------------------------------------------------------------
    def analyze(self, selection: Optional[Sequence[Thread]] = None) -> EarningsResult:
        """Run the full §5.1 pipeline over the eWhoring selection."""
        threads = list(selection) if selection is not None else ewhoring_threads(self._dataset)
        earning_threads = self._earnings_threads(threads)
        posts_with_links, links = self._collect_links(threads, earning_threads)

        crawler = Crawler(self._internet, ingest_memo=self._ingest_memo)
        # Corrupt payloads are excised at the crawler's ingest boundary
        # (into the shared ledger when one is attached, a private one
        # otherwise) — never into the safety loop below.
        crawl = crawler.crawl(
            links,
            checkpoint=self._checkpoint,
            quarantine=self._quarantine,
            stage="earnings",
        )
        downloaded = crawl.preview_images  # image-sharing links only

        n_abuse = 0
        n_indecent = 0
        safe: List[CrawledImage] = []
        seen_abuse_digests: Set[str] = set()
        for crawled in downloaded:
            if crawled.digest in seen_abuse_digests:
                continue
            try:
                match = self._hashlist.match_hash(self._hash_of(crawled))
                if match.matched:
                    n_abuse += 1
                    seen_abuse_digests.add(crawled.digest)
                    crawled.image.drop_pixels()
                    continue
                verdict = self._classify(crawled)
            except Exception as exc:
                # Defence in depth behind the ingest boundary: a record
                # that still manages to poison the safety checks is
                # excised, not allowed to abort the earnings pipeline.
                if self._quarantine is None:
                    raise
                self._quarantine.admit(
                    "earnings", crawled.digest, exc,
                    {"image_id": crawled.image.image_id},
                )
                continue
            if verdict.nsfv:
                n_indecent += 1
                crawled.image.drop_pixels()
                continue
            safe.append(crawled)

        records: List[ProofRecord] = []
        n_non_proofs = 0
        for crawled in safe:
            plan = self._annotator(crawled.image.image_id)
            if plan is None:
                n_non_proofs += 1
                continue
            records.append(self._to_record(crawled, plan))

        return EarningsResult(
            n_threads_matched=len(earning_threads),
            n_posts_with_links=len(posts_with_links),
            n_unique_urls=len({str(link.url) for link in links}),
            n_downloaded=len(downloaded),
            n_abuse_matched=n_abuse,
            n_indecent_filtered=n_indecent,
            n_analyzable=len(safe),
            records=records,
            n_non_proofs=n_non_proofs,
        )

    # ------------------------------------------------------------------
    def _hash_of(self, crawled: CrawledImage) -> int:
        """Perceptual hash, memoised by digest when a cache is attached."""
        if self._cache is None:
            return robust_hash(crawled.image.pixels)
        return int(
            self._cache.hash_for(
                crawled.digest, lambda: robust_hash(crawled.image.pixels)
            )
        )

    def _classify(self, crawled: CrawledImage):
        """NSFV verdict, memoised by digest when a cache is attached.

        The cached path goes through :meth:`NsfvClassifier.classify_batch`
        (verdict-identical to :meth:`~NsfvClassifier.classify` by that
        method's contract) with a lazy raster, so a warm digest never
        renders pixels.
        """
        if self._cache is None:
            return self._nsfv.classify(crawled.image.pixels)
        return self._nsfv.classify_batch(
            [lambda: crawled.image.pixels],
            digests=[crawled.digest],
            cache=self._cache,
        )[0]

    # ------------------------------------------------------------------
    def _earnings_threads(self, threads: Sequence[Thread]) -> List[Thread]:
        """Threads selected by heading terms or by the bragging board."""
        bragging_boards = {
            b.board_id for b in self._dataset.boards() if b.is_bragging_board
        }
        selected: List[Thread] = []
        for thread in threads:
            heading = thread.heading_lower()
            if any(term in heading for term in EARNINGS_HEADING_TERMS):
                selected.append(thread)
            elif thread.board_id in bragging_boards:
                selected.append(thread)
        return selected

    def _collect_links(
        self, all_threads: Sequence[Thread], earning_threads: Sequence[Thread]
    ) -> Tuple[List[Post], List[LinkRecord]]:
        """Posts with image-sharing links from both §5.1 query paths."""
        posts: List[Post] = []
        links: List[LinkRecord] = []
        seen_posts: Set[int] = set()
        seen_urls: Set[str] = set()

        def harvest(thread: Thread, post: Post) -> None:
            if post.post_id in seen_posts:
                return
            found = False
            for url in extract_urls(post.content):
                service = service_by_domain(url.host)
                if service is None or service.kind is not ServiceKind.IMAGE_SHARING:
                    continue
                key = str(url)
                if key in seen_urls:
                    continue
                seen_urls.add(key)
                links.append(
                    LinkRecord(
                        url=url,
                        thread_id=thread.thread_id,
                        post_id=post.post_id,
                        author_id=post.author_id,
                        posted_at=post.created_at,
                        link_kind="preview",
                    )
                )
                found = True
            if found:
                seen_posts.add(post.post_id)
                posts.append(post)

        for thread in earning_threads:
            for post in self._dataset.posts_in_thread(thread.thread_id):
                harvest(thread, post)
        # 'proof' + trading-term posts anywhere in the selection (§5.1).
        earning_ids = {t.thread_id for t in earning_threads}
        for thread in all_threads:
            if thread.thread_id in earning_ids:
                continue
            for post in self._dataset.posts_in_thread(thread.thread_id):
                content = post.content.lower()
                if "proof" in content and TRADE_KEYWORDS.matches(content):
                    harvest(thread, post)
        return posts, links

    def _to_record(self, crawled: CrawledImage, plan: ProofPlan) -> ProofRecord:
        """Convert an annotated proof to USD at historical rates."""
        if plan.shows_transactions:
            transaction_usd = tuple(
                self._rates.to_usd(Money(amount, plan.currency), when)
                for when, amount in plan.transactions
            )
            total_usd = float(sum(transaction_usd))
        else:
            transaction_usd = ()
            total_usd = self._rates.to_usd(
                Money(plan.total_in_currency, plan.currency), plan.date
            )
        return ProofRecord(
            image_id=crawled.image.image_id,
            digest=crawled.digest,
            post_id=crawled.link.post_id,
            author_id=crawled.link.author_id,
            posted_at=crawled.link.posted_at,
            platform=plan.platform,
            currency=plan.currency,
            n_transactions=plan.n_transactions,
            shows_transactions=plan.shows_transactions,
            total_usd=total_usd,
            transaction_usd=transaction_usd,
        )


# ----------------------------------------------------------------------
# Currency Exchange (Table 7)
# ----------------------------------------------------------------------

@dataclass
class CurrencyExchangeTable:
    """Offered/wanted counts per canonical currency (Table 7)."""

    offered: Dict[str, int]
    wanted: Dict[str, int]
    n_threads: int
    n_actors: int

    def row(self, side: str) -> Dict[str, int]:
        return dict(self.offered if side == "offered" else self.wanted)


def currency_exchange_table(
    dataset: ForumDataset,
    min_ewhoring_posts: int = 50,
    selection: Optional[Sequence[Thread]] = None,
) -> CurrencyExchangeTable:
    """Build Table 7: CE threads of heavily involved eWhoring actors.

    Only threads started *after* the actor's first eWhoring post count,
    as in §5.1.
    """
    threads = list(selection) if selection is not None else ewhoring_threads(dataset)
    post_counts: Dict[int, int] = {}
    first_post: Dict[int, datetime] = {}
    for thread in threads:
        for post in dataset.posts_in_thread(thread.thread_id):
            post_counts[post.author_id] = post_counts.get(post.author_id, 0) + 1
            current = first_post.get(post.author_id)
            if current is None or post.created_at < current:
                first_post[post.author_id] = post.created_at
    eligible = {a for a, n in post_counts.items() if n > min_ewhoring_posts}

    ce_boards = {b.board_id for b in dataset.boards() if b.is_currency_exchange}
    offered: Dict[str, int] = {}
    wanted: Dict[str, int] = {}
    actors: Set[int] = set()
    n_threads = 0
    for board_id in ce_boards:
        for thread in dataset.threads_in_board(board_id):
            author = thread.author_id
            if author not in eligible:
                continue
            if thread.created_at <= first_post[author]:
                continue
            offer = parse_exchange_heading(thread.heading)
            offered[offer.offered] = offered.get(offer.offered, 0) + 1
            wanted[offer.wanted] = wanted.get(offer.wanted, 0) + 1
            actors.add(author)
            n_threads += 1
    return CurrencyExchangeTable(
        offered=offered, wanted=wanted, n_threads=n_threads, n_actors=len(actors)
    )
