"""Thread feature extraction for the TOP classifier (§4.1).

For each thread the extractor computes the statistical features the
paper lists — reply count, link counts to cloud-storage / image-sharing
sites and to other forum threads, first-post length, question marks and
special-keyword counts in the heading — and concatenates them with
TF-IDF features over the thread's text (heading and posts).

Statistical columns are z-scored with moments fitted on the training
corpus so they live on the same scale as the L2-normalised TF-IDF block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..text.normalize import normalize_forum_text
from ..text.tokenize import count_question_marks
from ..text.vectorize import TfidfVectorizer
from ..web.sites import ServiceKind, service_by_domain
from ..web.url import extract_urls
from .keywords import PACK_KEYWORDS, REQUEST_KEYWORDS, TUTORIAL_KEYWORDS

__all__ = ["ThreadFeatureExtractor", "ThreadStats", "thread_document", "thread_stats"]

#: How many replies contribute text to the thread document.
_MAX_REPLIES_IN_DOCUMENT = 5


@dataclass(frozen=True, slots=True)
class ThreadStats:
    """The non-textual feature vector of one thread."""

    n_replies: int
    n_cloud_links: int
    n_imageshare_links: int
    n_internal_links: int
    first_post_length: int
    heading_question_marks: int
    heading_request_keywords: int
    heading_tutorial_keywords: int
    heading_pack_keywords: int

    def as_array(self) -> np.ndarray:
        return np.array(
            [
                self.n_replies,
                self.n_cloud_links,
                self.n_imageshare_links,
                self.n_internal_links,
                self.first_post_length,
                self.heading_question_marks,
                self.heading_request_keywords,
                self.heading_tutorial_keywords,
                self.heading_pack_keywords,
            ],
            dtype=np.float64,
        )


N_STAT_FEATURES = 9


def thread_stats(
    dataset: ForumDataset, thread: Thread, normalize: bool = False
) -> ThreadStats:
    """Compute the statistical features of one thread.

    With ``normalize`` the heading passes through the §4.1 forum-text
    normaliser before keyword counting (the A4 extension).
    """
    opener = dataset.initial_post(thread.thread_id)
    opener_text = opener.content if opener is not None else ""
    n_cloud = 0
    n_imageshare = 0
    n_internal = 0
    for url in extract_urls(opener_text):
        service = service_by_domain(url.host)
        if service is None:
            n_internal += 1  # links to other threads / unknown targets
        elif service.kind is ServiceKind.CLOUD_STORAGE:
            n_cloud += 1
        else:
            n_imageshare += 1
    heading = normalize_forum_text(thread.heading) if normalize else thread.heading
    return ThreadStats(
        n_replies=dataset.reply_count(thread.thread_id),
        n_cloud_links=n_cloud,
        n_imageshare_links=n_imageshare,
        n_internal_links=n_internal,
        first_post_length=len(opener_text),
        heading_question_marks=count_question_marks(heading),
        heading_request_keywords=REQUEST_KEYWORDS.count_matches(heading),
        heading_tutorial_keywords=TUTORIAL_KEYWORDS.count_matches(heading),
        heading_pack_keywords=PACK_KEYWORDS.count_matches(heading),
    )


def thread_document(
    dataset: ForumDataset, thread: Thread, normalize: bool = False
) -> str:
    """The text document of a thread: heading (doubled) plus early posts.

    The heading is repeated so its terms dominate the TF-IDF signal, as
    headings carry the thread's intent (§3).  With ``normalize`` every
    part passes through the forum-text normaliser first.
    """
    parts: List[str] = [thread.heading, thread.heading]
    posts = dataset.posts_in_thread(thread.thread_id)
    for post in posts[: _MAX_REPLIES_IN_DOCUMENT + 1]:
        parts.append(post.content)
    document = "\n".join(parts)
    return normalize_forum_text(document) if normalize else document


class ThreadFeatureExtractor:
    """Fits on a training thread set and vectorises arbitrary threads."""

    def __init__(
        self,
        min_df: int = 2,
        max_terms: Optional[int] = 1500,
        normalize: bool = False,
    ):
        self._vectorizer = TfidfVectorizer(min_df=min_df, max_terms=max_terms)
        self._stat_mean: Optional[np.ndarray] = None
        self._stat_std: Optional[np.ndarray] = None
        self.normalize = normalize

    @property
    def fitted(self) -> bool:
        return self._stat_mean is not None

    def fit(self, dataset: ForumDataset, threads: Sequence[Thread]) -> "ThreadFeatureExtractor":
        """Learn vocabulary, IDF weights and stat moments."""
        if not threads:
            raise ValueError("cannot fit on an empty thread set")
        documents = [thread_document(dataset, t, self.normalize) for t in threads]
        self._vectorizer.fit(documents)
        stats = np.vstack(
            [thread_stats(dataset, t, self.normalize).as_array() for t in threads]
        )
        self._stat_mean = stats.mean(axis=0)
        std = stats.std(axis=0)
        std[std == 0.0] = 1.0
        self._stat_std = std
        return self

    def transform(self, dataset: ForumDataset, threads: Sequence[Thread]) -> np.ndarray:
        """Vectorise threads into [z-scored stats || TF-IDF] rows."""
        if not self.fitted:
            raise RuntimeError("extractor must be fitted before transform")
        if not threads:
            vocab = self._vectorizer.vocabulary
            width = N_STAT_FEATURES + (len(vocab) if vocab else 0)
            return np.zeros((0, width))
        documents = [thread_document(dataset, t, self.normalize) for t in threads]
        tfidf = self._vectorizer.transform(documents)
        stats = np.vstack(
            [thread_stats(dataset, t, self.normalize).as_array() for t in threads]
        )
        stats = (stats - self._stat_mean) / self._stat_std
        return np.hstack([stats, tfidf])

    def fit_transform(self, dataset: ForumDataset, threads: Sequence[Thread]) -> np.ndarray:
        return self.fit(dataset, threads).transform(dataset, threads)
