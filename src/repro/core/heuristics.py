"""Heuristic TOP classifier (§4.1).

The rule set encodes the analysts' domain expertise: a heading that
names the offered artefact (pack / pics / collection / unsaturated …)
and does not look like a request (no question marks, no buy/help
vocabulary) or a tutorial is a Thread Offering Packs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..text.normalize import normalize_forum_text
from ..text.tokenize import count_question_marks
from .keywords import REQUEST_KEYWORDS, STRONG_PACK_KEYWORDS, TUTORIAL_KEYWORDS

__all__ = ["HeuristicTopClassifier"]


@dataclass(frozen=True)
class HeuristicTopClassifier:
    """Keyword rules over thread headings.

    ``max_question_marks`` and the exclusion lexicons discard threads
    *asking for* packs (§4.1: "we also account for both the number of
    question marks and the presence of keywords related to buying").
    """

    max_question_marks: int = 0
    exclude_requests: bool = True
    exclude_tutorials: bool = True
    #: Run the §4.1 forum-text normaliser over headings first (the A4
    #: extension; recovers leeted keywords like 'p4ck').
    normalize: bool = False

    def is_top(self, thread: Thread) -> bool:
        """Classify one thread from its heading alone."""
        heading = (
            normalize_forum_text(thread.heading) if self.normalize else thread.heading
        )
        if not STRONG_PACK_KEYWORDS.matches(heading):
            return False
        if count_question_marks(heading) > self.max_question_marks:
            return False
        if self.exclude_requests and REQUEST_KEYWORDS.matches(heading):
            return False
        if self.exclude_tutorials and TUTORIAL_KEYWORDS.matches(heading):
            return False
        return True

    def predict(self, dataset: ForumDataset, threads: Sequence[Thread]) -> List[bool]:
        """Vector form; the dataset argument keeps the classifier API
        uniform with the ML arm (heuristics only need headings)."""
        return [self.is_top(thread) for thread in threads]
