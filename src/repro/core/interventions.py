"""Intervention simulations (§8: recommendations and disruption).

The paper closes with concrete disruption proposals.  This module makes
them executable against a synthetic world, so their effect on the
eWhoring supply chain can be measured rather than argued:

* **Hash-blacklist enforcement** — "blacklists with hashes of known
  images used for eWhoring … could be created and shared among
  stakeholders": hosting services take down every upload whose
  perceptual hash matches a shared blacklist seeded from previously
  crawled packs.
* **Payment-account takedown** — "payment platforms may be able to
  play a role in detecting and shutting down accounts used to receive
  payments": a fraction of earning actors lose their platform accounts,
  removing their subsequent proofs/income.
* **Currency-exchange regulation** — "regulating the exchange of
  non-fiat currencies, such as selling gift cards for Bitcoin": gift-
  card→crypto CE trades are blocked, and the resulting laundering
  friction is measured.

Each intervention takes a measurement (what the pipeline saw), applies
the counterfactual, and reports before/after supply metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..finance.parser import parse_exchange_heading
from ..vision.bits import popcount
from ..vision.photodna import hamming_distance, robust_hash
from ..web.crawler import CrawlResult, CrawledImage
from .earnings import CurrencyExchangeTable, EarningsResult

__all__ = [
    "BlacklistIntervention",
    "BlacklistOutcome",
    "CurrencyRegulationOutcome",
    "PaymentTakedownOutcome",
    "payment_account_takedown",
    "regulate_gift_card_exchange",
]


# ----------------------------------------------------------------------
# 1. Shared hash blacklist at hosting services
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class BlacklistOutcome:
    """Effect of hash-blacklist enforcement on the image supply."""

    blacklist_size: int
    n_images_checked: int
    n_images_blocked: int
    n_packs_checked: int
    #: Packs rendered useless (>= half their images blocked).
    n_packs_disrupted: int
    #: Fraction of *evasion* (mirrored) images that slipped through —
    #: the blacklist's known weakness.
    evasion_leak_rate: float

    @property
    def block_rate(self) -> float:
        return self.n_images_blocked / self.n_images_checked if self.n_images_checked else 0.0

    @property
    def pack_disruption_rate(self) -> float:
        return self.n_packs_disrupted / self.n_packs_checked if self.n_packs_checked else 0.0


class BlacklistIntervention:
    """A stakeholder-shared blacklist of known eWhoring image hashes.

    Seeded from a crawled corpus (what the measurement pipeline — or a
    cooperating platform — has already seen), then applied to future
    uploads: any image within ``radius`` Hamming bits of a blacklisted
    hash is refused.
    """

    def __init__(self, radius: int = 9):
        if not 0 <= radius < 64:
            raise ValueError("radius must be within [0, 63]")
        self.radius = radius
        self._hashes: List[int] = []
        self._array: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def seed_from_images(self, images: Iterable[CrawledImage]) -> int:
        """Add every distinct crawled image's hash; returns hashes added."""
        seen_digests: Set[str] = set()
        added = 0
        for crawled in images:
            if crawled.digest in seen_digests:
                continue
            seen_digests.add(crawled.digest)
            self._hashes.append(robust_hash(crawled.image.pixels))
            added += 1
        self._array = None
        return added

    def add_hash(self, image_hash: int) -> None:
        self._hashes.append(image_hash)
        self._array = None

    @property
    def size(self) -> int:
        return len(self._hashes)

    def blocks(self, pixels: np.ndarray) -> bool:
        """Would an upload of ``pixels`` be refused?"""
        return self.blocks_hash(robust_hash(pixels))

    def blocks_hash(self, image_hash: int) -> bool:
        if not self._hashes:
            return False
        if self._array is None:
            self._array = np.array(self._hashes, dtype=np.uint64)
        distances = popcount(self._array ^ np.uint64(image_hash))
        return bool(distances.min() <= self.radius)

    # ------------------------------------------------------------------
    def evaluate_on_future_crawl(self, crawl: CrawlResult) -> BlacklistOutcome:
        """Apply the blacklist to a later crawl's uploads.

        Measures how much of the re-circulating supply the blacklist
        would have stopped, per image and per pack, and how much leaks
        through via evasion transforms (mirroring defeats the hash, as
        it defeats reverse search — §4.5).
        """
        unique = crawl.unique_digests()
        n_blocked = 0
        evasion_total = 0
        evasion_leaked = 0
        blocked_digests: Set[str] = set()
        for digest, crawled in unique.items():
            blocked = self.blocks(crawled.image.pixels)
            if blocked:
                n_blocked += 1
                blocked_digests.add(digest)
            if "mirror" in crawled.image.latent.transform_chain:
                evasion_total += 1
                if not blocked:
                    evasion_leaked += 1

        n_disrupted = 0
        for pack in crawl.packs:
            digests = {d for d in (c.digest for c in crawl.pack_images
                                   if c.pack_id == pack.pack_id)}
            if not digests:
                continue
            blocked_count = sum(1 for d in digests if d in blocked_digests)
            if blocked_count * 2 >= len(digests):
                n_disrupted += 1

        return BlacklistOutcome(
            blacklist_size=self.size,
            n_images_checked=len(unique),
            n_images_blocked=n_blocked,
            n_packs_checked=len(crawl.packs),
            n_packs_disrupted=n_disrupted,
            evasion_leak_rate=(evasion_leaked / evasion_total) if evasion_total else 0.0,
        )


# ----------------------------------------------------------------------
# 2. Payment-account takedown
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class PaymentTakedownOutcome:
    """Effect of shutting down detected payment accounts."""

    detection_rate: float
    n_actors: int
    n_actors_hit: int
    income_before_usd: float
    income_after_usd: float

    @property
    def income_removed_usd(self) -> float:
        return self.income_before_usd - self.income_after_usd

    @property
    def income_reduction(self) -> float:
        if self.income_before_usd == 0:
            return 0.0
        return self.income_removed_usd / self.income_before_usd


def payment_account_takedown(
    earnings: EarningsResult,
    detection_rate: float,
    seed: int = 0,
) -> PaymentTakedownOutcome:
    """Shut down a fraction of earning actors' payment accounts.

    Platforms detect high-volume accounts preferentially: the detection
    probability of an actor scales with their share of total reported
    income (capped at 1), times ``detection_rate`` overall aggressiveness.
    Income received after the takedown (the actor's later proofs) is
    removed.
    """
    if not 0.0 <= detection_rate <= 1.0:
        raise ValueError("detection_rate must be within [0, 1]")
    rng = np.random.default_rng(seed)
    totals = earnings.per_actor_totals()
    if not totals:
        return PaymentTakedownOutcome(detection_rate, 0, 0, 0.0, 0.0)
    mean_total = float(np.mean(list(totals.values())))

    hit_actors: Set[int] = set()
    for actor_id, total in totals.items():
        volume_factor = min(total / (2.0 * mean_total), 1.0)
        if rng.random() < detection_rate * volume_factor:
            hit_actors.add(actor_id)

    # An account takedown removes the actor's later half of proofs (they
    # lose the account mid-career and must rebuild).
    income_after = 0.0
    for actor_id, total in totals.items():
        if actor_id in hit_actors:
            records = sorted(
                (r for r in earnings.records if r.author_id == actor_id),
                key=lambda r: r.posted_at or r.posted_at,
            )
            keep = records[: max(len(records) // 2, 0)]
            income_after += float(sum(r.total_usd for r in keep))
        else:
            income_after += total

    return PaymentTakedownOutcome(
        detection_rate=detection_rate,
        n_actors=len(totals),
        n_actors_hit=len(hit_actors),
        income_before_usd=float(sum(totals.values())),
        income_after_usd=income_after,
    )


# ----------------------------------------------------------------------
# 3. Gift-card → crypto exchange regulation
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class CurrencyRegulationOutcome:
    """Effect of blocking gift-card → crypto exchange."""

    n_threads: int
    n_blocked: int
    #: Offered-AGC threads that can no longer reach crypto.
    agc_to_crypto_blocked: int
    #: Share of all laundering flows (thread count) disrupted.
    @property
    def blocked_share(self) -> float:
        return self.n_blocked / self.n_threads if self.n_threads else 0.0


def regulate_gift_card_exchange(
    dataset,
    table: CurrencyExchangeTable,
    headings: Optional[Sequence[str]] = None,
) -> CurrencyRegulationOutcome:
    """Block CE trades that sell gift cards for cryptocurrency.

    Counts the Table 7 threads whose parsed (offered, wanted) pair is
    (AGC, BTC) — the laundering path the paper singles out ("selling
    Amazon Gift Cards for BTC") — plus any AGC→others crypto-ish flows.
    """
    if headings is None:
        ce_boards = {b.board_id for b in dataset.boards() if b.is_currency_exchange}
        headings = [
            t.heading
            for board_id in ce_boards
            for t in dataset.threads_in_board(board_id)
        ]
    n_blocked = 0
    agc_to_crypto = 0
    for heading in headings:
        offer = parse_exchange_heading(heading)
        if offer.offered == "AGC" and offer.wanted in ("BTC", "others"):
            n_blocked += 1
            if offer.wanted == "BTC":
                agc_to_crypto += 1
    return CurrencyRegulationOutcome(
        n_threads=len(headings),
        n_blocked=n_blocked,
        agc_to_crypto_blocked=agc_to_crypto,
    )
