"""Methodology keywords (Table 2) re-exported for the pipeline.

The pipeline stages reference the lexicons through this module so that
the core package reads as the paper does: one place lists every keyword
the methodology depends on.
"""

from __future__ import annotations

from ..text.lexicon import (
    EARNINGS_KEYWORDS,
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    TABLE2_LEXICONS,
    TUTORIAL_KEYWORDS,
    Lexicon,
)

__all__ = [
    "EARNINGS_HEADING_TERMS",
    "EARNINGS_KEYWORDS",
    "EWHORING_KEYWORDS",
    "Lexicon",
    "PACK_KEYWORDS",
    "REQUEST_KEYWORDS",
    "STRONG_PACK_KEYWORDS",
    "TABLE2_LEXICONS",
    "TRADE_KEYWORDS",
    "TUTORIAL_KEYWORDS",
]

#: The subset of pack keywords that name the *artefact* being offered
#: (§4.1: "most TOPs include specialised keywords such as 'unsaturated'
#: or 'pack'").  The heuristic classifier keys on these; the broader
#: PACK_KEYWORDS list feeds the ML feature extractor.
STRONG_PACK_KEYWORDS = Lexicon(
    "strong_packs",
    (
        "pack", "packs", "package", "packages", "pics", "pictures",
        "vids", "videos", "video", "collection", "collections", "set",
        "sets", "compilation", "unsaturated", "repository", "repositories",
    ),
)

#: Trading-related terms combined with 'proof' to find proof-of-earnings
#: posts outside the dedicated earnings threads (§5.1).
TRADE_KEYWORDS = Lexicon(
    "trade",
    ("selling", "sell", "wts", "buy", "buying", "offering", "sales",
     "vouch", "ebook", "mentoring", "method", "service"),
)

#: Heading substrings selecting earnings threads (§5.1: "we searched for
#: eWhoring related threads containing the words 'you make' or 'earn'").
EARNINGS_HEADING_TERMS = ("you make", "earn")
