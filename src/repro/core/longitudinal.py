"""Longitudinal views of the eWhoring ecosystem (§1, §3).

The study spans more than ten years of forum activity ("the first post
in the dataset was made on November 2008 and the last on March 2019").
This module produces the time-series views that longitudinal claims rest
on: monthly thread/post volumes per forum, community growth (new actors
per month), and activity-lifetime statistics — plus a convenience
year-over-year change table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..forum.query import ewhoring_threads

__all__ = [
    "ActivityTimeline",
    "MonthlySeries",
    "activity_timeline",
    "new_actor_series",
]


def _month_key(when: datetime) -> str:
    return when.strftime("%Y-%m")


@dataclass
class MonthlySeries:
    """A named month → count series with convenience aggregations."""

    name: str
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, when: datetime, amount: int = 1) -> None:
        key = _month_key(when)
        self.counts[key] = self.counts.get(key, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def months(self) -> List[str]:
        return sorted(self.counts)

    def yearly(self) -> Dict[str, int]:
        """Aggregate to calendar years."""
        years: Dict[str, int] = {}
        for month, count in self.counts.items():
            year = month[:4]
            years[year] = years.get(year, 0) + count
        return years

    def peak_month(self) -> Optional[Tuple[str, int]]:
        if not self.counts:
            return None
        month = max(self.counts, key=lambda k: (self.counts[k], k))
        return month, self.counts[month]

    def cumulative(self) -> List[Tuple[str, int]]:
        """Running totals in chronological order."""
        running = 0
        out = []
        for month in self.months():
            running += self.counts[month]
            out.append((month, running))
        return out


@dataclass
class ActivityTimeline:
    """Monthly eWhoring activity, overall and per forum."""

    threads: MonthlySeries
    posts: MonthlySeries
    per_forum_posts: Dict[str, MonthlySeries]
    first_post: Optional[datetime]
    last_post: Optional[datetime]

    @property
    def span_years(self) -> float:
        if self.first_post is None or self.last_post is None:
            return 0.0
        return (self.last_post - self.first_post).days / 365.25

    def growth_ratio(self) -> float:
        """Posts in the last third of the span over the first third.

        Greater than 1 means the community grew over time — the paper's
        implicit longitudinal claim (eWhoring activity developed "since
        at least 2008" and kept growing on Hackforums).
        """
        months = self.posts.months()
        if len(months) < 6:
            return 1.0
        third = len(months) // 3
        early = sum(self.posts.counts[m] for m in months[:third])
        late = sum(self.posts.counts[m] for m in months[-third:])
        return late / early if early else float("inf")


def activity_timeline(
    dataset: ForumDataset,
    selection: Optional[Sequence[Thread]] = None,
) -> ActivityTimeline:
    """Build the monthly activity timeline over the eWhoring selection."""
    threads = list(selection) if selection is not None else ewhoring_threads(dataset)
    thread_series = MonthlySeries("threads")
    post_series = MonthlySeries("posts")
    per_forum: Dict[str, MonthlySeries] = {}
    first: Optional[datetime] = None
    last: Optional[datetime] = None

    for thread in threads:
        thread_series.add(thread.created_at)
        forum_name = dataset.forum(thread.forum_id).name
        forum_series = per_forum.setdefault(forum_name, MonthlySeries(forum_name))
        for post in dataset.posts_in_thread(thread.thread_id):
            post_series.add(post.created_at)
            forum_series.add(post.created_at)
            if first is None or post.created_at < first:
                first = post.created_at
            if last is None or post.created_at > last:
                last = post.created_at

    return ActivityTimeline(
        threads=thread_series,
        posts=post_series,
        per_forum_posts=per_forum,
        first_post=first,
        last_post=last,
    )


def new_actor_series(
    dataset: ForumDataset,
    selection: Optional[Sequence[Thread]] = None,
) -> MonthlySeries:
    """New eWhoring actors per month (month of their first eWhoring post).

    The gateway-into-offending story (§1): how fast the community
    recruits.
    """
    threads = list(selection) if selection is not None else ewhoring_threads(dataset)
    first_seen: Dict[int, datetime] = {}
    for thread in threads:
        for post in dataset.posts_in_thread(thread.thread_id):
            current = first_seen.get(post.author_id)
            if current is None or post.created_at < current:
                first_seen[post.author_id] = post.created_at
    series = MonthlySeries("new_actors")
    for when in first_seen.values():
        series.add(when)
    return series
