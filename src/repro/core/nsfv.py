"""Stage 4: the NSFV classifier — Algorithm 1 of the paper, verbatim.

The classifier combines the OpenNSFW-analogue nudity score with the
Tesseract-analogue OCR word count to decide whether an image is Safe For
Viewing by a researcher:

.. code-block:: none

    NSFW <- openNSFW(image);  OCR <- tesseract(image)
    if NSFW < 0.01:   SFV
    elif NSFW > 0.3:  NSFV
    elif NSFW < 0.05: SFV iff OCR > 10
    else:             SFV iff OCR > 20

Thresholds are parameters so the A2 ablation can sweep them, but the
defaults are the published values, tuned conservatively: zero false
negatives (no indecent image reaches a human) at the cost of some false
positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs.trace import NULL_TRACER
from ..vision.cache import VisionCache
from ..vision.nsfw import NsfwScorer
from ..vision.ocr import OcrEngine

__all__ = ["NsfvClassifier", "NsfvVerdict"]


@dataclass(frozen=True, slots=True)
class NsfvVerdict:
    """One image's classification with the scores behind it."""

    safe_for_viewing: bool
    nsfw_score: float
    ocr_words: int

    @property
    def nsfv(self) -> bool:
        """Not-Safe-For-Viewing — the positive class of §4.4."""
        return not self.safe_for_viewing


@dataclass(frozen=True)
class NsfvClassifier:
    """Algorithm 1 with configurable thresholds and backends."""

    #: Below this NSFW score an image is immediately SFV.
    sfv_threshold: float = 0.01
    #: Above this NSFW score an image is immediately NSFV.
    nsfv_threshold: float = 0.30
    #: Between sfv_threshold and this, OCR must exceed ``low_ocr_words``.
    low_band_threshold: float = 0.05
    #: OCR word requirements for the two ambiguous bands.
    low_ocr_words: int = 10
    high_ocr_words: int = 20

    scorer: NsfwScorer = field(default_factory=NsfwScorer)
    ocr: OcrEngine = field(default_factory=OcrEngine)

    def __post_init__(self) -> None:
        if not (
            0.0 <= self.sfv_threshold
            <= self.low_band_threshold
            <= self.nsfv_threshold
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 <= sfv <= low_band <= nsfv <= 1"
            )

    # ------------------------------------------------------------------
    def classify(self, pixels: np.ndarray) -> NsfvVerdict:
        """Classify one raster; OCR runs only when the score is ambiguous.

        Skipping OCR outside the ambiguous band halves the cost on the
        dominant clear-cut classes without changing any verdict.
        """
        nsfw = self.scorer.score(pixels)
        if nsfw < self.sfv_threshold:
            return NsfvVerdict(True, nsfw, 0)
        if nsfw > self.nsfv_threshold:
            return NsfvVerdict(False, nsfw, 0)
        words = self.ocr.word_count(pixels)
        if nsfw < self.low_band_threshold:
            return NsfvVerdict(words > self.low_ocr_words, nsfw, words)
        return NsfvVerdict(words > self.high_ocr_words, nsfw, words)

    def is_sfv(self, pixels: np.ndarray) -> bool:
        """Algorithm 1's boolean: True when safe for viewing."""
        return self.classify(pixels).safe_for_viewing

    def classify_batch(
        self,
        rasters: Sequence[object],
        *,
        digests: Optional[Sequence[str]] = None,
        cache: Optional[VisionCache] = None,
        tracer=None,
        precomputed=None,
    ) -> List[NsfvVerdict]:
        """Classify many rasters, optionally memoised through a cache.

        ``rasters`` items may be arrays **or zero-argument callables**
        returning an array: callables defer pixel materialisation to the
        moment a score is actually computed, so a fully cache-warm batch
        (an incremental re-run against a persistent store) never renders
        a single raster.

        When ``digests`` (one content digest per raster, aligned) and a
        :class:`~repro.vision.cache.VisionCache` are both supplied, NSFW
        scores and OCR word counts are looked up / stored under each
        digest, so repeated digests — within this batch or across
        pipeline stages — are scored once.  Verdicts are identical to
        mapping :meth:`classify` over the same rasters: OCR still runs
        only inside the ambiguous band, and a cached OCR count never
        changes a clear-cut verdict.

        ``tracer`` wraps the batch in a ``vision.nsfv_batch`` span whose
        attributes count the images scored and the OCR passes the
        ambiguous band demanded (DESIGN.md §9).

        ``precomputed`` is a :class:`~repro.core.abuse_filter.StreamMatcher`
        that scored digests while the crawl streamed lane completions.
        It only changes what a cache *miss* costs: the same lookups run
        in the same order, but the compute function replays the streamed
        value instead of re-running the model, so verdicts, cache
        statistics and every deterministic view are bit-identical with
        or without the stream.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        items = rasters if isinstance(rasters, list) else list(rasters)
        if digests is not None and len(digests) != len(items):
            raise ValueError("digests must align one-to-one with rasters")

        def pixels_of(item):
            return item() if callable(item) else item

        with tracer.span("vision.nsfv_batch", n_images=len(items)) as span:
            if digests is None or cache is None:
                verdicts_plain: List[NsfvVerdict] = []
                n_ocr = 0
                for item in items:
                    verdict = self.classify(pixels_of(item))
                    if (
                        self.sfv_threshold <= verdict.nsfw_score
                        and verdict.nsfw_score <= self.nsfv_threshold
                    ):
                        n_ocr += 1
                    verdicts_plain.append(verdict)
                span.set(n_ocr=n_ocr)
                return verdicts_plain

            verdicts: List[Optional[NsfvVerdict]] = [None] * len(items)
            seen: Dict[str, NsfvVerdict] = {}
            n_ocr = 0
            for i, (item, digest) in enumerate(zip(items, digests)):
                cached = seen.get(digest)
                if cached is not None:
                    verdicts[i] = cached
                    continue
                compute_nsfw = lambda it=item: self.scorer.score(pixels_of(it))
                if precomputed is not None:
                    compute_nsfw = (
                        lambda d=digest, fn=compute_nsfw: precomputed.nsfw_for(d, fn)
                    )
                nsfw = float(cache.nsfw_for(digest, compute_nsfw))
                if nsfw < self.sfv_threshold:
                    verdict = NsfvVerdict(True, nsfw, 0)
                elif nsfw > self.nsfv_threshold:
                    verdict = NsfvVerdict(False, nsfw, 0)
                else:
                    n_ocr += 1
                    compute_ocr = lambda it=item: self.ocr.word_count(pixels_of(it))
                    if precomputed is not None:
                        compute_ocr = (
                            lambda d=digest, fn=compute_ocr: precomputed.ocr_words_for(d, fn)
                        )
                    words = int(cache.ocr_for(digest, compute_ocr))
                    if nsfw < self.low_band_threshold:
                        verdict = NsfvVerdict(words > self.low_ocr_words, nsfw, words)
                    else:
                        verdict = NsfvVerdict(words > self.high_ocr_words, nsfw, words)
                seen[digest] = verdict
                verdicts[i] = verdict
            span.set(n_unique=len(seen), n_ocr=n_ocr)
            return [v for v in verdicts if v is not None]
