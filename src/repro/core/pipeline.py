"""The end-to-end measurement pipeline of Figure 1.

:class:`EwhoringPipeline` chains the five stages over a synthetic world:

1. **Extract TOPs** — select eWhoring threads (§3), annotate a sample,
   train the hybrid classifier, extract Threads Offering Packs (§4.1);
2. **Extract URLs & download** — whitelist + snowball, crawl previews
   and packs (§4.2);
3. **Filter child abuse** — hashlist sweep, report, delete (§4.3);
4. **Classify images** — Algorithm 1 splits SFV/NSFV (§4.4);
5. **Reverse search & analyse** — provenance, seen-before, domain
   categories (§4.5);

plus the §5 earnings pipeline and the §6 actor analysis, so a single
:meth:`run` produces every quantity the paper's tables and figures need.

Every stage executes inside a recorded error boundary (see
:mod:`repro.core.stage_runner`).  With ``strict=True`` (default)
failures propagate exactly as before; with ``strict=False`` the
pipeline *degrades gracefully*: a failed stage yields a
:class:`PipelineReport` whose corresponding section is ``None``, a
structured :class:`~repro.core.stage_runner.StageFailure` is recorded,
and dependent stages are skipped while independent ones (e.g. the §5
earnings analysis after a crawl failure) still run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..domains.classifiers import DomainClassifier, default_classifiers
from ..forum.dataset import ForumDataset
from ..obs import RunTelemetry
from ..forum.models import Thread
from ..forum.query import ForumSummary, ewhoring_threads, forum_summaries
from ..ml.split import train_test_split
from ..synth.earnings_gen import ProofPlan
from ..vision.cache import VisionCache, VisionCacheStats
from ..vision.photodna import HashListService
from ..vision.reverse_search import ReverseImageIndex
from ..web.archive import WaybackArchive
from ..web.checkpoint import CrawlCheckpoint
from ..web.crawler import CrawlResult, CrawledImage, Crawler
from ..web.internet import SimulatedInternet
from ..web.retry import RetryPolicy
from .abuse_filter import AbuseFilter, AbuseFilterResult, StreamMatcher
from .quarantine import Quarantine
from .stage_runner import StageFailure, StageOutcome, StageRunner
from .actors import (
    ActorAnalyzer,
    CohortRow,
    InterestEvolution,
    KeyActorSelection,
    cohort_table,
    interest_evolution,
    select_key_actors,
)
from .earnings import (
    CurrencyExchangeTable,
    EarningsAnalyzer,
    EarningsResult,
    currency_exchange_table,
)
from .nsfv import NsfvClassifier, NsfvVerdict
from .provenance import ProvenanceAnalyzer, ProvenanceResult
from .top_classifier import ExtractionStats, HybridTopClassifier, TopEvaluation
from .url_extraction import LinkExtraction, extract_links

__all__ = ["EwhoringPipeline", "PipelineReport"]

#: Oracles standing in for human work: thread id → is-TOP annotation,
#: image id → proof ground truth (or None).
TopOracleFn = Callable[[int], bool]
ProofOracleFn = Callable[[int], Optional[ProofPlan]]


@dataclass
class PipelineReport:
    """Everything one pipeline run measured.

    Under ``strict=False`` any section downstream of a failed stage may
    be ``None`` (marked unavailable); inspect :attr:`stage_failures` /
    :attr:`stage_outcomes` for the structured failure records.
    """

    # Stage 0: dataset selection (§3, Table 1).
    selection: List[Thread]
    forum_summaries: List[ForumSummary]

    # Stage 1: TOP extraction (§4.1).
    top_evaluation: Optional[TopEvaluation] = None
    extraction_stats: Optional[ExtractionStats] = None
    tops: Optional[List[Thread]] = None
    tops_per_forum: Optional[Dict[str, int]] = None
    n_annotated: Optional[int] = None
    n_annotated_tops: Optional[int] = None

    # Stage 2: URLs and crawling (§4.2).
    links: Optional[LinkExtraction] = None
    crawl: Optional[CrawlResult] = None

    # Stage 3: abuse filtering (§4.3).
    abuse: Optional[AbuseFilterResult] = None

    # Stage 4: NSFV classification (§4.4).
    preview_verdicts: Optional[List[Tuple[CrawledImage, NsfvVerdict]]] = None
    n_nsfv_previews: Optional[int] = None

    # Stage 5: provenance (§4.5).
    provenance: Optional[ProvenanceResult] = None

    # §5: profits.
    earnings: Optional[EarningsResult] = None
    currency_exchange: Optional[CurrencyExchangeTable] = None

    # §6: actors.
    actor_analyzer: Optional[ActorAnalyzer] = None
    cohorts: Optional[List[CohortRow]] = None
    key_actors: Optional[KeyActorSelection] = None
    interests: Optional[InterestEvolution] = None

    # Stage boundaries (robustness layer).
    stage_outcomes: List[StageOutcome] = field(default_factory=list)
    stage_failures: List[StageFailure] = field(default_factory=list)

    #: Hit/miss/evict counters of the run's shared :class:`VisionCache`.
    vision_cache_stats: Optional[VisionCacheStats] = None

    #: The run's shared record-level fault ledger (see DESIGN.md §8):
    #: every payload excised at a per-record boundary, across stages.
    quarantine: Optional[Quarantine] = None

    #: The run's unified telemetry (DESIGN.md §9): the span tracer, the
    #: metrics registry and the Figure-1 stage funnel, ready for the
    #: :mod:`repro.obs.export` sinks.
    telemetry: Optional[RunTelemetry] = None

    @property
    def n_quarantined(self) -> int:
        """Total records excised across all stages of this run."""
        return len(self.quarantine) if self.quarantine is not None else 0

    @property
    def nsfv_previews(self) -> List[CrawledImage]:
        """Previews classified Not-Safe-For-Viewing (model images)."""
        if self.preview_verdicts is None:
            return []
        return [c for c, v in self.preview_verdicts if v.nsfv]

    @property
    def degraded(self) -> bool:
        """True when any stage failed or was skipped."""
        return any(o.status != "ok" for o in self.stage_outcomes)

    def stage_failure(self, stage: str) -> Optional[StageFailure]:
        """The failure record for ``stage``, or ``None``."""
        for failure in self.stage_failures:
            if failure.stage == stage:
                return failure
        return None


class EwhoringPipeline:
    """Wires the five stages plus §5/§6 over one world's components."""

    def __init__(
        self,
        dataset: ForumDataset,
        internet: SimulatedInternet,
        reverse_index: ReverseImageIndex,
        hashlist: HashListService,
        archive: Optional[WaybackArchive] = None,
        category_lookup: Optional[Callable[[str], Optional[str]]] = None,
        classifiers: Optional[Sequence[DomainClassifier]] = None,
        nsfv: Optional[NsfvClassifier] = None,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        vision_cache: Optional[VisionCache] = None,
        selection_fn: Optional[Callable[[ForumDataset], List[Thread]]] = None,
        link_extractor: Optional[
            Callable[[ForumDataset, Sequence[Thread]], LinkExtraction]
        ] = None,
        pretrained_classifier: Optional[HybridTopClassifier] = None,
    ):
        self.dataset = dataset
        self.internet = internet
        self.reverse_index = reverse_index
        self.hashlist = hashlist
        self.archive = archive
        self.retry_policy = retry_policy
        self.category_lookup = category_lookup if category_lookup is not None else (lambda d: None)
        self.classifiers = (
            list(classifiers) if classifiers is not None else list(default_classifiers(seed))
        )
        self.nsfv = nsfv if nsfv is not None else NsfvClassifier()
        self.seed = seed
        #: Shared per-run memo of hash / NSFW / OCR work (see DESIGN.md §7).
        self.vision_cache = vision_cache if vision_cache is not None else VisionCache()
        # Adversarial-drift injection points (defaults reproduce the
        # paper's static methodology bit-for-bit; repro.drift overrides
        # them to model adaptive defenses):
        #: Thread-selection strategy for stage 1 (default: §4.1 keyword
        #: and board selection via :func:`ewhoring_threads`).
        self.selection_fn = selection_fn if selection_fn is not None else ewhoring_threads
        #: Link-extraction strategy for stage 2 (default:
        #: :func:`extract_links` with the static whitelist registry).
        self.link_extractor = link_extractor if link_extractor is not None else extract_links
        #: A frozen, already-fitted TOP classifier; set, stage 1 skips
        #: annotation + training (the stale-model arm of the retraining-
        #: cadence defense).
        self.pretrained_classifier = pretrained_classifier
        #: The classifier the last run actually used (fitted); see
        #: ``_stage_top``.
        self.last_classifier: Optional[HybridTopClassifier] = None

    # ------------------------------------------------------------------
    def run(
        self,
        top_oracle: TopOracleFn,
        proof_oracle: ProofOracleFn,
        annotate_n: int = 1000,
        train_fraction: float = 0.8,
        min_ce_posts: int = 50,
        key_actor_top_n: int = 50,
        strict: bool = True,
        checkpoint: Optional[Union[str, Path, CrawlCheckpoint]] = None,
        stage_hooks: Optional[Mapping[str, Callable[[], None]]] = None,
        telemetry: Optional[RunTelemetry] = None,
        crawl_workers: Optional[int] = None,
        crawl_executor: Optional[str] = None,
        persist: Optional[object] = None,
    ) -> PipelineReport:
        """Execute the full measurement and return the report.

        ``strict=False`` degrades gracefully on stage failures instead of
        aborting (see :class:`PipelineReport`); ``checkpoint`` makes the
        §4.2 crawl resumable; ``stage_hooks`` maps stage names to
        callables invoked at the top of the stage boundary (tests and
        benchmarks use this to force failures).

        ``telemetry`` is the run's :class:`~repro.obs.RunTelemetry`
        (span tracer + metrics registry); omitted, a fresh registry with
        the shared no-op tracer is created, so funnel counts and metric
        values are always recorded while span tracing stays
        zero-cost-off.  The same object rides out on
        :attr:`PipelineReport.telemetry`.

        ``crawl_workers`` switches the §4.2 crawl to a parallel executor
        (per-domain lanes) **and** overlaps it with the downstream
        vision work: lane completions stream through a
        :class:`~repro.core.abuse_filter.StreamMatcher` that hashes,
        validates, NSFW-scores, OCRs and reverse-searches images while
        later lanes are still crawling, so the whole §3 funnel runs as a
        pipeline rather than a sequence of barriers.  ``crawl_executor``
        selects the backend: ``"thread"`` (default, GIL-bound lanes via
        :mod:`repro.web.parallel`) or ``"process"`` (true multi-core via
        :mod:`repro.web.procpool`; rasters return through a
        shared-memory arena).  Every measured quantity — the crawl
        digest, the quarantine ledger, the deterministic telemetry view
        — is bit-identical for any executor × worker count (``None``
        workers = the serial loop).

        ``persist`` is a warm-memo bundle (duck-typed as
        :class:`~repro.store.incremental.PersistSession`) carrying the
        digest-keyed validation memo and per-stage crawl ingest memos a
        persistent store loaded from earlier epochs.  Memos only skip
        recomputation of pure per-record functions (render / validate /
        digest), so every measured quantity — and the measurement view —
        is bit-identical with or without them; a warm run merely does
        less work (see DESIGN.md §12).
        """
        tele = telemetry if telemetry is not None else RunTelemetry()
        runner = StageRunner(strict=strict, hooks=stage_hooks, telemetry=tele)
        #: One ledger per run: every stage's record-level boundary admits
        #: poison records here, and the report carries it out.  With a
        #: persist session its validation memo replays known-poison
        #: digests without re-rendering their rasters.
        quarantine = Quarantine(
            tracer=tele.tracer,
            validation_memo=persist.validation_memo if persist is not None else None,
        )
        #: The run's shared cache narrates its batched kernels to the
        #: run's tracer (re-pointed each run; the cache may outlive it).
        self.vision_cache.set_tracer(tele.tracer)
        with tele.tracer.span("pipeline.run", seed=self.seed, strict=strict):
            report = self._run_stages(
                runner, tele, quarantine,
                top_oracle, proof_oracle, annotate_n, train_fraction,
                min_ce_posts, key_actor_top_n, checkpoint, crawl_workers,
                crawl_executor, persist,
            )
        return report

    # ------------------------------------------------------------------
    def _run_stages(
        self,
        runner: StageRunner,
        tele: RunTelemetry,
        quarantine: Quarantine,
        top_oracle: TopOracleFn,
        proof_oracle: ProofOracleFn,
        annotate_n: int,
        train_fraction: float,
        min_ce_posts: int,
        key_actor_top_n: int,
        checkpoint: Optional[Union[str, Path, CrawlCheckpoint]],
        crawl_workers: Optional[int] = None,
        crawl_executor: Optional[str] = None,
        persist: Optional[object] = None,
    ) -> PipelineReport:
        """The stage chain, executed inside the ``pipeline.run`` span."""
        fetch_calls_start = self.internet.n_fetch_calls
        selection = self.selection_fn(self.dataset)
        summaries = forum_summaries(self.dataset, selection)

        # ---- stage 1: TOP extraction --------------------------------
        def _stage_top():
            if self.pretrained_classifier is not None:
                classifier = self.pretrained_classifier
                evaluation, n_annotated, n_annotated_tops = None, 0, 0
            else:
                classifier, evaluation, n_annotated, n_annotated_tops = (
                    self._train_classifier(selection, top_oracle, annotate_n, train_fraction)
                )
            tops, stats = classifier.extract_tops(self.dataset, selection)
            # Exposed for repro.drift: the fitted model of this run is
            # what the frozen-classifier arm reuses in later epochs.
            self.last_classifier = classifier
            tops_per_forum: Dict[str, int] = {}
            for thread in tops:
                name = self.dataset.forum(thread.forum_id).name
                tops_per_forum[name] = tops_per_forum.get(name, 0) + 1
            return evaluation, stats, tops, tops_per_forum, n_annotated, n_annotated_tops

        top_out, _ = runner.run(
            "top_extraction", _stage_top, context={"n_threads": len(selection)}
        )
        evaluation = stats = tops = tops_per_forum = None
        n_annotated = n_annotated_tops = None
        if top_out is not None:
            evaluation, stats, tops, tops_per_forum, n_annotated, n_annotated_tops = top_out

        # ---- stage 2: URLs + crawl ----------------------------------
        def _stage_crawl():
            links = self.link_extractor(self.dataset, tops)
            crawler = Crawler(
                self.internet,
                retry_policy=self.retry_policy,
                ingest_memo=(
                    persist.ingest_memo("url_crawl") if persist is not None else None
                ),
            )
            stream: Optional[StreamMatcher] = None
            if crawl_workers is not None:
                # Crawl→funnel overlap: finished lanes stream their
                # images through validation, batched hashing, NSFW/OCR
                # scoring and NSFV-preview reverse search while later
                # lanes are still crawling.  The downstream stages
                # consume the precomputed results in canonical order.
                stream = StreamMatcher(
                    cache=self.vision_cache,
                    validate=True,
                    validation_memo=(
                        persist.validation_memo if persist is not None else None
                    ),
                    nsfv=self.nsfv,
                    reverse_index=self.reverse_index,
                )
            result = crawler.crawl(
                links.all_links,
                checkpoint=checkpoint,
                quarantine=quarantine,
                stage="url_crawl",
                tracer=tele.tracer,
                workers=crawl_workers,
                executor=crawl_executor,
                on_lane=stream.on_lane if stream is not None else None,
                metrics=tele.metrics,
            )
            return links, result, stream

        crawl_out, _ = runner.run(
            "url_crawl",
            _stage_crawl,
            requires=("top_extraction",),
            context={"n_tops": len(tops) if tops is not None else 0},
        )
        links, crawl, stream = (
            crawl_out if crawl_out is not None else (None, None, None)
        )

        # ---- stage 3: abuse filter ----------------------------------
        def _stage_abuse():
            abuse_filter = AbuseFilter(
                self.hashlist,
                reverse_index=self.reverse_index,
                domain_info=self._domain_info,
                cache=self.vision_cache,
            )
            abuse = abuse_filter.sweep(
                crawl.all_images,
                dataset=self.dataset,
                quarantine=quarantine,
                precomputed=stream,
            )
            clean_previews = [c for c in crawl.preview_images if abuse.is_clean(c)]
            clean_pack_images = [c for c in crawl.pack_images if abuse.is_clean(c)]
            return abuse, clean_previews, clean_pack_images

        abuse_out, _ = runner.run(
            "abuse_filter",
            _stage_abuse,
            requires=("url_crawl",),
            context={"n_images": len(crawl.all_images) if crawl is not None else 0},
        )
        abuse, clean_previews, clean_pack_images = (
            abuse_out if abuse_out is not None else (None, None, None)
        )

        # ---- stage 4: NSFV classification ---------------------------
        def _stage_nsfv():
            # Record-level boundary: previews whose raster fails
            # validation are excised into the ledger; the batch kernel
            # only ever sees clean rasters.
            previews = quarantine.filter_rasters(
                "nsfv",
                clean_previews,
                ref=lambda c: c.digest,
                raster=lambda c: c.image.pixels,
            )
            # Rasters go in as zero-arg callables so a cache-warm digest
            # (an incremental re-run) never renders its pixels at all.
            verdicts = self.nsfv.classify_batch(
                [lambda c=c: c.image.pixels for c in previews],
                digests=[c.digest for c in previews],
                cache=self.vision_cache,
                tracer=tele.tracer,
                precomputed=stream,
            )
            preview_verdicts = list(zip(previews, verdicts))
            return preview_verdicts, [c for c, v in preview_verdicts if v.nsfv]

        nsfv_out, _ = runner.run(
            "nsfv",
            _stage_nsfv,
            requires=("abuse_filter",),
            context={"n_previews": len(clean_previews) if clean_previews is not None else 0},
        )
        preview_verdicts, nsfv_previews = (
            nsfv_out if nsfv_out is not None else (None, None)
        )

        # ---- stage 5: provenance ------------------------------------
        def _stage_provenance():
            return ProvenanceAnalyzer(
                self.reverse_index,
                archive=self.archive,
                classifiers=self.classifiers,
                category_lookup=self.category_lookup,
                cache=self.vision_cache,
            ).analyze(
                clean_pack_images,
                nsfv_previews,
                quarantine=quarantine,
                precomputed=stream,
            )

        provenance, _ = runner.run(
            "provenance",
            _stage_provenance,
            requires=("nsfv",),
            context={
                "n_pack_images": len(clean_pack_images) if clean_pack_images is not None else 0,
                "n_nsfv_previews": len(nsfv_previews) if nsfv_previews is not None else 0,
            },
        )
        if crawl is not None:
            self._release_pixels(crawl.all_images)

        # ---- §5: earnings (independent of the crawl stages) ---------
        def _stage_earnings():
            earnings = EarningsAnalyzer(
                self.dataset,
                self.internet,
                self.hashlist,
                annotator=proof_oracle,
                nsfv=self.nsfv,
                quarantine=quarantine,
                cache=self.vision_cache if persist is not None else None,
                ingest_memo=(
                    persist.ingest_memo("earnings") if persist is not None else None
                ),
            ).analyze(selection)
            ce_table = currency_exchange_table(
                self.dataset, min_ewhoring_posts=min_ce_posts, selection=selection
            )
            return earnings, ce_table

        earnings_out, _ = runner.run(
            "earnings", _stage_earnings, context={"n_threads": len(selection)}
        )
        earnings, ce_table = earnings_out if earnings_out is not None else (None, None)

        # ---- §6: actors ---------------------------------------------
        def _stage_actors():
            analyzer = ActorAnalyzer(self.dataset, selection)
            packs_per_actor: Dict[int, int] = {}
            for thread in tops:
                packs_per_actor[thread.author_id] = (
                    packs_per_actor.get(thread.author_id, 0) + 1
                )
            analyzer.attach_packs(packs_per_actor)
            analyzer.attach_earnings(
                earnings.per_actor_totals() if earnings is not None else {}
            )
            analyzer.attach_currency_exchange()
            metrics = analyzer.metrics()
            cohorts = cohort_table(metrics)
            key_actors = select_key_actors(metrics, top_n=key_actor_top_n)
            interests = interest_evolution(
                self.dataset, metrics, key_actors.groups.all_key_actors()
            )
            return analyzer, cohorts, key_actors, interests

        actors_out, _ = runner.run(
            "actors",
            _stage_actors,
            requires=("top_extraction",),
            context={"n_actors": len({t.author_id for t in selection})},
        )
        analyzer, cohorts, key_actors, interests = (
            actors_out if actors_out is not None else (None, None, None, None)
        )

        report = PipelineReport(
            selection=selection,
            forum_summaries=summaries,
            top_evaluation=evaluation,
            extraction_stats=stats,
            tops=tops,
            tops_per_forum=tops_per_forum,
            n_annotated=n_annotated,
            n_annotated_tops=n_annotated_tops,
            links=links,
            crawl=crawl,
            abuse=abuse,
            preview_verdicts=preview_verdicts,
            n_nsfv_previews=len(nsfv_previews) if nsfv_previews is not None else None,
            provenance=provenance,
            earnings=earnings,
            currency_exchange=ce_table,
            actor_analyzer=analyzer,
            cohorts=cohorts,
            key_actors=key_actors,
            interests=interests,
            stage_outcomes=list(runner.outcomes),
            stage_failures=list(runner.failures),
            vision_cache_stats=self.vision_cache.stats(),
            quarantine=quarantine,
            telemetry=tele,
        )
        self._record_telemetry(report, tele, fetch_calls_start)
        return report

    # ------------------------------------------------------------------
    def _record_telemetry(
        self,
        report: PipelineReport,
        tele: RunTelemetry,
        fetch_calls_start: int,
    ) -> None:
        """Record the Figure-1 funnel and mirror the scattered stats.

        The funnel is the paper's headline table: per-stage attrition
        counts, in pipeline order, ``None`` for sections a lenient run
        lost.  The per-subsystem statistics objects (crawl/retry
        counters, vision cache, quarantine ledger, internet fetch
        accounting) are mirrored into the registry once, at run end —
        no per-record metric updates on any hot path.  Everything here
        except ``*_seconds`` metrics is a pure function of the world
        seed (the determinism contract of DESIGN.md §9).
        """
        crawl = report.crawl
        provenance = report.provenance
        n_prov_matches = None
        if provenance is not None:
            n_prov_matches = (
                provenance.summary("packs").matches
                + provenance.summary("previews").matches
            )

        tele.funnel_row("threads_selected", len(report.selection))
        tele.funnel_row(
            "tops_extracted", len(report.tops) if report.tops is not None else None
        )
        tele.funnel_row(
            "links_extracted",
            len(report.links.all_links) if report.links is not None else None,
        )
        tele.funnel_row(
            "images_downloaded", len(crawl.all_images) if crawl is not None else None
        )
        tele.funnel_row(
            "unique_files", crawl.n_unique_files if crawl is not None else None
        )
        tele.funnel_row(
            "nsfv_previews",
            report.n_nsfv_previews if report.n_nsfv_previews is not None else None,
        )
        tele.funnel_row("provenance_matches", n_prov_matches)
        tele.funnel_row("quarantined_records", report.n_quarantined)

        metrics = tele.metrics
        if crawl is not None:
            stats = crawl.stats
            metrics.gauge("crawl.links").set(stats.n_links)
            metrics.gauge("crawl.retries").set(stats.n_retries)
            metrics.gauge("crawl.giveups").set(stats.n_giveups)
            metrics.gauge("crawl.breaker_skips").set(stats.n_breaker_skips)
            metrics.gauge("crawl.transient_faults").set(stats.n_transient_faults)
            for status, count in stats.by_status.items():
                metrics.gauge("crawl.links_by_status", status=status.value).set(count)
            if crawl.breaker_summary is not None:
                metrics.gauge("crawl.breaker_opens").set(
                    crawl.breaker_summary["total_opens"]
                )
                metrics.gauge("crawl.breaker_domains").set(
                    crawl.breaker_summary["n_domains"]
                )
        cache_stats = report.vision_cache_stats
        if cache_stats is not None:
            metrics.gauge("vision_cache.hits").set(cache_stats.hits)
            metrics.gauge("vision_cache.misses").set(cache_stats.misses)
            metrics.gauge("vision_cache.evictions").set(cache_stats.evictions)
            metrics.gauge("vision_cache.entries").set(cache_stats.n_entries)
        if report.quarantine is not None:
            for stage, count in sorted(report.quarantine.by_stage().items()):
                metrics.gauge("quarantine.records_by_stage", stage=stage).set(count)
            for error, count in sorted(report.quarantine.by_error().items()):
                metrics.gauge("quarantine.records_by_error", error=error).set(count)
        metrics.gauge("internet.fetch_calls").set(
            self.internet.n_fetch_calls - fetch_calls_start
        )

    # ------------------------------------------------------------------
    def _train_classifier(
        self,
        selection: Sequence[Thread],
        top_oracle: TopOracleFn,
        annotate_n: int,
        train_fraction: float,
    ) -> Tuple[HybridTopClassifier, TopEvaluation, int, int]:
        """Annotate a sample (§4.1: 1 000 threads), train, evaluate."""
        rng = np.random.default_rng(self.seed)
        n_sample = min(annotate_n, len(selection))
        if n_sample < 10:
            raise ValueError("selection too small to annotate and train on")
        indices = rng.choice(len(selection), size=n_sample, replace=False)
        annotated = [selection[int(i)] for i in indices]
        labels = [bool(top_oracle(t.thread_id)) for t in annotated]
        if not any(labels) or all(labels):
            raise ValueError(
                "annotation sample is single-class; enlarge the sample or world"
            )
        split = train_test_split(
            n_sample,
            train_fraction=train_fraction,
            seed=self.seed,
            stratify_labels=[int(l) for l in labels],
        )
        train_threads = [annotated[i] for i in split.train_indices]
        train_labels = [labels[i] for i in split.train_indices]
        test_threads = [annotated[i] for i in split.test_indices]
        test_labels = [labels[i] for i in split.test_indices]

        classifier = HybridTopClassifier()
        classifier.fit(self.dataset, train_threads, train_labels)
        evaluation = classifier.evaluate(self.dataset, test_threads, test_labels)
        return classifier, evaluation, n_sample, sum(labels)

    def _domain_info(self, domain: str) -> Tuple[Optional[str], Optional[str]]:
        return self.internet.region_of(domain), self.internet.site_type_of(domain)

    @staticmethod
    def _release_pixels(images: Sequence[CrawledImage]) -> None:
        """Drop cached rasters once every stage has consumed them."""
        for crawled in images:
            crawled.image.drop_pixels()
