"""Stage 5: reverse image search, seen-before analysis, domain categories.

Implements §4.5 end to end:

* query selection — every NSFV preview, plus **three images per pack**
  (lowest / median / highest NSFW score), the paper's sampling rule;
* reverse search against the TinEye-analogue index;
* *seen before* — a queried image counts when any matched URL has a
  crawl record (reverse-search crawl date or Wayback snapshot) strictly
  before the image's forum post date;
* zero-match packs — packs whose sampled images all return no matches;
* domain classification — the union of matched domains run through the
  three classifier analogues, yielding the Table 6 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..domains.classifiers import DomainClassifier, DomainVerdict, tag_distribution
from ..media.pack import Pack
from ..vision.cache import VisionCache
from ..vision.nsfw import NsfwScorer
from ..vision.photodna import robust_hash
from ..vision.reverse_search import ReverseImageIndex, ReverseSearchReport
from ..web.archive import WaybackArchive
from ..web.crawler import CrawledImage
from .quarantine import Quarantine

__all__ = [
    "PackSampling",
    "ProvenanceAnalyzer",
    "ProvenanceResult",
    "QueryOutcome",
    "ReverseSearchSummary",
]


@dataclass(frozen=True, slots=True)
class QueryOutcome:
    """One reverse-searched image and what came back."""

    digest: str
    pack_id: Optional[int]
    posted_at: Optional[datetime]
    n_matches: int
    seen_before: bool
    domains: Tuple[str, ...]

    @property
    def matched(self) -> bool:
        return self.n_matches > 0


@dataclass(frozen=True, slots=True)
class ReverseSearchSummary:
    """One row of Table 5."""

    group: str
    total: int
    matches: int
    seen_before: int
    mean_matches_per_matched: float
    max_matches: int

    @property
    def match_rate(self) -> float:
        return self.matches / self.total if self.total else 0.0

    @property
    def seen_before_rate(self) -> float:
        return self.seen_before / self.total if self.total else 0.0


@dataclass
class ProvenanceResult:
    """Everything stage 5 produced."""

    pack_outcomes: List[QueryOutcome]
    preview_outcomes: List[QueryOutcome]
    zero_match_pack_ids: Set[int]
    #: Distinct matched domains across all queries (§4.5: 5 917 domains).
    matched_domains: List[str]
    #: classifier name → Table 6 rows (tag, count, cumulative %).
    domain_tables: Dict[str, List[Tuple[str, int, float]]]
    #: classifier name → raw verdicts, for finer-grained analysis.
    domain_verdicts: Dict[str, List[DomainVerdict]]

    def summary(self, group: str) -> ReverseSearchSummary:
        """Aggregate one group ('packs' or 'previews') as a Table 5 row."""
        outcomes = self.pack_outcomes if group == "packs" else self.preview_outcomes
        matched = [o for o in outcomes if o.matched]
        return ReverseSearchSummary(
            group=group,
            total=len(outcomes),
            matches=len(matched),
            seen_before=sum(1 for o in outcomes if o.seen_before),
            mean_matches_per_matched=(
                float(np.mean([o.n_matches for o in matched])) if matched else 0.0
            ),
            max_matches=max((o.n_matches for o in outcomes), default=0),
        )


@dataclass(frozen=True)
class PackSampling:
    """The per-pack query-selection rule (§4.5): up to ``per_pack`` images
    chosen at the NSFW-score extremes and median."""

    per_pack: int = 3


class ProvenanceAnalyzer:
    """Runs the full stage-5 analysis."""

    def __init__(
        self,
        reverse_index: ReverseImageIndex,
        archive: Optional[WaybackArchive] = None,
        classifiers: Sequence[DomainClassifier] = (),
        category_lookup: Optional[Callable[[str], Optional[str]]] = None,
        scorer: Optional[NsfwScorer] = None,
        sampling: PackSampling = PackSampling(),
        cache: Optional[VisionCache] = None,
    ):
        self._index = reverse_index
        self._archive = archive
        self._classifiers = list(classifiers)
        self._category_lookup = category_lookup if category_lookup is not None else (lambda d: None)
        self._scorer = scorer if scorer is not None else NsfwScorer()
        self._sampling = sampling
        self._cache = cache

    # ------------------------------------------------------------------
    def analyze(
        self,
        pack_images: Sequence[CrawledImage],
        preview_images: Sequence[CrawledImage],
        quarantine: Optional[Quarantine] = None,
        precomputed=None,
    ) -> ProvenanceResult:
        """Reverse-search sampled pack images and all previews.

        With a ``quarantine`` ledger attached, inputs first cross a
        raster-validation boundary (poison that survived the upstream
        stages is excised under ``"provenance"``) and each reverse-search
        query runs inside a per-record error boundary, so one bad record
        costs exactly one query, never the stage.

        ``precomputed`` is a :class:`~repro.core.abuse_filter.StreamMatcher`
        that scored and reverse-searched digests while the crawl streamed
        lane completions: sampling replays its NSFW scores from inside
        the usual cache-miss compute function, and a query whose hash the
        stream already searched reuses the prefetched report (the search
        is a pure function of the hash).  Results, cache statistics and
        every deterministic view are bit-identical with or without it.
        """
        if quarantine is not None:
            pack_images = quarantine.filter_rasters(
                "provenance",
                pack_images,
                ref=lambda c: c.digest,
                raster=lambda c: c.image.pixels,
                context=lambda c: {"group": "packs", "pack_id": c.pack_id},
            )
            preview_images = quarantine.filter_rasters(
                "provenance",
                preview_images,
                ref=lambda c: c.digest,
                raster=lambda c: c.image.pixels,
                context=lambda c: {"group": "previews"},
            )
        sampled = self._sample_packs(pack_images, precomputed)
        pack_outcomes = self._query_all(sampled, quarantine, "packs", precomputed)
        preview_outcomes = self._query_all(
            preview_images, quarantine, "previews", precomputed
        )

        zero_match: Set[int] = set()
        per_pack_matches: Dict[int, List[int]] = {}
        for outcome in pack_outcomes:
            if outcome.pack_id is not None:
                per_pack_matches.setdefault(outcome.pack_id, []).append(outcome.n_matches)
        for pack_id, counts in per_pack_matches.items():
            if all(count == 0 for count in counts):
                zero_match.add(pack_id)

        domains = self._collect_domains(pack_outcomes, preview_outcomes)
        verdicts: Dict[str, List[DomainVerdict]] = {}
        tables: Dict[str, List[Tuple[str, int, float]]] = {}
        for classifier in self._classifiers:
            results = [
                classifier.classify(domain, self._category_lookup(domain))
                for domain in domains
            ]
            verdicts[classifier.name] = results
            tables[classifier.name] = tag_distribution(results)

        return ProvenanceResult(
            pack_outcomes=pack_outcomes,
            preview_outcomes=preview_outcomes,
            zero_match_pack_ids=zero_match,
            matched_domains=domains,
            domain_tables=tables,
            domain_verdicts=verdicts,
        )

    # ------------------------------------------------------------------
    def _sample_packs(
        self,
        pack_images: Sequence[CrawledImage],
        precomputed=None,
    ) -> List[CrawledImage]:
        """Pick lowest/median/highest NSFW-scored images per pack.

        Duplicate digests within a pack are collapsed first, mirroring
        the unique-file set the paper samples from.
        """
        by_pack: Dict[int, Dict[str, CrawledImage]] = {}
        for crawled in pack_images:
            if crawled.pack_id is None:
                continue
            by_pack.setdefault(crawled.pack_id, {}).setdefault(crawled.digest, crawled)

        selected: List[CrawledImage] = []
        for pack_id in sorted(by_pack):
            members = list(by_pack[pack_id].values())
            if len(members) <= self._sampling.per_pack:
                selected.extend(members)
                continue
            scored = sorted(
                members, key=lambda c: self._nsfw_score(c, precomputed)
            )
            # Evenly spaced score quantiles; per_pack=3 gives the paper's
            # lowest / median / highest selection.
            positions = np.linspace(0, len(scored) - 1, self._sampling.per_pack)
            picks = sorted({int(round(p)) for p in positions})
            selected.extend(scored[i] for i in picks)
        return selected

    def _nsfw_score(self, crawled: CrawledImage, precomputed=None) -> float:
        """NSFW score for sampling, memoised through the shared cache."""
        compute = lambda: self._scorer.score(crawled.image.pixels)
        if precomputed is not None:
            compute = lambda fn=compute: precomputed.nsfw_for(crawled.digest, fn)
        if self._cache is None:
            return float(compute())
        return float(self._cache.nsfw_for(crawled.digest, compute))

    def _query_all(
        self,
        images: Sequence[CrawledImage],
        quarantine: Optional[Quarantine],
        group: str,
        precomputed=None,
    ) -> List[QueryOutcome]:
        """Query every image; per-record boundary when a ledger is attached."""
        if quarantine is None:
            return [self._query(c, precomputed) for c in images]
        outcomes: List[QueryOutcome] = []
        for crawled in images:
            with quarantine.guard(
                "provenance", crawled.digest,
                {"group": group, "pack_id": crawled.pack_id},
            ):
                outcomes.append(self._query(crawled, precomputed))
        return outcomes

    def _query(self, crawled: CrawledImage, precomputed=None) -> QueryOutcome:
        if self._cache is None:
            report = self._index.search_pixels(crawled.image.pixels)
        else:
            query_hash = self._cache.hash_for(
                crawled.digest,
                lambda: robust_hash(crawled.image.pixels),
            )
            report = (
                precomputed.report_for(int(query_hash))
                if precomputed is not None
                else None
            )
            if report is None:
                report = self._index.search_hash(int(query_hash))
        posted_at = crawled.link.posted_at
        seen_before = False
        if posted_at is not None:
            seen_before = self._seen_before(report, posted_at)
        return QueryOutcome(
            digest=crawled.digest,
            pack_id=crawled.pack_id,
            posted_at=posted_at,
            n_matches=report.n_matches,
            seen_before=seen_before,
            domains=tuple(report.domains()),
        )

    def _seen_before(self, report: ReverseSearchReport, posted_at: datetime) -> bool:
        for match in report.matches:
            if match.copy.crawl_date < posted_at:
                return True
            if self._archive is not None and self._archive.seen_before(
                match.copy.url, posted_at
            ):
                return True
        return False

    @staticmethod
    def _collect_domains(*outcome_groups: Sequence[QueryOutcome]) -> List[str]:
        seen: Dict[str, None] = {}
        for group in outcome_groups:
            for outcome in group:
                for domain in outcome.domains:
                    seen.setdefault(domain, None)
        return list(seen)
