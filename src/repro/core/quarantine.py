"""Record-level fault isolation: the quarantine ledger.

:class:`~repro.core.stage_runner.StageRunner` isolates whole *stages*;
this module isolates individual *records* inside them.  A poisoned
payload (see :mod:`repro.web.payload_faults`) or any other per-record
crash is converted into a structured :class:`QuarantineRecord` — stage,
record reference (URL or content digest), error class, message, context
— while every other record proceeds.  Crash-only at record granularity:
bad records are excised and accounted for, never allowed to kill or
corrupt the measurement.

One :class:`Quarantine` ledger is shared across a pipeline run: the
crawler's ingest boundary, the abuse filter, the NSFV stage and the
provenance loops all admit into it, and the counts surface in
:class:`~repro.core.pipeline.PipelineReport`, the CLI summary and
``report_text``.

The headline invariant (enforced by the chaos suite in
``tests/test_chaos_quarantine.py``): under *any* corruption profile a
``strict=False`` run completes, the ledger's record count equals the
number of injected corruptions, and every result restricted to clean
records is bit-identical to a corruption-free run on the same seed.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.web` so the crawler can depend on it without an import
cycle (:mod:`repro.obs` and :mod:`repro.media` are leaf dependencies).

Telemetry: a ledger built with a tracer emits one ``quarantine.admit``
event per excised record on whichever span is current when the poison
surfaces (the crawl fetch span, the NSFV stage span, …), and
:meth:`Quarantine.as_dict` is the snapshot the run manifest embeds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    TypeVar,
)

from ..media.validate import validate_raster
from ..obs.trace import NULL_TRACER

__all__ = ["Quarantine", "QuarantineRecord"]

T = TypeVar("T")


@dataclass(frozen=True)
class QuarantineRecord:
    """One excised record and why it was excised."""

    #: Pipeline stage that hit the poison (e.g. ``"url_crawl"``).
    stage: str
    #: Record identity: the link URL at crawl ingest, the content digest
    #: in the vision stages.
    ref: str
    #: Exception class name (the validation taxonomy, usually).
    error_type: str
    message: str
    #: What the boundary knew about the record (pack id, link kind, ...).
    context: Mapping[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        ctx = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        suffix = f" [{ctx}]" if ctx else ""
        return f"{self.stage}: {self.ref}: {self.error_type}: {self.message}{suffix}"

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "ref": self.ref,
            "error_type": self.error_type,
            "message": self.message,
            "context": dict(self.context),
        }


class Quarantine:
    """Shared ledger of per-record failures across pipeline stages.

    ``tracer`` (any :class:`~repro.obs.trace.Tracer`-shaped recorder)
    receives one ``quarantine.admit`` event per excised record; the
    default is the shared no-op recorder.
    """

    def __init__(self, tracer=None, validation_memo=None) -> None:
        self.records: List[QuarantineRecord] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`~repro.media.validate.ValidationMemo` shared
        #: across every stage boundary that filters rasters through this
        #: ledger.  All such boundaries validate with ``context ==
        #: digest`` (a pure per-raster computation), so memoised replay
        #: admits byte-identical records without re-rendering pixels.
        self.validation_memo = validation_memo

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(
        self,
        stage: str,
        ref: str,
        error: BaseException,
        context: Optional[Mapping[str, Any]] = None,
    ) -> QuarantineRecord:
        """Record one poison record; returns the structured record."""
        record = QuarantineRecord(
            stage=stage,
            ref=ref,
            error_type=type(error).__name__,
            message=str(error),
            context=dict(context or {}),
        )
        self.records.append(record)
        self.tracer.event(
            "quarantine.admit", stage=stage, ref=ref, error=record.error_type
        )
        return record

    @contextmanager
    def guard(
        self,
        stage: str,
        ref: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Iterator[None]:
        """Per-record error boundary: exceptions become ledger entries.

        Only :class:`Exception` is converted; ``KeyboardInterrupt`` and
        friends still propagate — quarantine isolates poison records, it
        does not swallow operator aborts.
        """
        try:
            yield
        except Exception as exc:
            self.admit(stage, ref, exc, context)

    def filter_rasters(
        self,
        stage: str,
        items: Sequence[T],
        ref: Callable[[T], str],
        raster: Callable[[T], Any],
        context: Optional[Callable[[T], Mapping[str, Any]]] = None,
    ) -> List[T]:
        """Validation boundary over a record sequence, order-preserving.

        Each item's raster is materialised and passed through
        :func:`~repro.media.validate.validate_raster`; items whose
        payload access *or* validation fails are admitted to the ledger
        and dropped, the rest are returned in their original order.
        """
        memo = self.validation_memo
        survivors: List[T] = []
        for item in items:
            try:
                if memo is not None:
                    memo.validate(ref(item), lambda it=item: raster(it))
                else:
                    validate_raster(raster(item), context=ref(item))
            except Exception as exc:
                self.admit(
                    stage, ref(item), exc, context(item) if context else None
                )
                continue
            survivors.append(item)
        return survivors

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def n_quarantined(self) -> int:
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def count(self, stage: Optional[str] = None) -> int:
        """Total records, or records admitted by one stage."""
        if stage is None:
            return len(self.records)
        return sum(1 for r in self.records if r.stage == stage)

    def by_stage(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.stage] = counts.get(record.stage, 0) + 1
        return counts

    def by_error(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.error_type] = counts.get(record.error_type, 0) + 1
        return counts

    def refs(self, stage: Optional[str] = None) -> Set[str]:
        """Distinct record references, optionally restricted to a stage."""
        return {r.ref for r in self.records if stage is None or r.stage == stage}

    def sample(self, n: int = 5) -> List[QuarantineRecord]:
        """The first ``n`` records — stable exemplars for summaries."""
        return self.records[: max(0, n)]

    def merge(self, other: "Quarantine") -> None:
        """Append another ledger's records (shard collection)."""
        self.records.extend(other.records)

    def as_dict(self) -> dict:
        """Snapshot-protocol view: totals plus per-stage/per-error counts.

        This (not ``.records``) is what exporters embed — the common
        ``as_dict()`` contract shared with ``VisionCacheStats``,
        ``CrawlStats`` and ``BreakerBoard`` (DESIGN.md §9).
        """
        return {
            "n_quarantined": len(self.records),
            "by_stage": dict(sorted(self.by_stage().items())),
            "by_error": dict(sorted(self.by_error().items())),
            "sample": [r.to_dict() for r in self.sample(3)],
        }

    # ------------------------------------------------------------------
    def summary_lines(self, n_samples: int = 3) -> List[str]:
        """Human-readable ledger summary (for the CLI)."""
        if not self.records:
            return ["no quarantined records"]
        lines = [f"{len(self.records)} records quarantined"]
        stages = ", ".join(
            f"{stage}={count}" for stage, count in sorted(self.by_stage().items())
        )
        errors = ", ".join(
            f"{err}={count}" for err, count in sorted(self.by_error().items())
        )
        lines.append(f"by stage: {stages}")
        lines.append(f"by error: {errors}")
        for record in self.sample(n_samples):
            lines.append(f"  e.g. {record.summary()}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Quarantine(n={len(self.records)})"
