"""Plain-text renderers for pipeline results.

Shared by the CLI and the examples: every function takes measurement
results and returns the corresponding table as a string, in the layout
of the paper's tables.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..finance.parser import CANONICAL_CURRENCIES
from ..obs.export import render_funnel
from .earnings import CurrencyExchangeTable, EarningsResult
from .pipeline import PipelineReport

__all__ = [
    "render_digest",
    "render_table1",
    "render_table5",
    "render_table7",
    "render_table8",
    "render_earnings",
    "render_telemetry",
]


def render_table1(report: PipelineReport) -> str:
    """Table 1: per-forum eWhoring threads/posts/TOPs/actors."""
    lines = [
        f"{'Forum':<16}{'#Threads':>10}{'#Posts':>10}{'First':>8}{'#TOPs':>8}{'#Actors':>9}"
    ]
    for summary in report.forum_summaries:
        lines.append(
            f"{summary.forum_name:<16}{summary.n_threads:>10}{summary.n_posts:>10}"
            f"{summary.first_post or '-':>8}"
            f"{report.tops_per_forum.get(summary.forum_name, 0):>8}"
            f"{summary.n_actors:>9}"
        )
    lines.append(
        f"{'TOTAL':<16}{sum(s.n_threads for s in report.forum_summaries):>10}"
        f"{sum(s.n_posts for s in report.forum_summaries):>10}{'':>8}"
        f"{sum(report.tops_per_forum.values()):>8}"
        f"{sum(s.n_actors for s in report.forum_summaries):>9}"
    )
    return "\n".join(lines)


def render_table5(report: PipelineReport) -> str:
    """Table 5: reverse-image-search outcomes."""
    lines = [f"{'group':<10}{'Total':>7}{'Matches':>9}{'SeenBefore':>12}{'Ratio':>7}{'Max':>6}"]
    for group in ("packs", "previews"):
        summary = report.provenance.summary(group)
        lines.append(
            f"{group:<10}{summary.total:>7}"
            f"{summary.matches:>5} ({summary.match_rate:.0%})"
            f"{summary.seen_before:>7} ({summary.seen_before_rate:.0%})"
            f"{summary.mean_matches_per_matched:>7.1f}{summary.max_matches:>6}"
        )
    return "\n".join(lines)


def render_table7(table: CurrencyExchangeTable) -> str:
    """Table 7: CE threads offered/wanted per currency."""
    lines = [f"{'Currency':<10}{'Offered':>9}{'Wanted':>9}"]
    for currency in CANONICAL_CURRENCIES:
        lines.append(
            f"{currency:<10}{table.offered.get(currency, 0):>9}"
            f"{table.wanted.get(currency, 0):>9}"
        )
    lines.append(f"({table.n_threads} threads by {table.n_actors} actors)")
    return "\n".join(lines)


def render_table8(report: PipelineReport) -> str:
    """Table 8: actor cohorts."""
    lines = [
        f"{'#Posts':>9}{'#Actors':>9}{'Avg':>9}{'%ewhor':>8}{'Before':>8}{'After':>8}"
    ]
    for row in report.cohorts:
        lines.append(
            f">= {row.threshold:<6}{row.n_actors:>9}{row.mean_posts:>9.1f}"
            f"{row.mean_pct_ewhoring:>8.1f}{row.mean_days_before:>8.1f}"
            f"{row.mean_days_after:>8.1f}"
        )
    return "\n".join(lines)


def render_earnings(earnings: EarningsResult) -> str:
    """The §5.2 headline block."""
    totals = earnings.per_actor_totals()
    lines = [
        f"proofs: {earnings.n_proofs} by {len(totals)} actors "
        f"(+{earnings.n_non_proofs} non-proofs)",
        f"total ${earnings.total_usd:,.0f}; mean ${earnings.mean_per_actor_usd:,.2f}/actor; "
        f"top ${max(totals.values(), default=0):,.0f}",
        f"mean transaction ${earnings.mean_transaction_usd():.2f} over "
        f"{earnings.n_with_transaction_detail} itemised proofs",
    ]
    histogram = earnings.platform_histogram()
    if histogram:
        mix = ", ".join(
            f"{platform.value} {count}"
            for platform, count in sorted(histogram.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"platforms: {mix}")
    return "\n".join(lines)


def render_telemetry(report: PipelineReport) -> str:
    """The run's telemetry block: funnel table + component snapshots.

    Everything here goes through the snapshot protocol (``as_dict()`` /
    ``summary()`` on the stats objects) — no reaching into private
    fields, and no formatting duplicated from the exporters: the funnel
    table is :func:`repro.obs.export.render_funnel`, shared with
    ``repro trace``.
    """
    tele = report.telemetry
    if tele is None:
        return "telemetry: not recorded"
    lines: List[str] = render_funnel(tele.funnel()).splitlines()
    lines.extend(tele.summary_lines()[1:])  # funnel already tabulated above
    cache = report.vision_cache_stats
    if cache is not None:
        lines.append(f"vision cache: {cache.summary()}")
    crawl = report.crawl.stats.as_dict() if report.crawl is not None else None
    if crawl:
        lines.append(
            f"crawl: {crawl['n_links']} links, {crawl['n_retries']} retries, "
            f"{crawl['n_giveups']} giveups, {crawl['n_breaker_skips']} breaker skips"
        )
    breakers = getattr(report.crawl, "breaker_summary", None)
    if breakers:
        lines.append(
            f"breakers: {breakers['n_domains']} domains, "
            f"{breakers['n_open']} open, {breakers['total_opens']} opens total"
        )
    if report.quarantine is not None:
        quarantine = report.quarantine.as_dict()
        lines.append(f"quarantine: {quarantine['n_quarantined']} records")
    return "\n".join(lines)


def render_digest(report: PipelineReport) -> str:
    """A one-screen digest of the whole measurement."""
    evaluation = report.top_evaluation
    stats = report.extraction_stats
    sections = [
        "== selection (§3) ==",
        render_table1(report),
        "",
        "== TOP classifier (§4.1) ==",
        f"P={evaluation.precision:.2%} R={evaluation.recall:.2%} F1={evaluation.f1:.2f}; "
        f"union {stats.n_hybrid} (ML {stats.n_ml}, heuristics {stats.n_heuristic}, "
        f"both {stats.n_both})",
        "",
        "== crawl (§4.2) ==",
        f"links {len(report.links.preview_links)}+{len(report.links.pack_links)}; "
        f"downloads {len(report.crawl.preview_images)} previews, "
        f"{len(report.crawl.packs)} packs / {len(report.crawl.pack_images)} images; "
        f"{report.crawl.n_unique_files} unique",
        "",
        "== abuse filter (§4.3) ==",
        f"matched {report.abuse.n_matched_images}; actioned URLs "
        f"{report.abuse.n_actioned_urls}; exposed actors "
        f"{len(report.abuse.exposed_actor_ids)}",
        "",
        "== NSFV (§4.4) ==",
        f"previews NSFV {report.n_nsfv_previews}/{len(report.preview_verdicts)}",
        "",
        "== provenance (§4.5) ==",
        render_table5(report),
        f"zero-match packs {len(report.provenance.zero_match_pack_ids)}; "
        f"domains {len(report.provenance.matched_domains)}",
        "",
        "== profits (§5) ==",
        render_earnings(report.earnings),
        "",
        "== currency exchange (Table 7) ==",
        render_table7(report.currency_exchange),
        "",
        "== actors (§6, Table 8) ==",
        render_table8(report),
        "",
        f"key actors: {report.key_actors.n_key_actors}",
    ]
    if report.quarantine is not None and len(report.quarantine):
        sections.extend(["", "== quarantine (record-level faults) =="])
        sections.extend(report.quarantine.summary_lines())
    if report.telemetry is not None:
        sections.extend(["", "== telemetry (DESIGN.md §9) =="])
        sections.append(render_telemetry(report))
    return "\n".join(sections)
