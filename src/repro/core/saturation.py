"""Pack-saturation analysis (§4, §4.2).

'Good packs are those containing *unsaturated* material … As these packs
are offered at no charge, and thus are likely saturated, we had expected
to observe duplicate images' — the paper finds 127 images recurring in
at least 20 different packs, and 53 948 unique files among 117 076
downloads.

This module quantifies that reuse structure:

* the image-reuse distribution (in how many packs does each unique
  image appear?);
* a per-pack **saturation index** — the fraction of a pack's images
  already seen in packs posted earlier, the measurable counterpart of
  the community's "saturated" label;
* the relation between saturation and reverse-search visibility
  (saturated material is exactly what reverse search catches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..web.crawler import CrawlResult, CrawledImage

__all__ = [
    "PackSaturation",
    "SaturationReport",
    "analyze_saturation",
    "reuse_distribution",
]


@dataclass(frozen=True, slots=True)
class PackSaturation:
    """Saturation of one pack relative to packs posted before it."""

    pack_id: int
    posted_at: Optional[datetime]
    n_images: int
    n_previously_seen: int

    @property
    def saturation_index(self) -> float:
        """Fraction of the pack already circulating when it was posted."""
        return self.n_previously_seen / self.n_images if self.n_images else 0.0


@dataclass
class SaturationReport:
    """Corpus-level reuse structure."""

    #: digest → number of distinct packs containing the image.
    packs_per_image: Dict[str, int]
    per_pack: List[PackSaturation]

    @property
    def n_unique_images(self) -> int:
        return len(self.packs_per_image)

    def images_in_at_least(self, n_packs: int) -> int:
        """How many unique images appear in >= ``n_packs`` packs.

        The paper's headline: 127 images were found in at least 20
        different packs.
        """
        return sum(1 for count in self.packs_per_image.values() if count >= n_packs)

    def reuse_histogram(self) -> Dict[int, int]:
        """pack-count → number of images with exactly that count."""
        histogram: Dict[int, int] = {}
        for count in self.packs_per_image.values():
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def mean_saturation(self) -> float:
        indices = [p.saturation_index for p in self.per_pack]
        return float(np.mean(indices)) if indices else 0.0

    def fully_fresh_packs(self) -> List[int]:
        """Packs with no previously seen image (truly 'unsaturated')."""
        return [p.pack_id for p in self.per_pack if p.n_previously_seen == 0]

    def saturated_packs(self, threshold: float = 0.5) -> List[int]:
        """Packs whose saturation index is at least ``threshold``."""
        return [
            p.pack_id for p in self.per_pack if p.saturation_index >= threshold
        ]


def reuse_distribution(pack_images: Sequence[CrawledImage]) -> Dict[str, int]:
    """digest → number of distinct packs carrying that image."""
    packs_of_image: Dict[str, Set[int]] = {}
    for crawled in pack_images:
        if crawled.pack_id is None:
            continue
        packs_of_image.setdefault(crawled.digest, set()).add(crawled.pack_id)
    return {digest: len(packs) for digest, packs in packs_of_image.items()}


def analyze_saturation(crawl: CrawlResult) -> SaturationReport:
    """Build the full saturation report for one crawl.

    Packs are ordered by the earliest link date that delivered them (the
    time the material became available to this corpus); ties fall back
    to pack id for determinism.
    """
    packs_per_image = reuse_distribution(crawl.pack_images)

    # Earliest posting date per pack.
    posted: Dict[int, Optional[datetime]] = {}
    digests_by_pack: Dict[int, Set[str]] = {}
    for crawled in crawl.pack_images:
        if crawled.pack_id is None:
            continue
        digests_by_pack.setdefault(crawled.pack_id, set()).add(crawled.digest)
        when = crawled.link.posted_at
        current = posted.get(crawled.pack_id)
        if when is not None and (current is None or when < current):
            posted[crawled.pack_id] = when
        else:
            posted.setdefault(crawled.pack_id, current)

    order = sorted(
        digests_by_pack,
        key=lambda pid: (posted.get(pid) or datetime.max, pid),
    )
    seen: Set[str] = set()
    per_pack: List[PackSaturation] = []
    for pack_id in order:
        digests = digests_by_pack[pack_id]
        previously = sum(1 for d in digests if d in seen)
        per_pack.append(
            PackSaturation(
                pack_id=pack_id,
                posted_at=posted.get(pack_id),
                n_images=len(digests),
                n_previously_seen=previously,
            )
        )
        seen |= digests

    return SaturationReport(packs_per_image=packs_per_image, per_pack=per_pack)
