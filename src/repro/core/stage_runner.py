"""Stage-level error boundaries for the measurement pipeline.

:class:`EwhoringPipeline.run` chains many stages; a crash deep in one of
them used to abort the whole measurement.  :class:`StageRunner` wraps
each stage in a recorded boundary:

* in **strict** mode (the default) exceptions propagate exactly as
  before, but the boundary still records which stage blew up and how
  long it had been running;
* in **lenient** mode (``strict=False``) a failing stage is converted
  into a structured :class:`StageFailure` (stage name, exception type
  and message, traceback, elapsed seconds, and a context dict with the
  links/images counts the stage had to work on), the report section it
  would have produced is marked unavailable (``None``), and stages that
  *depend* on it are recorded as skipped rather than crashing on the
  missing input.

``hooks`` lets tests and benchmarks force a stage to raise without
monkeypatching pipeline internals: a hook is called at the top of its
stage's boundary.

Every boundary is also a telemetry boundary (DESIGN.md §9): the stage
executes inside a ``stage.<name>`` span of the run's tracer, its elapsed
time feeds the ``pipeline.stage_seconds{stage=…}`` histogram and its
verdict the ``pipeline.stage_runs{stage=…,status=…}`` counter.  With the
default no-op telemetry all of this costs two dict constructions per
*stage* — nothing on any per-record path.
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import RunTelemetry

__all__ = ["StageFailure", "StageOutcome", "StageRunner"]


@dataclass(frozen=True)
class StageFailure:
    """Structured record of one stage blowing up."""

    stage: str
    error_type: str
    message: str
    traceback: str
    elapsed: float
    #: What the stage had to work on (e.g. ``{"n_links": 412}``).
    context: Mapping[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        ctx = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        suffix = f" [{ctx}]" if ctx else ""
        return (
            f"{self.stage}: {self.error_type}: {self.message} "
            f"(after {self.elapsed:.2f}s){suffix}"
        )

    def as_dict(self) -> dict:
        """Snapshot-protocol view (export / manifest use)."""
        return {
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed_seconds": self.elapsed,
            "context": dict(self.context),
        }


@dataclass(frozen=True)
class StageOutcome:
    """One stage boundary's verdict."""

    stage: str
    status: str  # "ok" | "failed" | "skipped"
    elapsed: float = 0.0
    failure: Optional[StageFailure] = None
    #: For skipped stages: the *direct* dependency that caused the skip.
    skipped_due_to: Optional[str] = None
    #: For skipped stages: the transitively-failed stage at the root of
    #: the skip chain (equals ``skipped_due_to`` when the direct
    #: dependency itself failed).
    root_cause: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict:
        """Snapshot-protocol view (export / manifest use)."""
        return {
            "stage": self.stage,
            "status": self.status,
            "elapsed_seconds": self.elapsed,
            "skipped_due_to": self.skipped_due_to,
            "root_cause": self.root_cause,
        }


class StageRunner:
    """Runs named stages inside recorded error boundaries.

    ``telemetry`` (a :class:`~repro.obs.RunTelemetry`) supplies the span
    recorder and metric registry; omitted, a fresh no-op-traced registry
    is created so callers never branch on "is telemetry on".
    """

    def __init__(
        self,
        strict: bool = True,
        hooks: Optional[Mapping[str, Callable[[], None]]] = None,
        telemetry: Optional[RunTelemetry] = None,
    ):
        self.strict = strict
        self.hooks: Dict[str, Callable[[], None]] = dict(hooks or {})
        self.telemetry = telemetry if telemetry is not None else RunTelemetry()
        self.outcomes: List[StageOutcome] = []
        self.failures: List[StageFailure] = []
        self._bad: Dict[str, str] = {}  # stage → root cause

    # ------------------------------------------------------------------
    def unavailable(self, stage: str) -> bool:
        """True if ``stage`` failed or was skipped."""
        return stage in self._bad

    @property
    def degraded(self) -> bool:
        """True once any stage failed or was skipped."""
        return bool(self._bad)

    # ------------------------------------------------------------------
    def run(
        self,
        stage: str,
        fn: Callable[[], Any],
        requires: Sequence[str] = (),
        context: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[Any, bool]:
        """Execute ``fn`` inside the boundary for ``stage``.

        Returns ``(value, ok)``; in lenient mode a failed or skipped
        stage yields ``(None, False)``.  In strict mode failures
        re-raise after being recorded.
        """
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        for dep in requires:
            if dep in self._bad:
                root = self._bad[dep]
                self._bad[stage] = root
                self.outcomes.append(
                    StageOutcome(
                        stage=stage,
                        status="skipped",
                        skipped_due_to=dep,
                        root_cause=root,
                    )
                )
                tracer.event(
                    "stage.skipped", stage=stage, due_to=dep, root_cause=root
                )
                metrics.counter(
                    "pipeline.stage_runs", stage=stage, status="skipped"
                ).inc()
                return None, False

        with tracer.span(f"stage.{stage}", **dict(context or {})) as span:
            start = time.perf_counter()
            try:
                hook = self.hooks.get(stage)
                if hook is not None:
                    hook()
                value = fn()
            except BaseException as exc:
                elapsed = time.perf_counter() - start
                failure = StageFailure(
                    stage=stage,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback=_traceback.format_exc(),
                    elapsed=elapsed,
                    context=dict(context or {}),
                )
                self.failures.append(failure)
                self.outcomes.append(
                    StageOutcome(stage=stage, status="failed", elapsed=elapsed, failure=failure)
                )
                self._bad[stage] = stage
                span.set(outcome="failed", error=type(exc).__name__)
                metrics.counter(
                    "pipeline.stage_runs", stage=stage, status="failed"
                ).inc()
                metrics.histogram("pipeline.stage_seconds", stage=stage).observe(elapsed)
                # Non-``Exception`` errors (KeyboardInterrupt, SystemExit, a
                # hook raising GeneratorExit...) are *recorded* for the
                # post-mortem but always re-raised: lenient mode degrades on
                # stage crashes, it does not swallow operator aborts.
                if self.strict or not isinstance(exc, Exception):
                    raise
                return None, False

            elapsed = time.perf_counter() - start
            span.set(outcome="ok")
            self.outcomes.append(StageOutcome(stage=stage, status="ok", elapsed=elapsed))
        metrics.counter("pipeline.stage_runs", stage=stage, status="ok").inc()
        metrics.histogram("pipeline.stage_seconds", stage=stage).observe(elapsed)
        return value, True

    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        """Human-readable degradation summary (for the CLI)."""
        if not self.degraded:
            return ["all stages completed"]
        lines: List[str] = []
        for outcome in self.outcomes:
            if outcome.status == "failed" and outcome.failure is not None:
                lines.append(f"FAILED  {outcome.failure.summary()}")
            elif outcome.status == "skipped":
                line = f"skipped {outcome.stage} (requires {outcome.skipped_due_to}"
                if (
                    outcome.root_cause is not None
                    and outcome.root_cause != outcome.skipped_due_to
                ):
                    line += f"; root cause {outcome.root_cause}"
                lines.append(line + ")")
        return lines
