"""The hybrid TOP classifier: Linear-SVM arm ∪ heuristic arm (§4.1).

"If either method classifies a thread as offering packs, this is
included in our pipeline to extract links."  The hybrid therefore takes
the union of both arms' positives; §4.1's results table reports how many
TOPs each arm found and their overlap, which
:meth:`HybridTopClassifier.extraction_stats` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..ml.linear_svm import LinearSVM
from ..ml.metrics import ConfusionMatrix, confusion_matrix
from .features import ThreadFeatureExtractor
from .heuristics import HeuristicTopClassifier

__all__ = ["ExtractionStats", "HybridTopClassifier", "TopEvaluation"]


@dataclass(frozen=True, slots=True)
class TopEvaluation:
    """Held-out evaluation of the hybrid classifier (the §4.1 metrics)."""

    confusion: ConfusionMatrix

    @property
    def precision(self) -> float:
        return self.confusion.precision

    @property
    def recall(self) -> float:
        return self.confusion.recall

    @property
    def f1(self) -> float:
        return self.confusion.f1


@dataclass(frozen=True, slots=True)
class ExtractionStats:
    """Arm-level extraction counts over a full corpus (§4.1 results)."""

    n_hybrid: int
    n_ml: int
    n_heuristic: int
    n_both: int

    @property
    def ml_only(self) -> int:
        return self.n_ml - self.n_both

    @property
    def heuristic_only(self) -> int:
        return self.n_heuristic - self.n_both


class HybridTopClassifier:
    """Linear-SVM + heuristics, combined by union."""

    def __init__(
        self,
        svm: Optional[LinearSVM] = None,
        heuristics: Optional[HeuristicTopClassifier] = None,
        extractor: Optional[ThreadFeatureExtractor] = None,
    ):
        self.svm = svm if svm is not None else LinearSVM(lam=3e-5, epochs=40, seed=0)
        self.heuristics = heuristics if heuristics is not None else HeuristicTopClassifier()
        self.extractor = extractor if extractor is not None else ThreadFeatureExtractor()
        self._fitted = False

    @classmethod
    def with_normalization(cls) -> "HybridTopClassifier":
        """Hybrid whose both arms run the §4.1 forum-text normaliser."""
        return cls(
            heuristics=HeuristicTopClassifier(normalize=True),
            extractor=ThreadFeatureExtractor(normalize=True),
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: ForumDataset,
        threads: Sequence[Thread],
        labels: Sequence[bool],
    ) -> "HybridTopClassifier":
        """Train the ML arm on annotated threads (the 800-thread set)."""
        if len(threads) != len(labels):
            raise ValueError("threads and labels must align")
        features = self.extractor.fit_transform(dataset, threads)
        self.svm.fit(features, np.asarray(labels, dtype=np.int64))
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_ml(self, dataset: ForumDataset, threads: Sequence[Thread]) -> np.ndarray:
        """ML-arm verdicts (bool array)."""
        self._require_fitted()
        if not threads:
            return np.zeros(0, dtype=bool)
        features = self.extractor.transform(dataset, threads)
        return self.svm.predict(features).astype(bool)

    def predict_heuristic(
        self, dataset: ForumDataset, threads: Sequence[Thread]
    ) -> np.ndarray:
        """Heuristic-arm verdicts (bool array)."""
        return np.asarray(self.heuristics.predict(dataset, threads), dtype=bool)

    def predict(self, dataset: ForumDataset, threads: Sequence[Thread]) -> np.ndarray:
        """Hybrid verdicts: the union of both arms."""
        return self.predict_ml(dataset, threads) | self.predict_heuristic(dataset, threads)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        dataset: ForumDataset,
        threads: Sequence[Thread],
        labels: Sequence[bool],
    ) -> TopEvaluation:
        """Score the hybrid on a held-out annotated set."""
        predictions = self.predict(dataset, threads)
        return TopEvaluation(confusion=confusion_matrix(np.asarray(labels), predictions))

    def extract_tops(
        self, dataset: ForumDataset, threads: Sequence[Thread]
    ) -> Tuple[List[Thread], ExtractionStats]:
        """Run the hybrid over a corpus; returns TOPs plus arm stats."""
        ml = self.predict_ml(dataset, threads)
        heuristic = self.predict_heuristic(dataset, threads)
        union = ml | heuristic
        tops = [thread for thread, flag in zip(threads, union) if flag]
        stats = ExtractionStats(
            n_hybrid=int(union.sum()),
            n_ml=int(ml.sum()),
            n_heuristic=int(heuristic.sum()),
            n_both=int((ml & heuristic).sum()),
        )
        return tops, stats

    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("classifier must be fitted before prediction")
