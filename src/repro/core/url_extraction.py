"""URL extraction from TOPs with a snowball-sampled whitelist (§4.2).

Two pieces:

* :class:`WhitelistBuilder` — grows the set of known image-sharing and
  cloud-storage domains by snowball sampling: starting from a seed set,
  every unknown domain seen in TOP links is "visited" (looked up in the
  service registry, the analogue of a manual landing-page inspection)
  and added when it turns out to host images or files.
* :func:`extract_links` — pulls URLs out of TOP posts with the regex
  extractor, keeps whitelist hits, and annotates each with the post
  metadata the crawler records (post id, author, date).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..forum.dataset import ForumDataset
from ..forum.models import Thread
from ..web.crawler import LinkRecord
from ..web.sites import HostingService, ServiceKind, service_by_domain
from ..web.url import Url, deobfuscate_text, extract_urls

__all__ = ["LinkExtraction", "WhitelistBuilder", "extract_links"]

#: The analyst's initial whitelist: the services any forum reader would
#: recognise on sight.
DEFAULT_SEED_WHITELIST: Dict[str, ServiceKind] = {
    "imgur.com": ServiceKind.IMAGE_SHARING,
    "gyazo.com": ServiceKind.IMAGE_SHARING,
    "mediafire.com": ServiceKind.CLOUD_STORAGE,
    "mega.nz": ServiceKind.CLOUD_STORAGE,
    "dropbox.com": ServiceKind.CLOUD_STORAGE,
}


class WhitelistBuilder:
    """Snowball sampling over the domains appearing in TOP links.

    ``inspect`` is the landing-page inspection: given a host it returns
    the :class:`HostingService` there, or ``None``.  The default consults
    only the static Table 3/4 registry; under domain churn the adaptive
    re-snowballing defense passes :meth:`SimulatedInternet.service_for
    <repro.web.internet.SimulatedInternet.service_for>` so churned-in
    hosts are discoverable too.
    """

    def __init__(
        self,
        seed_whitelist: Optional[Dict[str, ServiceKind]] = None,
        inspect: Optional[Callable[[str], Optional[HostingService]]] = None,
    ):
        self._whitelist: Dict[str, ServiceKind] = dict(
            seed_whitelist if seed_whitelist is not None else DEFAULT_SEED_WHITELIST
        )
        self._inspect = inspect if inspect is not None else service_by_domain
        self._rejected: Set[str] = set()
        self.n_inspections = 0

    @property
    def whitelist(self) -> Dict[str, ServiceKind]:
        return dict(self._whitelist)

    def kind_of(self, host: str) -> Optional[ServiceKind]:
        """Whitelist verdict for a host, or ``None`` when unknown."""
        return self._whitelist.get(host.lower())

    # ------------------------------------------------------------------
    def snowball(self, urls: Iterable[Url], max_rounds: int = 10) -> int:
        """Grow the whitelist from observed URLs; returns domains added.

        Each round inspects the unknown domains seen so far.  Inspection
        is simulated by the hosting-service registry lookup — the
        analogue of manually visiting the landing page (§4.2).  Rounds
        repeat until no new domain qualifies, as in the paper.
        """
        pending = {url.host.lower() for url in urls}
        added_total = 0
        for _ in range(max_rounds):
            unknown = [
                host
                for host in sorted(pending)
                if host not in self._whitelist and host not in self._rejected
            ]
            if not unknown:
                break
            added_this_round = 0
            for host in unknown:
                self.n_inspections += 1
                service = self._inspect(host)
                if service is not None:
                    self._whitelist[host] = service.kind
                    added_this_round += 1
                else:
                    self._rejected.add(host)
            added_total += added_this_round
            if added_this_round == 0:
                break
        return added_total


@dataclass
class LinkExtraction:
    """Everything the URL-extraction stage produced."""

    preview_links: List[LinkRecord]
    pack_links: List[LinkRecord]
    #: URLs that matched no whitelisted service.
    unknown_urls: List[Url]
    #: Threads that contained at least one whitelisted link (§4.2 reports
    #: 774 of 4 137 TOPs, 18.7%).
    threads_with_links: Set[int]
    whitelist: Dict[str, ServiceKind]

    @property
    def all_links(self) -> List[LinkRecord]:
        return self.preview_links + self.pack_links

    def links_per_domain(self, kind: ServiceKind) -> Dict[str, int]:
        """Link counts per domain for one service family (Tables 3/4)."""
        source = self.preview_links if kind is ServiceKind.IMAGE_SHARING else self.pack_links
        counts: Dict[str, int] = {}
        for link in source:
            counts[link.url.host] = counts.get(link.url.host, 0) + 1
        return counts


def extract_links(
    dataset: ForumDataset,
    tops: Sequence[Thread],
    whitelist_builder: Optional[WhitelistBuilder] = None,
    scan_replies: bool = True,
    deobfuscate: bool = False,
) -> LinkExtraction:
    """Extract whitelisted links from TOP posts.

    The opener is always scanned; with ``scan_replies`` the follow-up
    posts are too (sharers often post mirrors in replies).  With
    ``deobfuscate`` each post's text is first normalised through
    :func:`~repro.web.url.deobfuscate_text`, recovering ``hxxp://`` /
    ``host[.]tld`` style de-fanged links the plain regex would miss —
    the adaptive defense against drift's URL-obfuscation channel.
    """
    builder = whitelist_builder if whitelist_builder is not None else WhitelistBuilder()

    # Pass 1: collect every URL to feed the snowball sampler.
    per_post_urls: List[Tuple[Thread, int, int, object, List[Url]]] = []
    all_urls: List[Url] = []
    for thread in tops:
        posts = dataset.posts_in_thread(thread.thread_id)
        if not scan_replies:
            posts = posts[:1]
        for post in posts:
            content = deobfuscate_text(post.content) if deobfuscate else post.content
            urls = extract_urls(content)
            if urls:
                per_post_urls.append((thread, post.post_id, post.author_id, post.created_at, urls))
                all_urls.extend(urls)
    builder.snowball(all_urls)

    preview_links: List[LinkRecord] = []
    pack_links: List[LinkRecord] = []
    unknown: List[Url] = []
    threads_with_links: Set[int] = set()

    for thread, post_id, author_id, created_at, urls in per_post_urls:
        for url in urls:
            kind = builder.kind_of(url.host)
            if kind is None:
                unknown.append(url)
                continue
            record = LinkRecord(
                url=url,
                thread_id=thread.thread_id,
                post_id=post_id,
                author_id=author_id,
                posted_at=created_at,
                link_kind="preview" if kind is ServiceKind.IMAGE_SHARING else "pack",
            )
            threads_with_links.add(thread.thread_id)
            if kind is ServiceKind.IMAGE_SHARING:
                preview_links.append(record)
            else:
                pack_links.append(record)

    return LinkExtraction(
        preview_links=preview_links,
        pack_links=pack_links,
        unknown_urls=unknown,
        threads_with_links=threads_with_links,
        whitelist=builder.whitelist,
    )
