"""Domain-classification substrate: taxonomies and service analogues."""

from .classifiers import (
    DomainClassifier,
    DomainVerdict,
    default_classifiers,
    tag_distribution,
)
from .taxonomy import (
    MASTER_CATEGORIES,
    MCAFEE_MAPPING,
    NO_RESULT,
    OPENDNS_MAPPING,
    VIRUSTOTAL_MAPPING,
)

__all__ = [
    "DomainClassifier",
    "DomainVerdict",
    "MASTER_CATEGORIES",
    "MCAFEE_MAPPING",
    "NO_RESULT",
    "OPENDNS_MAPPING",
    "VIRUSTOTAL_MAPPING",
    "default_classifiers",
    "tag_distribution",
]
