"""Domain-classification service analogues (OpenDNS / McAfee / VirusTotal).

Each service maps a domain to zero or more category tags.  The analogue
observes the domain's *true* category (from the simulated internet's
origin-site registry) through service-specific noise:

* a per-service ``no_result`` rate — §4.5 notes OpenDNS leaves ~22% of
  domains unclassified;
* a tag-choice distribution per true category (see
  :mod:`repro.domains.taxonomy`);
* a small confusion rate where the service picks a tag for a *different*
  category entirely.

Verdicts are deterministic per (service, domain): repeated queries agree,
as a ticketing system's would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .taxonomy import (
    MASTER_CATEGORIES,
    MCAFEE_MAPPING,
    NO_RESULT,
    OPENDNS_MAPPING,
    VIRUSTOTAL_MAPPING,
)

__all__ = [
    "DomainClassifier",
    "DomainVerdict",
    "default_classifiers",
    "tag_distribution",
]


@dataclass(frozen=True, slots=True)
class DomainVerdict:
    """One service's verdict on one domain."""

    service: str
    domain: str
    tags: Tuple[str, ...]

    @property
    def classified(self) -> bool:
        return self.tags != (NO_RESULT,)


class DomainClassifier:
    """A categorisation service with its own taxonomy and noise profile."""

    def __init__(
        self,
        name: str,
        mapping: Dict[str, List[Tuple[Tuple[str, ...], float]]],
        no_result_rate: float,
        confusion_rate: float = 0.03,
        seed: int = 0,
    ):
        if not 0.0 <= no_result_rate <= 1.0:
            raise ValueError("no_result_rate must be within [0, 1]")
        if not 0.0 <= confusion_rate <= 1.0:
            raise ValueError("confusion_rate must be within [0, 1]")
        self.name = name
        self.mapping = mapping
        self.no_result_rate = no_result_rate
        self.confusion_rate = confusion_rate
        self.seed = seed

    # ------------------------------------------------------------------
    def classify(self, domain: str, true_category: Optional[str]) -> DomainVerdict:
        """Categorise ``domain`` whose ground-truth class is ``true_category``.

        ``true_category=None`` models a domain the world knows nothing
        about (e.g. a hosting-service domain queried out of scope) — the
        service returns ``no_result``.
        """
        rng = self._domain_rng(domain)
        if true_category is None or rng.random() < self.no_result_rate:
            return DomainVerdict(self.name, domain, (NO_RESULT,))
        category = true_category
        if rng.random() < self.confusion_rate:
            category = self._random_category(rng, exclude=true_category)
        choices = self.mapping.get(category)
        if not choices:
            return DomainVerdict(self.name, domain, (NO_RESULT,))
        tags = self._draw(rng, choices)
        return DomainVerdict(self.name, domain, tags)

    def classify_many(
        self, domains: Sequence[str], true_categories: Sequence[Optional[str]]
    ) -> List[DomainVerdict]:
        """Vector form of :meth:`classify`."""
        if len(domains) != len(true_categories):
            raise ValueError("domains and true_categories must align")
        return [self.classify(d, c) for d, c in zip(domains, true_categories)]

    # ------------------------------------------------------------------
    def _domain_rng(self, domain: str) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.name}|{self.seed}|{domain.lower()}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    @staticmethod
    def _draw(
        rng: np.random.Generator, choices: List[Tuple[Tuple[str, ...], float]]
    ) -> Tuple[str, ...]:
        weights = np.array([w for _, w in choices], dtype=np.float64)
        weights /= weights.sum()
        index = int(rng.choice(len(choices), p=weights))
        return choices[index][0]

    @staticmethod
    def _random_category(rng: np.random.Generator, exclude: str) -> str:
        names = [name for name, _ in MASTER_CATEGORIES if name != exclude]
        return names[int(rng.integers(0, len(names)))]


def default_classifiers(seed: int = 0) -> Tuple[DomainClassifier, ...]:
    """The three §4.5 services with their observed noise profiles.

    ``no_result`` rates follow Table 6: OpenDNS leaves ~22% of domains
    unclassified, McAfee and VirusTotal roughly 6%.
    """
    return (
        DomainClassifier("McAfee", MCAFEE_MAPPING, no_result_rate=0.061, seed=seed),
        DomainClassifier("VirusTotal", VIRUSTOTAL_MAPPING, no_result_rate=0.062, seed=seed),
        DomainClassifier("OpenDNS", OPENDNS_MAPPING, no_result_rate=0.22, seed=seed),
    )


def tag_distribution(verdicts: Sequence[DomainVerdict]) -> List[Tuple[str, int, float]]:
    """Tag histogram with cumulative percentages — the Table 6 row format.

    Percentages refer to the total number of *tags*, not domains, exactly
    as the table caption specifies.
    """
    counts: Dict[str, int] = {}
    for verdict in verdicts:
        for tag in verdict.tags:
            counts[tag] = counts.get(tag, 0) + 1
    total = sum(counts.values())
    rows: List[Tuple[str, int, float]] = []
    cumulative = 0
    for tag, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        cumulative += count
        rows.append((tag, count, 100.0 * cumulative / total if total else 0.0))
    return rows
