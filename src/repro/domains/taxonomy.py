"""Category taxonomies for the three domain-classification services.

§4.5 categorises provenance domains with Cisco OpenDNS, McAfee's URL
ticketing system and VirusTotal.  The services disagree in vocabulary and
granularity (Table 6 shows three different long-tail distributions), so
each analogue gets its own tag vocabulary plus a mapping from the *master*
taxonomy — the ground-truth category of each origin site in the simulated
world — to the tags that service would emit.

Mappings are weighted: a porn site maps to ``adult content``/``porn``/
``sex`` under the VirusTotal analogue (multi-tag), to ``Pornography`` and
sometimes ``Nudity`` under OpenDNS, and to ``Pornography`` (occasionally
``Provocative Attire``) under McAfee.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "MASTER_CATEGORIES",
    "MCAFEE_MAPPING",
    "NO_RESULT",
    "OPENDNS_MAPPING",
    "VIRUSTOTAL_MAPPING",
]

#: Tag emitted when a service has no verdict for a domain.
NO_RESULT = "no_result"

#: Ground-truth categories an origin site can have in the synthetic world.
#: Weights (used by the world generator) reflect §4.5: "top categories are
#: mostly porn-related sites", followed by social/shopping/photo/blog/forum
#: sources.
MASTER_CATEGORIES: Tuple[Tuple[str, float], ...] = (
    ("Pornography", 0.40),
    ("Blogs", 0.10),
    ("Entertainment", 0.07),
    ("Forums", 0.05),
    ("Online Shopping", 0.05),
    ("News", 0.05),
    ("Provocative Attire", 0.04),
    ("Marketing", 0.03),
    ("Games", 0.03),
    ("Internet Services", 0.03),
    ("Photo Sharing", 0.03),
    ("Dating", 0.025),
    ("Portal", 0.02),
    ("Parked", 0.02),
    ("Malicious", 0.02),
    ("Social Networking", 0.02),
    ("Business", 0.02),
    ("Humor", 0.015),
    ("Streaming", 0.013),
    ("Education", 0.012),
    ("Sports", 0.01),
)

# Mapping shape: master category -> list of (tag tuple, weight).  One tag
# tuple is drawn per domain; all tags in the tuple are emitted (services
# "can provide more than one tag per domain", Table 6 caption).
_Mapping = Dict[str, List[Tuple[Tuple[str, ...], float]]]

MCAFEE_MAPPING: _Mapping = {
    "Pornography": [(("Pornography",), 0.82), (("Nudity",), 0.08), (("Provocative Attire",), 0.10)],
    "Blogs": [(("Blogs/Wiki",), 0.92), (("Entertainment",), 0.08)],
    "Entertainment": [(("Entertainment",), 0.85), (("Streaming Media",), 0.15)],
    "Forums": [(("Forum/Bulletin Boards",), 1.0)],
    "Online Shopping": [(("Online Shopping",), 0.85), (("Marketing/Merchandising",), 0.15)],
    "News": [(("General News",), 1.0)],
    "Provocative Attire": [(("Provocative Attire",), 0.75), (("Pornography",), 0.25)],
    "Marketing": [(("Marketing/Merchandising",), 1.0)],
    "Games": [(("Games",), 1.0)],
    "Internet Services": [(("Internet Services",), 1.0)],
    "Photo Sharing": [(("Media Sharing",), 1.0)],
    "Dating": [(("Dating/Personals",), 1.0)],
    "Portal": [(("Portal Sites",), 1.0)],
    "Parked": [(("Parked Domain",), 1.0)],
    "Malicious": [(("Malicious Sites",), 0.55), (("PUPs",), 0.30), (("Illegal Software",), 0.15)],
    "Social Networking": [(("Social Networking",), 1.0)],
    "Business": [(("Business",), 1.0)],
    "Humor": [(("Humor/Comics",), 1.0)],
    "Streaming": [(("Streaming Media",), 1.0)],
    "Education": [(("Education/Reference",), 1.0)],
    "Sports": [(("Sports",), 1.0)],
}

VIRUSTOTAL_MAPPING: _Mapping = {
    "Pornography": [
        (("adult content", "porn", "sex"), 0.55),
        (("adult content", "sex"), 0.20),
        (("adult content",), 0.15),
        (("porn",), 0.10),
    ],
    "Blogs": [(("blogs",), 0.8), (("blogs", "entertainment"), 0.2)],
    "Entertainment": [(("entertainment",), 1.0)],
    "Forums": [(("message boards and forums",), 1.0)],
    "Online Shopping": [(("shopping", "onlineshop"), 0.5), (("shopping",), 0.5)],
    "News": [(("news", "news and media"), 0.6), (("news",), 0.4)],
    "Provocative Attire": [(("adult content",), 0.7), (("entertainment",), 0.3)],
    "Marketing": [(("marketing",), 1.0)],
    "Games": [(("games",), 1.0)],
    "Internet Services": [(("information technology", "computers and software"), 0.6),
                          (("information technology",), 0.4)],
    "Photo Sharing": [(("information technology",), 0.5), (("entertainment",), 0.5)],
    "Dating": [(("onlinedating",), 1.0)],
    "Portal": [(("business",), 0.5), (("information technology",), 0.5)],
    "Parked": [(("parked",), 1.0)],
    "Malicious": [(("uncategorised",), 0.6), (("business",), 0.4)],
    "Social Networking": [(("social networking",), 1.0)],
    "Business": [(("business", "business and economy"), 0.5), (("business",), 0.5)],
    "Humor": [(("entertainment",), 1.0)],
    "Streaming": [(("entertainment",), 1.0)],
    "Education": [(("education",), 1.0)],
    "Sports": [(("sports",), 1.0)],
}

OPENDNS_MAPPING: _Mapping = {
    "Pornography": [
        (("Pornography", "Nudity"), 0.60),
        (("Pornography", "Nudity", "Adult Themes"), 0.15),
        (("Pornography",), 0.15),
        (("Nudity",), 0.10),
    ],
    "Blogs": [(("Blogs",), 1.0)],
    "Entertainment": [(("News/Media",), 0.4), (("Blogs",), 0.3), (("Humor",), 0.3)],
    "Forums": [(("Forums/Message boards",), 1.0)],
    "Online Shopping": [(("Ecommerce/Shopping",), 1.0)],
    "News": [(("News/Media",), 1.0)],
    "Provocative Attire": [(("Lingerie/Bikini",), 0.7), (("Adult Themes",), 0.3)],
    "Marketing": [(("Business Services",), 1.0)],
    "Games": [(("Games",), 1.0)],
    "Internet Services": [(("Software/Technology",), 1.0)],
    "Photo Sharing": [(("Photo Sharing",), 1.0)],
    "Dating": [(("Dating",), 0.6), (("Sexuality",), 0.4)],
    "Portal": [(("Portals",), 1.0)],
    "Parked": [(("Parked Domains",), 1.0)],
    "Malicious": [(("Malware",), 1.0)],
    "Social Networking": [(("Social Networking",), 1.0)],
    "Business": [(("Business Services",), 1.0)],
    "Humor": [(("Humor",), 1.0)],
    "Streaming": [(("Video Sharing",), 1.0)],
    "Education": [(("Educational Institutions",), 1.0)],
    "Sports": [(("Sports",), 1.0)],
}
