"""repro.drift — adversarial drift: scenarios, decay measurement, defenses.

The R4 robustness subsystem (DESIGN.md §11).  The paper measures a
snapshot of an ecosystem that, in reality, adapts: packs get re-uploaded
under stacked transforms, links get de-fanged or laundered through
redirectors, hosting domains churn, and actors migrate across forums.
This package models that adaptation and measures what it does to every
stage of the §3 funnel:

* :mod:`repro.drift.profiles` — named scenarios (``none`` / ``mild`` /
  ``aggressive`` / ``hostile``) fixing per-epoch channel intensities;
* :mod:`repro.drift.engine` — the deterministic epoch-based mutation
  engine (pure ``(seed, channel, epoch, entity)`` hash draws);
* :mod:`repro.drift.measure` — per-stage recall/precision against the
  drifted ground truth;
* :mod:`repro.drift.defenses` — the adaptive counter-measures
  (retraining, author watchlists, whitelist re-snowballing, link
  deobfuscation, hash-radius sweeps);
* :mod:`repro.drift.harness` — the epoch loop producing decay curves.

Quickstart::

    from repro.drift import DefenseConfig, run_drift

    static = run_drift("hostile", epochs=2, seed=7, scale=0.02)
    adaptive = run_drift(
        "hostile", epochs=2, seed=7, scale=0.02,
        defenses=DefenseConfig.full(),
    )
    print(static.recall_curve("crawl"), adaptive.recall_curve("crawl"))
"""

from __future__ import annotations

from .defenses import (
    DefenseConfig,
    RadiusCalibration,
    apply_radius,
    build_refreshed_link_extractor,
    build_watchlist_selection,
    sweep_hash_radius,
    watchlist_from_report,
)
from .engine import ContentRef, DriftLedger, EpochCounters, apply_drift
from .harness import DriftEpochResult, DriftReport, run_drift
from .measure import STAGE_NAMES, StageScore, measure_run, scores_as_dict
from .profiles import DRIFT_PROFILES, DriftProfile, drift_profile

__all__ = [
    "ContentRef",
    "DRIFT_PROFILES",
    "DefenseConfig",
    "DriftEpochResult",
    "DriftLedger",
    "DriftProfile",
    "DriftReport",
    "EpochCounters",
    "RadiusCalibration",
    "STAGE_NAMES",
    "StageScore",
    "apply_drift",
    "apply_radius",
    "build_refreshed_link_extractor",
    "build_watchlist_selection",
    "drift_profile",
    "measure_run",
    "run_drift",
    "scores_as_dict",
    "sweep_hash_radius",
    "watchlist_from_report",
]
