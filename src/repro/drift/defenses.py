"""Adaptive defenses: how the instrument fights back against drift.

Each defense is a toggle in :class:`DefenseConfig`; the harness wires
the enabled ones into the pipeline between epochs:

* **retrain_classifier** — retrain the §4.1 hybrid on the current epoch's
  annotations instead of freezing the epoch-0 model (vocabulary drift);
* **author_watchlist** — rediscover migrated threads through the authors
  the instrument *itself* flagged at epoch 0 (no ground-truth leak);
* **refresh_whitelist** — re-run the §4.2 snowball against the live
  internet so churned-in hosts are discoverable;
* **deobfuscate_links** — normalise de-fanged URL spellings before
  regex extraction;
* **hash_radius_sweep** — recalibrate the perceptual-hash match radius
  on *synthetic* transform pairs (the A5 threshold-sweep machinery),
  widening tolerance just enough to absorb the profile's transform
  stacks without blowing the false-positive budget.

The radius sweep calibrates on latents sampled from its own seed — it
never peeks at hashlist or index contents, so the defense remains
deployable in the real setting the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from ..forum.query import ewhoring_threads
from ..media.image import ImageKind, sample_latent
from ..media.render import render_latent
from ..media.transforms import STACKED_EVASION_TRANSFORMS
from ..vision.photodna import hamming_distance, robust_hash
from ..core.url_extraction import WhitelistBuilder, extract_links
from .profiles import DriftProfile

__all__ = [
    "DefenseConfig",
    "RadiusCalibration",
    "apply_radius",
    "build_refreshed_link_extractor",
    "build_watchlist_selection",
    "sweep_hash_radius",
    "watchlist_from_report",
]


@dataclass(frozen=True, slots=True)
class DefenseConfig:
    """Which adaptive defenses the harness enables for a run."""

    retrain_classifier: bool = False
    author_watchlist: bool = False
    refresh_whitelist: bool = False
    deobfuscate_links: bool = False
    hash_radius_sweep: bool = False

    @classmethod
    def none(cls) -> "DefenseConfig":
        """The static instrument: measure once, never adapt."""
        return cls()

    @classmethod
    def full(cls) -> "DefenseConfig":
        """Every defense on (the adaptive instrument)."""
        return cls(
            retrain_classifier=True,
            author_watchlist=True,
            refresh_whitelist=True,
            deobfuscate_links=True,
            hash_radius_sweep=True,
        )

    @property
    def any_enabled(self) -> bool:
        return any(
            (
                self.retrain_classifier,
                self.author_watchlist,
                self.refresh_whitelist,
                self.deobfuscate_links,
                self.hash_radius_sweep,
            )
        )

    def as_dict(self) -> dict:
        return {
            "retrain_classifier": self.retrain_classifier,
            "author_watchlist": self.author_watchlist,
            "refresh_whitelist": self.refresh_whitelist,
            "deobfuscate_links": self.deobfuscate_links,
            "hash_radius_sweep": self.hash_radius_sweep,
        }


# ----------------------------------------------------------------------
# Hash-radius threshold sweep (A5 machinery, adaptive edition)
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RadiusCalibration:
    """Outcome of one synthetic threshold sweep."""

    radius: int
    true_positive_rate: float
    false_positive_rate: float
    n_positive_pairs: int
    n_negative_pairs: int

    def as_dict(self) -> dict:
        return {
            "radius": self.radius,
            "true_positive_rate": round(self.true_positive_rate, 6),
            "false_positive_rate": round(self.false_positive_rate, 6),
            "n_positive_pairs": self.n_positive_pairs,
            "n_negative_pairs": self.n_negative_pairs,
        }


def sweep_hash_radius(
    profile: DriftProfile,
    seed: int,
    n_samples: int = 24,
    fpr_budget: float = 0.01,
    max_radius: int = 30,
) -> RadiusCalibration:
    """Pick the widest hash radius whose synthetic FPR fits the budget.

    Positive pairs are ``(base, transform-stacked copy)`` hashes of
    freshly sampled latents, stacked to the profile's ``transform_depth``
    — a stand-in for the re-uploads the adversary produces.  Negative
    pairs are cross-image hashes.  The sweep returns the largest radius
    in ``[0, max_radius]`` whose negative-pair hit rate stays within
    ``fpr_budget`` (radius 0 if even that leaks).
    """
    rng = np.random.default_rng(int(seed))
    base_hashes: List[int] = []
    transformed_hashes: List[int] = []
    pool = STACKED_EVASION_TRANSFORMS
    for _ in range(n_samples):
        latent = sample_latent(rng, ImageKind.MODEL_NUDE)
        base_hashes.append(robust_hash(render_latent(latent)))
        copy = latent
        for _ in range(profile.transform_depth):
            copy = copy.with_transform(pool[int(rng.integers(0, len(pool)))])
        transformed_hashes.append(robust_hash(render_latent(copy)))

    positives = [
        hamming_distance(base, transformed)
        for base, transformed in zip(base_hashes, transformed_hashes)
    ]
    negatives = [
        hamming_distance(base_hashes[i], base_hashes[j])
        for i in range(n_samples)
        for j in range(i + 1, n_samples)
    ]

    best = RadiusCalibration(0, 0.0, 0.0, len(positives), len(negatives))
    for radius in range(0, max_radius + 1):
        fpr = sum(1 for d in negatives if d <= radius) / max(1, len(negatives))
        if fpr > fpr_budget:
            break
        tpr = sum(1 for d in positives if d <= radius) / max(1, len(positives))
        best = RadiusCalibration(radius, tpr, fpr, len(positives), len(negatives))
    return best


def apply_radius(world, calibration: RadiusCalibration) -> None:
    """Retune both perceptual-hash services to the calibrated radius."""
    world.hashlist.set_radius(calibration.radius)
    world.reverse_index.set_radius(calibration.radius)


# ----------------------------------------------------------------------
# Whitelist refresh + link deobfuscation
# ----------------------------------------------------------------------

def build_refreshed_link_extractor(world, deobfuscate: bool = True) -> Callable:
    """Link extractor that re-snowballs against the *live* internet.

    The default extractor inspects candidate domains through the static
    Table 3/4 registry, which cannot see churned-in hosts; this one asks
    the internet itself (:meth:`~repro.web.internet.SimulatedInternet.
    service_for`), re-discovering fresh hosting services exactly the way
    the §4.2 snowball discovered the original whitelist.
    """

    def extractor(dataset, tops):
        builder = WhitelistBuilder(inspect=world.internet.service_for)
        return extract_links(
            dataset, tops, whitelist_builder=builder, deobfuscate=deobfuscate
        )

    return extractor


# ----------------------------------------------------------------------
# Author watchlist (migration recovery)
# ----------------------------------------------------------------------

def watchlist_from_report(report) -> Set[int]:
    """Author ids of the threads the instrument flagged as TOPs.

    Built from a *pipeline report* — the instrument's own output — so
    the watchlist carries no ground-truth leak: it is exactly the "known
    sellers" list a real measurement team would keep.
    """
    return {thread.author_id for thread in (report.tops or ())}


def build_watchlist_selection(watchlist: Set[int]) -> Callable:
    """Selection that augments §3 keyword selection with watched authors.

    Threads started by a watched author are selected even when they no
    longer carry the keyword or live on the eWhoring board — recovering
    migrated threads at the cost of re-classifying some benign ones.
    """
    watched = frozenset(watchlist)

    def selection(dataset) -> List:
        base = ewhoring_threads(dataset)
        seen = {thread.thread_id for thread in base}
        extras = [
            thread
            for thread in dataset.threads()
            if thread.author_id in watched and thread.thread_id not in seen
        ]
        extras.sort(key=lambda thread: thread.thread_id)
        return base + extras

    return selection
