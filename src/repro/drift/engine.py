"""The adversarial drift engine: epoch-based world mutation.

:func:`apply_drift` replays ``epoch`` rounds of ecosystem adaptation
over a freshly built world.  Every decision is a pure hash of
``(seed, channel, epoch, entity)`` via
:func:`~repro.web.faults.stable_uniform` — the same recipe as the
transient-fault and payload-fault injectors — so drift is independent of
iteration order, commutes with crawl retries, checkpointed resume and
parallel lanes, and two builds of the same ``(world seed, drift seed,
profile, epoch)`` are bit-identical.

The engine mutates only what real adversaries control: hosted resources
(re-uploads, takedowns of their own links), post text (rewritten links),
thread headings/boards (migration), and the population of hosting
services (churn).  The web intelligence built at epoch 0 — reverse
index, archive, hashlist — is deliberately left stale: that is exactly
the decay being measured.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..media.image import SyntheticImage
from ..media.pack import Pack
from ..media.transforms import STACKED_EVASION_TRANSFORMS
from ..web.faults import stable_uniform
from ..web.internet import FetchStatus, RedirectPage, SimulatedInternet
from ..web.sites import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    HostingService,
    ServiceKind,
)
from ..web.url import (
    OBFUSCATION_STYLES,
    Url,
    extract_urls,
    normalize_url,
    obfuscate_url,
)
from .profiles import DriftProfile

__all__ = ["ContentRef", "DriftLedger", "EpochCounters", "apply_drift"]


@dataclass
class ContentRef:
    """One TOP-post link occurrence the engine tracks across epochs.

    ``key`` (the original URL plus the containing post) is the stable
    identity every hash draw is keyed on; ``post_text`` is the exact
    string currently written in the post (a fresh URL after re-upload, a
    redirector entry after laundering, a de-fanged spelling after
    obfuscation); ``target_url`` is where the content itself lives.
    """

    key: str
    post_id: int
    thread_id: int
    kind: str  # "preview" | "pack"
    post_text: str
    target_url: str
    image_ids: Tuple[int, ...]
    obfuscated: bool = False
    redirected: bool = False
    reuploaded: bool = False


@dataclass
class EpochCounters:
    """What one epoch of drift actually did (observability)."""

    epoch: int
    n_reuploads: int = 0
    n_obfuscated: int = 0
    n_redirects: int = 0
    n_redirect_pages: int = 0
    n_domains_killed: int = 0
    n_domains_minted: int = 0
    n_threads_migrated: int = 0
    n_threads_retitled: int = 0

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "n_reuploads": self.n_reuploads,
            "n_obfuscated": self.n_obfuscated,
            "n_redirects": self.n_redirects,
            "n_redirect_pages": self.n_redirect_pages,
            "n_domains_killed": self.n_domains_killed,
            "n_domains_minted": self.n_domains_minted,
            "n_threads_migrated": self.n_threads_migrated,
            "n_threads_retitled": self.n_threads_retitled,
        }


@dataclass
class DriftLedger:
    """Everything the drift engine did, plus the live ground truth.

    The per-stage decay measurement (:mod:`repro.drift.measure`) scores
    the pipeline against this: which content is still reachable, where
    it moved, and which threads were disguised.
    """

    profile: DriftProfile
    epoch: int
    seed: int
    #: ref key → tracked link occurrence (final state after all epochs).
    refs: Dict[str, ContentRef] = field(default_factory=dict)
    per_epoch: List[EpochCounters] = field(default_factory=list)
    dead_domains: Set[str] = field(default_factory=set)
    minted_domains: List[str] = field(default_factory=list)
    #: true-TOP thread ids that migrated, → mode ("move" | "slang").
    migrated_threads: Dict[int, str] = field(default_factory=dict)

    def live_truth_image_ids(self, internet: SimulatedInternet) -> Set[int]:
        """Image ids of TOP-referenced content that is alive right now.

        This is the stage-2 ground truth: what a perfect crawler that
        reads every post and defeats every obfuscation could download.
        """
        live: Set[int] = set()
        for ref in self.refs.values():
            hosted = internet.hosted(ref.target_url)
            if hosted is not None and hosted.status is FetchStatus.OK:
                live.update(ref.image_ids)
        return live

    def totals(self) -> dict:
        """Summed per-epoch counters (deterministic snapshot material)."""
        total = EpochCounters(epoch=self.epoch)
        for counters in self.per_epoch:
            total.n_reuploads += counters.n_reuploads
            total.n_obfuscated += counters.n_obfuscated
            total.n_redirects += counters.n_redirects
            total.n_redirect_pages += counters.n_redirect_pages
            total.n_domains_killed += counters.n_domains_killed
            total.n_domains_minted += counters.n_domains_minted
            total.n_threads_migrated += counters.n_threads_migrated
            total.n_threads_retitled += counters.n_threads_retitled
        return total.as_dict()


# ----------------------------------------------------------------------
# Drifted heading vocabulary (channel 4)
# ----------------------------------------------------------------------
# Deliberately disjoint from core.keywords.STRONG_PACK_KEYWORDS: the
# epoch-0 heuristics and SVM have never seen these tokens, so only a
# retrained classifier (and, for moved threads, author rediscovery) can
# recover them.
_SLANG_HEADINGS: Tuple[str, ...] = (
    "Fresh gallery dump from my girl",
    "New bundle dropped - she delivers",
    "Her latest stash is live",
    "Premium folder access - no saturation",
    "Exclusive goods from a new model",
    "Updated drop - full gallery inside",
    "The vault is open again",
    "Unreleased material - grab it fast",
)


def _slang_heading(seed: int, epoch: int, thread_id: int) -> str:
    u = stable_uniform(seed, "slang", str(epoch), str(thread_id))
    return _SLANG_HEADINGS[int(u * len(_SLANG_HEADINGS)) % len(_SLANG_HEADINGS)]


# ----------------------------------------------------------------------
# Deterministic URL minting (no RNG streams)
# ----------------------------------------------------------------------

def _mint_path(seed: int, *parts: str) -> str:
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()[:10]


def _mint_unique_url(
    internet: SimulatedInternet, domain: str, seed: int, *parts: str
) -> Url:
    for salt in range(64):
        token = _mint_path(seed, *parts, str(salt))
        url = Url(host=domain, path=f"/{token}")
        if internet.hosted(url) is None:
            return url
    raise RuntimeError(f"drift URL namespace exhausted for {domain!r}")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class _DriftState:
    """Engine-local working state carried across epochs of one apply."""

    def __init__(self, world) -> None:
        self.world = world
        self.next_id = _max_used_id(world) + 1
        self.dead_domains: Set[str] = set()
        self.minted: Dict[ServiceKind, List[str]] = {
            ServiceKind.IMAGE_SHARING: [],
            ServiceKind.CLOUD_STORAGE: [],
        }
        self.migrated: Dict[int, str] = {}

    def allocate_id(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


def _max_used_id(world) -> int:
    highest = max(world.supply.by_image_id, default=0)
    dataset = world.dataset
    for post in dataset.posts():
        highest = max(highest, post.post_id)
    for thread in dataset.threads():
        highest = max(highest, thread.thread_id)
    for actor in dataset.actors():
        highest = max(highest, actor.actor_id)
    for board in dataset.boards():
        highest = max(highest, board.board_id)
    for forum in dataset.forums():
        highest = max(highest, forum.forum_id)
    for pack_id, pack in world.forums.packs.items():
        highest = max(highest, pack_id)
        for image in pack.images:
            highest = max(highest, image.image_id)
    return highest


def _discover_refs(world) -> Dict[str, ContentRef]:
    """Track every hosted link occurrence in true-TOP threads (epoch 0)."""
    refs: Dict[str, ContentRef] = {}
    internet = world.internet
    dataset = world.dataset
    top_ids = sorted(
        tid for tid, kind in world.forums.thread_types.items() if kind == "top"
    )
    for thread_id in top_ids:
        for post in dataset.posts_in_thread(thread_id):
            for url in extract_urls(post.content):
                hosted = internet.hosted(url)
                if hosted is None or isinstance(hosted.resource, RedirectPage):
                    continue
                if isinstance(hosted.resource, Pack):
                    kind = "pack"
                    image_ids = tuple(
                        image.image_id for image in hosted.resource.images
                    )
                else:
                    kind = "preview"
                    image_ids = (hosted.resource.image_id,)
                key = f"{url}#{post.post_id}"
                refs[key] = ContentRef(
                    key=key,
                    post_id=post.post_id,
                    thread_id=thread_id,
                    kind=kind,
                    post_text=str(url),
                    target_url=str(url),
                    image_ids=image_ids,
                )
    return refs


def _alive_domains(state: _DriftState, kind: ServiceKind) -> List[str]:
    """Re-upload targets: live static services plus churned-in hosts."""
    static = (
        IMAGE_SHARING_SERVICES
        if kind is ServiceKind.IMAGE_SHARING
        else CLOUD_STORAGE_SERVICES
    )
    domains = [
        service.domain
        for service in static
        if not service.defunct and not service.requires_registration
    ]
    domains.extend(state.minted[kind])
    return sorted(domain for domain in domains if domain not in state.dead_domains)


def _rewrite_post_text(dataset, ref: ContentRef, new_text: str) -> None:
    post = dataset.post(ref.post_id)
    if ref.post_text not in post.content:  # pragma: no cover - invariant
        raise RuntimeError(
            f"drift lost track of link {ref.key!r} in post {ref.post_id}"
        )
    dataset.rewrite_post(ref.post_id, post.content.replace(ref.post_text, new_text, 1))
    ref.post_text = new_text


def _transform_chain(
    profile: DriftProfile, seed: int, epoch: int, key: str
) -> List[str]:
    pool = STACKED_EVASION_TRANSFORMS
    names: List[str] = []
    for step in range(profile.transform_depth):
        u = stable_uniform(seed, "chain", str(epoch), key, str(step))
        names.append(pool[int(u * len(pool)) % len(pool)])
    return names


def _transformed_copy(
    state: _DriftState, resource: Union[SyntheticImage, Pack], chain: List[str]
) -> Union[SyntheticImage, Pack]:
    def reupload_image(image: SyntheticImage) -> SyntheticImage:
        latent = image.latent
        for name in chain:
            latent = latent.with_transform(name)
        return SyntheticImage(state.allocate_id(), latent)

    if isinstance(resource, Pack):
        members = [reupload_image(image) for image in resource.images]
        return Pack(
            pack_id=state.allocate_id(),
            model_id=resource.model_id,
            images=members,
            compiler_actor_id=resource.compiler_actor_id,
            saturated=resource.saturated,
            evasion=tuple(resource.evasion) + tuple(chain),
        )
    return reupload_image(resource)


# ---- per-epoch channels ----------------------------------------------

def _churn_epoch(
    state: _DriftState,
    profile: DriftProfile,
    seed: int,
    epoch: int,
    counters: EpochCounters,
    ledger: DriftLedger,
) -> None:
    internet = state.world.internet
    known = {
        service.domain
        for service in IMAGE_SHARING_SERVICES + CLOUD_STORAGE_SERVICES
        if not service.defunct
    }
    for kind_domains in state.minted.values():
        known.update(kind_domains)
    for domain in sorted(known - state.dead_domains):
        if stable_uniform(seed, "churn_kill", str(epoch), domain) < profile.domain_death_rate:
            state.dead_domains.add(domain)
            ledger.dead_domains.add(domain)
            counters.n_domains_killed += 1
            for url in internet.urls_on(domain):
                hosted = internet.hosted(url)
                if hosted is not None:
                    hosted.status = FetchStatus.DEFUNCT
    for index in range(profile.new_hosts_per_epoch):
        kind = (
            ServiceKind.IMAGE_SHARING if index % 2 == 0 else ServiceKind.CLOUD_STORAGE
        )
        stem = "imgdrop" if kind is ServiceKind.IMAGE_SHARING else "packvault"
        domain = f"{stem}-e{epoch}-{index}.net"
        internet.register_service(
            HostingService(
                name=f"{stem}-e{epoch}-{index}",
                domain=domain,
                kind=kind,
                weight=50,
                dead_link_rate=0.0,
                tos_takedown_rate=0.0,
            )
        )
        state.minted[kind].append(domain)
        ledger.minted_domains.append(domain)
        counters.n_domains_minted += 1


def _reupload_epoch(
    state: _DriftState,
    profile: DriftProfile,
    seed: int,
    epoch: int,
    refs: Dict[str, ContentRef],
    counters: EpochCounters,
) -> None:
    internet = state.world.internet
    dataset = state.world.dataset
    for key in sorted(refs):
        ref = refs[key]
        if stable_uniform(seed, "reupload", str(epoch), key) >= profile.reupload_rate:
            continue
        hosted = internet.hosted(ref.target_url)
        if hosted is None or isinstance(hosted.resource, RedirectPage):
            continue
        kind = (
            ServiceKind.IMAGE_SHARING
            if ref.kind == "preview"
            else ServiceKind.CLOUD_STORAGE
        )
        domains = _alive_domains(state, kind)
        if not domains:
            continue
        pick = stable_uniform(seed, "reupload_host", str(epoch), key)
        domain = domains[int(pick * len(domains)) % len(domains)]
        chain = _transform_chain(profile, seed, epoch, key)
        copy = _transformed_copy(state, hosted.resource, chain)
        new_url = _mint_unique_url(internet, domain, seed, "reupload", str(epoch), key)
        internet.host_exact(new_url, copy, uploaded_at=hosted.uploaded_at)
        # The operator deletes the old upload once the fresh one is live.
        hosted.status = FetchStatus.NOT_FOUND
        _rewrite_post_text(dataset, ref, str(new_url))
        ref.target_url = str(new_url)
        ref.image_ids = (
            tuple(image.image_id for image in copy.images)
            if isinstance(copy, Pack)
            else (copy.image_id,)
        )
        ref.obfuscated = False
        ref.redirected = False
        ref.reuploaded = True
        counters.n_reuploads += 1


def _redirect_epoch(
    state: _DriftState,
    profile: DriftProfile,
    seed: int,
    epoch: int,
    refs: Dict[str, ContentRef],
    counters: EpochCounters,
    ledger: DriftLedger,
) -> None:
    internet = state.world.internet
    dataset = state.world.dataset
    minted_redirectors: Dict[int, str] = {}
    for key in sorted(refs):
        ref = refs[key]
        if ref.obfuscated or ref.redirected:
            continue
        if stable_uniform(seed, "redirect", str(epoch), key) >= profile.redirect_rate:
            continue
        hosted = internet.hosted(ref.target_url)
        if hosted is None or hosted.status is not FetchStatus.OK:
            continue
        u_hops = stable_uniform(seed, "redirect_hops", str(epoch), key)
        hops = 1 + int(u_hops * profile.max_redirect_hops) % profile.max_redirect_hops
        # One redirector domain per hop depth per epoch keeps the chain
        # population small and the whitelist problem realistic.
        chain_urls: List[Url] = []
        for hop in range(hops):
            domain = minted_redirectors.get(hop)
            if domain is None:
                domain = f"lnk-e{epoch}-h{hop}.net"
                internet.register_service(
                    HostingService(
                        name=f"lnk-e{epoch}-h{hop}",
                        domain=domain,
                        kind=ServiceKind.IMAGE_SHARING,
                        weight=10,
                        dead_link_rate=0.0,
                    )
                )
                minted_redirectors[hop] = domain
                ledger.minted_domains.append(domain)
            chain_urls.append(
                _mint_unique_url(
                    internet, domain, seed, "redirect", str(epoch), key, str(hop)
                )
            )
        target = normalize_url(ref.target_url)
        if target is None:  # pragma: no cover - refs always hold plain URLs
            continue
        for hop in range(hops - 1, -1, -1):
            next_url = target if hop == hops - 1 else chain_urls[hop + 1]
            internet.host_exact(
                chain_urls[hop],
                RedirectPage(target=next_url),
                uploaded_at=hosted.uploaded_at,
            )
            counters.n_redirect_pages += 1
        _rewrite_post_text(dataset, ref, str(chain_urls[0]))
        ref.redirected = True
        counters.n_redirects += 1


def _obfuscate_epoch(
    state: _DriftState,
    profile: DriftProfile,
    seed: int,
    epoch: int,
    refs: Dict[str, ContentRef],
    counters: EpochCounters,
) -> None:
    dataset = state.world.dataset
    for key in sorted(refs):
        ref = refs[key]
        if ref.obfuscated:
            continue
        if stable_uniform(seed, "obfuscate", str(epoch), key) >= profile.obfuscation_rate:
            continue
        parsed = normalize_url(ref.post_text)
        if parsed is None:
            continue
        u_style = stable_uniform(seed, "obf_style", str(epoch), key)
        style = OBFUSCATION_STYLES[int(u_style * len(OBFUSCATION_STYLES)) % len(OBFUSCATION_STYLES)]
        _rewrite_post_text(dataset, ref, obfuscate_url(parsed, style))
        ref.obfuscated = True
        counters.n_obfuscated += 1


def _migrate_epoch(
    state: _DriftState,
    profile: DriftProfile,
    seed: int,
    epoch: int,
    counters: EpochCounters,
    ledger: DriftLedger,
) -> None:
    world = state.world
    dataset = world.dataset
    top_ids = sorted(
        tid for tid, kind in world.forums.thread_types.items() if kind == "top"
    )
    boards = sorted(
        (board for board in dataset.boards() if not board.is_ewhoring_board),
        key=lambda board: board.board_id,
    )
    for thread_id in top_ids:
        if thread_id in state.migrated:
            continue
        if stable_uniform(seed, "migrate", str(epoch), str(thread_id)) >= profile.migration_rate:
            continue
        mode_draw = stable_uniform(seed, "migrate_mode", str(epoch), str(thread_id))
        heading = _slang_heading(seed, epoch, thread_id)
        if mode_draw < 0.5:
            # Vocabulary drift: stays findable by the §4.1 keyword
            # selection but the heading carries none of the pack
            # vocabulary the trained classifier relies on.
            dataset.retitle_thread(thread_id, f"{heading} (ewhoring)")
            state.migrated[thread_id] = "slang"
            counters.n_threads_retitled += 1
        else:
            # Full migration: the thread moves to a non-ewhoring board
            # (preferring another forum) and drops the keyword, leaving
            # the selection step blind until author rediscovery.
            thread = dataset.thread(thread_id)
            candidates = [
                board for board in boards if board.forum_id != thread.forum_id
            ] or boards
            if not candidates:
                continue
            pick = stable_uniform(seed, "migrate_board", str(epoch), str(thread_id))
            target = candidates[int(pick * len(candidates)) % len(candidates)]
            dataset.move_thread(thread_id, target.board_id)
            dataset.retitle_thread(thread_id, heading)
            state.migrated[thread_id] = "move"
            counters.n_threads_migrated += 1
        ledger.migrated_threads[thread_id] = state.migrated[thread_id]


def apply_drift(
    world, profile: DriftProfile, epoch: int, seed: int
) -> DriftLedger:
    """Apply epochs ``1..epoch`` of ``profile`` to a freshly built world.

    Mutates the world in place and returns the :class:`DriftLedger`
    (content tracking + per-epoch counters).  ``epoch=0`` or the
    ``none`` profile build the ledger but change nothing — the world
    stays bit-identical to one that never met the drift engine.
    """
    if epoch < 0:
        raise ValueError("epoch must be >= 0")
    seed = int(seed)
    ledger = DriftLedger(profile=profile, epoch=epoch, seed=seed)
    ledger.refs = _discover_refs(world)
    if epoch == 0 or profile.is_trivial:
        return ledger
    state = _DriftState(world)
    for current in range(1, epoch + 1):
        counters = EpochCounters(epoch=current)
        # Order matters within an epoch and is fixed: churn first (so
        # re-uploads can land on freshly minted hosts and avoid dead
        # ones), then re-uploads, then link laundering over whatever
        # URL now sits in the post, then heading drift.
        _churn_epoch(state, profile, seed, current, counters, ledger)
        _reupload_epoch(state, profile, seed, current, ledger.refs, counters)
        _redirect_epoch(state, profile, seed, current, ledger.refs, counters, ledger)
        _obfuscate_epoch(state, profile, seed, current, ledger.refs, counters)
        _migrate_epoch(state, profile, seed, current, counters, ledger)
        ledger.per_epoch.append(counters)
    return ledger
