"""The drift harness: run the funnel per epoch, measure the decay curve.

:func:`run_drift` is the R4 experiment loop.  For each epoch it rebuilds
the world (same seed — the pre-drift content is bit-identical every
time), lets the drift engine replay ``1..epoch`` rounds of adversarial
adaptation, wires the configured defenses into the pipeline, runs the
full §3 funnel, and scores every stage against the drift ledger.  The
result is a decay curve per stage: recall/precision as a function of
epoch, defenses off vs on.

Determinism: every ingredient — world build, drift engine, defenses
(own seed stream), pipeline — is a pure function of ``(seed, profile,
epochs, defenses, workers)``; ``workers`` only changes crawl
scheduling, which is already bit-identical by construction.  The
returned report is therefore reproducible to the byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .._rng import SeedSequenceTree
from ..obs import RunTelemetry
from ..synth.world import WorldConfig, build_world
from .defenses import (
    DefenseConfig,
    RadiusCalibration,
    apply_radius,
    build_refreshed_link_extractor,
    build_watchlist_selection,
    sweep_hash_radius,
    watchlist_from_report,
)
from .measure import StageScore, measure_run, scores_as_dict
from .profiles import DriftProfile, drift_profile

__all__ = ["DriftEpochResult", "DriftReport", "run_drift"]


@dataclass
class DriftEpochResult:
    """One epoch's pipeline run, scored."""

    epoch: int
    scores: Dict[str, StageScore]
    drift_totals: dict
    n_selected: int
    n_tops: int
    n_crawled_images: int
    n_quarantined: int
    calibration: Optional[RadiusCalibration] = None

    def as_dict(self) -> dict:
        payload = {
            "epoch": self.epoch,
            "scores": scores_as_dict(self.scores),
            "drift_totals": self.drift_totals,
            "n_selected": self.n_selected,
            "n_tops": self.n_tops,
            "n_crawled_images": self.n_crawled_images,
            "n_quarantined": self.n_quarantined,
        }
        if self.calibration is not None:
            payload["radius_calibration"] = self.calibration.as_dict()
        return payload


@dataclass
class DriftReport:
    """The decay curve: per-epoch, per-stage scores for one scenario."""

    profile: str
    seed: int
    scale: float
    n_epochs: int
    defenses: DefenseConfig
    epochs: List[DriftEpochResult] = field(default_factory=list)

    def recall_curve(self, stage: str) -> List[float]:
        """Stage recall by epoch (index 0 = the pre-drift baseline)."""
        return [round(result.scores[stage].recall, 6) for result in self.epochs]

    def as_dict(self) -> dict:
        from .measure import STAGE_NAMES

        return {
            "profile": self.profile,
            "seed": self.seed,
            "scale": self.scale,
            "n_epochs": self.n_epochs,
            "defenses": self.defenses.as_dict(),
            "epochs": [result.as_dict() for result in self.epochs],
            "recall_curves": {
                stage: self.recall_curve(stage) for stage in STAGE_NAMES
            },
        }


def _run_epoch_pipeline(
    world,
    annotate_n: int,
    workers: Optional[int],
    selection_fn=None,
    link_extractor=None,
    pretrained_classifier=None,
    telemetry: Optional[RunTelemetry] = None,
):
    """Run the funnel with the world's oracles; returns (pipeline, report)."""
    from .. import pipeline_for_world

    pipeline = pipeline_for_world(
        world,
        selection_fn=selection_fn,
        link_extractor=link_extractor,
        pretrained_classifier=pretrained_classifier,
    )
    truth = world.forums
    top_n = max(10, int(round(50 * math.sqrt(world.config.scale))))
    report = pipeline.run(
        top_oracle=lambda thread_id: truth.thread_types.get(thread_id) == "top",
        proof_oracle=truth.proof_truth.get,
        annotate_n=annotate_n,
        key_actor_top_n=top_n,
        telemetry=telemetry,
        crawl_workers=workers if workers is not None else world.config.crawl_workers,
    )
    return pipeline, report


def run_drift(
    profile: str,
    epochs: int = 2,
    seed: int = 7,
    scale: float = 0.02,
    defenses: Optional[DefenseConfig] = None,
    workers: Optional[int] = None,
    annotate_n: int = 1000,
    fault_profile: Optional[str] = None,
    payload_profile: Optional[str] = None,
    underage_rate: Optional[float] = None,
    hashlist_rate: Optional[float] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> DriftReport:
    """Run the per-epoch decay experiment for one drift scenario.

    Epoch 0 always runs the paper's static methodology (it doubles as
    the baseline *and* trains the model the frozen instrument keeps
    using); epochs ``1..epochs`` run against the drifted world with the
    configured ``defenses``.  ``defenses=None`` means the static
    instrument (:meth:`DefenseConfig.none`).
    """
    scenario = drift_profile(profile)  # validate eagerly
    defenses = defenses if defenses is not None else DefenseConfig.none()
    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    report = DriftReport(
        profile=scenario.name,
        seed=seed,
        scale=scale,
        n_epochs=epochs,
        defenses=defenses,
    )
    telemetry = telemetry if telemetry is not None else RunTelemetry()
    tracer = telemetry.tracer
    defense_seeds = SeedSequenceTree(seed, "drift-defenses")

    frozen_classifier = None
    watchlist = None
    for epoch in range(0, epochs + 1):
        with tracer.span(
            "drift.epoch", epoch=epoch, profile=scenario.name
        ) as span:
            config_kwargs = dict(
                seed=seed,
                scale=scale,
                drift_profile=scenario.name,
                drift_epoch=epoch,
                fault_profile=fault_profile,
                payload_profile=payload_profile,
                crawl_workers=workers,
            )
            # Small worlds rarely reference hashlist-listed lineages from
            # TOP threads; the bench raises these rates (E3 precedent) so
            # the abuse stage has ground truth to decay against.
            if underage_rate is not None:
                config_kwargs["underage_rate"] = underage_rate
            if hashlist_rate is not None:
                config_kwargs["hashlist_rate"] = hashlist_rate
            world = build_world(WorldConfig(**config_kwargs))
            ledger = world.drift_ledger
            calibration = None
            selection_fn = None
            link_extractor = None
            pretrained = None
            if epoch > 0:
                if not defenses.retrain_classifier:
                    pretrained = frozen_classifier
                if defenses.author_watchlist and watchlist:
                    selection_fn = build_watchlist_selection(watchlist)
                if defenses.refresh_whitelist:
                    link_extractor = build_refreshed_link_extractor(
                        world, deobfuscate=defenses.deobfuscate_links
                    )
                elif defenses.deobfuscate_links:
                    from ..core.url_extraction import extract_links

                    def link_extractor(dataset, tops):
                        return extract_links(dataset, tops, deobfuscate=True)

                if defenses.hash_radius_sweep:
                    calibration = sweep_hash_radius(
                        scenario, seed=defense_seeds.seed(f"radius-{epoch}")
                    )
                    apply_radius(world, calibration)
            pipeline, pipeline_report = _run_epoch_pipeline(
                world,
                annotate_n=annotate_n,
                workers=workers,
                selection_fn=selection_fn,
                link_extractor=link_extractor,
                pretrained_classifier=pretrained,
            )
            if epoch == 0:
                # The static instrument keeps using this model forever;
                # the watchlist is the instrument's own epoch-0 output.
                frozen_classifier = pipeline.last_classifier
                watchlist = watchlist_from_report(pipeline_report)
            scores = measure_run(world, ledger, pipeline_report)
            crawl = pipeline_report.crawl
            result = DriftEpochResult(
                epoch=epoch,
                scores=scores,
                drift_totals=ledger.totals(),
                n_selected=len(pipeline_report.selection),
                n_tops=len(pipeline_report.tops or ()),
                n_crawled_images=len(crawl.all_images) if crawl is not None else 0,
                n_quarantined=crawl.n_quarantined if crawl is not None else 0,
                calibration=calibration,
            )
            report.epochs.append(result)
            for stage, score in scores.items():
                telemetry.metrics.gauge(
                    "drift.recall", stage=stage, epoch=epoch
                ).set(round(score.recall, 6))
                telemetry.metrics.gauge(
                    "drift.precision", stage=stage, epoch=epoch
                ).set(round(score.precision, 6))
            span.set(
                n_tops=result.n_tops,
                n_crawled_images=result.n_crawled_images,
                selection_recall=round(scores["selection"].recall, 6),
                crawl_recall=round(scores["crawl"].recall, 6),
            )
    return report
