"""Per-stage recall/precision of one pipeline run against drift truth.

The §3 funnel is scored stage by stage against the world's ground truth
as mutated by the drift engine (the :class:`~repro.drift.engine.
DriftLedger` tracks where content moved).  Identity across re-uploads is
the *visual seed*: a transformed copy carries a fresh image id but keeps
the lineage seed of the photograph it was derived from, which is exactly
how the real instrument's perceptual hashes are supposed to see through
evasion.

Five stages are measured:

1. ``selection`` — predicted TOP threads vs ground-truth ``"top"``;
2. ``crawl`` — image ids downloaded vs live TOP-referenced content;
3. ``abuse`` — hashlist hits vs hashlist-listed lineages still live;
4. ``nsfv`` — NSFV-positive previews vs model-depicting previews;
5. ``provenance`` — reverse-search matches vs indexed lineages queried.

Every score is a pure function of ``(world, ledger, report)`` — no RNG,
no wall clock — so decay curves are bit-identical across runs and
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..web.internet import FetchStatus, RedirectPage
from ..media.pack import Pack
from .engine import DriftLedger

__all__ = ["STAGE_NAMES", "StageScore", "measure_run", "scores_as_dict"]

#: Funnel stages in measurement order.
STAGE_NAMES = ("selection", "crawl", "abuse", "nsfv", "provenance")


@dataclass(frozen=True, slots=True)
class StageScore:
    """Recall/precision of one funnel stage against drift ground truth."""

    stage: str
    n_truth: int
    n_predicted: int
    n_hit: int

    @property
    def recall(self) -> float:
        """Fraction of the ground truth the stage recovered (1.0 when
        there was nothing to recover — an empty stage is not a miss)."""
        if self.n_truth == 0:
            return 1.0
        return self.n_hit / self.n_truth

    @property
    def precision(self) -> float:
        if self.n_predicted == 0:
            return 1.0
        return self.n_hit / self.n_predicted

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "n_truth": self.n_truth,
            "n_predicted": self.n_predicted,
            "n_hit": self.n_hit,
            "recall": round(self.recall, 6),
            "precision": round(self.precision, 6),
        }


def _score(stage: str, truth: Set, predicted: Set) -> StageScore:
    return StageScore(
        stage=stage,
        n_truth=len(truth),
        n_predicted=len(predicted),
        n_hit=len(truth & predicted),
    )


# ----------------------------------------------------------------------
# Lineage helpers
# ----------------------------------------------------------------------

def _hashlist_seeds(world) -> Set[int]:
    """Visual seeds of the lineages the abuse hashlist knows."""
    seeds: Set[int] = set()
    for model in world.supply.models:
        for circulating in model.pool:
            if circulating.in_hashlist:
                seeds.add(circulating.image.latent.visual_seed)
    return seeds


def _indexed_seeds(world) -> Set[int]:
    """Visual seeds of the lineages the reverse-search index crawled."""
    seeds: Set[int] = set()
    for model in world.supply.models:
        for circulating in model.pool:
            if circulating.indexed:
                seeds.add(circulating.image.latent.visual_seed)
    return seeds


def _live_ref_images(world, ledger: DriftLedger):
    """Yield ``(image_id, visual_seed)`` for live TOP-referenced content."""
    internet = world.internet
    for key in sorted(ledger.refs):
        ref = ledger.refs[key]
        hosted = internet.hosted(ref.target_url)
        if hosted is None or hosted.status is not FetchStatus.OK:
            continue
        resource = hosted.resource
        if isinstance(resource, RedirectPage):  # pragma: no cover - never a target
            continue
        images = resource.images if isinstance(resource, Pack) else [resource]
        for image in images:
            yield image.image_id, image.latent.visual_seed


# ----------------------------------------------------------------------
# The measurement
# ----------------------------------------------------------------------

def measure_run(world, ledger: DriftLedger, report) -> Dict[str, StageScore]:
    """Score one :class:`~repro.core.pipeline.PipelineReport` per stage."""
    scores: Dict[str, StageScore] = {}

    # -- stage 1: thread selection + TOP classification ----------------
    truth_tops = {
        tid for tid, kind in world.forums.thread_types.items() if kind == "top"
    }
    predicted_tops = {thread.thread_id for thread in (report.tops or ())}
    scores["selection"] = _score("selection", truth_tops, predicted_tops)

    # -- stage 2: crawl reach (image-id space) -------------------------
    live_images = list(_live_ref_images(world, ledger))
    truth_image_ids = {image_id for image_id, _ in live_images}
    crawled = report.crawl.all_images if report.crawl is not None else []
    crawled_ids = {item.image.image_id for item in crawled}
    scores["crawl"] = _score("crawl", truth_image_ids, crawled_ids)

    # -- stage 3: abuse hashlist (visual-seed lineage space) -----------
    listed = _hashlist_seeds(world)
    truth_abuse = {seed for _, seed in live_images if seed in listed}
    by_digest = report.crawl.unique_digests() if report.crawl is not None else {}
    matched_digests = report.abuse.matched_digests if report.abuse is not None else set()
    predicted_abuse = {
        by_digest[digest].image.latent.visual_seed
        for digest in matched_digests
        if digest in by_digest
    }
    scores["abuse"] = _score("abuse", truth_abuse, predicted_abuse)

    # -- stage 4: NSFV filtering of previews ---------------------------
    verdicts = report.preview_verdicts or []
    truth_nsfv = {
        item.image.image_id
        for item, _ in verdicts
        if item.image.latent.kind.is_model
    }
    predicted_nsfv = {item.image.image_id for item, verdict in verdicts if verdict.nsfv}
    scores["nsfv"] = _score("nsfv", truth_nsfv, predicted_nsfv)

    # -- stage 5: reverse-search provenance (digest space) -------------
    indexed = _indexed_seeds(world)
    outcomes = []
    if report.provenance is not None:
        outcomes = list(report.provenance.pack_outcomes) + list(
            report.provenance.preview_outcomes
        )
    truth_prov = {
        outcome.digest
        for outcome in outcomes
        if outcome.digest in by_digest
        and by_digest[outcome.digest].image.latent.visual_seed in indexed
    }
    predicted_prov = {outcome.digest for outcome in outcomes if outcome.matched}
    scores["provenance"] = _score("provenance", truth_prov, predicted_prov)

    return scores


def scores_as_dict(scores: Dict[str, StageScore]) -> Dict[str, dict]:
    """JSON-ready, deterministically ordered view of per-stage scores."""
    return {name: scores[name].as_dict() for name in STAGE_NAMES if name in scores}
