"""Named adversarial-drift profiles (the R4 robustness scenarios).

A :class:`DriftProfile` fixes the per-epoch intensity of the four
evasion channels the measured ecosystem uses against the paper's
instrument:

1. **pack re-upload** — operators re-host their previews/packs under a
   stack of image transforms (mirror, rotate, re-encode, ...), walking
   away from the perceptual hashes the defenses hold;
2. **URL obfuscation + redirectors** — links are de-fanged
   (``hxxps://``, ``imgur[.]com``) or laundered through multi-hop
   redirector chains, defeating regex extraction and the whitelist;
3. **domain churn** — whitelisted hosts die and fresh, snowball-
   discoverable hosts appear;
4. **actor migration** — TOP authors move threads across forums and
   shift their heading vocabulary away from the trained classifier.

All rates are *per epoch, per entity*; every decision in
:mod:`repro.drift.engine` is a pure hash of ``(seed, channel, epoch,
entity)`` (the :func:`repro.web.faults.stable_uniform` recipe), so drift
commutes with retries, resume and parallel crawl lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DRIFT_PROFILES", "DriftProfile", "drift_profile"]


@dataclass(frozen=True, slots=True)
class DriftProfile:
    """Per-epoch intensity of the four evasion channels."""

    name: str
    # -- channel 1: pack re-upload with stacked transforms -------------
    #: Probability a TOP-referenced resource is re-uploaded this epoch.
    reupload_rate: float = 0.0
    #: How many transforms each re-upload stacks on top of the image.
    transform_depth: int = 1
    # -- channel 2: URL obfuscation + redirector chains ----------------
    #: Probability a posted link is rewritten in a de-fanged spelling.
    obfuscation_rate: float = 0.0
    #: Probability a posted link is laundered through a redirector chain.
    redirect_rate: float = 0.0
    #: Longest chain the launderers build (hops are hash-drawn in
    #: ``[1, max_redirect_hops]``).
    max_redirect_hops: int = 2
    # -- channel 3: domain churn ---------------------------------------
    #: Probability a known hosting domain dies this epoch.
    domain_death_rate: float = 0.0
    #: Fresh hosting services minted per epoch (half image-sharing,
    #: half cloud-storage).
    new_hosts_per_epoch: int = 0
    # -- channel 4: actor migration ------------------------------------
    #: Probability a true-TOP thread migrates (board move + keyword-free
    #: retitle) or shifts to drifted slang, per epoch.
    migration_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate in (
            self.reupload_rate,
            self.obfuscation_rate,
            self.redirect_rate,
            self.domain_death_rate,
            self.migration_rate,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("drift rates must be within [0, 1]")
        if self.transform_depth < 1:
            raise ValueError("transform_depth must be >= 1")
        if self.max_redirect_hops < 1:
            raise ValueError("max_redirect_hops must be >= 1")
        if self.new_hosts_per_epoch < 0:
            raise ValueError("new_hosts_per_epoch must be >= 0")

    @property
    def is_trivial(self) -> bool:
        """True when no channel ever fires (the ``none`` profile)."""
        return (
            self.reupload_rate == 0.0
            and self.obfuscation_rate == 0.0
            and self.redirect_rate == 0.0
            and self.domain_death_rate == 0.0
            and self.new_hosts_per_epoch == 0
            and self.migration_rate == 0.0
        )


#: Built-in drift profiles.  ``none`` is the static paper-world (strict
#: no-op, bit-identical to not applying drift at all); ``mild`` a lightly
#: adaptive ecosystem; ``aggressive`` organised counter-measurement;
#: ``hostile`` an ecosystem that assumes it is being measured.
DRIFT_PROFILES: Dict[str, DriftProfile] = {
    "none": DriftProfile("none"),
    "mild": DriftProfile(
        "mild",
        reupload_rate=0.20,
        transform_depth=1,
        obfuscation_rate=0.10,
        redirect_rate=0.08,
        max_redirect_hops=1,
        domain_death_rate=0.04,
        new_hosts_per_epoch=2,
        migration_rate=0.10,
    ),
    "aggressive": DriftProfile(
        "aggressive",
        reupload_rate=0.40,
        transform_depth=2,
        obfuscation_rate=0.25,
        redirect_rate=0.18,
        max_redirect_hops=2,
        domain_death_rate=0.10,
        new_hosts_per_epoch=3,
        migration_rate=0.25,
    ),
    "hostile": DriftProfile(
        "hostile",
        reupload_rate=0.60,
        transform_depth=3,
        obfuscation_rate=0.40,
        redirect_rate=0.30,
        max_redirect_hops=4,
        domain_death_rate=0.18,
        new_hosts_per_epoch=4,
        migration_rate=0.40,
    ),
}


def drift_profile(name: str) -> DriftProfile:
    """Look up a built-in drift profile by name.

    >>> drift_profile("hostile").transform_depth
    3
    """
    try:
        return DRIFT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(DRIFT_PROFILES))
        raise ValueError(f"unknown drift profile {name!r} (known: {known})") from None
