"""Money substrate: currencies, historical rates, exchange-heading parsing."""

from .money import Currency, Money, PaymentPlatform
from .parser import (
    CANONICAL_CURRENCIES,
    UNCLASSIFIED,
    ExchangeOffer,
    canonical_currency,
    parse_exchange_heading,
)
from .rates import HistoricalRates, RateError

__all__ = [
    "CANONICAL_CURRENCIES",
    "Currency",
    "ExchangeOffer",
    "HistoricalRates",
    "Money",
    "PaymentPlatform",
    "RateError",
    "UNCLASSIFIED",
    "canonical_currency",
    "parse_exchange_heading",
]
