"""Money values and the payment instruments of the eWhoring economy.

§5 annotates proof-of-earnings with a payment *platform* (PayPal, Amazon
Gift Cards, Bitcoin …) and a *currency* (USD, GBP, EUR …), converting
everything to USD with historical rates.  Platforms and currencies are
separate enumerations because the same platform moves several currencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Currency", "Money", "PaymentPlatform"]


class Currency(enum.Enum):
    """Fiat and crypto denominations seen in proof-of-earnings."""

    USD = "USD"
    EUR = "EUR"
    GBP = "GBP"
    CAD = "CAD"
    AUD = "AUD"
    BTC = "BTC"

    @property
    def is_crypto(self) -> bool:
        return self is Currency.BTC


class PaymentPlatform(enum.Enum):
    """Where the money landed (the §5.2 platform histogram)."""

    PAYPAL = "PayPal"
    AMAZON_GIFT_CARD = "Amazon Gift Card"
    BITCOIN = "Bitcoin"
    SKRILL = "Skrill"
    WESTERN_UNION = "Western Union"
    CASH = "Cash"
    OTHER = "Other"


@dataclass(frozen=True, slots=True)
class Money:
    """An amount in a currency.  Arithmetic only within one currency."""

    amount: float
    currency: Currency

    def __post_init__(self) -> None:
        if not isinstance(self.currency, Currency):
            raise TypeError("currency must be a Currency")

    def __add__(self, other: "Money") -> "Money":
        self._check(other)
        return Money(self.amount + other.amount, self.currency)

    def __sub__(self, other: "Money") -> "Money":
        self._check(other)
        return Money(self.amount - other.amount, self.currency)

    def scaled(self, factor: float) -> "Money":
        return Money(self.amount * factor, self.currency)

    def _check(self, other: "Money") -> None:
        if not isinstance(other, Money):
            raise TypeError("can only combine Money with Money")
        if other.currency is not self.currency:
            raise ValueError(
                f"currency mismatch: {self.currency.value} vs {other.currency.value}; "
                "convert with HistoricalRates first"
            )

    def __str__(self) -> str:
        if self.currency.is_crypto:
            return f"{self.amount:.6f} {self.currency.value}"
        return f"{self.currency.value} {self.amount:,.2f}"
