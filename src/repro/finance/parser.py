"""Parsing Currency Exchange thread headings (§5.1).

"Most of the threads in this board use a de-facto standard format where
the currency offered follows the tag [H] and the currency wanted follows
the tag [W]."  This module parses that format into canonical currency
labels, with the alias table an exchange board actually exhibits (pp,
paypal, btc, bitcoin, agc, amazon gc, …).  Headings that do not follow
the convention, or whose currency token is unrecognised, classify as
``"?"`` — the unclassified bucket of Table 7.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "CANONICAL_CURRENCIES",
    "ExchangeOffer",
    "UNCLASSIFIED",
    "canonical_currency",
    "parse_exchange_heading",
]

#: The canonical buckets of Table 7.
CANONICAL_CURRENCIES: Tuple[str, ...] = ("PayPal", "BTC", "AGC", "?", "others")

#: Label for headings without a recognisable currency.
UNCLASSIFIED = "?"

_ALIASES: Dict[str, str] = {
    "paypal": "PayPal",
    "pp": "PayPal",
    "btc": "BTC",
    "bitcoin": "BTC",
    "bitcoins": "BTC",
    "agc": "AGC",
    "amazon": "AGC",
    "amazon gc": "AGC",
    "amazon gift card": "AGC",
    "amazon gift cards": "AGC",
    "amazon giftcard": "AGC",
    "amazongc": "AGC",
    # Everything else the board trades collapses into "others".
    "skrill": "others",
    "ltc": "others",
    "litecoin": "others",
    "eth": "others",
    "ethereum": "others",
    "wmz": "others",
    "webmoney": "others",
    "wu": "others",
    "western union": "others",
    "steam": "others",
    "psc": "others",
    "paysafecard": "others",
    "venmo": "others",
    "cashapp": "others",
    "zelle": "others",
}

_H_PATTERN = re.compile(r"\[h\]\s*([^\[\]]*)", re.IGNORECASE)
_W_PATTERN = re.compile(r"\[w\]\s*([^\[\]]*)", re.IGNORECASE)
#: Strips amounts like "$50", "50$", "0.01", "50 usd" from a tag segment.
_AMOUNT_PATTERN = re.compile(r"[\$€£]?\s*\d+(?:[.,]\d+)?\s*(?:usd|eur|gbp)?\s*", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class ExchangeOffer:
    """Parsed [H]/[W] heading: what is offered and what is wanted."""

    offered: str
    wanted: str

    @property
    def parsed(self) -> bool:
        """True when both sides were recognised."""
        return self.offered != UNCLASSIFIED and self.wanted != UNCLASSIFIED


def canonical_currency(token: str) -> str:
    """Map a free-text currency mention to its Table 7 bucket."""
    cleaned = _AMOUNT_PATTERN.sub(" ", token.lower())
    cleaned = re.sub(r"[^a-z ]", " ", cleaned)
    cleaned = " ".join(cleaned.split())
    if not cleaned:
        return UNCLASSIFIED
    if cleaned in _ALIASES:
        return _ALIASES[cleaned]
    # Try multi-word aliases inside the segment, longest first.
    for alias in sorted(_ALIASES, key=len, reverse=True):
        if " " in alias and alias in cleaned:
            return _ALIASES[alias]
    for word in cleaned.split():
        if word in _ALIASES:
            return _ALIASES[word]
    return UNCLASSIFIED


def parse_exchange_heading(heading: str) -> ExchangeOffer:
    """Parse a Currency Exchange heading into an :class:`ExchangeOffer`.

    >>> parse_exchange_heading("[H] $50 Amazon GC [W] BTC").offered
    'AGC'
    >>> parse_exchange_heading("selling stuff").wanted
    '?'
    """
    have = _H_PATTERN.search(heading)
    want = _W_PATTERN.search(heading)
    offered = canonical_currency(have.group(1)) if have else UNCLASSIFIED
    wanted = canonical_currency(want.group(1)) if want else UNCLASSIFIED
    return ExchangeOffer(offered=offered, wanted=wanted)
