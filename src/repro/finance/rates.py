"""Historical exchange rates (synthetic, deterministic).

§5.1: "we use a historical exchange rate list to get the corresponding
rate when the transaction was performed".  Real rate feeds are not
available offline, so this module synthesises smooth, plausible daily
curves: fiat currencies oscillate gently around their long-run USD rate;
BTC follows an exponential growth path with boom/bust cycles.  Curves are
pure functions of (currency, date) — no state, no look-ahead.
"""

from __future__ import annotations

import math
from datetime import date, datetime
from typing import Dict, Union

from .money import Currency, Money

__all__ = ["HistoricalRates", "RateError"]

_EPOCH = date(2008, 1, 1)

#: Long-run USD value of one unit of each fiat currency.
_FIAT_BASE: Dict[Currency, float] = {
    Currency.USD: 1.00,
    Currency.EUR: 1.22,
    Currency.GBP: 1.45,
    Currency.CAD: 0.82,
    Currency.AUD: 0.78,
}

#: Fiat oscillation amplitude (fraction of base) and period (days).
_FIAT_WOBBLE: Dict[Currency, tuple] = {
    Currency.USD: (0.0, 365.0),
    Currency.EUR: (0.10, 1300.0),
    Currency.GBP: (0.12, 1700.0),
    Currency.CAD: (0.09, 1100.0),
    Currency.AUD: (0.11, 900.0),
}


class RateError(ValueError):
    """Raised for unsupported currencies or out-of-range dates."""


class HistoricalRates:
    """Daily USD rates for every supported currency, 2008–2020."""

    first_day: date = date(2008, 1, 1)
    last_day: date = date(2020, 12, 31)

    def rate_to_usd(self, currency: Currency, when: Union[date, datetime]) -> float:
        """USD value of one unit of ``currency`` on ``when``."""
        day = when.date() if isinstance(when, datetime) else when
        if not self.first_day <= day <= self.last_day:
            raise RateError(f"no rate data for {day.isoformat()}")
        if currency is Currency.BTC:
            return self._btc_rate(day)
        base = _FIAT_BASE.get(currency)
        if base is None:
            raise RateError(f"unsupported currency {currency!r}")
        amplitude, period = _FIAT_WOBBLE[currency]
        days = (day - _EPOCH).days
        # Two incommensurate sinusoids: smooth, non-repeating drift.
        wobble = amplitude * (
            0.7 * math.sin(2 * math.pi * days / period)
            + 0.3 * math.sin(2 * math.pi * days / (period * 0.37))
        )
        return base * (1.0 + wobble)

    def convert(
        self,
        money: Money,
        when: Union[date, datetime],
        target: Currency = Currency.USD,
    ) -> Money:
        """Convert ``money`` at the rate of ``when`` (via USD)."""
        usd_amount = money.amount * self.rate_to_usd(money.currency, when)
        if target is Currency.USD:
            return Money(usd_amount, Currency.USD)
        target_rate = self.rate_to_usd(target, when)
        return Money(usd_amount / target_rate, target)

    def to_usd(self, money: Money, when: Union[date, datetime]) -> float:
        """Shorthand: USD amount of ``money`` on ``when``."""
        return self.convert(money, when).amount

    # ------------------------------------------------------------------
    @staticmethod
    def _btc_rate(day: date) -> float:
        """Synthetic BTC/USD path: exponential growth with bubble cycles.

        Roughly: cents in 2010, ~$600 around 2014, a large 2017 peak,
        four-digit values after — the qualitative path the currency-
        exchange analysis cares about (BTC becomes the wanted currency as
        its value grows).
        """
        days = (day - _EPOCH).days
        years = days / 365.25
        # log10 dollars: ~cents around 2010, hundreds by 2014, a 2017
        # peak in the low tens of thousands, flattening after.
        log_trend = min(-2.0 + 0.62 * years, 4.2)
        bubble = 0.9 * math.sin(2 * math.pi * years / 4.0 + 1.2)
        ripple = 0.15 * math.sin(2 * math.pi * years * 3.1)
        return max(10.0 ** (log_trend + bubble + ripple), 0.003)
