"""Underground-forum substrate: data model, storage and queries.

This package is the CrimeBB analogue — see DESIGN.md §2 for the
substitution rationale.
"""

from .dataset import DatasetError, ForumDataset
from .models import Actor, Board, Forum, Post, Thread
from .query import (
    EWHORING_HEADING_KEYWORDS,
    ForumSummary,
    ewhoring_threads,
    forum_summaries,
    threads_with_heading_keywords,
)
from .stats import DatasetStats, Distribution, dataset_stats, gini
from .store import load_dataset, save_dataset

__all__ = [
    "Actor",
    "Board",
    "DatasetError",
    "EWHORING_HEADING_KEYWORDS",
    "Forum",
    "ForumDataset",
    "ForumSummary",
    "Post",
    "Thread",
    "DatasetStats",
    "Distribution",
    "dataset_stats",
    "ewhoring_threads",
    "forum_summaries",
    "gini",
    "load_dataset",
    "save_dataset",
    "threads_with_heading_keywords",
]
