"""In-memory forum dataset container with indexed access.

:class:`ForumDataset` is the substrate every pipeline stage reads from.  It
holds the full record tables (forums, boards, actors, threads, posts) and
maintains the secondary indices the measurement code needs: posts by
thread, threads by board, per-actor activity, and post id lookup for quote
resolution.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from datetime import datetime
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .models import Actor, Board, Forum, Post, Thread

__all__ = ["DatasetError", "ForumDataset"]


class DatasetError(ValueError):
    """Raised on integrity violations (duplicate ids, dangling references)."""


class ForumDataset:
    """A queryable snapshot of one or more underground forums.

    Records must be added parents-first (forum before its boards, thread
    before its posts); referential integrity is checked eagerly so that a
    malformed generator fails at construction time, not during measurement.
    """

    def __init__(self) -> None:
        self._forums: Dict[int, Forum] = {}
        self._boards: Dict[int, Board] = {}
        self._actors: Dict[int, Actor] = {}
        self._threads: Dict[int, Thread] = {}
        self._posts: Dict[int, Post] = {}
        self._posts_by_thread: Dict[int, List[int]] = defaultdict(list)
        self._threads_by_board: Dict[int, List[int]] = defaultdict(list)
        self._threads_by_forum: Dict[int, List[int]] = defaultdict(list)
        self._posts_by_actor: Dict[int, List[int]] = defaultdict(list)
        self._boards_by_forum: Dict[int, List[int]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_forum(self, forum: Forum) -> None:
        """Register a forum record."""
        if forum.forum_id in self._forums:
            raise DatasetError(f"duplicate forum id {forum.forum_id}")
        self._forums[forum.forum_id] = forum

    def add_board(self, board: Board) -> None:
        """Register a board; its forum must already exist."""
        if board.board_id in self._boards:
            raise DatasetError(f"duplicate board id {board.board_id}")
        if board.forum_id not in self._forums:
            raise DatasetError(f"board {board.board_id} references unknown forum {board.forum_id}")
        self._boards[board.board_id] = board
        self._boards_by_forum[board.forum_id].append(board.board_id)

    def add_actor(self, actor: Actor) -> None:
        """Register an actor; their home forum must already exist."""
        if actor.actor_id in self._actors:
            raise DatasetError(f"duplicate actor id {actor.actor_id}")
        if actor.forum_id not in self._forums:
            raise DatasetError(f"actor {actor.actor_id} references unknown forum {actor.forum_id}")
        self._actors[actor.actor_id] = actor

    def add_thread(self, thread: Thread) -> None:
        """Register a thread; board, forum and author must already exist."""
        if thread.thread_id in self._threads:
            raise DatasetError(f"duplicate thread id {thread.thread_id}")
        board = self._boards.get(thread.board_id)
        if board is None:
            raise DatasetError(f"thread {thread.thread_id} references unknown board {thread.board_id}")
        if board.forum_id != thread.forum_id:
            raise DatasetError(
                f"thread {thread.thread_id} claims forum {thread.forum_id} "
                f"but its board belongs to forum {board.forum_id}"
            )
        if thread.author_id not in self._actors:
            raise DatasetError(f"thread {thread.thread_id} references unknown actor {thread.author_id}")
        self._threads[thread.thread_id] = thread
        self._threads_by_board[thread.board_id].append(thread.thread_id)
        self._threads_by_forum[thread.forum_id].append(thread.thread_id)

    def add_post(self, post: Post) -> None:
        """Register a post; its thread and author must already exist."""
        if post.post_id in self._posts:
            raise DatasetError(f"duplicate post id {post.post_id}")
        if post.thread_id not in self._threads:
            raise DatasetError(f"post {post.post_id} references unknown thread {post.thread_id}")
        if post.author_id not in self._actors:
            raise DatasetError(f"post {post.post_id} references unknown actor {post.author_id}")
        expected_position = len(self._posts_by_thread[post.thread_id])
        if post.position != expected_position:
            raise DatasetError(
                f"post {post.post_id} has position {post.position}, "
                f"expected {expected_position} for thread {post.thread_id}"
            )
        self._posts[post.post_id] = post
        self._posts_by_thread[post.thread_id].append(post.post_id)
        self._posts_by_actor[post.author_id].append(post.post_id)

    @classmethod
    def from_sorted_records(
        cls,
        forums: Sequence[Forum],
        boards: Sequence[Board],
        actors: Sequence[Actor],
        threads: Sequence[Thread],
        posts: Sequence[Post],
    ) -> "ForumDataset":
        """Deserialisation fast path: bulk-fill from pre-sorted records.

        ``add_*`` pays a per-record method call plus eager parent probes —
        right for generators, wasteful for a store read of tens of
        thousands of rows whose ordering the caller already guarantees
        (posts grouped by thread in position order).  This builds the
        tables and indices directly, then restores the same guarantees
        another way: duplicate ids via table-vs-input length checks,
        position contiguity inline, dangling references via
        :meth:`validate`.  Any violation raises :class:`DatasetError`
        exactly as the incremental path would.
        """
        dataset = cls()
        dataset._forums = {f.forum_id: f for f in forums}
        dataset._boards = {b.board_id: b for b in boards}
        dataset._actors = {a.actor_id: a for a in actors}
        dataset._threads = {t.thread_id: t for t in threads}
        if (
            len(dataset._forums) != len(forums)
            or len(dataset._boards) != len(boards)
            or len(dataset._actors) != len(actors)
            or len(dataset._threads) != len(threads)
        ):
            raise DatasetError("duplicate record ids in bulk load")
        for board in dataset._boards.values():
            dataset._boards_by_forum[board.forum_id].append(board.board_id)
        for thread in dataset._threads.values():
            dataset._threads_by_board[thread.board_id].append(thread.thread_id)
            dataset._threads_by_forum[thread.forum_id].append(thread.thread_id)
        table = dataset._posts
        by_thread = dataset._posts_by_thread
        by_actor = dataset._posts_by_actor
        for post in posts:
            positions = by_thread[post.thread_id]
            if post.position != len(positions):
                raise DatasetError(
                    f"post {post.post_id} has position {post.position}, "
                    f"expected {len(positions)} for thread {post.thread_id}"
                )
            table[post.post_id] = post
            positions.append(post.post_id)
            by_actor[post.author_id].append(post.post_id)
        if len(table) != len(posts):
            raise DatasetError("duplicate post ids in bulk load")
        dataset.validate()
        return dataset

    # -- drift mutations -----------------------------------------------
    # Records are frozen; these swap a record for an edited copy while
    # keeping every secondary index consistent.  Used by ``repro.drift``
    # to model actors editing posts and migrating threads.

    def rewrite_post(self, post_id: int, content: str) -> Post:
        """Replace a post's content in place; returns the new record."""
        post = self._posts[post_id]
        updated = replace(post, content=content)
        self._posts[post_id] = updated
        return updated

    def retitle_thread(self, thread_id: int, heading: str) -> Thread:
        """Replace a thread's heading in place; returns the new record."""
        thread = self._threads[thread_id]
        updated = replace(thread, heading=heading)
        self._threads[thread_id] = updated
        return updated

    def move_thread(self, thread_id: int, board_id: int) -> Thread:
        """Re-home a thread onto another (existing) board.

        The thread's ``forum_id`` follows the destination board, and the
        by-board / by-forum indices are updated; posts stay attached.
        """
        thread = self._threads[thread_id]
        board = self._boards.get(board_id)
        if board is None:
            raise DatasetError(f"move target board {board_id} does not exist")
        if board_id == thread.board_id:
            return thread
        updated = replace(thread, board_id=board_id, forum_id=board.forum_id)
        self._threads_by_board[thread.board_id].remove(thread_id)
        self._threads_by_board[board_id].append(thread_id)
        if board.forum_id != thread.forum_id:
            self._threads_by_forum[thread.forum_id].remove(thread_id)
            self._threads_by_forum[board.forum_id].append(thread_id)
        self._threads[thread_id] = updated
        return updated

    def extend(self, records: Iterable[object]) -> None:
        """Add a heterogeneous iterable of records, dispatching by type."""
        adders = {
            Forum: self.add_forum,
            Board: self.add_board,
            Actor: self.add_actor,
            Thread: self.add_thread,
            Post: self.add_post,
        }
        for record in records:
            adder = adders.get(type(record))
            if adder is None:
                raise DatasetError(f"unsupported record type {type(record).__name__}")
            adder(record)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def forum(self, forum_id: int) -> Forum:
        """Return the forum with ``forum_id`` (KeyError if absent)."""
        return self._forums[forum_id]

    def board(self, board_id: int) -> Board:
        """Return the board with ``board_id`` (KeyError if absent)."""
        return self._boards[board_id]

    def actor(self, actor_id: int) -> Actor:
        """Return the actor with ``actor_id`` (KeyError if absent)."""
        return self._actors[actor_id]

    def thread(self, thread_id: int) -> Thread:
        """Return the thread with ``thread_id`` (KeyError if absent)."""
        return self._threads[thread_id]

    def post(self, post_id: int) -> Post:
        """Return the post with ``post_id`` (KeyError if absent)."""
        return self._posts[post_id]

    def maybe_post(self, post_id: int) -> Optional[Post]:
        """Return the post or ``None`` when the id is unknown."""
        return self._posts.get(post_id)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def forums(self) -> Iterator[Forum]:
        """Iterate over all forums in insertion order."""
        return iter(self._forums.values())

    def boards(self, forum_id: Optional[int] = None) -> Iterator[Board]:
        """Iterate over boards, optionally restricted to one forum."""
        if forum_id is None:
            return iter(self._boards.values())
        return (self._boards[b] for b in self._boards_by_forum.get(forum_id, []))

    def actors(self) -> Iterator[Actor]:
        """Iterate over all actors."""
        return iter(self._actors.values())

    def threads(self, forum_id: Optional[int] = None) -> Iterator[Thread]:
        """Iterate over threads, optionally restricted to one forum."""
        if forum_id is None:
            return iter(self._threads.values())
        return (self._threads[t] for t in self._threads_by_forum.get(forum_id, []))

    def posts(self) -> Iterator[Post]:
        """Iterate over all posts."""
        return iter(self._posts.values())

    def posts_in_thread(self, thread_id: int) -> List[Post]:
        """Return the posts of a thread ordered by position."""
        return [self._posts[p] for p in self._posts_by_thread.get(thread_id, [])]

    def initial_post(self, thread_id: int) -> Optional[Post]:
        """Return the opening post of a thread, or ``None`` if empty."""
        ids = self._posts_by_thread.get(thread_id)
        if not ids:
            return None
        return self._posts[ids[0]]

    def replies(self, thread_id: int) -> List[Post]:
        """Return the non-initial posts of a thread in order."""
        return self.posts_in_thread(thread_id)[1:]

    def threads_in_board(self, board_id: int) -> List[Thread]:
        """Return the threads of a board in insertion order."""
        return [self._threads[t] for t in self._threads_by_board.get(board_id, [])]

    def posts_by_actor(self, actor_id: int) -> List[Post]:
        """Return all posts an actor wrote, in insertion order."""
        return [self._posts[p] for p in self._posts_by_actor.get(actor_id, [])]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_forums(self) -> int:
        return len(self._forums)

    @property
    def n_boards(self) -> int:
        return len(self._boards)

    @property
    def n_actors(self) -> int:
        return len(self._actors)

    @property
    def n_threads(self) -> int:
        return len(self._threads)

    @property
    def n_posts(self) -> int:
        return len(self._posts)

    def reply_count(self, thread_id: int) -> int:
        """Number of replies (posts excluding the opener) in a thread."""
        return max(0, len(self._posts_by_thread.get(thread_id, [])) - 1)

    def span(self) -> Optional[tuple[datetime, datetime]]:
        """Return (first post date, last post date) or ``None`` when empty."""
        if not self._posts:
            return None
        dates = [p.created_at for p in self._posts.values()]
        return min(dates), max(dates)

    def thread_participants(self, thread_id: int) -> List[int]:
        """Distinct actor ids that posted in a thread, in first-post order."""
        seen: Dict[int, None] = {}
        for post in self.posts_in_thread(thread_id):
            seen.setdefault(post.author_id, None)
        return list(seen)

    def validate(self) -> None:
        """Re-check referential integrity over the whole dataset.

        Construction already validates incrementally; this is a belt-and-
        braces sweep for deserialised datasets.
        """
        for board in self._boards.values():
            if board.forum_id not in self._forums:
                raise DatasetError(f"board {board.board_id} dangling forum")
        for thread in self._threads.values():
            if thread.board_id not in self._boards:
                raise DatasetError(f"thread {thread.thread_id} dangling board")
            if thread.author_id not in self._actors:
                raise DatasetError(f"thread {thread.thread_id} dangling author")
        for post in self._posts.values():
            if post.thread_id not in self._threads:
                raise DatasetError(f"post {post.post_id} dangling thread")
            if post.author_id not in self._actors:
                raise DatasetError(f"post {post.post_id} dangling author")
            if post.quoted_post_id is not None and post.quoted_post_id not in self._posts:
                raise DatasetError(f"post {post.post_id} quotes unknown post {post.quoted_post_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ForumDataset(forums={self.n_forums}, boards={self.n_boards}, "
            f"actors={self.n_actors}, threads={self.n_threads}, posts={self.n_posts})"
        )
