"""Core data model for underground-forum datasets (CrimeBB analogue).

The model follows the structure described in §3 of the paper: a *forum*
contains *boards*; users (*actors*) initiate *threads* on a board by writing
an initial *post* under a *heading*; other actors reply with further posts,
optionally quoting earlier posts.  All records are plain frozen dataclasses
so they can be hashed, stored and serialised without surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Optional

__all__ = ["Actor", "Board", "Forum", "Post", "Thread"]


@dataclass(frozen=True, slots=True)
class Forum:
    """One underground forum (e.g. the Hackforums analogue)."""

    forum_id: int
    name: str
    #: Whether the forum hosts a board dedicated to eWhoring (§3: only the
    #: Hackforums analogue does).
    has_ewhoring_board: bool = False
    #: Whether the forum's terms of service ban eWhoring conversations
    #: (§3: the BlackHatWorld analogue does, and moderators remove packs).
    bans_ewhoring: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("forum name must be non-empty")


@dataclass(frozen=True, slots=True)
class Board:
    """A topical section of a forum.

    ``category`` groups boards into the coarse interest categories used for
    the §6.3 interest analysis (e.g. ``"Gaming"``, ``"Hacking"``,
    ``"Market"``, ``"Common"``); ``None`` for forums where the category
    taxonomy does not apply.
    """

    board_id: int
    forum_id: int
    name: str
    category: Optional[str] = None
    #: Marks the dedicated eWhoring board (§3) — all of its threads are
    #: eWhoring-related regardless of heading keywords.
    is_ewhoring_board: bool = False
    #: Marks the Currency Exchange board used for the §5 monetisation
    #: analysis.
    is_currency_exchange: bool = False
    #: Marks the "Bragging Rights" board mined for proof-of-earnings (§5.1).
    is_bragging_board: bool = False


@dataclass(frozen=True, slots=True)
class Actor:
    """A forum member.

    The paper uses 'actor' for members discussing or engaging in eWhoring;
    here every member is an ``Actor`` record and eWhoring involvement is a
    property of their posts.
    """

    actor_id: int
    forum_id: int
    username: str
    registered_at: datetime

    def __post_init__(self) -> None:
        if not self.username:
            raise ValueError("username must be non-empty")


@dataclass(frozen=True, slots=True)
class Thread:
    """A conversation: a heading plus an ordered sequence of posts."""

    thread_id: int
    board_id: int
    forum_id: int
    author_id: int
    heading: str
    created_at: datetime

    def heading_lower(self) -> str:
        """The heading casefolded, as compared throughout the methodology."""
        return self.heading.lower()


@dataclass(frozen=True, slots=True)
class Post:
    """One message in a thread.

    ``quoted_post_id`` records an explicit quote of an earlier post; the
    §6.1 interaction rules use it to attribute replies.  ``position`` is the
    zero-based index of the post within its thread (0 = the initial post).
    """

    post_id: int
    thread_id: int
    author_id: int
    created_at: datetime
    content: str
    position: int
    quoted_post_id: Optional[int] = None

    @property
    def is_initial(self) -> bool:
        """True when this post opened its thread."""
        return self.position == 0


def with_content(post: Post, content: str) -> Post:
    """Return a copy of ``post`` with replaced content (posts are frozen)."""
    return replace(post, content=content)
