"""Query helpers over :class:`~repro.forum.dataset.ForumDataset`.

These implement the dataset-selection steps of §3: keyword search over
thread headings (lowercased substring match, exactly as the paper does for
``'ewhor'`` / ``'e-whor'``), board-based selection (the dedicated eWhoring
board contributes all of its threads), and per-forum summary statistics
used by Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .dataset import ForumDataset
from .models import Thread

__all__ = [
    "EWHORING_HEADING_KEYWORDS",
    "ForumSummary",
    "ewhoring_threads",
    "forum_summaries",
    "threads_with_heading_keywords",
]

#: The two keywords the paper searches for in thread headings (§3).
EWHORING_HEADING_KEYWORDS: tuple[str, ...] = ("ewhor", "e-whor")


def threads_with_heading_keywords(
    dataset: ForumDataset,
    keywords: Sequence[str],
    forum_id: Optional[int] = None,
) -> List[Thread]:
    """Return threads whose lowercased heading contains any keyword.

    Comparison is done in lowercase, matching the paper's methodology.
    """
    lowered = [k.lower() for k in keywords]
    hits = []
    for thread in dataset.threads(forum_id):
        heading = thread.heading_lower()
        if any(keyword in heading for keyword in lowered):
            hits.append(thread)
    return hits


def ewhoring_threads(dataset: ForumDataset, forum_id: Optional[int] = None) -> List[Thread]:
    """Select the eWhoring-related threads of the dataset (§3).

    A thread qualifies if its heading contains ``'ewhor'`` or ``'e-whor'``,
    or if it lives on a board flagged as the dedicated eWhoring board.
    Threads are returned once each, in dataset insertion order.
    """
    ewhoring_board_ids: Set[int] = {
        board.board_id for board in dataset.boards() if board.is_ewhoring_board
    }
    selected: List[Thread] = []
    for thread in dataset.threads(forum_id):
        if thread.board_id in ewhoring_board_ids:
            selected.append(thread)
            continue
        heading = thread.heading_lower()
        if any(keyword in heading for keyword in EWHORING_HEADING_KEYWORDS):
            selected.append(thread)
    return selected


@dataclass(frozen=True, slots=True)
class ForumSummary:
    """Per-forum counts for the Table 1 reproduction."""

    forum_id: int
    forum_name: str
    n_threads: int
    n_posts: int
    n_actors: int
    first_post: Optional[str]

    @property
    def row(self) -> tuple:
        """Render as a Table 1 row (name, threads, posts, first, actors)."""
        return (self.forum_name, self.n_threads, self.n_posts, self.first_post, self.n_actors)


def forum_summaries(
    dataset: ForumDataset,
    threads: Optional[Iterable[Thread]] = None,
) -> List[ForumSummary]:
    """Summarise eWhoring activity per forum, sorted by thread count.

    ``threads`` defaults to :func:`ewhoring_threads`; pass an explicit
    selection to summarise a different slice.  Actor counts are distinct
    posters within the selected threads, as in Table 1.
    """
    selected = list(threads) if threads is not None else ewhoring_threads(dataset)
    per_forum_threads: Dict[int, int] = {}
    per_forum_posts: Dict[int, int] = {}
    per_forum_actors: Dict[int, Set[int]] = {}
    per_forum_first: Dict[int, str] = {}

    for thread in selected:
        forum_id = thread.forum_id
        per_forum_threads[forum_id] = per_forum_threads.get(forum_id, 0) + 1
        posts = dataset.posts_in_thread(thread.thread_id)
        per_forum_posts[forum_id] = per_forum_posts.get(forum_id, 0) + len(posts)
        actors = per_forum_actors.setdefault(forum_id, set())
        for post in posts:
            actors.add(post.author_id)
            stamp = post.created_at.strftime("%m/%y")
            current = per_forum_first.get(forum_id)
            if current is None or post.created_at.strftime("%Y-%m") < _month_key(current):
                per_forum_first[forum_id] = stamp

    summaries = [
        ForumSummary(
            forum_id=forum_id,
            forum_name=dataset.forum(forum_id).name,
            n_threads=per_forum_threads[forum_id],
            n_posts=per_forum_posts.get(forum_id, 0),
            n_actors=len(per_forum_actors.get(forum_id, set())),
            first_post=per_forum_first.get(forum_id),
        )
        for forum_id in per_forum_threads
    ]
    summaries.sort(key=lambda s: s.n_threads, reverse=True)
    return summaries


def _month_key(stamp: str) -> str:
    """Convert an ``MM/YY`` stamp back to a sortable ``YYYY-MM`` key."""
    month, year = stamp.split("/")
    century = "20" if int(year) < 70 else "19"
    return f"{century}{year}-{month}"
