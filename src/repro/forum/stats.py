"""Descriptive statistics over a forum dataset.

Validation utilities for generated (or loaded) datasets: distributional
summaries of thread lengths, per-actor activity and per-board volume.
The world generator's calibration tests use these to check that the
synthetic corpus has the concentration structure real forums exhibit
(heavy-tailed participation, a small core of prolific actors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .dataset import ForumDataset
from .models import Thread

__all__ = ["DatasetStats", "Distribution", "dataset_stats", "gini"]


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = concentrated).

    >>> round(gini([1, 1, 1, 1]), 3)
    0.0
    """
    array = np.sort(np.asarray(values, dtype=np.float64))
    if array.size == 0:
        return 0.0
    if np.any(array < 0):
        raise ValueError("gini requires non-negative values")
    total = array.sum()
    if total == 0.0:
        return 0.0
    n = array.size
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * array)) / (n * total) - (n + 1.0) / n)


@dataclass(frozen=True, slots=True)
class Distribution:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    median: float
    p90: float
    maximum: float
    gini: float

    @staticmethod
    def of(values: Sequence[float]) -> "Distribution":
        if len(values) == 0:
            return Distribution(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        array = np.asarray(values, dtype=np.float64)
        return Distribution(
            n=int(array.size),
            mean=float(array.mean()),
            median=float(np.median(array)),
            p90=float(np.quantile(array, 0.9)),
            maximum=float(array.max()),
            gini=gini(array),
        )


@dataclass(frozen=True)
class DatasetStats:
    """Corpus-level summary of one dataset (or one thread selection)."""

    n_threads: int
    n_posts: int
    n_actors: int
    thread_length: Distribution
    posts_per_actor: Distribution
    posts_per_board: Dict[str, int]

    @property
    def posts_per_thread_mean(self) -> float:
        return self.n_posts / self.n_threads if self.n_threads else 0.0


def dataset_stats(
    dataset: ForumDataset,
    selection: Optional[Sequence[Thread]] = None,
) -> DatasetStats:
    """Summarise a dataset, optionally restricted to a thread selection."""
    threads = list(selection) if selection is not None else list(dataset.threads())
    lengths: List[int] = []
    per_actor: Dict[int, int] = {}
    per_board: Dict[str, int] = {}
    n_posts = 0
    for thread in threads:
        posts = dataset.posts_in_thread(thread.thread_id)
        lengths.append(len(posts))
        n_posts += len(posts)
        board_name = dataset.board(thread.board_id).name
        per_board[board_name] = per_board.get(board_name, 0) + len(posts)
        for post in posts:
            per_actor[post.author_id] = per_actor.get(post.author_id, 0) + 1
    return DatasetStats(
        n_threads=len(threads),
        n_posts=n_posts,
        n_actors=len(per_actor),
        thread_length=Distribution.of(lengths),
        posts_per_actor=Distribution.of(list(per_actor.values())),
        posts_per_board=per_board,
    )
