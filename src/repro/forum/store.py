"""JSONL persistence for :class:`~repro.forum.dataset.ForumDataset`.

The on-disk format is one JSON object per line with a ``"kind"`` tag, in
parents-first order, so a dataset streams back through
:meth:`ForumDataset.extend` without buffering.  Datetimes are stored as ISO
8601 strings.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from datetime import datetime
from pathlib import Path
from typing import Iterator, Union

from .dataset import DatasetError, ForumDataset
from .models import Actor, Board, Forum, Post, Thread

__all__ = ["load_dataset", "save_dataset"]

_KINDS = {
    "forum": Forum,
    "board": Board,
    "actor": Actor,
    "thread": Thread,
    "post": Post,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}
_DATE_FIELDS = ("registered_at", "created_at")


def _encode(record: object) -> str:
    kind = _KIND_OF.get(type(record))
    if kind is None:
        raise DatasetError(f"cannot serialise {type(record).__name__}")
    payload = asdict(record)  # type: ignore[arg-type]
    for field_name in _DATE_FIELDS:
        value = payload.get(field_name)
        if isinstance(value, datetime):
            payload[field_name] = value.isoformat()
    payload["kind"] = kind
    return json.dumps(payload, sort_keys=True)


def _decode(line: str) -> object:
    payload = json.loads(line)
    kind = payload.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"unknown record kind {kind!r}")
    for field_name in _DATE_FIELDS:
        if field_name in payload and payload[field_name] is not None:
            payload[field_name] = datetime.fromisoformat(payload[field_name])
    return cls(**payload)


def _iter_records(dataset: ForumDataset) -> Iterator[object]:
    yield from dataset.forums()
    yield from dataset.boards()
    yield from dataset.actors()
    yield from dataset.threads()
    for thread in dataset.threads():
        yield from dataset.posts_in_thread(thread.thread_id)


def save_dataset(dataset: ForumDataset, path: Union[str, Path]) -> int:
    """Write ``dataset`` to ``path`` as JSONL; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in _iter_records(dataset):
            handle.write(_encode(record))
            handle.write("\n")
            count += 1
    return count


def load_dataset(path: Union[str, Path]) -> ForumDataset:
    """Load a JSONL dataset written by :func:`save_dataset`."""
    dataset = ForumDataset()
    with open(path, "r", encoding="utf-8") as handle:
        dataset.extend(_decode(line) for line in handle if line.strip())
    dataset.validate()
    return dataset
