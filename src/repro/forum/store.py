"""JSONL persistence for :class:`~repro.forum.dataset.ForumDataset`.

The on-disk format is one JSON object per line with a ``"kind"`` tag, in
parents-first order, so a dataset streams back through
:meth:`ForumDataset.extend` without buffering.  Datetimes are stored as ISO
8601 strings.

Timezone contract: naive datetimes round-trip exactly (the common
case — CrimeBB timestamps are naive); timezone-*aware* datetimes also
round-trip exactly, offset preserved, **provided the whole dataset is
uniformly aware**.  Mixing naive and aware timestamps is rejected at
save time with a :class:`~repro.forum.dataset.DatasetError`: a mixed
dataset would reload into one whose date comparisons (thread ordering,
epoch cutoffs, Table 1 first-post stamps) raise ``TypeError`` at
arbitrary later points — the error belongs at the boundary, not in the
middle of a measurement.

Corruption contract: a file that is not valid JSONL, names an unknown
record kind, carries malformed fields or fails dataset integrity checks
raises :class:`~repro.store.errors.StoreCorruptionError` from
:func:`load_dataset` — never a bare ``json``/``TypeError`` — and the
partially decoded dataset is discarded, never returned.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from datetime import datetime
from pathlib import Path
from typing import Iterator, Optional, Union

from .dataset import DatasetError, ForumDataset
from .models import Actor, Board, Forum, Post, Thread

__all__ = ["load_dataset", "save_dataset"]

_KINDS = {
    "forum": Forum,
    "board": Board,
    "actor": Actor,
    "thread": Thread,
    "post": Post,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}
_DATE_FIELDS = ("registered_at", "created_at")


class _TzAudit:
    """Tracks datetime awareness across one save; rejects mixtures."""

    def __init__(self) -> None:
        self._aware: Optional[bool] = None

    def check(self, value: datetime, field_name: str, record: object) -> None:
        aware = value.tzinfo is not None and value.tzinfo.utcoffset(value) is not None
        if self._aware is None:
            self._aware = aware
            return
        if self._aware != aware:
            raise DatasetError(
                f"mixed naive and timezone-aware datetimes: {field_name}="
                f"{value.isoformat()} on {type(record).__name__} disagrees "
                f"with earlier records; a mixed dataset cannot round-trip "
                f"(date comparisons would raise TypeError after reload)"
            )


def _encode(record: object, audit: Optional[_TzAudit] = None) -> str:
    kind = _KIND_OF.get(type(record))
    if kind is None:
        raise DatasetError(f"cannot serialise {type(record).__name__}")
    payload = asdict(record)  # type: ignore[arg-type]
    for field_name in _DATE_FIELDS:
        value = payload.get(field_name)
        if isinstance(value, datetime):
            if audit is not None:
                audit.check(value, field_name, record)
            payload[field_name] = value.isoformat()
    payload["kind"] = kind
    return json.dumps(payload, sort_keys=True)


def _decode(line: str) -> object:
    payload = json.loads(line)
    kind = payload.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"unknown record kind {kind!r}")
    for field_name in _DATE_FIELDS:
        if field_name in payload and payload[field_name] is not None:
            # fromisoformat restores any offset isoformat() wrote, so
            # aware datetimes round-trip exactly, offset included.
            payload[field_name] = datetime.fromisoformat(payload[field_name])
    return cls(**payload)


def _iter_records(dataset: ForumDataset) -> Iterator[object]:
    yield from dataset.forums()
    yield from dataset.boards()
    yield from dataset.actors()
    yield from dataset.threads()
    for thread in dataset.threads():
        yield from dataset.posts_in_thread(thread.thread_id)


def save_dataset(dataset: ForumDataset, path: Union[str, Path]) -> int:
    """Write ``dataset`` to ``path`` as JSONL; returns the record count.

    Raises :class:`DatasetError` (before any partial write is left
    behind: records are encoded ahead of the first byte written) when a
    record cannot be serialised or when the dataset mixes naive and
    timezone-aware datetimes (see the module timezone contract).
    """
    audit = _TzAudit()
    lines = [_encode(record, audit) for record in _iter_records(dataset)]
    # Atomic replace (DESIGN.md §13): encode-then-rename means neither a
    # serialisation error nor a crash mid-write can leave a torn file.
    from ..atomicio import atomic_write_text

    atomic_write_text(path, "".join(line + "\n" for line in lines))
    return len(lines)


def load_dataset(path: Union[str, Path]) -> ForumDataset:
    """Load a JSONL dataset written by :func:`save_dataset`.

    Raises :class:`~repro.store.errors.StoreCorruptionError` — citing
    the offending line — for anything that is not a well-formed store:
    garbage/truncated JSON, unknown kinds, malformed fields, integrity
    violations.  On failure nothing is returned: a corrupt file can
    never half-load into a pipeline run.
    """
    # Imported here (leaf module, no cycle risk) so repro.forum keeps
    # importing even if repro.store grows heavier dependencies.
    from ..store.errors import StoreCorruptionError

    dataset = ForumDataset()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    dataset.extend([_decode(line)])
                except (json.JSONDecodeError, DatasetError, TypeError, ValueError) as exc:
                    raise StoreCorruptionError(
                        f"{path}: line {lineno}: {exc}"
                    ) from exc
        dataset.validate()
    except StoreCorruptionError:
        raise
    except DatasetError as exc:
        raise StoreCorruptionError(f"{path}: {exc}") from exc
    return dataset
