"""Synthetic image substrate: latents, rendering, transforms, packs.

:mod:`~repro.media.validate` is the raster-validation boundary: typed
:class:`CorruptPayloadError` subclasses that downstream quarantine
ledgers record per poisoned record.
"""

from .image import (
    DEFAULT_SIZE,
    ImageKind,
    ImageLatent,
    SyntheticImage,
    sample_latent,
)
from .pack import Pack, pack_stage_mix
from .render import render_latent, skin_tone_for_model
from .transforms import (
    EVASION_TRANSFORMS,
    PLATFORM_TRANSFORMS,
    apply_transform,
    register_transform,
    transform_names,
)
from .validate import (
    MAX_RASTER_DIM,
    MAX_RASTER_PIXELS,
    MIN_RASTER_DIM,
    AbsurdDimensionError,
    CorruptPayloadError,
    DecoyPayloadError,
    EmptyPayloadError,
    NonFinitePixelError,
    TruncatedRasterError,
    UnexpectedResourceError,
    WrongDtypeError,
    WrongShapeError,
    ensure_color_raster,
    validate_raster,
)

__all__ = [
    "AbsurdDimensionError",
    "CorruptPayloadError",
    "DEFAULT_SIZE",
    "DecoyPayloadError",
    "EVASION_TRANSFORMS",
    "EmptyPayloadError",
    "ImageKind",
    "ImageLatent",
    "MAX_RASTER_DIM",
    "MAX_RASTER_PIXELS",
    "MIN_RASTER_DIM",
    "NonFinitePixelError",
    "PLATFORM_TRANSFORMS",
    "Pack",
    "SyntheticImage",
    "TruncatedRasterError",
    "UnexpectedResourceError",
    "WrongDtypeError",
    "WrongShapeError",
    "apply_transform",
    "ensure_color_raster",
    "pack_stage_mix",
    "register_transform",
    "render_latent",
    "sample_latent",
    "skin_tone_for_model",
    "transform_names",
    "validate_raster",
]
