"""Synthetic image substrate: latents, rendering, transforms, packs."""

from .image import (
    DEFAULT_SIZE,
    ImageKind,
    ImageLatent,
    SyntheticImage,
    sample_latent,
)
from .pack import Pack, pack_stage_mix
from .render import render_latent, skin_tone_for_model
from .transforms import (
    EVASION_TRANSFORMS,
    PLATFORM_TRANSFORMS,
    apply_transform,
    register_transform,
    transform_names,
)

__all__ = [
    "DEFAULT_SIZE",
    "EVASION_TRANSFORMS",
    "ImageKind",
    "ImageLatent",
    "PLATFORM_TRANSFORMS",
    "Pack",
    "SyntheticImage",
    "apply_transform",
    "pack_stage_mix",
    "register_transform",
    "render_latent",
    "sample_latent",
    "skin_tone_for_model",
    "transform_names",
]
