"""Synthetic image model.

Real images cannot be used in this reproduction (DESIGN.md §2), so images
are small numpy rasters rendered from a latent description
(:class:`ImageLatent`).  The latent controls exactly the properties the
paper's pipeline measures: skin-pixel coverage (the OpenNSFW analogue),
embedded text words (the OCR analogue), and visual identity (the
perceptual-hash / reverse-search analogue).  Every downstream classifier
operates on the rendered pixels, never on the latent, so the pipeline is
an actual image-analysis pipeline rather than a lookup of ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

__all__ = ["ImageKind", "ImageLatent", "SyntheticImage", "DEFAULT_SIZE"]

#: Raster edge length used throughout (square images).
DEFAULT_SIZE: int = 64


class ImageKind(enum.Enum):
    """Semantic class of a synthetic image.

    The first three kinds depict models at the stages of a fake encounter
    (§4); the remainder are the non-model images the crawler also
    retrieves (§4.4, §5.1).
    """

    MODEL_DRESSED = "model_dressed"
    MODEL_NUDE = "model_nude"
    MODEL_SEXUAL = "model_sexual"
    PROOF_SCREENSHOT = "proof_screenshot"
    CHAT_SCREENSHOT = "chat_screenshot"
    ERROR_BANNER = "error_banner"
    DIRECTORY_THUMB = "directory_thumb"
    DOCUMENT = "document"
    SOURCE_CODE = "source_code"
    LANDSCAPE = "landscape"
    GAME_SCREENSHOT = "game_screenshot"
    MEME = "meme"
    PERSON_CASUAL = "person_casual"

    @property
    def is_model(self) -> bool:
        """True for images depicting a model (the NSFV-positive classes)."""
        return self in _MODEL_KINDS

    @property
    def is_nude(self) -> bool:
        """True for (partially) nude or sexual depictions."""
        return self in (ImageKind.MODEL_NUDE, ImageKind.MODEL_SEXUAL)

    @property
    def is_screenshot(self) -> bool:
        """True for text-dominated screenshot classes."""
        return self in (
            ImageKind.PROOF_SCREENSHOT,
            ImageKind.CHAT_SCREENSHOT,
            ImageKind.ERROR_BANNER,
            ImageKind.DIRECTORY_THUMB,
            ImageKind.SOURCE_CODE,
            ImageKind.DOCUMENT,
        )


_MODEL_KINDS = frozenset(
    {ImageKind.MODEL_DRESSED, ImageKind.MODEL_NUDE, ImageKind.MODEL_SEXUAL, ImageKind.PERSON_CASUAL}
)

#: Typical skin-pixel coverage per kind: (low, high) fractions of the
#: raster.  Calibrated so the NSFW-score distribution matches §4.4:
#: screenshots ≈ 0, clothed models ambiguous, nude/sexual high.
KIND_SKIN_RANGE: dict = {
    ImageKind.MODEL_DRESSED: (0.10, 0.30),
    ImageKind.MODEL_NUDE: (0.38, 0.60),
    ImageKind.MODEL_SEXUAL: (0.50, 0.75),
    ImageKind.PERSON_CASUAL: (0.06, 0.18),
    ImageKind.PROOF_SCREENSHOT: (0.0, 0.0),
    ImageKind.CHAT_SCREENSHOT: (0.0, 0.01),
    ImageKind.ERROR_BANNER: (0.0, 0.0),
    ImageKind.DIRECTORY_THUMB: (0.0, 0.02),
    ImageKind.DOCUMENT: (0.0, 0.0),
    ImageKind.SOURCE_CODE: (0.0, 0.0),
    ImageKind.LANDSCAPE: (0.0, 0.03),
    ImageKind.GAME_SCREENSHOT: (0.0, 0.02),
    ImageKind.MEME: (0.0, 0.04),
}

#: Typical embedded word counts per kind (low, high inclusive).
KIND_WORD_RANGE: dict = {
    ImageKind.MODEL_DRESSED: (0, 2),
    ImageKind.MODEL_NUDE: (0, 1),
    ImageKind.MODEL_SEXUAL: (0, 1),
    ImageKind.PERSON_CASUAL: (0, 2),
    ImageKind.PROOF_SCREENSHOT: (25, 80),
    ImageKind.CHAT_SCREENSHOT: (20, 60),
    ImageKind.ERROR_BANNER: (8, 20),
    ImageKind.DIRECTORY_THUMB: (12, 40),
    ImageKind.DOCUMENT: (40, 90),
    ImageKind.SOURCE_CODE: (30, 80),
    ImageKind.LANDSCAPE: (0, 0),
    ImageKind.GAME_SCREENSHOT: (2, 12),
    ImageKind.MEME: (3, 10),
}


@dataclass(frozen=True, slots=True)
class ImageLatent:
    """Ground-truth description from which an image raster is rendered.

    ``visual_seed`` determines the image's visual identity: two latents
    with the same seed and parameters render pixel-identical rasters (the
    same photograph); transformed copies share the seed but record their
    transformation chain.
    """

    visual_seed: int
    kind: ImageKind
    skin_fraction: float
    word_count: int
    #: Identity of the depicted model, for model images; None otherwise.
    model_id: Optional[int] = None
    #: Ground truth used by the §4.3 reproduction: the depicted person is
    #: underage.  Never inspected by the pipeline — only by the hashlist
    #: construction and by experiment scoring.
    is_underage: bool = False
    #: Applied transformation chain (names from media.transforms).
    transform_chain: Tuple[str, ...] = ()
    size: int = DEFAULT_SIZE

    def __post_init__(self) -> None:
        if not 0.0 <= self.skin_fraction <= 1.0:
            raise ValueError("skin_fraction must be within [0, 1]")
        if self.word_count < 0:
            raise ValueError("word_count must be non-negative")
        if self.size < 16:
            raise ValueError("raster size must be at least 16")

    def with_transform(self, name: str) -> "ImageLatent":
        """Latent for a transformed copy of this image."""
        return replace(self, transform_chain=self.transform_chain + (name,))


def sample_latent(
    rng: np.random.Generator,
    kind: ImageKind,
    model_id: Optional[int] = None,
    is_underage: bool = False,
    size: int = DEFAULT_SIZE,
) -> ImageLatent:
    """Draw a latent with kind-typical skin coverage and word count."""
    skin_low, skin_high = KIND_SKIN_RANGE[kind]
    word_low, word_high = KIND_WORD_RANGE[kind]
    return ImageLatent(
        visual_seed=int(rng.integers(0, 2**63 - 1)),
        kind=kind,
        skin_fraction=float(rng.uniform(skin_low, skin_high)),
        word_count=int(rng.integers(word_low, word_high + 1)),
        model_id=model_id,
        is_underage=is_underage,
        size=size,
    )


class SyntheticImage:
    """An image: a latent plus a lazily rendered, cached pixel raster.

    Rendering is deferred because the synthetic world creates many more
    images than the pipeline ever downloads; pixels are materialised only
    when a classifier first needs them.
    """

    __slots__ = ("image_id", "latent", "_pixels")

    def __init__(self, image_id: int, latent: ImageLatent):
        self.image_id = image_id
        self.latent = latent
        self._pixels: Optional[np.ndarray] = None

    @property
    def pixels(self) -> np.ndarray:
        """The rendered H×W×3 float raster in [0, 1] (cached)."""
        if self._pixels is None:
            from .render import render_latent

            self._pixels = render_latent(self.latent)
        return self._pixels

    @property
    def kind(self) -> ImageKind:
        return self.latent.kind

    def drop_pixels(self) -> None:
        """Release the cached raster (e.g. after hash-and-delete, §4.3)."""
        self._pixels = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticImage(id={self.image_id}, kind={self.latent.kind.value})"
