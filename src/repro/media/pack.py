"""Packs: curated image sets of one model across encounter stages (§4).

A pack is the tradeable unit of the eWhoring economy: "images from the
same (or visually similar) model at the various steps of a 'fake'
encounter, including dressed, nude and sexual images and videos".  Here a
pack is an ordered collection of :class:`SyntheticImage` plus metadata
about how it was assembled (which origin images it reuses, whether its
compiler applied evasion transforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .image import ImageKind, SyntheticImage

__all__ = ["Pack", "pack_stage_mix"]

#: Canonical composition of a pack by encounter stage: roughly half
#: dressed/teasing, the rest nude and sexual, matching the §4 description.
PACK_STAGE_WEIGHTS: Tuple[Tuple[ImageKind, float], ...] = (
    (ImageKind.MODEL_DRESSED, 0.45),
    (ImageKind.MODEL_NUDE, 0.35),
    (ImageKind.MODEL_SEXUAL, 0.20),
)


def pack_stage_mix(n_images: int) -> List[ImageKind]:
    """Deterministic stage sequence for a pack of ``n_images`` images."""
    if n_images < 1:
        raise ValueError("a pack contains at least one image")
    kinds: List[ImageKind] = []
    for kind, weight in PACK_STAGE_WEIGHTS:
        kinds.extend([kind] * int(round(weight * n_images)))
    while len(kinds) < n_images:
        kinds.append(ImageKind.MODEL_DRESSED)
    return kinds[:n_images]


@dataclass
class Pack:
    """A pack of images of one model.

    ``model_id`` identifies the depicted model; ``compiler_actor_id`` the
    forum actor who assembled and shared it.  ``saturated`` marks packs
    recycled from other packs (free packs are "likely saturated", §4.2).
    """

    pack_id: int
    model_id: int
    images: List[SyntheticImage]
    compiler_actor_id: Optional[int] = None
    saturated: bool = False
    #: Evasion transforms the compiler applied to every image ("zero-match
    #: packs" arise from mirrored content, §4.5).
    evasion: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.images:
            raise ValueError("a pack must contain at least one image")

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[SyntheticImage]:
        return iter(self.images)

    @property
    def image_ids(self) -> List[int]:
        return [image.image_id for image in self.images]

    def kinds(self) -> List[ImageKind]:
        """Stage sequence of the pack's images."""
        return [image.kind for image in self.images]

    def stage_counts(self) -> dict:
        """Histogram of encounter stages in the pack."""
        counts: dict = {}
        for image in self.images:
            counts[image.kind] = counts.get(image.kind, 0) + 1
        return counts
