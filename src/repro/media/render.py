"""Deterministic raster renderer for :class:`~repro.media.image.ImageLatent`.

Each latent renders to an H×W×3 float array in [0, 1].  The renderer's job
is to make the three measurable properties *physically present in the
pixels* so that the vision substrate has something real to detect:

* skin coverage — elliptical blobs of skin-tone colour (per-model tone);
* embedded text — rows of dark word blocks on a uniform panel, which the
  OCR analogue recovers via connected components;
* visual identity — a seeded noise field unique to ``visual_seed``, which
  the perceptual hash keys on.

Rendering is pure: the same latent always yields bit-identical pixels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .image import ImageKind, ImageLatent

__all__ = ["render_latent", "skin_tone_for_model", "SKIN_TONE_BASE"]

#: Reference skin tone (warm light-brown); individual models vary around it.
SKIN_TONE_BASE: Tuple[float, float, float] = (0.86, 0.62, 0.50)


def skin_tone_for_model(model_id: int | None) -> np.ndarray:
    """Consistent skin tone for a model identity.

    Images of the same model share a tone, which keeps packs visually
    coherent (the paper notes packs contain "the same (or visually
    similar) model").
    """
    base = np.array(SKIN_TONE_BASE, dtype=np.float64)
    if model_id is None:
        return base
    tone_rng = np.random.default_rng(model_id * 2654435761 % (2**32))
    jitter = tone_rng.uniform(-0.08, 0.08, size=3)
    return np.clip(base + jitter, 0.0, 1.0)


def render_latent(latent: ImageLatent) -> np.ndarray:
    """Render a latent to pixels, applying its transform chain in order."""
    rng = np.random.default_rng(latent.visual_seed % (2**63))
    pixels = _render_base(latent, rng)
    if latent.transform_chain:
        from .transforms import apply_transform

        for step, name in enumerate(latent.transform_chain):
            pixels = apply_transform(name, pixels, seed=latent.visual_seed + step + 1)
    # float32 halves the cache footprint of crawled-image sets without
    # affecting any classifier decision at raster scale.
    return pixels.astype(np.float32)


# ----------------------------------------------------------------------
# Base rendering
# ----------------------------------------------------------------------

def _render_base(latent: ImageLatent, rng: np.random.Generator) -> np.ndarray:
    size = latent.size
    kind = latent.kind
    if kind.is_screenshot:
        pixels = _screenshot_background(kind, size, rng)
    elif kind is ImageKind.LANDSCAPE:
        pixels = _landscape_background(size, rng)
    elif kind is ImageKind.GAME_SCREENSHOT:
        pixels = _game_background(size, rng)
    elif kind is ImageKind.MEME:
        pixels = _photo_background(size, rng)
    else:  # model images and casual photos
        pixels = _photo_background(size, rng)

    if latent.skin_fraction > 0.0:
        _paint_skin(pixels, latent, rng)
    if latent.word_count > 0:
        _paint_words(pixels, latent, rng)

    # Per-image identity texture: low-amplitude seeded noise everywhere.
    noise = rng.normal(0.0, 0.015, size=pixels.shape)
    return np.clip(pixels + noise, 0.0, 1.0)


def _screenshot_background(kind: ImageKind, size: int, rng: np.random.Generator) -> np.ndarray:
    if kind is ImageKind.SOURCE_CODE:
        # Dark editor theme.
        base = rng.uniform(0.08, 0.14)
        pixels = np.full((size, size, 3), base, dtype=np.float64)
        pixels[..., 2] += 0.03  # bluish
    else:
        base = rng.uniform(0.90, 0.97)
        pixels = np.full((size, size, 3), base, dtype=np.float64)
        # Window chrome: a slightly tinted header band.
        header = max(3, size // 16)
        tint = rng.uniform(0.75, 0.88)
        pixels[:header, :, :] = tint
        if kind is ImageKind.PROOF_SCREENSHOT:
            # Dashboard sidebar, as in payment-platform screenshots.
            sidebar = max(4, size // 8)
            pixels[header:, :sidebar, :] = np.array([0.82, 0.86, 0.92])
    return pixels


def _landscape_background(size: int, rng: np.random.Generator) -> np.ndarray:
    """Sky gradient over shaded ground, fully vectorised.

    Bit-identical to the obvious per-row loop: the sky mix uses the same
    ``row / max(horizon - 1, 1)`` float division per row, and the ground
    shades come from one vectorised ``rng.uniform`` call, which PCG64
    guarantees draws the same stream as ``size - horizon`` scalar calls
    (see ``test_landscape_background_matches_row_loop``).
    """
    pixels = np.zeros((size, size, 3), dtype=np.float64)
    horizon = int(size * rng.uniform(0.35, 0.6))
    sky_top = np.array([0.45, 0.68, 0.92])
    sky_bottom = np.array([0.75, 0.85, 0.96])
    if horizon > 0:
        mix = np.arange(horizon, dtype=np.float64) / max(horizon - 1, 1)
        mix = mix[:, None, None]
        pixels[:horizon, :, :] = (
            sky_top[None, None, :] * (1 - mix) + sky_bottom[None, None, :] * mix
        )
    # Ground: sometimes sandy/tan — the "colours resembling the human
    # body" failure mode the paper reports for hard-to-classify images.
    sandy = rng.random() < 0.15
    ground = np.array([0.80, 0.66, 0.48]) if sandy else np.array([0.30, 0.55, 0.25])
    if horizon < size:
        shades = rng.uniform(0.9, 1.05, size=size - horizon)[:, None, None]
        pixels[horizon:, :, :] = np.clip(ground[None, None, :] * shades, 0.0, 1.0)
    return pixels


def _game_background(size: int, rng: np.random.Generator) -> np.ndarray:
    pixels = np.zeros((size, size, 3), dtype=np.float64)
    # HUD-style saturated rectangles.
    n_blocks = int(rng.integers(6, 14))
    pixels[:, :, :] = rng.uniform(0.1, 0.35, size=3)
    for _ in range(n_blocks):
        top = int(rng.integers(0, size - 8))
        left = int(rng.integers(0, size - 8))
        height = int(rng.integers(4, size // 2))
        width = int(rng.integers(4, size // 2))
        colour = _mostly_cool(rng, rng.uniform(0.2, 1.0, size=3), warm_rate=0.12)
        pixels[top : top + height, left : left + width, :] = colour
    return pixels


def _mostly_cool(rng: np.random.Generator, colour: np.ndarray, warm_rate: float) -> np.ndarray:
    """Re-order channels so skin-like warm colours stay a minority.

    Game HUDs, UI chrome and interior decor are predominantly cool or
    saturated primaries; only a small fraction of incidental colours fall
    into the skin-tone cone (keeping the §4.4 hard-to-classify cases rare
    but present).
    """
    r, g, b = colour
    is_warm = r > g > b and (r - b) > 0.12
    if is_warm and rng.random() > warm_rate:
        return np.sort(colour)  # ascending → blue-dominant, never skin-like
    return colour


def _photo_background(size: int, rng: np.random.Generator) -> np.ndarray:
    # Muted indoor/outdoor photographic background with soft gradients.
    base = _mostly_cool(rng, rng.uniform(0.25, 0.65, size=3), warm_rate=0.18)
    vertical = np.linspace(-0.08, 0.08, size)[:, None, None]
    horizontal = np.linspace(-0.05, 0.05, size)[None, :, None]
    pixels = np.clip(base[None, None, :] + vertical + horizontal, 0.0, 1.0)
    # A few soft furniture/scenery rectangles.
    for _ in range(int(rng.integers(2, 6))):
        top = int(rng.integers(0, size - 6))
        left = int(rng.integers(0, size - 6))
        height = int(rng.integers(4, size // 2))
        width = int(rng.integers(4, size // 2))
        colour = np.clip(base + rng.uniform(-0.2, 0.2, size=3), 0.0, 1.0)
        pixels[top : top + height, left : left + width, :] = colour
    return pixels


# ----------------------------------------------------------------------
# Skin and text painting
# ----------------------------------------------------------------------

def _paint_skin(pixels: np.ndarray, latent: ImageLatent, rng: np.random.Generator) -> None:
    """Add elliptical skin-tone blobs until coverage reaches the target.

    Each blob's mask is evaluated only on the ellipse's bounding box
    rather than the full grid — bit-identical ``covered`` output (the
    per-element arithmetic is unchanged and the ellipse cannot extend
    past its box; see ``test_paint_skin_matches_full_grid``) with an
    order of magnitude less per-attempt work.  The scalar parameter
    draws are untouched, so the RNG stream is consumed identically.
    """
    size = latent.size
    tone = skin_tone_for_model(latent.model_id)
    target = latent.skin_fraction
    total_pixels = size * size
    covered = np.zeros((size, size), dtype=bool)
    n_covered = 0

    # Start with one dominant body blob, then add limbs until coverage.
    for attempt in range(64):
        coverage = n_covered / total_pixels
        if coverage >= target:
            break
        remaining = target - coverage
        # Blob area proportional to what is still missing.
        area = max(remaining * total_pixels * rng.uniform(0.5, 1.0), 9.0)
        aspect = rng.uniform(0.4, 2.5)
        semi_minor = max(np.sqrt(area / (np.pi * aspect)), 1.5)
        semi_major = semi_minor * aspect
        centre_r = rng.uniform(0.2, 0.8) * size
        centre_c = rng.uniform(0.2, 0.8) * size
        angle = rng.uniform(0.0, np.pi)
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        # Axis-aligned bounding box of the rotated ellipse (+1px guard
        # against float fuzz at the rim).
        half_r = np.sqrt((semi_major * cos_a) ** 2 + (semi_minor * sin_a) ** 2) + 1.0
        half_c = np.sqrt((semi_major * sin_a) ** 2 + (semi_minor * cos_a) ** 2) + 1.0
        r0 = max(int(np.floor(centre_r - half_r)), 0)
        r1 = min(int(np.ceil(centre_r + half_r)) + 1, size)
        c0 = max(int(np.floor(centre_c - half_c)), 0)
        c1 = min(int(np.ceil(centre_c + half_c)) + 1, size)
        if r0 >= r1 or c0 >= c1:
            continue
        dr = (np.arange(r0, r1, dtype=np.float64) - centre_r)[:, None]
        dc = (np.arange(c0, c1, dtype=np.float64) - centre_c)[None, :]
        rot_r = dr * cos_a + dc * sin_a
        rot_c = -dr * sin_a + dc * cos_a
        mask = (rot_r / semi_major) ** 2 + (rot_c / semi_minor) ** 2 <= 1.0
        window = covered[r0:r1, c0:c1]
        window |= mask
        n_covered = int(covered.sum())

    shading = rng.uniform(0.92, 1.05, size=(size, size))[..., None]
    blob = np.clip(tone[None, None, :] * shading, 0.0, 1.0)
    pixels[covered] = blob[covered]


def _paint_words(pixels: np.ndarray, latent: ImageLatent, rng: np.random.Generator) -> None:
    """Draw up to ``word_count`` word blocks in text rows.

    Words are 2-pixel-tall dark (or light, on dark themes) blocks with at
    least two blank columns between them and blank rows between lines —
    exactly the structure the OCR analogue's connected-component pass
    recovers.
    """
    size = latent.size
    dark_theme = latent.kind is ImageKind.SOURCE_CODE
    ink = np.array([0.85, 0.85, 0.80]) if dark_theme else np.array([0.05, 0.05, 0.08])

    if latent.kind is ImageKind.MEME:
        # Meme captions: top and bottom bands only.
        row_starts = [2, size - 8]
        panel_margin = 2
    else:
        header = max(3, size // 16) + 2
        row_starts = list(range(header, size - 4, 4))
        panel_margin = 3

    remaining = latent.word_count
    word_height = 2
    # The word-placement draws are inherently sequential (each column
    # position depends on the previous width/gap draw), so the loop keeps
    # the exact scalar RNG sequence and only *records* span boundaries in
    # a difference array; the painting itself is one vectorised cumsum +
    # masked assignment instead of a slice write per word (bit-identical:
    # same ink value at the same positions — see
    # ``test_paint_words_matches_slice_loop``).
    span_diff = np.zeros((size, size + 1), dtype=np.int16)
    for row_start in row_starts:
        if remaining <= 0:
            break
        column = panel_margin + int(rng.integers(0, 3))
        while remaining > 0 and column < size - panel_margin - 3:
            width = int(rng.integers(3, 7))
            if column + width >= size - panel_margin:
                break
            span_diff[row_start : row_start + word_height, column] += 1
            span_diff[row_start : row_start + word_height, column + width] -= 1
            column += width + 2 + int(rng.integers(0, 2))
            remaining -= 1
    mask = np.cumsum(span_diff[:, :-1], axis=1) > 0
    pixels[mask] = ink
