"""Pixel-level image transformations.

Two populations apply transformations in the measured ecosystem:

* *actors* modify images to evade reverse image search (§4.5: mirroring,
  watermarking, shadowing — "easily performed using automated tools");
* *hosting platforms* recompress and resize uploads.

Each transform is a pure function ``(pixels, seed) -> pixels`` registered
by name, so a latent's ``transform_chain`` replays deterministically.  The
perceptual-hash substrate (vision.photodna) is robust to recompression and
light cropping but — as with real systems — defeated by mirroring, which
is exactly the evasion trade-off the paper describes.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "EVASION_TRANSFORMS",
    "PLATFORM_TRANSFORMS",
    "STACKED_EVASION_TRANSFORMS",
    "apply_chain",
    "apply_transform",
    "chain_seed",
    "crop_border",
    "mirror",
    "recompress",
    "reencode",
    "register_transform",
    "resize_small",
    "rotate",
    "shadow",
    "watermark",
]

TransformFn = Callable[[np.ndarray, int], np.ndarray]

_REGISTRY: Dict[str, TransformFn] = {}


def register_transform(name: str, fn: TransformFn) -> None:
    """Register a transform under ``name`` (overwrites are rejected)."""
    if name in _REGISTRY:
        raise ValueError(f"transform {name!r} already registered")
    _REGISTRY[name] = fn


def apply_transform(name: str, pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Apply a registered transform; raises KeyError for unknown names.

    Transforms operate on float rasters in ``[0, 1]``; ``uint8`` input is
    adapted here (scaled to float, transformed, rounded back) so every
    registered transform preserves the caller's dtype.
    """
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown transform {name!r}; known: {sorted(_REGISTRY)}") from None
    if pixels.dtype == np.uint8:
        as_float = pixels.astype(np.float64) / 255.0
        out = fn(as_float, seed)
        return np.clip(np.round(out * 255.0), 0, 255).astype(np.uint8)
    return fn(pixels, seed)


def chain_seed(seed: int, step: int) -> int:
    """The derived seed for step ``step`` of a composition chain.

    A fixed odd multiplier decorrelates consecutive steps so stacking the
    same transform twice does not reuse its random draws.
    """
    return (int(seed) + 0x9E3779B9 * (step + 1)) % 2**32


def apply_chain(names, pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Apply an N-deep stack of registered transforms in order.

    Each step runs with its own :func:`chain_seed`-derived seed, so a
    chain is a pure function of ``(names, pixels, seed)`` and replays
    bit-identically.
    """
    out = pixels
    for step, name in enumerate(names):
        out = apply_transform(name, out, chain_seed(seed, step))
    return out


def transform_names() -> list:
    """Sorted names of all registered transforms."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Individual transforms
# ----------------------------------------------------------------------

def mirror(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Horizontal flip — the classic reverse-search evasion (§4.5)."""
    return pixels[:, ::-1, :].copy()


def watermark(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Overlay a semi-transparent watermark band (preview branding)."""
    rng = np.random.default_rng(seed)
    out = pixels.copy()
    size = out.shape[0]
    band_height = max(3, size // 10)
    top = int(rng.integers(size // 4, 3 * size // 4))
    alpha = 0.45
    colour = np.array([1.0, 1.0, 1.0])
    out[top : top + band_height, :, :] = (
        (1 - alpha) * out[top : top + band_height, :, :] + alpha * colour
    )
    # Watermark "text" dashes inside the band.
    for column in range(4, size - 4, 6):
        out[top + band_height // 2, column : column + 3, :] *= 0.4
    return np.clip(out, 0.0, 1.0)


def shadow(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Darken a corner region (the 'shadowing parts of the image' evasion)."""
    rng = np.random.default_rng(seed)
    out = pixels.copy()
    size = out.shape[0]
    height = int(rng.integers(size // 4, size // 2))
    width = int(rng.integers(size // 4, size // 2))
    corner = int(rng.integers(0, 4))
    row_slice = slice(0, height) if corner < 2 else slice(size - height, size)
    col_slice = slice(0, width) if corner % 2 == 0 else slice(size - width, size)
    out[row_slice, col_slice, :] *= 0.35
    return out


def recompress(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Lossy recompression analogue: quantise levels and add block noise.

    PhotoDNA-style robust hashes must survive this (§4.3 cites robust
    hashing against "compression algorithms or geometric distortions").
    """
    rng = np.random.default_rng(seed)
    levels = 24
    quantised = np.round(pixels * levels) / levels
    noise = rng.normal(0.0, 0.008, size=pixels.shape)
    return np.clip(quantised + noise, 0.0, 1.0)


def crop_border(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Crop up to ~8% from each border and rescale to the original size."""
    rng = np.random.default_rng(seed)
    size = pixels.shape[0]
    margin = max(1, int(size * float(rng.uniform(0.02, 0.08))))
    cropped = pixels[margin : size - margin, margin : size - margin, :]
    return _rescale(cropped, size)


def resize_small(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Downscale to half size and back (thumbnailing by hosting sites)."""
    size = pixels.shape[0]
    small = _rescale(pixels, max(size // 2, 8))
    return _rescale(small, size)


def rotate(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Rotate by a seed-chosen multiple of 90° (cheap geometric evasion).

    Like mirroring, a quarter-turn survives casual inspection but moves
    every DCT coefficient the perceptual hash reads, so it defeats
    hash matching outright — the drift engine's strongest single move.
    """
    rng = np.random.default_rng(seed)
    quarter_turns = int(rng.integers(1, 4))
    return np.rot90(pixels, k=quarter_turns, axes=(0, 1)).copy()


# Orthonormal 8×8 DCT-II basis for the re-encode transform.
_DCT_BLOCK = 8
_DCT_BASIS = np.array(
    [
        [
            (np.sqrt(1.0 / _DCT_BLOCK) if k == 0 else np.sqrt(2.0 / _DCT_BLOCK))
            * np.cos(np.pi * (2 * n + 1) * k / (2 * _DCT_BLOCK))
            for n in range(_DCT_BLOCK)
        ]
        for k in range(_DCT_BLOCK)
    ]
)
# JPEG-style frequency ladder: low frequencies keep many levels, high
# frequencies few, so detail is destroyed the way a harsh re-encode does.
_DCT_LEVELS = np.maximum(48.0 - 5.0 * np.add.outer(np.arange(8), np.arange(8)), 4.0)


def reencode(pixels: np.ndarray, seed: int = 0) -> np.ndarray:
    """Blockwise 8×8 DCT quantisation — a harsher JPEG re-encode analogue.

    Stronger than :func:`recompress`: coefficients are quantised on a
    frequency-dependent ladder, so stacking re-encodes (each re-upload
    hop) progressively smears the spectrum robust hashes rely on.
    """
    rng = np.random.default_rng(seed)
    height, width = pixels.shape[:2]
    pad_h = (-height) % _DCT_BLOCK
    pad_w = (-width) % _DCT_BLOCK
    padded = np.pad(pixels, ((0, pad_h), (0, pad_w), (0, 0)), mode="edge")
    out = np.empty_like(padded)
    # Mild per-image quality jitter, as real encoders vary.
    quality = float(rng.uniform(0.75, 1.0))
    levels = np.maximum(_DCT_LEVELS * quality, 2.0)
    for row in range(0, padded.shape[0], _DCT_BLOCK):
        for col in range(0, padded.shape[1], _DCT_BLOCK):
            block = padded[row : row + _DCT_BLOCK, col : col + _DCT_BLOCK, :]
            for channel in range(block.shape[2]):
                coeffs = _DCT_BASIS @ block[:, :, channel] @ _DCT_BASIS.T
                coeffs = np.round(coeffs * levels) / levels
                out[row : row + _DCT_BLOCK, col : col + _DCT_BLOCK, channel] = (
                    _DCT_BASIS.T @ coeffs @ _DCT_BASIS
                )
    return np.clip(out[:height, :width, :], 0.0, 1.0)


def _rescale(pixels: np.ndarray, new_size: int) -> np.ndarray:
    """Nearest-neighbour rescale to ``new_size``² (adequate at raster scale)."""
    height, width = pixels.shape[:2]
    row_index = np.clip((np.arange(new_size) * height / new_size).astype(int), 0, height - 1)
    col_index = np.clip((np.arange(new_size) * width / new_size).astype(int), 0, width - 1)
    return pixels[np.ix_(row_index, col_index)]


for _name, _fn in [
    ("mirror", mirror),
    ("watermark", watermark),
    ("shadow", shadow),
    ("recompress", recompress),
    ("crop_border", crop_border),
    ("resize_small", resize_small),
    ("rotate", rotate),
    ("reencode", reencode),
]:
    register_transform(_name, _fn)

#: Transforms actors apply to evade reverse image search (§4.5).
EVASION_TRANSFORMS: tuple = ("mirror", "watermark", "shadow")

#: Transforms hosting platforms apply on upload.
PLATFORM_TRANSFORMS: tuple = ("recompress", "resize_small")

#: The pool adversarial drift stacks N-deep on re-uploaded packs
#: (``repro.drift``): geometric moves that defeat the hash outright plus
#: signal-degrading edits that push it past its Hamming radius.
STACKED_EVASION_TRANSFORMS: tuple = (
    "mirror", "rotate", "watermark", "shadow", "reencode", "crop_border",
)
