"""Raster validation boundary: the typed corrupt-payload taxonomy.

The paper's crawler pulled ~250k files off hostile image hosts (§4.2);
real downloads include truncated files, decoys and garbage.  PR 1
hardened the *transport* layer (retries, breakers); this module is the
matching *payload* boundary one level down: every raster entering the
measurement is checked **once, at the edge**, and corruption surfaces as
a typed :class:`CorruptPayloadError` instead of a NaN hash or a shape
error deep inside scipy.

Two validation strengths exist:

* :func:`validate_raster` — the **ingest** contract (crawler download
  path): a float H×W×3 raster with finite values and sane dimensions.
  Violations map onto the taxonomy below, one subclass per corruption
  mode, so quarantine records carry a precise error class.
* :func:`ensure_color_raster` — the **kernel** contract (NSFW scorer,
  OCR engine): structurally an H×W×3 array with finite values; size and
  dtype are the caller's business.  Used defensively inside classifiers
  so poison that bypasses ingest still fails loudly and typed.

Both raise subclasses of :class:`ValueError`, so pre-existing callers
that caught ``ValueError`` keep working unchanged.

>>> import numpy as np
>>> validate_raster(np.zeros((16, 16, 3))).shape
(16, 16, 3)
>>> try:
...     validate_raster(np.full((16, 16, 3), np.nan))
... except NonFinitePixelError as exc:
...     print(type(exc).__name__)
NonFinitePixelError
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "AbsurdDimensionError",
    "CorruptPayloadError",
    "DecoyPayloadError",
    "EmptyPayloadError",
    "MAX_RASTER_DIM",
    "MAX_RASTER_PIXELS",
    "MIN_RASTER_DIM",
    "NonFinitePixelError",
    "TruncatedRasterError",
    "UnexpectedResourceError",
    "ValidationMemo",
    "WrongDtypeError",
    "WrongShapeError",
    "ensure_color_raster",
    "rebuild_error",
    "validate_raster",
]

#: Smallest legal edge for an ingested raster.  :class:`~repro.media.
#: image.ImageLatent` enforces ``size >= 16``, so anything shorter on
#: either axis is a truncated download, not a legitimate image.
MIN_RASTER_DIM = 8

#: Largest legal edge for an ingested raster (decompression-bomb guard).
MAX_RASTER_DIM = 4096

#: Largest legal pixel count for an ingested raster.
MAX_RASTER_PIXELS = 4096 * 4096


class CorruptPayloadError(ValueError):
    """Base of the corrupt-payload taxonomy.

    Subclasses :class:`ValueError` so boundaries that predate the
    taxonomy (``raise ValueError("pixels must be an H×W×3 array")``)
    keep their exception contract.
    """


class DecoyPayloadError(CorruptPayloadError):
    """The payload is not an image raster at all (HTML decoy, raw bytes)."""


class EmptyPayloadError(CorruptPayloadError):
    """Zero-byte payload: an array with no elements."""


class WrongDtypeError(CorruptPayloadError):
    """The raster's dtype breaks the float-pixels contract (e.g. uint8)."""


class WrongShapeError(CorruptPayloadError):
    """Not an H×W×3 raster (2-D grayscale, RGBA, higher rank...)."""


class TruncatedRasterError(CorruptPayloadError):
    """Too few rows/columns survived the download to be a real image."""


class AbsurdDimensionError(CorruptPayloadError):
    """Dimensions beyond any plausible image (decompression bomb)."""


class NonFinitePixelError(CorruptPayloadError):
    """The raster contains NaN or infinite pixel values."""


class UnexpectedResourceError(CorruptPayloadError):
    """A fetched resource is neither an image nor a pack archive."""


def _describe(payload: Any) -> str:
    """Short forensic description of a payload for error messages."""
    if isinstance(payload, np.ndarray):
        return f"ndarray(shape={payload.shape}, dtype={payload.dtype})"
    return f"{type(payload).__name__}"


def validate_raster(payload: Any, context: str = "") -> np.ndarray:
    """Validate one ingested payload against the raster contract.

    Returns the payload unchanged when it is a finite float ``H×W×3``
    raster with ``MIN_RASTER_DIM <= H, W <= MAX_RASTER_DIM``; otherwise
    raises the matching :class:`CorruptPayloadError` subclass.

    ``context`` (e.g. the source URL) is appended to the error message
    so quarantine records stay actionable.
    """
    suffix = f" [{context}]" if context else ""
    if not isinstance(payload, np.ndarray) or payload.ndim == 0:
        raise DecoyPayloadError(
            f"payload is not an image raster: {_describe(payload)}{suffix}"
        )
    if payload.size == 0:
        raise EmptyPayloadError(
            f"zero-byte payload: {_describe(payload)}{suffix}"
        )
    if not np.issubdtype(payload.dtype, np.floating):
        raise WrongDtypeError(
            f"raster dtype violates the float-pixel contract: "
            f"{_describe(payload)}{suffix}"
        )
    if payload.ndim != 3 or payload.shape[2] != 3:
        raise WrongShapeError(
            f"raster is not H×W×3: {_describe(payload)}{suffix}"
        )
    height, width = int(payload.shape[0]), int(payload.shape[1])
    if (
        height > MAX_RASTER_DIM
        or width > MAX_RASTER_DIM
        or height * width > MAX_RASTER_PIXELS
    ):
        raise AbsurdDimensionError(
            f"raster dimensions are implausible: {_describe(payload)}{suffix}"
        )
    if height < MIN_RASTER_DIM or width < MIN_RASTER_DIM:
        raise TruncatedRasterError(
            f"raster truncated below {MIN_RASTER_DIM}px: "
            f"{_describe(payload)}{suffix}"
        )
    if not bool(np.isfinite(payload).all()):
        raise NonFinitePixelError(
            f"raster contains NaN/Inf pixels: {_describe(payload)}{suffix}"
        )
    return payload


def rebuild_error(error_type: str, message: str) -> Exception:
    """Reconstruct a recorded validation failure as a raisable exception.

    Persistent memos (:class:`ValidationMemo`, the crawler's ingest
    memo) record failures as ``(error_type, message)`` strings; replay
    needs an exception object whose class *name* and ``str()`` match the
    original exactly, because that is all the quarantine ledger keeps.
    Known taxonomy classes are reused; unknown names get a synthesised
    ``Exception`` subclass of the same name.
    """
    cls = globals().get(error_type)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = type(error_type, (Exception,), {})
    return cls(message)


class ValidationMemo:
    """Digest-keyed memo of :func:`validate_raster` outcomes.

    Validation is a pure function of the raster, and every stage-level
    boundary (abuse filter, NSFV, provenance, the streaming matcher)
    validates with ``context = digest`` — so per digest the outcome
    *and the error message* are deterministic, and a warm run can skip
    both the raster render and the re-validation.  Entries are
    ``digest -> None`` (clean) or ``digest -> (error_type, message)``.

    Thread-safe: the streaming matcher writes from the executor's
    consumer thread while serial boundaries read.
    """

    def __init__(self) -> None:
        self._outcomes: Dict[str, Optional[Tuple[str, str]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._outcomes)

    def lookup(self, digest: str) -> Tuple[bool, Optional[Tuple[str, str]]]:
        """``(known, outcome)`` for ``digest``; counts one hit or miss."""
        with self._lock:
            if digest in self._outcomes:
                self.hits += 1
                return True, self._outcomes[digest]
            self.misses += 1
            return False, None

    def record_ok(self, digest: str) -> None:
        with self._lock:
            self._outcomes[digest] = None

    def record_error(self, digest: str, error: BaseException) -> None:
        with self._lock:
            self._outcomes[digest] = (type(error).__name__, str(error))

    def validate(self, digest: str, raster_fn) -> None:
        """Memoised ``validate_raster(raster_fn(), context=digest)``.

        Raises the (possibly rebuilt) validation error exactly as the
        unmemoised boundary would; on a memo hit the raster is never
        materialised.
        """
        known, outcome = self.lookup(digest)
        if known:
            if outcome is not None:
                raise rebuild_error(*outcome)
            return
        try:
            validate_raster(raster_fn(), context=digest)
        except Exception as exc:
            self.record_error(digest, exc)
            raise
        self.record_ok(digest)

    # -- persistence ----------------------------------------------------
    def items(self) -> List[Tuple[str, Optional[Tuple[str, str]]]]:
        """Snapshot as ``(digest, outcome)`` pairs for the store."""
        with self._lock:
            return list(self._outcomes.items())

    def preload(
        self, items: Iterable[Tuple[str, Optional[Tuple[str, str]]]]
    ) -> None:
        """Bulk-install persisted outcomes without counting hits/misses."""
        with self._lock:
            for digest, outcome in items:
                self._outcomes[digest] = (
                    None if outcome is None else (str(outcome[0]), str(outcome[1]))
                )


def ensure_color_raster(payload: Any, context: str = "") -> np.ndarray:
    """Kernel-side defensive check: structurally H×W×3 with finite values.

    Unlike :func:`validate_raster` this accepts any dtype and any size —
    classifier unit tests legitimately feed tiny patches — but still
    refuses decoys, empty arrays, wrong ranks and NaN/Inf poison, with
    the same typed taxonomy.
    """
    suffix = f" [{context}]" if context else ""
    if not isinstance(payload, np.ndarray) or payload.ndim == 0:
        raise DecoyPayloadError(
            f"pixels must be an H×W×3 array, got {_describe(payload)}{suffix}"
        )
    if payload.ndim != 3 or payload.shape[2] != 3:
        raise WrongShapeError(
            f"pixels must be an H×W×3 array, got {_describe(payload)}{suffix}"
        )
    if payload.size == 0:
        raise EmptyPayloadError(f"pixels array is empty{suffix}")
    if np.issubdtype(payload.dtype, np.floating) and not bool(
        np.isfinite(payload).all()
    ):
        raise NonFinitePixelError(
            f"pixels contain NaN/Inf values: {_describe(payload)}{suffix}"
        )
    return payload
