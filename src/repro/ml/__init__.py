"""Learning substrate: linear SVM, IR metrics, train/test splits."""

from .linear_svm import LinearSVM, SVMNotFitted
from .metrics import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)
from .split import Split, train_test_split

__all__ = [
    "ConfusionMatrix",
    "LinearSVM",
    "SVMNotFitted",
    "Split",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "precision",
    "recall",
    "train_test_split",
]
