"""Linear support-vector machine trained with Pegasos-style SGD.

The paper (§4.1) uses a Linear-SVM because it "offered the best results in
previous experimentation" on CrimeBB text.  This implementation solves the
L2-regularised hinge-loss objective

    min_w  (lambda/2)·||w||² + (1/n)·Σ max(0, 1 − y_i·(w·x_i + b))

with the Pegasos projected-subgradient schedule (Shalev-Shwartz et al.,
2007).  It is deterministic given a seed and depends only on numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LinearSVM", "SVMNotFitted"]


class SVMNotFitted(RuntimeError):
    """Raised when predict/decision is called before fit."""


@dataclass
class LinearSVM:
    """Binary linear SVM with {-1, +1} (or {0, 1}) labels.

    Parameters
    ----------
    lam:
        L2 regularisation strength (Pegasos ``lambda``).  Smaller values
        fit the training set harder.
    epochs:
        Number of passes over the training data.
    seed:
        Seed for the sampling order; fixed for reproducibility.
    fit_intercept:
        Whether to learn an (unregularised) bias term.
    """

    lam: float = 1e-4
    epochs: int = 60
    seed: int = 0
    fit_intercept: bool = True
    #: Balance classes by sampling steps from each class with equal
    #: probability — TOP annotation sets are heavily skewed (§4.1: 175
    #: positives in 1 000 threads) and unbalanced hinge SGD collapses to
    #: the majority class.
    balanced: bool = True

    weights: Optional[np.ndarray] = None
    bias: float = 0.0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on ``features`` (n×d) and binary ``labels`` (n,).

        The intercept is learned through an augmented constant feature so
        the whole parameter vector shares the Pegasos projection — a raw
        bias update at the early (huge) Pegasos step sizes is unstable.
        """
        features = np.asarray(features, dtype=np.float64)
        signs = self._as_signs(np.asarray(labels))
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if features.shape[0] != signs.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if len(np.unique(signs)) < 2:
            raise ValueError("training labels must contain both classes")

        if self.fit_intercept:
            features = np.hstack([features, np.ones((features.shape[0], 1))])

        n_samples, n_features = features.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features, dtype=np.float64)
        radius = 1.0 / np.sqrt(self.lam)

        positives = np.flatnonzero(signs > 0)
        negatives = np.flatnonzero(signs < 0)
        total_steps = self.epochs * n_samples
        if self.balanced:
            half = total_steps // 2
            order = np.concatenate(
                [
                    rng.choice(positives, size=half),
                    rng.choice(negatives, size=total_steps - half),
                ]
            )
            rng.shuffle(order)
        else:
            order = np.concatenate(
                [rng.permutation(n_samples) for _ in range(self.epochs)]
            )

        for step, index in enumerate(order, start=1):
            eta = 1.0 / (self.lam * step)
            x = features[index]
            y = signs[index]
            margin = y * (weights @ x)
            weights *= 1.0 - eta * self.lam
            if margin < 1.0:
                weights += eta * y * x
            norm = np.linalg.norm(weights)
            if norm > radius:
                weights *= radius / norm

        if self.fit_intercept:
            self.weights = weights[:-1]
            self.bias = float(weights[-1])
        else:
            self.weights = weights
            self.bias = 0.0
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance-like scores ``w·x + b``."""
        if self.weights is None:
            raise SVMNotFitted("call fit() before decision_function()")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if features.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"feature dimension {features.shape[1]} does not match "
                f"trained dimension {self.weights.shape[0]}"
            )
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def hinge_loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean hinge loss of the current model on a labelled set."""
        signs = self._as_signs(np.asarray(labels))
        scores = self.decision_function(features)
        return float(np.mean(np.maximum(0.0, 1.0 - signs * scores)))

    # ------------------------------------------------------------------
    @staticmethod
    def _as_signs(labels: np.ndarray) -> np.ndarray:
        """Map {0,1} or {-1,+1} labels onto {-1.0, +1.0}."""
        labels = labels.astype(np.float64).ravel()
        unique = set(np.unique(labels).tolist())
        if unique <= {0.0, 1.0}:
            return np.where(labels > 0.5, 1.0, -1.0)
        if unique <= {-1.0, 1.0}:
            return labels
        raise ValueError(f"labels must be binary, got values {sorted(unique)}")
