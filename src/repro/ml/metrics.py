"""Information-retrieval evaluation metrics (§4.1).

The paper evaluates the TOP classifier with precision, recall and F1
score.  All functions take binary label arrays (any truthy/falsy values)
and treat the positive class as 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConfusionMatrix",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "precision",
    "recall",
]


@dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Binary confusion counts with derived IR metrics."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.true_negative + self.false_negative

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 0.0 when nothing was predicted positive."""
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 0.0 when there are no positives."""
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions."""
        return (self.true_positive + self.true_negative) / self.total if self.total else 0.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN); 0.0 when there are no negatives."""
        denominator = self.false_positive + self.true_negative
        return self.false_positive / denominator if denominator else 0.0


def _binary(values) -> np.ndarray:
    return (np.asarray(values).ravel() != 0).astype(np.int64)


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    """Compute binary confusion counts for aligned label arrays."""
    truth = _binary(y_true)
    predicted = _binary(y_pred)
    if truth.shape != predicted.shape:
        raise ValueError("y_true and y_pred must have the same length")
    return ConfusionMatrix(
        true_positive=int(np.sum((truth == 1) & (predicted == 1))),
        false_positive=int(np.sum((truth == 0) & (predicted == 1))),
        true_negative=int(np.sum((truth == 0) & (predicted == 0))),
        false_negative=int(np.sum((truth == 1) & (predicted == 0))),
    )


def precision(y_true, y_pred) -> float:
    """Precision of the positive class."""
    return confusion_matrix(y_true, y_pred).precision


def recall(y_true, y_pred) -> float:
    """Recall of the positive class."""
    return confusion_matrix(y_true, y_pred).recall


def f1_score(y_true, y_pred) -> float:
    """F1 score of the positive class."""
    return confusion_matrix(y_true, y_pred).f1


def accuracy(y_true, y_pred) -> float:
    """Overall accuracy."""
    return confusion_matrix(y_true, y_pred).accuracy
