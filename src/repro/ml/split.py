"""Train/test splitting helpers.

§4.1 annotates 1 000 threads, trains on 800 and tests on 200.  The split
here is seeded and optionally stratified so that small annotation sets
keep both classes on each side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Split", "train_test_split"]


@dataclass(frozen=True)
class Split:
    """Index sets of a train/test partition."""

    train_indices: np.ndarray
    test_indices: np.ndarray

    @property
    def n_train(self) -> int:
        return int(self.train_indices.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.test_indices.shape[0])


def train_test_split(
    n_samples: int,
    train_fraction: float = 0.8,
    seed: int = 0,
    stratify_labels: Sequence[int] | None = None,
) -> Split:
    """Partition ``range(n_samples)`` into train/test index arrays.

    With ``stratify_labels`` the class balance of the full set is
    preserved on both sides (up to rounding).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)

    if stratify_labels is None:
        order = rng.permutation(n_samples)
        cut = int(round(train_fraction * n_samples))
        cut = min(max(cut, 1), n_samples - 1)
        return Split(np.sort(order[:cut]), np.sort(order[cut:]))

    labels = np.asarray(stratify_labels).ravel()
    if labels.shape[0] != n_samples:
        raise ValueError("stratify_labels length must equal n_samples")
    train_parts = []
    test_parts = []
    for value in np.unique(labels):
        members = np.flatnonzero(labels == value)
        members = rng.permutation(members)
        cut = int(round(train_fraction * members.shape[0]))
        cut = min(max(cut, 1), max(members.shape[0] - 1, 1))
        train_parts.append(members[:cut])
        test_parts.append(members[cut:])
    return Split(
        np.sort(np.concatenate(train_parts)),
        np.sort(np.concatenate(test_parts)),
    )
