"""repro.obs — unified telemetry: spans, metrics, structured exports.

The observability layer of DESIGN.md §9.  One :class:`RunTelemetry`
object rides through a pipeline run and collects

* a hierarchical span trace (:mod:`repro.obs.trace`) — stages, per-link
  fetches, retry/breaker/quarantine events, batched vision kernels;
* a metrics registry (:mod:`repro.obs.metrics`) — the Figure-1 funnel
  gauges plus the crawl/retry/cache/quarantine counters that PRs 1–3
  kept in private stats objects;

and :mod:`repro.obs.export` turns both into the JSONL trace file and
run-manifest JSON behind ``repro run --trace-out`` / ``repro trace``.
:mod:`repro.obs.log` supplies the structured CLI logging.

Tracing is zero-cost when disabled: the default recorder is
:data:`~repro.obs.trace.NULL_TRACER` and every instrumented call is an
unconditional no-op (< 3 % end-to-end with *full* tracing on, gated by
``benchmarks/bench_o1_telemetry.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .log import JsonLogFormatter, get_logger, setup_logging
from .metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    is_runtime_metric,
    is_timing_metric,
)
from .profile import ProfilingTracer, aggregate_spans, rss_peak_kb
from .trace import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "HistorySummary",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfilingTracer",
    "RunTelemetry",
    "Span",
    "SpanEvent",
    "Tracer",
    "aggregate_spans",
    "get_logger",
    "is_runtime_metric",
    "is_timing_metric",
    "record_history",
    "rss_peak_kb",
    "setup_logging",
    "summarize_run",
    "summarize_trace",
]


def __getattr__(name: str):
    # history pulls in nothing heavy, but keeping it lazy avoids an
    # import cycle once store-side callers import repro.obs first.
    if name in ("HistorySummary", "record_history", "summarize_run",
                "summarize_trace"):
        from . import history

        return getattr(history, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class RunTelemetry:
    """One run's tracer + metrics registry + stage funnel.

    Created per :meth:`EwhoringPipeline.run` (a fresh registry each run;
    the tracer defaults to the shared no-op recorder) and carried out on
    :attr:`PipelineReport.telemetry`, where the exporters pick it up.
    """

    def __init__(
        self,
        tracer: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._funnel: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    @property
    def tracing_enabled(self) -> bool:
        return bool(getattr(self.tracer, "enabled", False))

    def funnel_row(self, stage: str, count: Optional[int]) -> None:
        """Record one Figure-1 attrition row (``None`` = unavailable).

        Rows keep insertion order — the funnel is a table, not a bag of
        metrics — and each count is mirrored as a ``funnel.<stage>``
        gauge so generic metric consumers see it too.
        """
        count = None if count is None else int(count)
        self._funnel.append({"stage": stage, "count": count})
        if count is not None:
            self.metrics.gauge(f"funnel.{stage}").set(count)

    def funnel(self) -> List[Dict[str, Any]]:
        """The recorded funnel rows, in pipeline order."""
        return [dict(row) for row in self._funnel]

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Snapshot-protocol view (funnel + metrics + span counts)."""
        return {
            "funnel": self.funnel(),
            "metrics": self.metrics.snapshot(),
            "tracing_enabled": self.tracing_enabled,
            "n_spans": len(self.tracer.spans()),
            "n_events": getattr(self.tracer, "n_events", 0),
        }

    def deterministic_snapshot(self) -> dict:
        """Funnel + non-timing metrics: identical across same-seed runs."""
        return {
            "funnel": self.funnel(),
            "metrics": self.metrics.deterministic_snapshot(),
        }

    #: Metric name prefixes that count *work performed*, not quantities
    #: measured: cache hit/miss tallies, store row/byte gauges, simulated
    #: network accounting.  A memo-warm incremental run legitimately does
    #: less work than a cold one while measuring the same world, so these
    #: are outside the bit-identity contract of :meth:`measurement_view`.
    WORK_METRIC_PREFIXES = ("vision_cache.", "store.", "internet.")

    #: Exact metric names describing executor shape rather than the
    #: world: ``crawl.lanes`` exists only when a parallel executor runs
    #: (serial crawls never emit it), and the chunk/steal/arena gauges
    #: describe the process pool's scheduling, so none can be part of a
    #: contract that holds across executors and worker counts.
    WORK_METRIC_NAMES = (
        "crawl.lanes",
        "crawl.chunks",
        "crawl.steals",
        "crawl.arena_bytes",
        "crawl.arena_segments",
    )

    def measurement_view(self) -> dict:
        """The run's *measured quantities*: the incremental-≡-cold contract.

        Funnel plus deterministic metrics, minus the work-accounting
        gauges (:data:`WORK_METRIC_PREFIXES`).  Two runs that observe the
        same world must produce equal measurement views regardless of how
        much memoised work each skipped — this is the headline invariant
        of the persistent store (DESIGN.md §12), property-tested across
        cold vs watermark-delta runs.
        """
        snapshot = self.deterministic_snapshot()
        snapshot["metrics"] = [
            metric
            for metric in snapshot["metrics"]
            if not metric["name"].startswith(self.WORK_METRIC_PREFIXES)
            and metric["name"] not in self.WORK_METRIC_NAMES
        ]
        return snapshot

    def summary_lines(self) -> List[str]:
        """Short human-readable rendering for the CLI footer."""
        lines = []
        rendered = ", ".join(
            f"{row['stage']}={row['count'] if row['count'] is not None else '-'}"
            for row in self._funnel
        )
        if rendered:
            lines.append(f"funnel: {rendered}")
        lines.append(
            f"metrics: {len(self.metrics)} recorded; tracing "
            + (
                f"on ({len(self.tracer.spans())} spans, "
                f"{getattr(self.tracer, 'n_events', 0)} events)"
                if self.tracing_enabled
                else "off"
            )
        )
        return lines
