"""Structured telemetry sinks: JSONL traces, run manifests, renderers.

Three artifacts leave a run:

* the **trace file** (``repro run --trace-out t.jsonl``) — JSON Lines:
  one ``meta`` header line, then one line per finished span (events
  inlined), sorted by start offset.  Fully self-describing: the header
  carries the funnel and stage table so ``repro trace t.jsonl`` can
  render a flame summary without the world or the report;
* the **run manifest** (``t.manifest.json`` next to the trace) — the
  auditable provenance record of every derived number: seed, config,
  component versions, the Figure-1 stage funnel, per-stage outcomes,
  the full metric snapshot, the top-N slowest spans, and the
  quarantine/vision-cache/crawl statistic snapshots;
* **renderers** — :func:`render_trace` / :func:`render_funnel` turn a
  read-back trace into the per-stage flame summary and funnel table the
  ``repro trace`` subcommand prints.

Determinism contract: :func:`deterministic_manifest_view` strips every
timing-bearing field (creation stamp, span durations and counts, stage
elapsed times, ``*_seconds`` metrics); what remains must be identical
across runs of the same seed — property-tested in
``tests/test_obs_pipeline.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..atomicio import atomic_write_text
from .metrics import is_runtime_metric

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "build_manifest",
    "deterministic_manifest_view",
    "iter_trace",
    "manifest_path_for",
    "read_trace",
    "render_funnel",
    "render_trace",
    "write_manifest",
    "write_trace",
]

TRACE_SCHEMA_VERSION = 1
MANIFEST_SCHEMA_VERSION = 1

#: The exact top-level key set of a run manifest — the schema-stability
#: contract asserted by ``tests/test_obs_export.py``.  Extend it
#: deliberately (and bump :data:`MANIFEST_SCHEMA_VERSION` on breaking
#: changes), never accidentally.
MANIFEST_KEYS = (
    "schema_version",
    "kind",
    "created_unix",
    "seed",
    "config",
    "versions",
    "degraded",
    "funnel",
    "stages",
    "metrics",
    "slowest_spans",
    "n_spans",
    "n_events",
    "quarantine",
    "vision_cache",
    "crawl",
    "executor",
)


# ----------------------------------------------------------------------
# Trace file (JSONL)
# ----------------------------------------------------------------------
def write_trace(
    path: Union[str, Path],
    spans: Sequence[Any],
    meta: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a JSONL trace: one ``meta`` line, then one line per span.

    ``spans`` may be :class:`~repro.obs.trace.Span` objects or already
    dict-shaped records (anything with ``as_dict``/mapping semantics).
    """
    path = Path(path)
    header: Dict[str, Any] = {
        "type": "meta",
        "kind": "repro.trace",
        "schema_version": TRACE_SCHEMA_VERSION,
        "created_unix": time.time(),
    }
    if meta:
        header.update(dict(meta))
        header["type"] = "meta"  # callers cannot overwrite the line type
    lines = [json.dumps(header, sort_keys=True, default=str)]
    for span in spans:
        record = span.as_dict() if hasattr(span, "as_dict") else dict(span)
        lines.append(json.dumps(record, sort_keys=True, default=str))
    # Atomic replace (DESIGN.md §13): a crash mid-export leaves the
    # previous complete trace or none, never a torn JSONL tail.
    return atomic_write_text(path, "\n".join(lines) + "\n")


def iter_trace(
    path: Union[str, Path], strict: bool = True
) -> Iterator[Dict[str, Any]]:
    """Stream a trace file's records one line at a time.

    Yields every parsed record (the ``meta`` header included) without
    materialising the file — the history ingester and ``repro trace``
    summarise million-span traces through this in O(1) memory per line.

    ``strict=True`` (the default, matching :func:`read_trace`) raises
    ``ValueError`` on a record type it does not know; ``strict=False``
    skips unknown types instead — forward compatibility with traces
    written by a newer repro (new record kinds must not brick old
    readers).  Malformed JSON raises either way: that is corruption,
    not version skew.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{i + 1}: not JSON: {exc}") from exc
            if not isinstance(record, dict):
                if strict:
                    raise ValueError(
                        f"{path}:{i + 1}: trace record is not an object"
                    )
                continue
            kind = record.get("type")
            if kind not in ("meta", "span"):
                if strict:
                    raise ValueError(
                        f"{path}:{i + 1}: unknown trace record type {kind!r}"
                    )
                continue
            yield record


def read_trace(
    path: Union[str, Path], strict: bool = True
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a trace file back as ``(meta, span_records)``.

    Built on :func:`iter_trace` (property-tested equal to the streamed
    view).  ``strict=False`` additionally tolerates a missing ``meta``
    header — an empty or header-less file reads as ``({}, [])`` so the
    renderers can still say "0 spans" instead of refusing.
    """
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    for record in iter_trace(path, strict=strict):
        if record.get("type") == "meta":
            meta = record
        else:
            spans.append(record)
    if not meta and strict:
        raise ValueError(f"{path}: missing trace meta header line")
    return meta, spans


def manifest_path_for(trace_path: Union[str, Path]) -> Path:
    """The run-manifest path conventionally paired with a trace file."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".manifest.json")


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
def _versions() -> Dict[str, str]:
    import numpy
    import scipy

    from .. import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro_version,
    }


def build_manifest(
    report: Any,
    seed: Optional[int] = None,
    config: Optional[Mapping[str, Any]] = None,
    top_n_spans: int = 10,
    executor: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The run manifest of one :class:`~repro.core.pipeline.PipelineReport`.

    ``report.telemetry`` supplies the funnel and metric snapshot; the
    stage table, quarantine ledger, vision-cache and crawl statistics
    come from the report's own sections through the common
    ``as_dict()`` snapshot protocol.

    ``executor`` is the crawl-executor shape of the run — a mapping with
    ``executor``/``workers``/``cpu_count`` — recorded so manifests from
    thread and process runs can be told apart; it is environment, not
    measurement, so :func:`deterministic_manifest_view` drops it.
    """
    telemetry = getattr(report, "telemetry", None)
    funnel = telemetry.funnel() if telemetry is not None else []
    metrics = telemetry.metrics.snapshot() if telemetry is not None else []
    spans = telemetry.tracer.spans() if telemetry is not None else []
    n_events = telemetry.tracer.n_events if telemetry is not None else 0

    slowest = sorted(spans, key=lambda s: s.duration, reverse=True)[
        : max(0, top_n_spans)
    ]
    stages = [
        {
            "stage": outcome.stage,
            "status": outcome.status,
            "elapsed_seconds": outcome.elapsed,
            "skipped_due_to": outcome.skipped_due_to,
            "root_cause": outcome.root_cause,
        }
        for outcome in getattr(report, "stage_outcomes", [])
    ]

    quarantine = getattr(report, "quarantine", None)
    cache_stats = getattr(report, "vision_cache_stats", None)
    crawl = getattr(report, "crawl", None)

    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "repro.run_manifest",
        "created_unix": time.time(),
        "seed": seed,
        "config": dict(config) if config is not None else None,
        "versions": _versions(),
        "degraded": bool(getattr(report, "degraded", False)),
        "funnel": funnel,
        "stages": stages,
        "metrics": metrics,
        "slowest_spans": [
            {
                "name": span.name,
                "duration_seconds": span.duration,
                "attrs": dict(span.attributes),
            }
            for span in slowest
        ],
        "n_spans": len(spans),
        "n_events": n_events,
        "quarantine": quarantine.as_dict() if quarantine is not None else None,
        "vision_cache": cache_stats.as_dict() if cache_stats is not None else None,
        "crawl": crawl.stats.as_dict() if crawl is not None else None,
        "executor": dict(executor) if executor is not None else None,
    }


def write_manifest(path: Union[str, Path], manifest: Mapping[str, Any]) -> Path:
    return atomic_write_text(
        Path(path),
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
    )


def deterministic_manifest_view(manifest: Mapping[str, Any]) -> Dict[str, Any]:
    """The manifest minus every timing-bearing field.

    Drops ``created_unix``, ``versions`` and ``executor`` (environment,
    not measurement), ``slowest_spans``/``n_spans``/``n_events``
    (present only when tracing is on), per-stage ``elapsed_seconds``
    and every ``*_seconds`` metric.  Two runs of one seed must agree on the
    result exactly — with tracing on, off, or mixed.
    """
    view = dict(manifest)
    for key in (
        "created_unix", "versions", "slowest_spans", "n_spans", "n_events",
        "executor",
    ):
        view.pop(key, None)
    view["stages"] = [
        {k: v for k, v in stage.items() if k != "elapsed_seconds"}
        for stage in manifest.get("stages", [])
    ]
    view["metrics"] = [
        m for m in manifest.get("metrics", []) if not is_runtime_metric(m["name"])
    ]
    return view


# ----------------------------------------------------------------------
# Renderers (the ``repro trace`` subcommand)
# ----------------------------------------------------------------------
def render_funnel(funnel: Sequence[Mapping[str, Any]]) -> str:
    """The Figure-1 attrition table: one row per funnel stage.

    Tolerant of sparse rows (missing ``stage``/``count``, non-numeric
    counts) — a funnel from a foreign or future trace renders with
    ``-`` placeholders instead of raising.
    """
    if not funnel:
        return "no funnel recorded"
    stages = [str(row.get("stage", "?")) for row in funnel]
    width = max(5, max(len(stage) for stage in stages))
    lines = [f"{'stage':<{width}}  {'count':>10}"]
    previous: Optional[float] = None
    for stage, row in zip(stages, funnel):
        count = row.get("count")
        if not isinstance(count, (int, float)) or isinstance(count, bool):
            count = None
        rendered = "-" if count is None else f"{int(count):,}"
        note = ""
        if count is not None and previous not in (None, 0):
            note = f"  ({count / previous:6.1%} of previous)"
        lines.append(f"{stage:<{width}}  {rendered:>10}{note}")
        if count is not None:
            previous = count
    return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_trace(
    meta: Mapping[str, Any],
    spans: Sequence[Mapping[str, Any]],
    max_depth: int = 6,
) -> str:
    """Per-stage flame summary + funnel table of a read-back trace.

    Spans sharing one ancestry *path* (e.g. the thousands of
    ``crawl.fetch`` spans under ``stage.url_crawl``) are aggregated into
    a single line with count / total / mean / max, so the summary stays
    one screen regardless of corpus size.  Siblings render in
    total-duration order.

    Tolerant of whatever a trace file can legally contain: zero spans,
    missing ids or names (``?`` placeholders), dangling parent
    references (rendered as roots), parent cycles (broken at the
    revisit) and span names this repro has never heard of — a future
    writer's ``profile.*`` spans render like any other name.
    """
    # path (tuple of names root→leaf) → aggregate
    by_id: Dict[Any, Mapping[str, Any]] = {
        s["id"]: s for s in spans if s.get("id") is not None
    }
    paths: Dict[Tuple[str, ...], Dict[str, float]] = {}
    path_cache: Dict[Any, Tuple[str, ...]] = {}

    def path_of(span: Mapping[str, Any]) -> Tuple[str, ...]:
        # Iterative ancestry walk with a visited set: a malformed trace
        # with a parent cycle terminates (the cycle is broken at the
        # revisit) instead of recursing forever.
        chain: List[Mapping[str, Any]] = []
        visited: set = set()
        node: Optional[Mapping[str, Any]] = span
        prefix: Tuple[str, ...] = ()
        while node is not None:
            node_id = node.get("id")
            if node_id is not None:
                cached = path_cache.get(node_id)
                if cached is not None:
                    prefix = cached
                    break
                if node_id in visited:
                    break
                visited.add(node_id)
            chain.append(node)
            node = by_id.get(node.get("parent"))
        for ancestor in reversed(chain):
            prefix = prefix + (str(ancestor.get("name", "?")),)
            ancestor_id = ancestor.get("id")
            if ancestor_id is not None:
                path_cache[ancestor_id] = prefix
        return prefix

    n_events = 0
    n_errors = 0
    for span in spans:
        path = path_of(span)
        agg = paths.setdefault(
            path, {"count": 0, "total": 0.0, "max": 0.0, "errors": 0}
        )
        duration = float(span.get("duration") or 0.0)
        agg["count"] += 1
        agg["total"] += duration
        agg["max"] = max(agg["max"], duration)
        if span.get("status") == "error":
            agg["errors"] += 1
            n_errors += 1
        n_events += len(span.get("events", ()))

    lines: List[str] = []
    seed = meta.get("seed")
    lines.append(
        f"trace: {len(spans)} spans, {n_events} events, {n_errors} errors"
        + (f", seed={seed}" if seed is not None else "")
    )

    def render_level(prefix: Tuple[str, ...], depth: int) -> None:
        if depth > max_depth:
            return
        children = [
            (path, agg)
            for path, agg in paths.items()
            if len(path) == len(prefix) + 1 and path[: len(prefix)] == prefix
        ]
        children.sort(key=lambda item: (-item[1]["total"], item[0]))
        for path, agg in children:
            indent = "  " * depth
            count = int(agg["count"])
            label = path[-1] if count == 1 else f"{path[-1]} ×{count}"
            detail = f"total={_format_seconds(agg['total'])}"
            if count > 1:
                detail += (
                    f" mean={_format_seconds(agg['total'] / count)}"
                    f" max={_format_seconds(agg['max'])}"
                )
            if agg["errors"]:
                detail += f" errors={int(agg['errors'])}"
            lines.append(f"{indent}{label:<{max(1, 40 - 2 * depth)}} {detail}")
            render_level(path, depth + 1)

    lines.append("")
    lines.append("-- flame summary --")
    render_level((), 0)

    funnel = meta.get("funnel") or []
    if funnel:
        lines.append("")
        lines.append("-- funnel --")
        lines.append(render_funnel(funnel))
    return "\n".join(lines)
