"""Cross-run telemetry history: summarise a run, persist it in the store.

The telemetry of DESIGN.md §9 evaporates at process exit; this module
condenses one run's :class:`~repro.obs.RunTelemetry` (or a previously
written trace file) into a :class:`HistorySummary` — headline resource
figures, per-span-name aggregates, the deterministic metric snapshot,
the funnel and any profiler samples — and writes it into the run-store
history tables (:meth:`repro.store.sqlite.RunStore.save_history`).

:func:`repro.store.run_incremental` records a summary inside the same
atomic epoch transaction as every other write, so run history inherits
the crash-consistency guarantees of DESIGN.md §13 unchanged: a crash
mid-insert leaves the previous watermark and no partial history row
(covered by the kill matrix via the ``store.history.recorded`` site).

``repro obs runs`` / ``top`` / ``diff`` / ``regressions`` query these
tables — see :mod:`repro.obs.regress` for the SLO layer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .profile import aggregate_spans, rss_peak_kb

__all__ = [
    "HistorySummary",
    "record_history",
    "summarize_run",
    "summarize_trace",
]


@dataclass
class HistorySummary:
    """One run's condensed telemetry, ready for the history tables."""

    source: str  # "run" | "trace" | "ingest"
    label: Optional[str] = None
    created_unix: float = 0.0
    seed: Optional[int] = None
    epoch: Optional[int] = None
    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    n_spans: int = 0
    n_events: int = 0
    n_records: Optional[int] = None
    n_quarantined: Optional[int] = None
    profiled: bool = False
    #: Crawl executor shape of the run (``None`` = serial crawl): these
    #: let ``repro obs runs|diff|regressions`` compare like with like
    #: instead of silently mixing thread and process runs.
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: ``os.cpu_count()`` of the recording machine — a 1-core process
    #: run regressing against a 16-core one is signal, not noise.
    cpu_count: Optional[int] = None
    #: :func:`~repro.obs.profile.aggregate_spans` rows.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Deterministic metric snapshot
    #: (:meth:`~repro.obs.metrics.MetricsRegistry.deterministic_snapshot`).
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    #: Figure-1 funnel rows, in pipeline order.
    funnel: List[Dict[str, Any]] = field(default_factory=list)
    #: Profiler resource samples ``{"t", "rss_kb", "cpu_seconds"}``.
    samples: List[Dict[str, float]] = field(default_factory=list)

    def funnel_count(self, stage: str) -> Optional[int]:
        for row in self.funnel:
            if row.get("stage") == stage:
                return row.get("count")
        return None


def _funnel_lookup(funnel: List[Dict[str, Any]], stage: str) -> Optional[int]:
    for row in funnel:
        if row.get("stage") == stage:
            return row.get("count")
    return None


def summarize_run(
    telemetry: Any,
    *,
    seed: Optional[int] = None,
    epoch: Optional[int] = None,
    wall_seconds: Optional[float] = None,
    label: Optional[str] = None,
    created_unix: Optional[float] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
) -> HistorySummary:
    """Condense a live :class:`~repro.obs.RunTelemetry` into history form.

    Works for any tracer: with tracing off the span aggregates are
    empty but funnel and deterministic metrics are still recorded —
    history is useful long before anyone turns the profiler on.
    """
    tracer = telemetry.tracer
    span_records = [s.as_dict() for s in tracer.spans()]
    span_rows = aggregate_spans(span_records)
    profiled = bool(getattr(tracer, "profiled", False))

    cpu_seconds: Optional[float] = None
    if profiled:
        total = 0.0
        seen = False
        for row in span_rows:
            if row.get("cpu_seconds") is not None:
                total += float(row["cpu_seconds"])
                seen = True
        if seen:
            cpu_seconds = total

    funnel = telemetry.funnel()
    summary = HistorySummary(
        source="run",
        label=label,
        created_unix=time.time() if created_unix is None else created_unix,
        seed=seed,
        epoch=epoch,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        peak_rss_kb=rss_peak_kb() or None,
        n_spans=len(span_records),
        n_events=int(getattr(tracer, "n_events", 0)),
        n_records=_funnel_lookup(funnel, "images_downloaded"),
        n_quarantined=_funnel_lookup(funnel, "quarantined_records"),
        profiled=profiled,
        executor=executor if workers is not None else None,
        workers=workers,
        cpu_count=os.cpu_count(),
        spans=span_rows,
        metrics=telemetry.deterministic_snapshot()["metrics"],
        funnel=funnel,
        samples=list(getattr(tracer, "samples", list)() or []),
    )
    return summary


def summarize_trace(
    path: Union[str, Path],
    *,
    label: Optional[str] = None,
    created_unix: Optional[float] = None,
) -> HistorySummary:
    """Condense a written trace file — streamed, never materialised.

    Uses :func:`repro.obs.export.iter_trace` in tolerant mode, so an
    old reader ingesting a trace from a newer writer skips record types
    it does not know instead of refusing the file.
    """
    from .export import iter_trace

    path = Path(path)
    meta: Dict[str, Any] = {}
    # Streaming fold: the heavy per-record payloads (attribute dicts,
    # inlined events) are reduced to one slim row per span as the file
    # streams past — the full JSONL is never materialised.
    slim: List[Dict[str, Any]] = []
    samples: List[Dict[str, float]] = []
    n_events = 0
    profiled = False
    wall = 0.0

    for record in iter_trace(path, strict=False):
        if record.get("type") == "meta":
            meta = record
            continue
        n_events += len(record.get("events") or ())
        duration = float(record.get("duration") or 0.0)
        wall = max(wall, duration)
        attrs = record.get("attrs") or {}
        if "profile.cpu_seconds" in attrs:
            profiled = True
        if record.get("name") == "profile.sample":
            samples.append(
                {
                    "t": float(record.get("t_start") or 0.0),
                    "rss_kb": float(attrs.get("profile.sample_rss_kb") or 0.0),
                    "cpu_seconds": float(
                        attrs.get("profile.sample_cpu_seconds") or 0.0
                    ),
                }
            )
        slim.append(
            {
                "id": record.get("id"),
                "parent": record.get("parent"),
                "name": record.get("name", "?"),
                "duration": duration,
                "status": record.get("status"),
                "attrs": {
                    key: attrs[key]
                    for key in (
                        "profile.cpu_seconds",
                        "profile.rss_peak_kb",
                        "profile.alloc_kb",
                    )
                    if key in attrs
                },
            }
        )
    span_rows = aggregate_spans(slim)

    cpu_seconds: Optional[float] = None
    if profiled:
        cpu_seconds = sum(
            float(row["cpu_seconds"]) for row in span_rows
            if row.get("cpu_seconds") is not None
        )
    rss_values = [
        int(row["rss_peak_kb"]) for row in span_rows
        if row.get("rss_peak_kb") is not None
    ]
    funnel = list(meta.get("funnel") or [])
    return HistorySummary(
        source="trace",
        label=label if label is not None else str(path),
        created_unix=(
            float(meta.get("created_unix") or 0.0)
            if created_unix is None
            else created_unix
        ),
        seed=meta.get("seed"),
        epoch=meta.get("epoch"),
        wall_seconds=wall or None,
        cpu_seconds=cpu_seconds,
        peak_rss_kb=max(rss_values) if rss_values else None,
        n_spans=len(slim),
        n_events=n_events,
        n_records=_funnel_lookup(funnel, "images_downloaded"),
        n_quarantined=_funnel_lookup(funnel, "quarantined_records"),
        profiled=profiled,
        spans=span_rows,
        metrics=list(meta.get("metrics") or []),
        funnel=funnel,
        samples=samples,
    )


def record_history(
    store: Any,
    summary: HistorySummary,
    run_id: Optional[int] = None,
) -> int:
    """Persist ``summary`` into ``store``'s history tables.

    Wraps the insert in the store's :meth:`transaction` (flattening into
    an enclosing epoch transaction when called from
    :func:`~repro.store.run_incremental`); returns the new history id.
    """
    with store.transaction():
        return store.save_history(summary, run_id=run_id)
