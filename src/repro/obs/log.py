"""Structured logging setup for the CLI and library consumers.

Replaces the CLI's ad-hoc ``print(..., file=sys.stderr)`` progress lines
with the standard :mod:`logging` machinery under the ``repro`` logger
namespace, in one of two formats:

* **human** (default) — ``HH:MM:SS LEVEL name: message``;
* **json** (``--log-json``) — one JSON object per line with ``ts``,
  ``level``, ``logger``, ``msg`` and any structured ``extra`` fields,
  machine-parseable alongside the JSONL trace files of
  :mod:`repro.obs.export`.

Library code obtains loggers through :func:`get_logger` and never
configures handlers itself; :func:`setup_logging` is the single
(idempotent) configuration entry point, called by the CLI.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

__all__ = ["JsonLogFormatter", "get_logger", "setup_logging"]

ROOT_LOGGER_NAME = "repro"

#: Attributes present on every LogRecord; anything else was passed via
#: ``extra=`` and belongs in the structured payload.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, ``extra=`` fields included."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class _HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL name: message`` on local time."""

    def format(self, record: logging.LogRecord) -> str:
        clock = time.strftime("%H:%M:%S", time.localtime(record.created))
        message = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            message = f"{message}\n{self.formatException(record.exc_info)}"
        return f"{clock} {record.levelname.lower():<7} {record.name}: {message}"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child logger."""
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: repeated calls replace the previously installed handler
    (tests call this freely).  ``stream`` defaults to ``sys.stderr`` —
    resolved at call time so pytest capture works.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_mode else _HumanFormatter())
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger
