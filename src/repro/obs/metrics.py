"""A process-local metrics registry: named counters, gauges, histograms.

PRs 1–3 each grew a private statistics object — ``CrawlStats`` retry
counters, :class:`~repro.vision.cache.VisionCacheStats`, the
:class:`~repro.core.quarantine.Quarantine` ledger,
:class:`~repro.core.stage_runner.StageOutcome` wall times.  The registry
gives them one uniform home: every quantity is a named metric with
optional labels, snapshot-able into the run manifest (see
:mod:`repro.obs.export`) as one sorted, JSON-ready list.

Naming convention (enforced only by discipline, documented in
DESIGN.md §9):

* dotted lower-case names, subsystem first — ``crawl.retries``,
  ``vision_cache.hits``, ``pipeline.stage_seconds``;
* **timing metrics end in ``_seconds``** — they are the only metrics
  allowed to differ between two runs of the same seed, and
  :meth:`MetricsRegistry.deterministic_snapshot` excludes exactly them
  (this is what makes telemetry itself property-testable);
* labels are few and low-cardinality (``stage=``, ``status=``,
  ``error=``) — this is a per-run registry, not a TSDB.

The registry is thread-safe for metric creation; individual updates are
plain attribute arithmetic (safe under the GIL for the pipeline's
current single-writer stages).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "is_runtime_metric",
    "is_timing_metric",
]

LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for ``*_seconds`` observations: upper bounds
#: in seconds, spanning sub-millisecond kernels to minutes-long stages.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def is_timing_metric(name: str) -> bool:
    """True for metrics that carry wall-time (excluded from determinism)."""
    return name.endswith("_seconds") or name.endswith(".seconds")


#: Name suffixes of metrics whose values depend on the *runtime* — wall
#: time or thread scheduling — rather than on the world seed.
_RUNTIME_SUFFIXES = ("_queue_depth_peak", ".queue_depth_peak", "_inflight")

#: Name prefixes reserved for runtime-only metrics.  ``profile.`` is the
#: resource-profiler namespace (:mod:`repro.obs.profile`): CPU seconds,
#: RSS, allocation deltas — environment measurements by definition, so
#: the whole prefix is excluded from deterministic views wholesale.
_RUNTIME_PREFIXES = ("profile.",)

#: Exact names of runtime-only metrics: the process pool's steal counter
#: depends on which worker happened to commit a stolen chunk first, so
#: it varies run-to-run even on a fixed seed and worker count.
_RUNTIME_NAMES = ("crawl.steals",)


def is_runtime_metric(name: str) -> bool:
    """True for metrics excluded from deterministic views.

    Covers :func:`is_timing_metric` (``*_seconds``) plus
    scheduling-dependent gauges — streaming queue depths, in-flight
    counts — whose values vary with worker count and thread
    interleaving even on a fixed seed, plus the reserved ``profile.``
    namespace of the resource profiler.
    """
    return (
        is_timing_metric(name)
        or name.endswith(_RUNTIME_SUFFIXES)
        or name.startswith(_RUNTIME_PREFIXES)
        or name in _RUNTIME_NAMES
    )


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += n

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go anywhere (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Bucketed observations with sum/count/min/max.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  ``bucket_counts[i]`` counts observations ``v``
    with ``buckets[i-1] < v <= buckets[i]`` (non-cumulative).
    """

    kind = "histogram"
    __slots__ = ("buckets", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +Inf overflow last
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of labelled metrics for one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelsKey], Any] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, labels: Mapping[str, Any], factory):
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                registered_kind = self._kinds.setdefault(name, metric.kind)
                if registered_kind != metric.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {registered_kind}, "
                        f"not {metric.kind}"
                    )
                self._metrics[key] = metric
            elif metric.kind != factory().kind:  # pragma: no cover - defensive
                raise ValueError(f"metric {name!r} kind conflict")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(name, labels, lambda: Histogram(buckets))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> List[dict]:
        """Every metric as a JSON-ready dict, deterministically sorted."""
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda kv: kv[0])
        return [
            {
                "name": name,
                "labels": dict(labels),
                "kind": metric.kind,
                **metric.as_dict(),
            }
            for (name, labels), metric in items
        ]

    def deterministic_snapshot(self) -> List[dict]:
        """The snapshot minus runtime metrics (timing + queue depths).

        Two runs over the same seed — at *any* crawl worker count —
        must agree on this view exactly; the property tests of
        ``tests/test_obs_pipeline.py`` and
        ``tests/test_parallel_crawl.py``.
        """
        return [m for m in self.snapshot() if not is_runtime_metric(m["name"])]

    def as_dict(self) -> dict:
        """Snapshot-protocol alias used by the exporters."""
        return {"metrics": self.snapshot()}
