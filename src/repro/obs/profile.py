"""Opt-in resource profiling attached to the span tracer (DESIGN.md §14).

:class:`ProfilingTracer` subclasses the recording
:class:`~repro.obs.trace.Tracer` and annotates every span, at close,
with resource attributes under the reserved ``profile.`` namespace:

* ``profile.cpu_seconds``   — thread CPU time consumed inside the span
  (``time.thread_time`` delta; spans open and close on one thread);
* ``profile.rss_peak_kb``   — the process peak RSS observed at close
  (``resource.getrusage`` / ``/proc/self/status`` — stdlib only);
* ``profile.rss_growth_kb`` — peak-RSS growth across the span (first
  big allocation shows up on the stage that caused it);
* ``profile.alloc_kb``      — net ``tracemalloc`` allocation delta, only
  when allocation tracking is requested and only on coarse stage-level
  spans (``pipeline.*`` / ``stage.*`` / ``store.*``) — per-fetch
  tracemalloc reads would dominate the thing being measured.

A background :class:`_ResourceSampler` thread (``start()``/``stop()``)
additionally records periodic ``(t, rss_kb, cpu_seconds)`` samples —
persisted into the run-history tables (:mod:`repro.obs.history`) and
surfaced as root ``profile.sample`` spans in the trace.

Zero-cost-when-disabled is structural, not a fast path: profiling lives
entirely in this subclass, so a run without a :class:`ProfilingTracer`
executes not one added instruction (the NULL_TRACER discipline of
DESIGN.md §9; gated by ``benchmarks/bench_o1_telemetry.py``).
Determinism: every attribute is namespaced ``profile.`` and every
``profile.*`` *metric* name is a runtime metric
(:func:`~repro.obs.metrics.is_runtime_metric`), so deterministic
snapshots, ``measurement_view()`` and run digests are bit-identical
with profiling on, off or mixed — property-tested in
``tests/test_obs_profile.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .trace import Span, Tracer, _SpanContext

__all__ = [
    "ALLOC_SPAN_PREFIXES",
    "PROFILE_ATTR_PREFIX",
    "ProfilingTracer",
    "aggregate_spans",
    "rss_current_kb",
    "rss_peak_kb",
]

#: Every profiler-written span attribute lives under this namespace, so
#: consumers (and the determinism contract) can strip them wholesale.
PROFILE_ATTR_PREFIX = "profile."

#: Span-name prefixes that get tracemalloc allocation deltas when
#: allocation tracking is on: coarse stage-level units only — reading
#: ``tracemalloc.get_traced_memory()`` around each of thousands of
#: per-link fetch spans would perturb the timings it sits next to.
ALLOC_SPAN_PREFIXES = ("pipeline.", "stage.", "store.")


# ----------------------------------------------------------------------
# RSS readers (stdlib only: resource.getrusage, /proc fallback)
# ----------------------------------------------------------------------
def _proc_status_kb(field: str) -> Optional[int]:
    """Read a ``kB`` field (``VmHWM``/``VmRSS``) from /proc/self/status."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def rss_peak_kb() -> int:
    """Process peak RSS in KiB (0 when unknowable on this platform).

    ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` is KiB on Linux and
    bytes on macOS; ``/proc/self/status`` ``VmHWM`` is the fallback.
    """
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":
            peak //= 1024
        if peak > 0:
            return int(peak)
    except (ImportError, ValueError, OSError):
        pass
    return _proc_status_kb("VmHWM:") or 0


def rss_current_kb() -> int:
    """Current resident set size in KiB (falls back to the peak)."""
    current = _proc_status_kb("VmRSS:")
    if current is not None:
        return current
    return rss_peak_kb()


# ----------------------------------------------------------------------
# The profiling tracer
# ----------------------------------------------------------------------
class _ResourceSampler(threading.Thread):
    """Daemon thread appending periodic resource samples to the tracer."""

    def __init__(self, tracer: "ProfilingTracer", interval: float):
        super().__init__(name="repro-profile-sampler", daemon=True)
        self._tracer = tracer
        self._interval = interval
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)

    def run(self) -> None:  # pragma: no cover - timing-dependent thread body
        while not self._stop_event.wait(self._interval):
            self._tracer._record_sample()


class ProfilingTracer(Tracer):
    """A recording tracer that also profiles CPU, RSS and allocations.

    Drop-in for :class:`Tracer` wherever one is accepted (``repro run
    --profile``); call :meth:`start`/:meth:`stop` around the run to arm
    allocation tracking and the background resource sampler.  Safe to
    use without ``start()`` — per-span CPU/RSS attributes are always on.
    """

    profiled = True

    def __init__(
        self,
        allocations: bool = False,
        sample_interval: float = 0.05,
    ) -> None:
        super().__init__()
        self.allocations = bool(allocations)
        self.sample_interval = float(sample_interval)
        #: span_id -> (cpu_start, rss_peak_at_open, alloc_start or None).
        #: Distinct keys per span; GIL-atomic dict ops need no lock.
        self._open_profiles: Dict[int, Tuple[float, int, Optional[int]]] = {}
        self._samples: List[Dict[str, float]] = []
        self._sampler: Optional[_ResourceSampler] = None
        self._owns_tracemalloc = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ProfilingTracer":
        """Arm allocation tracking and the background resource sampler."""
        if self.allocations:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True
        if self.sample_interval > 0 and self._sampler is None:
            self._sampler = _ResourceSampler(self, self.sample_interval)
            self._sampler.start()
        return self

    def stop(self) -> None:
        """Stop the sampler and release tracemalloc (idempotent)."""
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False

    # -- per-span hooks -------------------------------------------------
    def _alloc_snapshot(self, name: str) -> Optional[int]:
        if not self.allocations or not name.startswith(ALLOC_SPAN_PREFIXES):
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():
            return None
        return tracemalloc.get_traced_memory()[0]

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        ctx = super().span(name, **attributes)
        self._open_profiles[ctx._span.span_id] = (
            time.thread_time(),
            rss_peak_kb(),
            self._alloc_snapshot(name),
        )
        return ctx

    def _close(self, span: Span) -> None:
        entry = self._open_profiles.pop(span.span_id, None)
        if entry is not None:
            cpu_start, rss_open, alloc_start = entry
            attrs = span.attributes
            attrs["profile.cpu_seconds"] = max(
                0.0, time.thread_time() - cpu_start
            )
            peak = rss_peak_kb()
            attrs["profile.rss_peak_kb"] = peak
            attrs["profile.rss_growth_kb"] = max(0, peak - rss_open)
            if alloc_start is not None:
                import tracemalloc

                if tracemalloc.is_tracing():
                    attrs["profile.alloc_kb"] = (
                        tracemalloc.get_traced_memory()[0] - alloc_start
                    ) / 1024.0
        super()._close(span)

    # -- samples --------------------------------------------------------
    def _record_sample(self) -> None:
        sample = {
            "t": self._now(),
            "rss_kb": float(rss_current_kb()),
            "cpu_seconds": time.process_time(),
        }
        self._samples.append(sample)
        # Mirror the sample into the trace itself: a zero-length root
        # span (the sampler thread has an empty ancestry stack), so a
        # plain trace file carries the RSS timeline too.
        with self.span("profile.sample", **{
            "profile.sample_rss_kb": sample["rss_kb"],
            "profile.sample_cpu_seconds": sample["cpu_seconds"],
        }):
            pass

    def samples(self) -> List[Dict[str, float]]:
        """Recorded ``(t, rss_kb, cpu_seconds)`` samples, in order."""
        return list(self._samples)


# ----------------------------------------------------------------------
# Aggregation (shared by `repro obs top` and the history writer)
# ----------------------------------------------------------------------
def aggregate_spans(
    records: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-name span summaries of dict-shaped span records.

    Returns one row per span name, sorted by descending self-time:
    ``count``, ``total_seconds``, ``self_seconds`` (duration minus the
    duration of *direct* children — the quantity ``repro obs top``
    ranks by), ``max_seconds``, ``errors``, plus the profile
    aggregates (``cpu_seconds`` summed, ``rss_peak_kb`` maxed,
    ``alloc_kb`` summed) when the trace was profiled, else ``None``.
    """
    durations: Dict[Any, float] = {}
    names: Dict[Any, str] = {}
    child_totals: Dict[Any, float] = {}
    for rec in records:
        span_id = rec.get("id")
        duration = float(rec.get("duration") or 0.0)
        if span_id is not None:
            durations[span_id] = duration
            names[span_id] = str(rec.get("name", "?"))
    for rec in records:
        parent = rec.get("parent")
        if parent is not None and parent in durations:
            child_totals[parent] = child_totals.get(parent, 0.0) + float(
                rec.get("duration") or 0.0
            )

    rows: Dict[str, Dict[str, Any]] = {}
    for rec in records:
        name = str(rec.get("name", "?"))
        span_id = rec.get("id")
        duration = float(rec.get("duration") or 0.0)
        self_seconds = max(0.0, duration - child_totals.get(span_id, 0.0))
        row = rows.setdefault(
            name,
            {
                "name": name,
                "count": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "max_seconds": 0.0,
                "errors": 0,
                "cpu_seconds": None,
                "rss_peak_kb": None,
                "alloc_kb": None,
            },
        )
        row["count"] += 1
        row["total_seconds"] += duration
        row["self_seconds"] += self_seconds
        row["max_seconds"] = max(row["max_seconds"], duration)
        if rec.get("status") == "error":
            row["errors"] += 1
        attrs = rec.get("attrs") or {}
        cpu = attrs.get("profile.cpu_seconds")
        if cpu is not None:
            row["cpu_seconds"] = (row["cpu_seconds"] or 0.0) + float(cpu)
        rss = attrs.get("profile.rss_peak_kb")
        if rss is not None:
            row["rss_peak_kb"] = max(row["rss_peak_kb"] or 0, int(rss))
        alloc = attrs.get("profile.alloc_kb")
        if alloc is not None:
            row["alloc_kb"] = (row["alloc_kb"] or 0.0) + float(alloc)
    return sorted(
        rows.values(),
        key=lambda r: (-r["self_seconds"], -r["total_seconds"], r["name"]),
    )
