"""Declarative SLO checks over the persisted run history (``repro obs``).

A *SLO spec* is a small JSON object (the repo commits one as
``slo.json``) bounding how much a run may regress against a stored
baseline, plus absolute floors on the quantities the paper's
measurement actually cares about:

``wall_seconds_max_ratio``
    latest wall time ≤ ratio × baseline wall time;
``cpu_seconds_max_ratio``
    latest CPU time ≤ ratio × baseline CPU time (profiled runs only);
``peak_rss_kb_max_ratio``
    latest peak RSS ≤ ratio × baseline peak RSS;
``funnel_min_ratio``
    every funnel stage count ≥ ratio × the baseline stage count —
    the recall guard: an instrument that silently finds fewer images
    or packs than it used to is regressing even if it got faster;
``funnel_floors``
    absolute per-stage minimum counts on the latest run;
``metric_floors``
    absolute minimum values for named gauge metrics of the latest run.

:func:`check_regressions` compares the latest history row against the
baseline (the *first* history row by default — the run that established
expectations — or ``--baseline N``) and returns a typed report; the CLI
maps violations to the distinct exit code :data:`EXIT_REGRESSION` so a
CI leg can gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "DEFAULT_SLO",
    "EXIT_REGRESSION",
    "RegressionReport",
    "Violation",
    "check_regressions",
    "diff_histories",
    "load_slo",
]

#: ``repro obs regressions`` exit code when any SLO check fails —
#: distinct from usage errors (2) and store corruption (3).
EXIT_REGRESSION = 5

#: Conservative defaults when no spec file is given: runs may slow down
#: 3× / grow 2× in RSS before the gate trips, and must keep ≥ 90 % of
#: every baseline funnel count.
DEFAULT_SLO: Dict[str, Any] = {
    "wall_seconds_max_ratio": 3.0,
    "peak_rss_kb_max_ratio": 2.0,
    "funnel_min_ratio": 0.9,
}

_RATIO_KEYS = (
    "wall_seconds_max_ratio",
    "cpu_seconds_max_ratio",
    "peak_rss_kb_max_ratio",
    "funnel_min_ratio",
)
_MAPPING_KEYS = ("funnel_floors", "metric_floors")
#: Free-text keys tolerated (and ignored) in a spec file.
_DOC_KEYS = ("description", "kind")


@dataclass(frozen=True)
class Violation:
    """One failed SLO check."""

    check: str
    message: str


@dataclass
class RegressionReport:
    """What ``repro obs regressions`` found."""

    baseline: Dict[str, Any]
    latest: Dict[str, Any]
    violations: List[Violation] = field(default_factory=list)
    #: Human-readable descriptions of every check that *ran* (passed or
    #: not) — so a green gate shows what it actually guarded.
    checks: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_lines(self) -> List[str]:
        lines = [
            f"baseline: history #{self.baseline.get('history_id')} "
            f"({self.baseline.get('label') or self.baseline.get('source')})",
            f"latest:   history #{self.latest.get('history_id')} "
            f"({self.latest.get('label') or self.latest.get('source')})",
            f"checks:   {len(self.checks)} run, "
            f"{len(self.violations)} violated",
        ]
        violated = {violation.check for violation in self.violations}
        for check in self.checks:
            name = check.split(":", 1)[0]
            lines.append(f"  {'!!' if name in violated else 'ok'}  {check}")
        for violation in self.violations:
            lines.append(f"  REGRESSION [{violation.check}] {violation.message}")
        return lines


def load_slo(source: Union[str, Path, Mapping[str, Any]]) -> Dict[str, Any]:
    """Load and validate a SLO spec (path or already-parsed mapping).

    Raises ``ValueError`` on unknown keys, non-positive ratios or
    malformed floor tables — a typo'd spec must fail the gate loudly,
    not silently check nothing.
    """
    if isinstance(source, (str, Path)):
        try:
            payload = json.loads(Path(source).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"SLO spec {source}: unreadable: {exc}") from exc
    else:
        payload = dict(source)
    if not isinstance(payload, dict):
        raise ValueError("SLO spec must be a JSON object")

    spec: Dict[str, Any] = {}
    for key, value in payload.items():
        if key in _DOC_KEYS:
            continue
        if key in _RATIO_KEYS:
            try:
                ratio = float(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"SLO {key}: not a number: {value!r}") from exc
            if ratio <= 0:
                raise ValueError(f"SLO {key}: must be > 0, got {ratio}")
            spec[key] = ratio
        elif key in _MAPPING_KEYS:
            if not isinstance(value, dict):
                raise ValueError(f"SLO {key}: must be an object of floors")
            floors: Dict[str, float] = {}
            for name, floor in value.items():
                try:
                    floors[str(name)] = float(floor)
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"SLO {key}[{name}]: not a number: {floor!r}"
                    ) from exc
            spec[key] = floors
        else:
            raise ValueError(
                f"SLO spec: unknown key {key!r} "
                f"(known: {', '.join(_RATIO_KEYS + _MAPPING_KEYS)})"
            )
    return spec


# ----------------------------------------------------------------------
def _funnel_map(run: Mapping[str, Any]) -> Dict[str, int]:
    return {
        str(row["stage"]): int(row["count"])
        for row in run.get("funnel", [])
        if row.get("count") is not None
    }


def _gauge_map(metrics: List[Dict[str, Any]]) -> Dict[str, float]:
    """Unlabelled gauge values by name (the recall-floor surface)."""
    gauges: Dict[str, float] = {}
    for metric in metrics:
        if metric.get("kind") == "gauge" and not metric.get("labels"):
            gauges[str(metric["name"])] = float(metric.get("value", 0.0))
    return gauges


def check_regressions(
    store: Any,
    slo: Optional[Mapping[str, Any]] = None,
    baseline_id: Optional[int] = None,
    latest_id: Optional[int] = None,
) -> RegressionReport:
    """Check the latest history row of ``store`` against a baseline.

    ``baseline_id``/``latest_id`` select specific history rows; by
    default the first recorded run is the baseline and the most recent
    is the candidate.  Raises ``ValueError`` when the store holds fewer
    than two history rows (or an id does not exist) — the gate needs a
    comparison to be meaningful.
    """
    spec = dict(DEFAULT_SLO) if slo is None else dict(slo)
    runs = store.history_runs()
    if not runs:
        raise ValueError("store has no run history to check")
    by_id = {run["history_id"]: run for run in runs}

    def pick(history_id: Optional[int], default_index: int) -> Dict[str, Any]:
        if history_id is None:
            return runs[default_index]
        if history_id not in by_id:
            raise ValueError(
                f"history #{history_id} not found "
                f"(have {sorted(by_id)})"
            )
        return by_id[history_id]

    baseline = pick(baseline_id, 0)
    latest = pick(latest_id, -1)
    if baseline["history_id"] == latest["history_id"] and len(runs) < 2:
        raise ValueError(
            "store has a single history row; record a second run "
            "(or pass explicit --baseline/--latest) before gating"
        )

    report = RegressionReport(baseline=baseline, latest=latest)

    def ratio_check(check: str, key: str, b: Any, l: Any, unit: str) -> None:
        max_ratio = spec.get(key)
        if max_ratio is None or b is None or l is None or float(b) <= 0:
            return
        report.checks.append(
            f"{check}: {float(l):.6g}{unit} vs baseline "
            f"{float(b):.6g}{unit} (max ×{max_ratio:g})"
        )
        if float(l) > max_ratio * float(b):
            report.violations.append(
                Violation(
                    check,
                    f"{float(l):.6g}{unit} exceeds "
                    f"{max_ratio:g}× baseline ({float(b):.6g}{unit})",
                )
            )

    ratio_check(
        "wall_time", "wall_seconds_max_ratio",
        baseline.get("wall_seconds"), latest.get("wall_seconds"), "s",
    )
    ratio_check(
        "cpu_time", "cpu_seconds_max_ratio",
        baseline.get("cpu_seconds"), latest.get("cpu_seconds"), "s",
    )
    ratio_check(
        "peak_rss", "peak_rss_kb_max_ratio",
        baseline.get("peak_rss_kb"), latest.get("peak_rss_kb"), "kB",
    )

    funnel_ratio = spec.get("funnel_min_ratio")
    if funnel_ratio is not None:
        base_funnel = _funnel_map(baseline)
        latest_funnel = _funnel_map(latest)
        for stage, base_count in sorted(base_funnel.items()):
            if base_count <= 0:
                continue
            latest_count = latest_funnel.get(stage)
            report.checks.append(
                f"funnel[{stage}]: {latest_count} vs baseline "
                f"{base_count} (min ×{funnel_ratio:g})"
            )
            if latest_count is None:
                report.violations.append(
                    Violation(
                        f"funnel[{stage}]",
                        f"stage present in baseline but missing from latest",
                    )
                )
            elif latest_count < funnel_ratio * base_count:
                report.violations.append(
                    Violation(
                        f"funnel[{stage}]",
                        f"{latest_count} fell below {funnel_ratio:g}× "
                        f"baseline ({base_count})",
                    )
                )

    floors = spec.get("funnel_floors") or {}
    if floors:
        latest_funnel = _funnel_map(latest)
        for stage, floor in sorted(floors.items()):
            count = latest_funnel.get(stage)
            report.checks.append(f"funnel_floor[{stage}]: {count} >= {floor:g}")
            if count is None or count < floor:
                report.violations.append(
                    Violation(
                        f"funnel_floor[{stage}]",
                        f"count {count} below absolute floor {floor:g}",
                    )
                )

    metric_floors = spec.get("metric_floors") or {}
    if metric_floors:
        gauges = _gauge_map(store.history_metrics(latest["history_id"]))
        for name, floor in sorted(metric_floors.items()):
            value = gauges.get(name)
            report.checks.append(f"metric_floor[{name}]: {value} >= {floor:g}")
            if value is None or value < floor:
                report.violations.append(
                    Violation(
                        f"metric_floor[{name}]",
                        f"value {value} below absolute floor {floor:g}",
                    )
                )

    return report


# ----------------------------------------------------------------------
def diff_histories(
    store: Any,
    id_a: int,
    id_b: int,
    threshold: float = 0.10,
) -> List[Dict[str, Any]]:
    """Metric/funnel/resource deltas between two history rows.

    Returns rows ``{kind, name, a, b, delta, ratio, flagged}`` —
    ``flagged`` when the relative change exceeds ``threshold`` (or a
    value appears/disappears).  The CLI prints flagged rows first.
    """
    runs = {run["history_id"]: run for run in store.history_runs()}
    for history_id in (id_a, id_b):
        if history_id not in runs:
            raise ValueError(f"history #{history_id} not found")
    run_a, run_b = runs[id_a], runs[id_b]

    rows: List[Dict[str, Any]] = []

    def add(kind: str, name: str, a: Optional[float], b: Optional[float]) -> None:
        if a is None and b is None:
            return
        delta = None if a is None or b is None else b - a
        ratio = (
            None
            if a is None or b is None or a == 0
            else b / a
        )
        flagged = (
            a is None
            or b is None
            or (ratio is not None and abs(ratio - 1.0) > threshold)
            or (ratio is None and delta not in (None, 0))
        )
        rows.append(
            {
                "kind": kind, "name": name, "a": a, "b": b,
                "delta": delta, "ratio": ratio, "flagged": bool(flagged),
            }
        )

    for key, kind in (
        ("wall_seconds", "resource"),
        ("cpu_seconds", "resource"),
        ("peak_rss_kb", "resource"),
        ("n_quarantined", "resource"),
    ):
        add(kind, key, run_a.get(key), run_b.get(key))

    funnel_a, funnel_b = _funnel_map(run_a), _funnel_map(run_b)
    for stage in sorted(set(funnel_a) | set(funnel_b)):
        add("funnel", stage, funnel_a.get(stage), funnel_b.get(stage))

    gauges_a = _gauge_map(store.history_metrics(id_a))
    gauges_b = _gauge_map(store.history_metrics(id_b))
    for name in sorted(set(gauges_a) | set(gauges_b)):
        if name.startswith("funnel."):
            continue  # already covered by the funnel rows above
        add("metric", name, gauges_a.get(name), gauges_b.get(name))

    rows.sort(key=lambda r: (not r["flagged"], r["kind"], r["name"]))
    return rows
