"""Hierarchical span tracing for the measurement pipeline.

A *span* is one timed unit of work — a pipeline stage, one link fetch,
one batched vision kernel — with a name, a parent, wall-clock-free
monotonic start/end offsets (:func:`time.perf_counter`), a dictionary of
attributes (record counts, domains, byte totals, …) and a list of
point-in-time *events* (a retry attempt, a circuit breaker tripping, a
record entering quarantine).  Spans nest: the
:class:`~repro.core.pipeline.EwhoringPipeline` run is the root, each
:class:`~repro.core.stage_runner.StageRunner` stage is a child, and the
crawler / vision kernels hang their spans beneath the stage that invoked
them.

Two recorders implement the same surface:

* :class:`Tracer` — records everything, thread-safe, deterministic
  sequential span ids;
* :class:`NullTracer` — the zero-cost-when-disabled recorder: every
  method is a no-op and :meth:`NullTracer.span` hands back one shared
  do-nothing context manager, so instrumented hot paths cost a dict
  construction and an attribute call when tracing is off (gated < 3 %
  end-to-end by ``benchmarks/bench_o1_telemetry.py``).

Instrumented code never branches on "is tracing enabled": it holds a
recorder (``tracer or NULL_TRACER``) and calls it unconditionally.

Timing fields (``t_start``/``t_end``/``duration``) are the *only*
non-deterministic quantities a trace carries; span names, hierarchy,
attributes and event sequences are pure functions of the world seed (see
``tests/test_obs_pipeline.py``).
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
]


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """A point-in-time occurrence inside a span."""

    name: str
    #: Offset from the tracer's epoch, monotonic seconds.
    t: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "t": self.t, "attrs": dict(self.attributes)}


@dataclass(slots=True)
class Span:
    """One timed, attributed unit of work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    #: Offsets from the tracer's epoch (``time.perf_counter`` based).
    t_start: float
    t_end: Optional[float] = None
    status: str = "ok"  # "ok" | "error"
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    # -- recording API (shared with :class:`_NullSpan`) -----------------
    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def inc(self, key: str, n: int = 1) -> None:
        """Increment a numeric attribute (created at 0)."""
        self.attributes[key] = self.attributes.get(key, 0) + n

    def as_dict(self) -> dict:
        """JSON-ready representation (one trace-file line's payload)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attributes),
            "events": [e.as_dict() for e in self.events],
        }


class _SpanContext:
    """Context manager opening/closing one recorded span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """The recording tracer: hierarchical, thread-safe, deterministic ids.

    Span ids are sequential in *open* order; each thread keeps its own
    ancestry stack, so spans opened on worker threads parent correctly
    within that thread (a worker's first span is a root unless the
    caller opened one on the same thread).
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._finished: List[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child span of the current span (context manager).

        The managed value is the :class:`Span`; mutate it through
        :meth:`Span.set` / :meth:`Span.inc`.  An exception propagating
        through the block marks the span ``status="error"`` (and records
        the exception class under the ``error`` attribute) before
        re-raising.
        """
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=stack[-1].span_id if stack else None,
            t_start=self._now(),
            attributes=dict(attributes),
        )
        stack.append(span)
        return _SpanContext(self, span)

    @contextmanager
    def adopt(self, span: Optional[Span]) -> Iterator[None]:
        """Parent this thread's subsequent spans under ``span``.

        Worker threads have empty ancestry stacks, so their first span
        would become a root.  ``adopt`` pushes an *existing* span
        (typically one opened on the dispatching thread and still open
        there) onto this thread's stack without opening or closing it:
        spans and events recorded inside the block nest under it.
        ``adopt(None)`` is a no-op, so callers can pass
        ``tracer.current`` captured on the dispatching thread directly.
        """
        if span is None:
            yield
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield
        finally:
            # Pop up to and including the adopted span (tolerant of
            # mis-nesting, mirroring _close).
            while stack:
                if stack.pop() is span:
                    break

    def _close(self, span: Span) -> None:
        span.t_end = self._now()
        stack = self._stack()
        # Pop up to and including this span (tolerates a mis-nested
        # close rather than corrupting the ancestry of later spans).
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------
    def event(self, name: str, **attributes: Any) -> None:
        """Record a point event on the current span.

        Events fired outside any span are attached to a synthetic
        ``"(orphan)"`` root span when the trace is finalised.
        """
        stack = self._stack()
        evt = SpanEvent(name=name, t=self._now(), attributes=dict(attributes))
        if stack:
            stack[-1].events.append(evt)
        else:
            with self._lock:
                self._orphans().append(evt)

    def _orphans(self) -> List[SpanEvent]:
        orphans = getattr(self, "_orphan_events", None)
        if orphans is None:
            orphans = []
            self._orphan_events = orphans
        return orphans

    # ------------------------------------------------------------------
    def traced(self, name: Optional[str] = None, **attributes: Any) -> Callable:
        """Decorator form: wrap every call of ``fn`` in a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def spans(self) -> List[Span]:
        """Finished spans, ordered by start offset (then id).

        Orphan events (fired outside any span) surface as one synthetic
        ``"(orphan)"`` span at offset 0 so no recorded data is dropped.
        """
        with self._lock:
            spans = list(self._finished)
            orphans = list(getattr(self, "_orphan_events", ()))
        if orphans:
            spans.append(
                Span(
                    name="(orphan)",
                    span_id=0,
                    parent_id=None,
                    t_start=0.0,
                    t_end=0.0,
                    events=orphans,
                )
            )
        return sorted(spans, key=lambda s: (s.t_start, s.span_id))

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    @property
    def n_events(self) -> int:
        """Total events across finished spans (and orphans)."""
        with self._lock:
            n = sum(len(s.events) for s in self._finished)
            n += len(getattr(self, "_orphan_events", ()))
        return n


class _NullSpan:
    """Shared do-nothing span *and* context manager (see :data:`NULL_TRACER`)."""

    __slots__ = ()

    # context-manager surface
    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    # Span recording surface
    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def inc(self, key: str, n: int = 1) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled recorder: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, span: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def traced(self, name: Optional[str] = None, **attributes: Any) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    @property
    def current(self) -> None:
        return None

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0

    @property
    def n_events(self) -> int:
        return 0


#: Process-wide shared no-op recorder.  Instrumented code defaults to it
#: (``tracer = tracer or NULL_TRACER``) so tracing is an opt-in with no
#: conditional branches on the hot path.
NULL_TRACER = NullTracer()
