"""repro.store — the persistent incremental world (DESIGN.md §12).

An append-only, queryable SQLite store for the full funnel — the forum
corpus, crawl outcomes, image digests, quarantine ledgers, memoised
vision work — plus the watermark-based delta engine that makes
``repro run --store PATH --epoch N`` process only records newer than
the stored watermark while staying bit-identical to a cold run.

Public surface:

* :class:`RunStore` — the typed SQLite store (schema, batched writers,
  canonical indexed readers);
* :func:`run_incremental` / :class:`PersistSession` /
  :class:`IncrementalResult` — the delta-run engine;
* :class:`StoreError` / :class:`StoreCorruptionError` /
  :class:`StoreConfigError` — the typed failure taxonomy every store
  boundary raises (never bare ``sqlite3``/``json`` exceptions);
* :func:`verify_store` / :func:`repair_store` — the crash-recovery
  tooling behind ``repro store verify|repair`` (DESIGN.md §13).
"""

from .errors import StoreConfigError, StoreCorruptionError, StoreError
from .recover import (
    EXIT_CONFIG,
    EXIT_CORRUPT,
    EXIT_OK,
    RepairReport,
    VerifyReport,
    repair_store,
    verify_store,
)
from .sqlite import RunStore, config_fingerprint

#: The delta-run engine is imported lazily: ``repro.store.incremental``
#: pulls in the whole pipeline (``repro.web``), whose checkpoint module
#: depends back on :mod:`repro.store.errors` for its typed corruption
#: taxonomy — eager import here would be a cycle.
_LAZY = ("IncrementalResult", "PersistSession", "run_incremental")


def __getattr__(name: str):
    if name in _LAZY:
        from . import incremental

        return getattr(incremental, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EXIT_CONFIG",
    "EXIT_CORRUPT",
    "EXIT_OK",
    "IncrementalResult",
    "PersistSession",
    "RepairReport",
    "RunStore",
    "StoreConfigError",
    "StoreCorruptionError",
    "StoreError",
    "VerifyReport",
    "config_fingerprint",
    "repair_store",
    "run_incremental",
    "verify_store",
]
