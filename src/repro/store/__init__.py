"""repro.store — the persistent incremental world (DESIGN.md §12).

An append-only, queryable SQLite store for the full funnel — the forum
corpus, crawl outcomes, image digests, quarantine ledgers, memoised
vision work — plus the watermark-based delta engine that makes
``repro run --store PATH --epoch N`` process only records newer than
the stored watermark while staying bit-identical to a cold run.

Public surface:

* :class:`RunStore` — the typed SQLite store (schema, batched writers,
  canonical indexed readers);
* :func:`run_incremental` / :class:`PersistSession` /
  :class:`IncrementalResult` — the delta-run engine;
* :class:`StoreError` / :class:`StoreCorruptionError` /
  :class:`StoreConfigError` — the typed failure taxonomy every store
  boundary raises (never bare ``sqlite3``/``json`` exceptions).
"""

from .errors import StoreConfigError, StoreCorruptionError, StoreError
from .incremental import IncrementalResult, PersistSession, run_incremental
from .sqlite import RunStore, config_fingerprint

__all__ = [
    "IncrementalResult",
    "PersistSession",
    "RunStore",
    "StoreConfigError",
    "StoreCorruptionError",
    "StoreError",
    "config_fingerprint",
    "run_incremental",
]
