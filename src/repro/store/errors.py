"""Typed error taxonomy for the persistent store.

Pipeline code never sees a bare ``sqlite3.Error`` or ``json`` decode
exception from store internals: every failure mode crossing the store
boundary is wrapped in one of these classes, so callers can distinguish
"the file is damaged" from "the file disagrees with the run you asked
for" without string matching.

This module deliberately imports nothing from :mod:`repro` so both the
SQLite store and the JSONL :mod:`repro.forum.store` can depend on it
without cycles.
"""

from __future__ import annotations

__all__ = ["StoreError", "StoreCorruptionError", "StoreConfigError"]


class StoreError(Exception):
    """Base class for every persistent-store failure."""


class StoreCorruptionError(StoreError):
    """The on-disk artifact is damaged or not a store at all.

    Raised for truncated/garbage SQLite files, malformed JSONL lines,
    missing schema tables and records that fail model validation on
    load.  A store that raises this has loaded *nothing* into the run —
    corruption is detected before any record crosses into a pipeline.
    """


class StoreConfigError(StoreError):
    """The store is intact but incompatible with the requested run.

    Raised when the persisted world configuration does not match the
    one being run (different seed/scale/profiles), when a persisted
    profile name no longer validates, or when a run asks for an epoch
    behind the stored watermark (the store is append-only).
    """
