"""Watermark-based delta runs over a persistent :class:`RunStore`.

:func:`run_incremental` is the engine behind ``repro run --store PATH
--epoch N``: it builds the world's observation epoch *N*, appends only
the records newer than the store's watermark (epochs nest, so the append
is a pure delta), reloads the corpus through the store's canonical
cursors, and executes the full pipeline with every persisted memo warm —
the digest-keyed :class:`~repro.vision.cache.VisionCache`, the
:class:`~repro.media.validate.ValidationMemo`, the per-stage crawl
:class:`~repro.web.crawler.IngestMemo` and the world perceptual-hash
memo.

The headline invariant (DESIGN.md §12, property-tested): an incremental
run over epochs ``1..N`` is **bit-identical** — crawl digest, quarantine
ledger, measurement view — to a cold run over the union.  Memos only
skip recomputation of pure per-record functions; nothing they return can
differ from what a cold run would compute.

Crash consistency (DESIGN.md §13): the whole epoch is one
:meth:`RunStore.transaction` — dying at any instant (the kill-point
chaos harness injects ``SIGKILL`` mid-epoch and on the commit edge)
leaves the store at the previous watermark, and re-running the killed
epoch converges bit-identically to a run that was never interrupted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Union

from ..chaos.sites import kill_point
from ..media.validate import ValidationMemo
from ..obs import RunTelemetry
from ..synth.world import WorldConfig, build_world
from ..vision.cache import VisionCache
from ..web.crawler import IngestMemo
from .errors import StoreConfigError
from .sqlite import RunStore

__all__ = ["IncrementalResult", "PersistSession", "run_incremental"]

#: Pipeline stages that own a crawl ingest memo in the store.
_INGEST_STAGES = ("url_crawl", "earnings")


@dataclass
class PersistSession:
    """The warm-memo bundle a store lends to one pipeline run.

    Ducked into :meth:`EwhoringPipeline.run` as ``persist``; every memo
    is consulted-and-filled during the run and written back afterwards.
    """

    cache: VisionCache = field(default_factory=VisionCache)
    validation_memo: ValidationMemo = field(default_factory=ValidationMemo)
    ingest_memos: Dict[str, IngestMemo] = field(default_factory=dict)
    #: Entry counts as loaded from the store; memo entries are pure and
    #: immutable (they only accumulate), so an unchanged count at save
    #: time means the store already holds everything and the write is
    #: skipped — a steady-state delta run re-persists almost nothing.
    _loaded_sizes: Dict[str, int] = field(default_factory=dict)

    def ingest_memo(self, stage: str) -> IngestMemo:
        return self.ingest_memos.setdefault(stage, IngestMemo())

    def _sizes(self) -> Dict[str, int]:
        sizes = {
            "vision_cache": sum(len(entry) for _, entry in self.cache.items()),
            "validation_memo": len(self.validation_memo.items()),
        }
        for stage, memo in self.ingest_memos.items():
            sizes[f"ingest:{stage}"] = len(memo.items())
        return sizes

    @classmethod
    def load(cls, store: RunStore) -> "PersistSession":
        session = cls()
        store.load_vision_cache(session.cache)
        store.load_validation_memo(session.validation_memo)
        for stage in _INGEST_STAGES:
            store.load_ingest_memo(stage, session.ingest_memo(stage))
        session._loaded_sizes = session._sizes()
        return session

    def save(self, store: RunStore) -> None:
        sizes = self._sizes()
        loaded = self._loaded_sizes
        if sizes["vision_cache"] != loaded.get("vision_cache"):
            store.save_vision_cache(self.cache)
        if sizes["validation_memo"] != loaded.get("validation_memo"):
            store.save_validation_memo(self.validation_memo)
        for stage, memo in sorted(self.ingest_memos.items()):
            if sizes[f"ingest:{stage}"] != loaded.get(f"ingest:{stage}"):
                store.save_ingest_memo(stage, memo)


@dataclass
class IncrementalResult:
    """What one store-backed run produced and recorded."""

    report: object  # PipelineReport
    run_id: int
    epoch: int
    epoch_total: int
    #: Dataset rows this run appended beyond the previous watermark.
    rows_added: int
    #: Post-append per-table row counts.
    row_counts: Dict[str, int]
    store_size_bytes: int
    #: The run's bit-identity contract surface (see
    #: :meth:`~repro.obs.RunTelemetry.measurement_view`).
    measurement: dict
    #: The telemetry-history row recorded for this run
    #: (``repro obs runs``; DESIGN.md §14).
    history_id: Optional[int] = None

    @property
    def crawl_digest(self) -> str:
        crawl = getattr(self.report, "crawl", None)
        return crawl.digest() if crawl is not None else ""


def run_incremental(
    store: Union[str, Path, RunStore],
    *,
    epoch: Optional[int] = None,
    config: Optional[WorldConfig] = None,
    annotate_n: int = 1000,
    strict: bool = True,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    telemetry: Optional[RunTelemetry] = None,
    **config_overrides,
) -> IncrementalResult:
    """One watermark-delta (or cold) pipeline run against ``store``.

    ``epoch`` selects the observation epoch (defaults to the config's
    ``epoch``, else ``epoch_total`` — the whole timeline).  Running
    epochs in increasing order makes each run a delta: the store refuses
    to rewind (:class:`StoreConfigError`), refuses a config that differs
    from the one it is bound to, and re-validates the *persisted* config
    before trusting it (a tampered profile string fails eagerly).

    The world is still generated deterministically each run (pure
    hash-RNG — generation is cheap and keeps the ground-truth oracles
    whole); what the store eliminates is the *expensive* work: image
    hashing at build, and render/validate/digest/score work in the
    pipeline, all memoised by content digest.
    """
    if config is None:
        config = WorldConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a WorldConfig or keyword overrides, not both")

    effective_epoch = epoch if epoch is not None else config.epoch
    if effective_epoch is None:
        effective_epoch = config.epoch_total
    cfg = replace(config, epoch=effective_epoch)

    tele = telemetry if telemetry is not None else RunTelemetry()

    own_store = not isinstance(store, RunStore)
    run_store = RunStore(store) if own_store else store
    wall_start = time.perf_counter()
    try:
        run_store.bind_config(cfg)
        watermark = run_store.watermark("dataset")
        if watermark is not None and effective_epoch < watermark["epoch"]:
            raise StoreConfigError(
                f"{run_store.path}: dataset watermark is at epoch "
                f"{watermark['epoch']}; the store is append-only and cannot "
                f"rewind to epoch {effective_epoch}"
            )

        # ---- the atomic epoch unit (DESIGN.md §13) -------------------
        # Every write of this epoch — world hashes, corpus delta,
        # watermarks, memos, run record, measurement blob — commits in
        # ONE SQLite transaction at block exit.  A crash (or SIGKILL:
        # the chaos harness injects one at every site below) at any
        # instant before the commit edge rolls the store back to the
        # previous watermark; a partial epoch is never visible.
        with run_store.transaction(), tele.tracer.span("store.epoch"):
            with tele.tracer.span("store.read", what="world_hashes"):
                world_hashes = run_store.load_world_hashes()
            n_hashes_loaded = len(world_hashes)
            world = build_world(cfg, world_hashes=world_hashes)
            if len(world_hashes) != n_hashes_loaded:
                with tele.tracer.span("store.write", what="world_hashes"):
                    run_store.save_world_hashes(world_hashes)

            with tele.tracer.span("store.write", what="dataset_delta") as span:
                rows_added = run_store.append_dataset(
                    world.dataset,
                    since=watermark["cutoff"] if watermark is not None else None,
                )
                span.set(rows_added=rows_added)
            post_dates = [p.created_at for p in world.dataset.posts()]
            cutoff_iso = max(post_dates).isoformat() if post_dates else None
            run_store.set_watermark("dataset", effective_epoch, cutoff_iso)
            kill_point("store.dataset.appended")

            # ---- canonical re-read: stage inputs come from store
            # cursors.  Both cold and delta runs consume the corpus
            # through the same ordered cursors, so equal record *sets*
            # give equal stage inputs — in-memory generation order
            # cannot leak into the equivalence contract.  (Pending
            # writes are visible mid-transaction on this connection.)
            with tele.tracer.span("store.read", what="dataset"):
                world.dataset = run_store.read_dataset()
            counts = run_store.row_counts()
            for table, count in sorted(counts.items()):
                tele.metrics.gauge(f"store.rows.{table}").set(count)
            tele.metrics.gauge("store.rows_added").set(rows_added)

            # ---- run the pipeline with every persisted memo warm -----
            with tele.tracer.span("store.read", what="memos"):
                session = PersistSession.load(run_store)
            from .. import run_pipeline

            report = run_pipeline(
                world,
                annotate_n=annotate_n,
                strict=strict,
                telemetry=tele,
                workers=workers,
                executor=executor,
                vision_cache=session.cache,
                persist=session,
            )

            # ---- fold results back into the store --------------------
            crawl = report.crawl
            quarantine_records = (
                [r.to_dict() for r in report.quarantine.records]
                if report.quarantine is not None
                else []
            )
            measurement = tele.measurement_view()
            with tele.tracer.span("store.write", what="run_results"):
                session.save(run_store)
                kill_point("store.memos.saved")
                if crawl is not None:
                    run_store.record_images(effective_epoch, crawl.all_images)
                run_id = run_store.record_run(
                    effective_epoch,
                    crawl.digest() if crawl is not None else "",
                    quarantine_records,
                    tele.funnel(),
                )
                kill_point("store.run.recorded")
                run_store.save_blob(
                    "measurement", f"epoch_{effective_epoch}", measurement
                )
                run_store.set_watermark(
                    "pipeline", effective_epoch, cutoff_iso, run_id
                )

            # ---- telemetry history (DESIGN.md §14) -------------------
            # Condensed span/metric/funnel/profile history rides in the
            # SAME transaction: a crash inside this insert (the kill
            # matrix fires store.history.recorded) rolls the whole
            # epoch back to the previous watermark — run history can
            # never exist for an epoch the store does not hold.
            from ..obs.history import record_history, summarize_run

            effective_workers = (
                workers if workers is not None else cfg.crawl_workers
            )
            summary = summarize_run(
                tele,
                seed=cfg.seed,
                epoch=effective_epoch,
                wall_seconds=time.perf_counter() - wall_start,
                label=f"epoch {effective_epoch}/{cfg.epoch_total}",
                executor=(
                    executor if executor is not None else cfg.crawl_executor
                ),
                workers=effective_workers,
            )
            history_id = record_history(run_store, summary, run_id=run_id)
            kill_point("store.history.recorded")
        size = run_store.size_bytes()
        tele.metrics.gauge("store.size_bytes").set(size)

        return IncrementalResult(
            report=report,
            run_id=run_id,
            epoch=effective_epoch,
            epoch_total=cfg.epoch_total,
            rows_added=rows_added,
            row_counts=counts,
            store_size_bytes=size,
            measurement=measurement,
            history_id=history_id,
        )
    finally:
        if own_store:
            run_store.close()
