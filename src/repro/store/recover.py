"""Store recovery tooling: ``repro store verify`` and ``repro store repair``.

``verify`` is the post-crash (and pre-flight) health probe: it opens the
store through the normal typed boundary — the eager ``quick_check``
integrity probe, schema-version check, persisted-config re-validation —
then cross-checks the crash-consistency invariants the atomic epoch
commit guarantees:

* the pipeline watermark never runs ahead of the dataset watermark;
* the pipeline watermark's ``run_id`` exists in the run history;
* every quarantine row belongs to a recorded run;
* every recorded epoch's measurement blob is present and decodes;
* (deep mode) the persisted corpus re-validates through the dataset
  integrity checks.

``repair`` salvages what the commit discipline preserved.  It is
deliberately conservative: drop a torn WAL (losing only the
never-committed tail), or — when the main file itself is damaged —
copy every readable committed row into a rebuilt store, trim the
watermarks back to the newest *consistent* run, and atomically swap it
into place only if the result verifies.  When the committed prefix
cannot be recovered (schema/meta unreadable, corpus fails integrity),
it **refuses** with a typed error rather than half-heal.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .errors import StoreConfigError, StoreCorruptionError
from .sqlite import RunStore

__all__ = [
    "EXIT_CONFIG",
    "EXIT_CORRUPT",
    "EXIT_OK",
    "RepairReport",
    "VerifyReport",
    "repair_store",
    "verify_store",
]

#: Typed process exit codes for the ``repro store`` subcommands.
EXIT_OK = 0
EXIT_CORRUPT = 3
EXIT_CONFIG = 4

#: Tables copied during salvage, parents first (owner rows before
#: dependents so a partially readable store keeps referential sense).
_SALVAGE_TABLES = (
    "meta",
    "forums",
    "boards",
    "actors",
    "threads",
    "posts",
    "watermarks",
    "runs",
    "quarantine",
    "images",
    "vision_cache",
    "validation_memo",
    "ingest_memo",
    "world_hashes",
    "blobs",
    "history_runs",
    "history_spans",
    "history_metrics",
    "history_funnel",
    "profile_samples",
    "bench_results",
)

#: Sidecar suffixes of a SQLite database in WAL mode.
_SIDECARS = ("-wal", "-shm")


@dataclass
class VerifyReport:
    """What ``repro store verify`` found in a healthy store."""

    path: Path
    schema_version: int
    config_fingerprint: Optional[str]
    watermarks: Dict[str, Dict[str, Any]]
    row_counts: Dict[str, int]
    n_runs: int
    n_quarantine: int
    size_bytes: int
    deep: bool

    def summary_lines(self) -> List[str]:
        lines = [
            f"store:            {self.path}",
            f"integrity:        ok ({'deep' if self.deep else 'shallow'} probe)",
            f"schema version:   {self.schema_version}",
        ]
        if self.config_fingerprint is not None:
            lines.append("config:           bound, re-validates")
        else:
            lines.append("config:           unbound (no run recorded yet)")
        for stage in sorted(self.watermarks):
            mark = self.watermarks[stage]
            lines.append(
                f"watermark[{stage}]: epoch {mark['epoch']}"
                + (f" run #{mark['run_id']}" if mark.get("run_id") else "")
            )
        if not self.watermarks:
            lines.append("watermarks:       none (empty store)")
        rows = ", ".join(f"{t}={n}" for t, n in sorted(self.row_counts.items()))
        lines.append(f"corpus rows:      {rows}")
        lines.append(
            f"runs:             {self.n_runs} recorded, "
            f"{self.n_quarantine} quarantine rows"
        )
        lines.append(f"size:             {self.size_bytes / (1024 * 1024):.2f} MiB")
        return lines


@dataclass
class RepairReport:
    """What ``repro store repair`` did (or found nothing to do)."""

    path: Path
    actions: List[str] = field(default_factory=list)
    skipped_rows: int = 0
    verify: Optional[VerifyReport] = None

    @property
    def repaired(self) -> bool:
        return bool(self.actions)

    def summary_lines(self) -> List[str]:
        lines = [f"store:            {self.path}"]
        if not self.actions:
            lines.append("repair:           nothing to do (store verifies clean)")
        else:
            for action in self.actions:
                lines.append(f"repair:           {action}")
            if self.skipped_rows:
                lines.append(
                    f"repair:           {self.skipped_rows} unreadable rows dropped"
                )
        if self.verify is not None:
            lines.append("post-repair verify:")
            lines.extend("  " + line for line in self.verify.summary_lines())
        return lines


def verify_store(path: Union[str, Path], deep: bool = True) -> VerifyReport:
    """Probe ``path`` and cross-check its crash-consistency invariants.

    Returns a :class:`VerifyReport` for a healthy store; raises
    :class:`StoreCorruptionError` (damaged) or :class:`StoreConfigError`
    (intact but inconsistent with its own bookkeeping) otherwise —
    mapped by the CLI to exit codes :data:`EXIT_CORRUPT` /
    :data:`EXIT_CONFIG`.
    """
    path = Path(path)
    if not path.exists():
        raise StoreCorruptionError(f"{path}: no such store")
    with RunStore(path) as store:
        row = store._execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        schema_version = int(row[0]) if row is not None else -1

        fingerprint = None
        row = store._execute(
            "SELECT value FROM meta WHERE key='config_fingerprint'"
        ).fetchone()
        if row is not None:
            fingerprint = row[0]
            _revalidate_fingerprint(path, fingerprint)

        watermarks: Dict[str, Dict[str, Any]] = {}
        for stage in ("dataset", "pipeline"):
            mark = store.watermark(stage)
            if mark is not None:
                watermarks[stage] = mark

        runs = store.runs()
        run_ids = {run["run_id"] for run in runs}

        problems: List[str] = []
        dataset_mark = watermarks.get("dataset")
        pipeline_mark = watermarks.get("pipeline")
        if pipeline_mark is not None:
            if dataset_mark is None:
                problems.append(
                    "pipeline watermark present but dataset watermark missing"
                )
            elif pipeline_mark["epoch"] > dataset_mark["epoch"]:
                problems.append(
                    f"pipeline watermark (epoch {pipeline_mark['epoch']}) runs "
                    f"ahead of dataset watermark (epoch {dataset_mark['epoch']})"
                )
            if pipeline_mark.get("run_id") not in run_ids:
                problems.append(
                    f"pipeline watermark references run "
                    f"#{pipeline_mark.get('run_id')} absent from run history"
                )

        n_quarantine = int(
            store._execute("SELECT COUNT(*) FROM quarantine").fetchone()[0]
        )
        orphans = int(
            store._execute(
                "SELECT COUNT(*) FROM quarantine WHERE run_id NOT IN "
                "(SELECT run_id FROM runs)"
            ).fetchone()[0]
        )
        if orphans:
            problems.append(f"{orphans} quarantine rows belong to no recorded run")

        for run in runs:
            if store.load_blob("measurement", f"epoch_{run['epoch']}") is None:
                problems.append(
                    f"run #{run['run_id']} (epoch {run['epoch']}) has no "
                    f"measurement blob"
                )

        if problems:
            raise StoreCorruptionError(
                f"{path}: store is inconsistent — a partial epoch leaked "
                f"past the commit discipline:\n  - " + "\n  - ".join(problems)
            )

        if deep:
            # Full corpus re-validation through the canonical cursors
            # (StoreCorruptionError on any integrity violation).
            store.read_dataset()

        return VerifyReport(
            path=path,
            schema_version=schema_version,
            config_fingerprint=fingerprint,
            watermarks=watermarks,
            row_counts=store.row_counts(),
            n_runs=len(runs),
            n_quarantine=n_quarantine,
            size_bytes=store.size_bytes(),
            deep=deep,
        )


def _revalidate_fingerprint(path: Path, fingerprint: str) -> None:
    """Re-validate a persisted config fingerprint (typed on failure)."""
    import json

    from ..synth.world import WorldConfig

    try:
        WorldConfig(**json.loads(fingerprint))
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        raise StoreCorruptionError(
            f"{path}: persisted config does not re-validate: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def repair_store(
    path: Union[str, Path], deep: bool = True, backup: bool = True
) -> RepairReport:
    """Salvage the committed prefix of a damaged store at ``path``.

    Escalates through the conservative ladder described in the module
    docstring; every successful repair ends with a full
    :func:`verify_store` pass and the report of what was done.  Raises
    :class:`StoreCorruptionError` — leaving the original untouched
    (modulo an optional ``.corrupt`` backup) — when the committed
    prefix is unrecoverable.
    """
    path = Path(path)
    report = RepairReport(path=path)

    try:
        report.verify = verify_store(path, deep=deep)
        return report
    except (StoreCorruptionError, StoreConfigError):
        pass

    # -- rung 1: drop a torn WAL (only ever loses uncommitted frames) --
    sidecars = [Path(str(path) + s) for s in _SIDECARS]
    if any(side.exists() for side in sidecars):
        for side in sidecars:
            if side.exists():
                dropped = side.with_name(side.name + ".dropped")
                os.replace(side, dropped)
                report.actions.append(f"dropped torn WAL sidecar {side.name}")
        try:
            report.verify = verify_store(path, deep=deep)
            return report
        except (StoreCorruptionError, StoreConfigError):
            pass

    # -- rung 2: rebuild from every readable committed row -------------
    rebuilt = path.with_name(path.name + ".repaired")
    for stale in (rebuilt, *(Path(str(rebuilt) + s) for s in _SIDECARS)):
        if stale.exists():
            stale.unlink()
    skipped = _salvage_copy(path, rebuilt)
    report.skipped_rows += skipped
    report.actions.append(
        f"rebuilt store from readable committed rows"
        + (f" ({skipped} rows unreadable)" if skipped else "")
    )
    _trim_to_consistent(rebuilt, report)

    try:
        report.verify = verify_store(rebuilt, deep=deep)
    except (StoreCorruptionError, StoreConfigError) as exc:
        rebuilt.unlink(missing_ok=True)
        raise StoreCorruptionError(
            f"{path}: committed prefix is unrecoverable; refusing to "
            f"repair ({exc})"
        ) from exc

    if backup:
        os.replace(path, path.with_name(path.name + ".corrupt"))
        report.actions.append(f"backed up damaged file to {path.name}.corrupt")
    for side in sidecars:
        side.unlink(missing_ok=True)
    os.replace(rebuilt, path)
    report.actions.append("swapped rebuilt store into place")
    report.verify = verify_store(path, deep=deep)
    return report


def _salvage_copy(source: Path, target: Path) -> int:
    """Copy every readable row of ``source`` into a fresh store.

    Row-by-row with per-row error absorption, so a malformed page loses
    only the rows that lived on it.  Raises
    :class:`StoreCorruptionError` when the schema/meta backbone cannot
    be read at all — there is no committed prefix to save.
    """
    try:
        raw = sqlite3.connect(str(source))
    except sqlite3.Error as exc:  # pragma: no cover - connect rarely fails
        raise StoreCorruptionError(f"{source}: cannot open for salvage: {exc}") from exc
    try:
        try:
            meta_rows = raw.execute("SELECT key, value FROM meta").fetchall()
            if not any(key == "schema_version" for key, _ in meta_rows):
                raise StoreCorruptionError(
                    f"{source}: meta table has no schema_version; "
                    f"committed prefix unrecoverable"
                )
        except sqlite3.Error as exc:
            raise StoreCorruptionError(
                f"{source}: meta table unreadable; committed prefix "
                f"unrecoverable: {exc}"
            ) from exc

        store = RunStore(target)
        skipped = 0
        try:
            with store.transaction():
                for table in _SALVAGE_TABLES:
                    skipped += _salvage_table(raw, store, table)
        finally:
            store.close()
        return skipped
    finally:
        raw.close()


def _salvage_table(raw: sqlite3.Connection, store: RunStore, table: str) -> int:
    """Copy one table's readable rows; returns how many were lost."""
    try:
        cursor = raw.execute(f"SELECT * FROM {table}")
        width = len(cursor.description)
    except sqlite3.Error:
        # The whole table is unreadable; its rows are all lost.  meta
        # readability was asserted up front, so this only drops
        # dependent data the verify pass will judge.
        try:
            return int(raw.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0])
        except sqlite3.Error:
            return 0
    placeholders = ", ".join("?" * width)
    sql = f"INSERT OR REPLACE INTO {table} VALUES ({placeholders})"
    skipped = 0
    while True:
        try:
            row = cursor.fetchone()
        except sqlite3.Error:
            # A malformed page poisons the cursor; the rest of this
            # table's scan is lost (resuming the same cursor would spin
            # on the same error).  The verify pass judges the damage.
            return skipped + 1
        if row is None:
            return skipped
        store._execute(sql, tuple(row))


def _trim_to_consistent(path: Path, report: RepairReport) -> None:
    """Roll the rebuilt store's bookkeeping back to its newest
    consistent run (the committed prefix the atomic epoch commits
    guarantee), dropping orphaned quarantine rows and dangling
    watermarks instead of letting verify refuse the whole salvage."""
    store = RunStore(path)
    try:
        with store.transaction():
            store._execute(
                "DELETE FROM quarantine WHERE run_id NOT IN "
                "(SELECT run_id FROM runs)"
            )
            # History detail rows whose owning summary row was lost are
            # unreferenceable; drop them so the salvage stays coherent.
            for detail in (
                "history_spans", "history_metrics",
                "history_funnel", "profile_samples",
            ):
                store._execute(
                    f"DELETE FROM {detail} WHERE history_id NOT IN "
                    f"(SELECT history_id FROM history_runs)"
                )
            mark = store.watermark("pipeline")
            if mark is not None:
                runs = store.runs()
                run_ids = {run["run_id"] for run in runs}
                if mark.get("run_id") not in run_ids:
                    if runs:
                        last = runs[-1]
                        store._execute(
                            "UPDATE watermarks SET epoch=?, run_id=? "
                            "WHERE stage='pipeline'",
                            (last["epoch"], last["run_id"]),
                        )
                        report.actions.append(
                            f"rolled pipeline watermark back to run "
                            f"#{last['run_id']} (epoch {last['epoch']})"
                        )
                    else:
                        store._execute(
                            "DELETE FROM watermarks WHERE stage='pipeline'"
                        )
                        report.actions.append(
                            "dropped pipeline watermark (no runs survive)"
                        )
    finally:
        store.close()
