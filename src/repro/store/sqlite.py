"""The append-only SQLite run store behind ``repro run --store``.

One :class:`RunStore` file persists the full funnel across runs:

* the forum corpus (typed tables generalising the JSONL
  :mod:`repro.forum.store`, with the indexes the store cursors read);
* per-stage watermarks — the observation epoch (and its post-date
  cutoff) up to which the corpus has been generated and measured;
* the warm-path memos that make delta runs cheap: the digest-keyed
  :class:`~repro.vision.cache.VisionCache`, the per-payload crawl
  :class:`~repro.web.crawler.IngestMemo`, the
  :class:`~repro.media.validate.ValidationMemo`, the world perceptual-
  hash memo, and per-stage :class:`~repro.web.checkpoint.CrawlCheckpoint`
  snapshots;
* run history — one row per pipeline run with its digest, funnel and
  quarantine ledger, plus persisted longitudinal aggregates as JSON
  blobs.

Every SQLite failure crossing this boundary is wrapped in the typed
taxonomy of :mod:`repro.store.errors`; a damaged file raises
:class:`StoreCorruptionError` at open (integrity is probed eagerly) and
never half-loads into a run.

Writes are batched (``executemany`` inside one transaction per logical
save) and dataset appends are idempotent ``INSERT OR IGNORE`` — the
nested-epoch construction of :func:`repro.synth.world.epoch_cutoff`
guarantees each epoch's visible records are a superset of the last, so
re-appending is a no-op and the store is append-only by construction.

Crash consistency (DESIGN.md §13): an incremental run wraps *all* of an
epoch's writes — corpus delta, watermarks, memos, run record,
measurement blob — in one :meth:`RunStore.transaction`.  Inside the
block every :meth:`commit` defers to the single ``COMMIT`` issued at
exit, so a process dying at any instant (the chaos harness injects
``SIGKILL`` on the commit edge itself) leaves the store exactly at the
previous watermark; a partial epoch is never visible to a reader.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import asdict
from datetime import datetime
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..chaos.sites import kill_point
from ..forum.dataset import ForumDataset
from ..forum.models import Actor, Board, Forum, Post, Thread
from .errors import StoreConfigError, StoreCorruptionError, StoreError

__all__ = ["RunStore", "config_fingerprint"]

_SCHEMA_VERSION = 1

#: WorldConfig fields excluded from the identity fingerprint: the epoch
#: is the watermark axis (it *varies* across runs of one store), and the
#: worker count and executor backend are pure throughput knobs that
#: provably cannot change any measurement (the PR 5 / PR 10 bit-identity
#: invariant), so thread and process runs may share one store.
_FINGERPRINT_EXCLUDED = ("epoch", "crawl_workers", "crawl_executor")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS forums (
    forum_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    has_ewhoring_board INTEGER NOT NULL,
    bans_ewhoring INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS boards (
    board_id INTEGER PRIMARY KEY,
    forum_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    category TEXT,
    is_ewhoring_board INTEGER NOT NULL,
    is_currency_exchange INTEGER NOT NULL,
    is_bragging_board INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS actors (
    actor_id INTEGER PRIMARY KEY,
    forum_id INTEGER NOT NULL,
    username TEXT NOT NULL,
    registered_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS threads (
    thread_id INTEGER PRIMARY KEY,
    board_id INTEGER NOT NULL,
    forum_id INTEGER NOT NULL,
    author_id INTEGER NOT NULL,
    heading TEXT NOT NULL,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS posts (
    post_id INTEGER PRIMARY KEY,
    thread_id INTEGER NOT NULL,
    author_id INTEGER NOT NULL,
    created_at TEXT NOT NULL,
    content TEXT NOT NULL,
    position INTEGER NOT NULL,
    quoted_post_id INTEGER
);
CREATE INDEX IF NOT EXISTS idx_boards_forum ON boards (forum_id);
CREATE INDEX IF NOT EXISTS idx_threads_board ON threads (board_id);
CREATE INDEX IF NOT EXISTS idx_threads_created ON threads (created_at);
CREATE INDEX IF NOT EXISTS idx_posts_thread ON posts (thread_id, position);
CREATE INDEX IF NOT EXISTS idx_posts_author ON posts (author_id);
CREATE INDEX IF NOT EXISTS idx_posts_created ON posts (created_at);
CREATE TABLE IF NOT EXISTS watermarks (
    stage TEXT PRIMARY KEY,
    epoch INTEGER NOT NULL,
    cutoff TEXT,
    run_id INTEGER
);
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    epoch INTEGER NOT NULL,
    crawl_digest TEXT NOT NULL,
    n_quarantined INTEGER NOT NULL,
    funnel TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    run_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    stage TEXT NOT NULL,
    ref TEXT NOT NULL,
    error_type TEXT NOT NULL,
    message TEXT NOT NULL,
    context TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS images (
    digest TEXT PRIMARY KEY,
    first_epoch INTEGER NOT NULL,
    link_kind TEXT
);
CREATE TABLE IF NOT EXISTS vision_cache (
    digest TEXT NOT NULL,
    field TEXT NOT NULL,
    value TEXT NOT NULL,
    PRIMARY KEY (digest, field)
);
CREATE TABLE IF NOT EXISTS validation_memo (
    digest TEXT PRIMARY KEY,
    ok INTEGER NOT NULL,
    error_type TEXT,
    message TEXT
);
CREATE TABLE IF NOT EXISTS ingest_memo (
    stage TEXT NOT NULL,
    url TEXT NOT NULL,
    pack_id INTEGER NOT NULL,
    member_index INTEGER NOT NULL,
    ok INTEGER NOT NULL,
    digest TEXT,
    error_type TEXT,
    message TEXT,
    PRIMARY KEY (stage, url, pack_id, member_index)
);
CREATE TABLE IF NOT EXISTS world_hashes (
    image_id INTEGER PRIMARY KEY,
    hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS blobs (
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (kind, key)
);
CREATE TABLE IF NOT EXISTS history_runs (
    history_id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER,
    source TEXT NOT NULL,
    label TEXT,
    created_unix REAL NOT NULL,
    seed INTEGER,
    epoch INTEGER,
    wall_seconds REAL,
    cpu_seconds REAL,
    peak_rss_kb INTEGER,
    n_spans INTEGER NOT NULL,
    n_events INTEGER NOT NULL,
    n_records INTEGER,
    n_quarantined INTEGER,
    profiled INTEGER NOT NULL,
    executor TEXT,
    workers INTEGER,
    cpu_count INTEGER
);
CREATE TABLE IF NOT EXISTS history_spans (
    history_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    count INTEGER NOT NULL,
    total_seconds REAL NOT NULL,
    self_seconds REAL NOT NULL,
    max_seconds REAL NOT NULL,
    errors INTEGER NOT NULL,
    cpu_seconds REAL,
    rss_peak_kb INTEGER,
    alloc_kb REAL,
    PRIMARY KEY (history_id, name)
);
CREATE TABLE IF NOT EXISTS history_metrics (
    history_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    labels TEXT NOT NULL,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (history_id, name, labels)
);
CREATE TABLE IF NOT EXISTS history_funnel (
    history_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    stage TEXT NOT NULL,
    count INTEGER,
    PRIMARY KEY (history_id, seq)
);
CREATE TABLE IF NOT EXISTS profile_samples (
    history_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    t REAL NOT NULL,
    rss_kb REAL NOT NULL,
    cpu_seconds REAL NOT NULL,
    PRIMARY KEY (history_id, seq)
);
CREATE TABLE IF NOT EXISTS bench_results (
    name TEXT NOT NULL,
    recorded_unix REAL NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (name, recorded_unix)
);
"""

#: ``pack_id``/``member_index`` are part of the ingest-memo primary key,
#: so NULL (preview links) is stored as this sentinel.
_NULL_SENTINEL = -1


def config_fingerprint(config) -> str:
    """Canonical JSON identity of a world config, minus the epoch axis.

    Two runs share a store iff their fingerprints match: same seed,
    scale, fault/payload/drift profiles and rates.  The observation
    ``epoch`` is deliberately excluded (it is the watermark, not the
    identity) and so is ``crawl_workers`` (bit-identical by PR 5).
    """
    payload = asdict(config)
    for excluded in _FINGERPRINT_EXCLUDED:
        payload.pop(excluded, None)
    return json.dumps(payload, sort_keys=True)


def _iso(value: datetime) -> str:
    return value.isoformat()


def _from_iso(value: str) -> datetime:
    return datetime.fromisoformat(value)


class RunStore:
    """One SQLite-backed persistent store for incremental pipeline runs."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._txn_depth = 0
        try:
            self._conn = sqlite3.connect(str(self.path))
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Probe integrity eagerly: a truncated or garbage file must
            # fail here, typed, before anything is read out of it.
            # quick_check catches malformed pages and truncation like the
            # full check but skips index-order scans, keeping the probe
            # O(pages) cheap on every open of a grown store.
            probe = self._conn.execute("PRAGMA quick_check").fetchone()
            if probe is None or probe[0] != "ok":
                raise StoreCorruptionError(
                    f"{self.path}: integrity check failed: {probe and probe[0]}"
                )
            self._conn.executescript(_SCHEMA)
            self._migrate_meta()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreCorruptionError(
                f"{self.path}: not a usable store: {exc}"
            ) from exc

    def _migrate_meta(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(_SCHEMA_VERSION),),
            )
        elif int(row[0]) != _SCHEMA_VERSION:
            raise StoreCorruptionError(
                f"{self.path}: schema version {row[0]} unsupported "
                f"(expected {_SCHEMA_VERSION})"
            )
        self._migrate_history_executor()

    def _migrate_history_executor(self) -> None:
        # Additive, nullable executor-shape columns (PR 10).  Idempotent
        # ALTERs keep old stores readable without a version bump: a NULL
        # simply means the row predates executor recording.
        existing = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(history_runs)")
        }
        for name, kind in (
            ("executor", "TEXT"),
            ("workers", "INTEGER"),
            ("cpu_count", "INTEGER"),
        ):
            if name not in existing:
                self._conn.execute(
                    f"ALTER TABLE history_runs ADD COLUMN {name} {kind}"
                )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, params: Tuple = ()):
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    def _executemany(self, sql: str, rows: Iterable[Tuple]) -> None:
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    def commit(self) -> None:
        """Commit pending writes — deferred inside a :meth:`transaction`.

        Every logical save calls this, so wrapping a sequence of saves
        in :meth:`transaction` atomically batches them: the per-save
        commits become no-ops and the one real ``COMMIT`` happens at
        block exit (or nothing does, on a crash).
        """
        if self._txn_depth:
            return
        try:
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    @property
    def in_transaction(self) -> bool:
        """True inside an open :meth:`transaction` block."""
        return self._txn_depth > 0

    @contextmanager
    def transaction(self) -> Iterator["RunStore"]:
        """One atomic commit unit spanning many logical saves.

        The crash-consistency primitive of the store: all writes issued
        inside the block become visible in a single SQLite ``COMMIT``
        at exit; any exception — including ``BaseException`` stop
        requests like :class:`~repro.chaos.SignalInterrupt` — rolls the
        whole unit back.  Reads inside the block observe the pending
        writes (same connection), so watermark checks and canonical
        re-reads work mid-epoch.  Nested use flattens into the
        outermost unit.
        """
        if self._txn_depth:
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        self._txn_depth = 1
        try:
            yield self
        except BaseException:
            self._txn_depth = 0
            try:
                self._conn.rollback()
            except sqlite3.Error:  # pragma: no cover - rollback best effort
                pass
            raise
        else:
            self._txn_depth = 0
            kill_point("store.commit.before")
            self.commit()
            kill_point("store.commit.after")

    # ------------------------------------------------------------------
    # Config binding
    # ------------------------------------------------------------------
    def bind_config(self, config) -> None:
        """Bind the store to a world config, or verify an existing binding.

        First call stores the fingerprint; later calls require an exact
        match (:class:`StoreConfigError` otherwise).  The *persisted*
        copy is re-validated through ``WorldConfig(**payload)`` before
        comparison — its eager ``__post_init__`` re-checks every profile
        name, so a tampered store cannot smuggle an invalid
        ``drift_profile``/``payload_profile`` string into a run.
        """
        from ..synth.world import WorldConfig

        fingerprint = config_fingerprint(config)
        row = self._execute(
            "SELECT value FROM meta WHERE key='config_fingerprint'"
        ).fetchone()
        if row is None:
            self._execute(
                "INSERT INTO meta (key, value) VALUES ('config_fingerprint', ?)",
                (fingerprint,),
            )
            self.commit()
            return
        stored = row[0]
        try:
            payload = json.loads(stored)
            revalidated = WorldConfig(**payload)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise StoreCorruptionError(
                f"{self.path}: persisted config does not re-validate: {exc}"
            ) from exc
        if config_fingerprint(revalidated) != fingerprint:
            raise StoreConfigError(
                f"{self.path}: store is bound to a different world "
                f"configuration; refusing to mix runs.\n"
                f"  stored:    {stored}\n  requested: {fingerprint}"
            )

    # ------------------------------------------------------------------
    # Watermarks
    # ------------------------------------------------------------------
    def watermark(self, stage: str = "dataset") -> Optional[Dict[str, Any]]:
        row = self._execute(
            "SELECT epoch, cutoff, run_id FROM watermarks WHERE stage=?",
            (stage,),
        ).fetchone()
        if row is None:
            return None
        return {"epoch": int(row[0]), "cutoff": row[1], "run_id": row[2]}

    def set_watermark(
        self,
        stage: str,
        epoch: int,
        cutoff: Optional[str] = None,
        run_id: Optional[int] = None,
    ) -> None:
        existing = self.watermark(stage)
        if existing is not None and epoch < existing["epoch"]:
            raise StoreConfigError(
                f"{self.path}: watermark for {stage!r} is at epoch "
                f"{existing['epoch']}; the store is append-only and cannot "
                f"rewind to epoch {epoch}"
            )
        self._execute(
            "INSERT INTO watermarks (stage, epoch, cutoff, run_id) "
            "VALUES (?, ?, ?, ?) ON CONFLICT(stage) DO UPDATE SET "
            "epoch=excluded.epoch, cutoff=excluded.cutoff, run_id=excluded.run_id",
            (stage, int(epoch), cutoff, run_id),
        )

    # ------------------------------------------------------------------
    # Dataset tables
    # ------------------------------------------------------------------
    def append_dataset(
        self, dataset: ForumDataset, since: Optional[str] = None
    ) -> int:
        """Idempotently upsert the dataset's records; returns rows added.

        ``INSERT OR IGNORE`` keyed on primary ids makes the append a
        delta write: records already persisted by an earlier epoch cost
        one index probe each and change nothing.

        ``since`` (the previous watermark's cutoff, an ISO timestamp —
        by construction the newest post date visible at that epoch)
        skips even the index probes for the bulk tables: threads created
        at or before it, and each thread's post prefix up to the first
        post after it, are exactly the records the earlier epoch already
        persisted (the nested-epoch prefix rule of
        :func:`~repro.synth.world.slice_dataset_to_epoch`), so only the
        suffix is offered to SQLite at all.  Correctness never depends
        on the filter — ``INSERT OR IGNORE`` would absorb any overlap —
        it only removes ~90 % of the probe work from a ≤10 % delta.
        """
        before = self.row_counts()
        threads = list(dataset.threads())
        if since is None:
            new_threads = threads
            new_posts: Iterable[Post] = dataset.posts()
        else:
            since_dt = _from_iso(since)
            new_threads = [t for t in threads if t.created_at > since_dt]
            suffix: List[Post] = []
            for thread in threads:
                thread_posts = dataset.posts_in_thread(thread.thread_id)
                prefix = 0
                for post in thread_posts:
                    if post.created_at > since_dt:
                        break
                    prefix += 1
                suffix.extend(thread_posts[prefix:])
            new_posts = suffix
        self._executemany(
            "INSERT OR IGNORE INTO forums VALUES (?, ?, ?, ?)",
            (
                (f.forum_id, f.name, int(f.has_ewhoring_board), int(f.bans_ewhoring))
                for f in dataset.forums()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO boards VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    b.board_id, b.forum_id, b.name, b.category,
                    int(b.is_ewhoring_board), int(b.is_currency_exchange),
                    int(b.is_bragging_board),
                )
                for b in dataset.boards()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO actors VALUES (?, ?, ?, ?)",
            (
                (a.actor_id, a.forum_id, a.username, _iso(a.registered_at))
                for a in dataset.actors()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO threads VALUES (?, ?, ?, ?, ?, ?)",
            (
                (
                    t.thread_id, t.board_id, t.forum_id, t.author_id,
                    t.heading, _iso(t.created_at),
                )
                for t in new_threads
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO posts VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    p.post_id, p.thread_id, p.author_id, _iso(p.created_at),
                    p.content, p.position, p.quoted_post_id,
                )
                for p in new_posts
            ),
        )
        self.commit()
        after = self.row_counts()
        return sum(after.values()) - sum(before.values())

    def read_dataset(self) -> ForumDataset:
        """The persisted corpus, in canonical id order, fully validated.

        Both cold and incremental runs read their dataset back through
        this cursor, so stage inputs are identical whenever the record
        *sets* are — insertion-order accidents of in-memory generation
        cannot leak into the equivalence contract.
        """
        from_iso = _from_iso
        try:
            forums = [
                Forum(int(r[0]), r[1], bool(r[2]), bool(r[3]))
                for r in self._execute(
                    "SELECT forum_id, name, has_ewhoring_board, bans_ewhoring "
                    "FROM forums ORDER BY forum_id"
                )
            ]
            boards = [
                Board(
                    int(r[0]), int(r[1]), r[2], r[3],
                    bool(r[4]), bool(r[5]), bool(r[6]),
                )
                for r in self._execute(
                    "SELECT board_id, forum_id, name, category, "
                    "is_ewhoring_board, is_currency_exchange, "
                    "is_bragging_board FROM boards ORDER BY board_id"
                )
            ]
            actors = [
                Actor(int(r[0]), int(r[1]), r[2], from_iso(r[3]))
                for r in self._execute(
                    "SELECT actor_id, forum_id, username, registered_at "
                    "FROM actors ORDER BY actor_id"
                )
            ]
            threads = [
                Thread(
                    int(r[0]), int(r[1]), int(r[2]), int(r[3]),
                    r[4], from_iso(r[5]),
                )
                for r in self._execute(
                    "SELECT thread_id, board_id, forum_id, author_id, "
                    "heading, created_at FROM threads ORDER BY thread_id"
                )
            ]
            posts = [
                Post(
                    int(r[0]), int(r[1]), int(r[2]), from_iso(r[3]),
                    r[4], int(r[5]),
                    None if r[6] is None else int(r[6]),
                )
                for r in self._execute(
                    "SELECT post_id, thread_id, author_id, created_at, "
                    "content, position, quoted_post_id FROM posts "
                    "ORDER BY thread_id, position"
                )
            ]
            dataset = ForumDataset.from_sorted_records(
                forums, boards, actors, threads, posts
            )
        except (ValueError, TypeError) as exc:
            # DatasetError subclasses ValueError: a store whose rows no
            # longer satisfy forum integrity is corrupt, not half-usable.
            raise StoreCorruptionError(
                f"{self.path}: persisted dataset fails integrity checks: {exc}"
            ) from exc
        return dataset

    def row_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for table in ("forums", "boards", "actors", "threads", "posts"):
            counts[table] = int(
                self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
        return counts

    # ------------------------------------------------------------------
    # Memo persistence
    # ------------------------------------------------------------------
    def save_vision_cache(self, cache) -> int:
        items = cache.items()
        self._executemany(
            "INSERT OR REPLACE INTO vision_cache (digest, field, value) "
            "VALUES (?, ?, ?)",
            (
                (digest, fld, json.dumps(value))
                for digest, entry in items
                for fld, value in entry.items()
            ),
        )
        self.commit()
        return len(items)

    def load_vision_cache(self, cache) -> int:
        rows = self._execute(
            "SELECT digest, field, value FROM vision_cache ORDER BY digest, field"
        ).fetchall()
        try:
            grouped: Dict[str, Dict[str, object]] = {}
            for digest, fld, value in rows:
                grouped.setdefault(digest, {})[fld] = json.loads(value)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: vision cache payload is not JSON: {exc}"
            ) from exc
        cache.preload(list(grouped.items()))
        return len(grouped)

    def save_validation_memo(self, memo) -> int:
        items = memo.items()
        self._executemany(
            "INSERT OR REPLACE INTO validation_memo "
            "(digest, ok, error_type, message) VALUES (?, ?, ?, ?)",
            (
                (
                    digest,
                    int(outcome is None),
                    None if outcome is None else outcome[0],
                    None if outcome is None else outcome[1],
                )
                for digest, outcome in items
            ),
        )
        self.commit()
        return len(items)

    def load_validation_memo(self, memo) -> int:
        rows = self._execute(
            "SELECT digest, ok, error_type, message FROM validation_memo"
        ).fetchall()
        memo.preload(
            (digest, None if ok else (error_type, message))
            for digest, ok, error_type, message in rows
        )
        return len(rows)

    def save_ingest_memo(self, stage: str, memo) -> int:
        items = memo.items()
        self._executemany(
            "INSERT OR REPLACE INTO ingest_memo "
            "(stage, url, pack_id, member_index, ok, digest, error_type, message) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    stage,
                    key[0],
                    _NULL_SENTINEL if key[1] is None else int(key[1]),
                    _NULL_SENTINEL if key[2] is None else int(key[2]),
                    int(outcome[0] == "ok"),
                    outcome[1] if outcome[0] == "ok" else None,
                    outcome[1] if outcome[0] == "err" else None,
                    outcome[2] if outcome[0] == "err" else None,
                )
                for key, outcome in items
            ),
        )
        self.commit()
        return len(items)

    def load_ingest_memo(self, stage: str, memo) -> int:
        rows = self._execute(
            "SELECT url, pack_id, member_index, ok, digest, error_type, message "
            "FROM ingest_memo WHERE stage=?",
            (stage,),
        ).fetchall()
        entries = []
        for url, pack_id, member_index, ok, digest, error_type, message in rows:
            key = (
                url,
                None if pack_id == _NULL_SENTINEL else int(pack_id),
                None if member_index == _NULL_SENTINEL else int(member_index),
            )
            if ok:
                if digest is None:
                    raise StoreCorruptionError(
                        f"{self.path}: ingest memo row for {url} marked ok "
                        f"but has no digest"
                    )
                entries.append((key, ("ok", digest)))
            else:
                entries.append((key, ("err", error_type or "", message or "")))
        memo.preload(entries)
        return len(entries)

    def save_world_hashes(self, hashes: Dict[int, int]) -> int:
        self._executemany(
            "INSERT OR REPLACE INTO world_hashes (image_id, hash) VALUES (?, ?)",
            ((int(image_id), str(int(value))) for image_id, value in hashes.items()),
        )
        self.commit()
        return len(hashes)

    def load_world_hashes(self) -> Dict[int, int]:
        try:
            return {
                int(row[0]): int(row[1])
                for row in self._execute(
                    "SELECT image_id, hash FROM world_hashes"
                )
            }
        except ValueError as exc:
            raise StoreCorruptionError(
                f"{self.path}: world hash rows are not integers: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Checkpoints and aggregate blobs
    # ------------------------------------------------------------------
    def save_checkpoint(self, stage: str, checkpoint) -> None:
        payload = {
            "completed": checkpoint.completed,
            "stats": checkpoint.stats,
            "breakers": checkpoint.breakers,
            "clock": checkpoint.clock,
            "budget_spent": checkpoint.budget_spent,
            "domain_clocks": checkpoint.domain_clocks,
        }
        self.save_blob("checkpoint", stage, payload)

    def load_checkpoint(self, stage: str):
        from ..web.checkpoint import CrawlCheckpoint

        payload = self.load_blob("checkpoint", stage)
        if payload is None:
            return CrawlCheckpoint()
        try:
            return CrawlCheckpoint(
                completed=dict(payload["completed"]),
                stats=payload.get("stats"),
                breakers=payload.get("breakers"),
                clock=float(payload.get("clock", 0.0)),
                budget_spent=int(payload.get("budget_spent", 0)),
                domain_clocks={
                    str(d): float(t)
                    for d, t in payload.get("domain_clocks", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptionError(
                f"{self.path}: checkpoint blob for {stage!r} is malformed: {exc}"
            ) from exc

    def save_blob(self, kind: str, key: str, payload: Any) -> None:
        try:
            encoded = json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"blob {kind}/{key} is not JSON-serialisable: {exc}") from exc
        self._execute(
            "INSERT OR REPLACE INTO blobs (kind, key, payload) VALUES (?, ?, ?)",
            (kind, key, encoded),
        )
        self.commit()

    def load_blob(self, kind: str, key: str) -> Optional[Any]:
        row = self._execute(
            "SELECT payload FROM blobs WHERE kind=? AND key=?", (kind, key)
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: blob {kind}/{key} is not JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Run history
    # ------------------------------------------------------------------
    def record_run(
        self,
        epoch: int,
        crawl_digest: str,
        quarantine_records: List[dict],
        funnel: List[dict],
    ) -> int:
        cursor = self._execute(
            "INSERT INTO runs (epoch, crawl_digest, n_quarantined, funnel) "
            "VALUES (?, ?, ?, ?)",
            (
                int(epoch),
                crawl_digest,
                len(quarantine_records),
                json.dumps(funnel, sort_keys=True),
            ),
        )
        run_id = int(cursor.lastrowid)
        self._executemany(
            "INSERT INTO quarantine "
            "(run_id, seq, stage, ref, error_type, message, context) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    run_id, seq, record["stage"], record["ref"],
                    record["error_type"], record["message"],
                    json.dumps(record.get("context", {}), sort_keys=True),
                )
                for seq, record in enumerate(quarantine_records)
            ),
        )
        self.commit()
        return run_id

    def runs(self) -> List[Dict[str, Any]]:
        rows = self._execute(
            "SELECT run_id, epoch, crawl_digest, n_quarantined, funnel "
            "FROM runs ORDER BY run_id"
        ).fetchall()
        try:
            return [
                {
                    "run_id": int(r[0]),
                    "epoch": int(r[1]),
                    "crawl_digest": r[2],
                    "n_quarantined": int(r[3]),
                    "funnel": json.loads(r[4]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: run funnel payload is not JSON: {exc}"
            ) from exc

    def quarantine_records(self, run_id: int) -> List[dict]:
        rows = self._execute(
            "SELECT stage, ref, error_type, message, context FROM quarantine "
            "WHERE run_id=? ORDER BY seq",
            (run_id,),
        ).fetchall()
        try:
            return [
                {
                    "stage": r[0],
                    "ref": r[1],
                    "error_type": r[2],
                    "message": r[3],
                    "context": json.loads(r[4]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: quarantine context is not JSON: {exc}"
            ) from exc

    def record_images(self, epoch: int, crawled: Iterable) -> int:
        rows = [
            (c.digest, int(epoch), c.link.link_kind) for c in crawled
        ]
        self._executemany(
            "INSERT OR IGNORE INTO images (digest, first_epoch, link_kind) "
            "VALUES (?, ?, ?)",
            rows,
        )
        self.commit()
        return len(rows)

    # ------------------------------------------------------------------
    # Telemetry history (DESIGN.md §14): span summaries, deterministic
    # metric snapshots, funnel rows, profile samples, bench results.
    # ------------------------------------------------------------------
    def save_history(self, summary, run_id: Optional[int] = None) -> int:
        """Persist one :class:`~repro.obs.history.HistorySummary`.

        Called inside :func:`~repro.store.run_incremental`'s atomic
        epoch transaction (history inherits the crash-consistency
        guarantees of DESIGN.md §13) or standalone by the ``repro obs``
        ingesters; returns the new ``history_id``.
        """
        cursor = self._execute(
            "INSERT INTO history_runs "
            "(run_id, source, label, created_unix, seed, epoch, "
            " wall_seconds, cpu_seconds, peak_rss_kb, n_spans, n_events, "
            " n_records, n_quarantined, profiled, executor, workers, "
            " cpu_count) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                summary.source,
                summary.label,
                float(summary.created_unix),
                summary.seed,
                summary.epoch,
                summary.wall_seconds,
                summary.cpu_seconds,
                summary.peak_rss_kb,
                int(summary.n_spans),
                int(summary.n_events),
                summary.n_records,
                summary.n_quarantined,
                int(bool(summary.profiled)),
                getattr(summary, "executor", None),
                getattr(summary, "workers", None),
                getattr(summary, "cpu_count", None),
            ),
        )
        history_id = int(cursor.lastrowid)
        self._executemany(
            "INSERT OR REPLACE INTO history_spans "
            "(history_id, name, count, total_seconds, self_seconds, "
            " max_seconds, errors, cpu_seconds, rss_peak_kb, alloc_kb) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    history_id, row["name"], int(row["count"]),
                    float(row["total_seconds"]), float(row["self_seconds"]),
                    float(row["max_seconds"]), int(row["errors"]),
                    row.get("cpu_seconds"), row.get("rss_peak_kb"),
                    row.get("alloc_kb"),
                )
                for row in summary.spans
            ),
        )
        self._executemany(
            "INSERT OR REPLACE INTO history_metrics "
            "(history_id, name, labels, kind, payload) VALUES (?, ?, ?, ?, ?)",
            (
                (
                    history_id,
                    metric["name"],
                    json.dumps(metric.get("labels", {}), sort_keys=True),
                    metric.get("kind", ""),
                    json.dumps(
                        {
                            k: v for k, v in metric.items()
                            if k not in ("name", "labels", "kind")
                        },
                        sort_keys=True,
                    ),
                )
                for metric in summary.metrics
            ),
        )
        self._executemany(
            "INSERT INTO history_funnel (history_id, seq, stage, count) "
            "VALUES (?, ?, ?, ?)",
            (
                (history_id, seq, row.get("stage", "?"), row.get("count"))
                for seq, row in enumerate(summary.funnel)
            ),
        )
        self._executemany(
            "INSERT INTO profile_samples "
            "(history_id, seq, t, rss_kb, cpu_seconds) VALUES (?, ?, ?, ?, ?)",
            (
                (
                    history_id, seq, float(sample.get("t", 0.0)),
                    float(sample.get("rss_kb", 0.0)),
                    float(sample.get("cpu_seconds", 0.0)),
                )
                for seq, sample in enumerate(summary.samples)
            ),
        )
        self.commit()
        return history_id

    def history_runs(self) -> List[Dict[str, Any]]:
        """Every history row (funnel joined in), oldest first."""
        rows = self._execute(
            "SELECT history_id, run_id, source, label, created_unix, seed, "
            "epoch, wall_seconds, cpu_seconds, peak_rss_kb, n_spans, "
            "n_events, n_records, n_quarantined, profiled, executor, "
            "workers, cpu_count "
            "FROM history_runs ORDER BY history_id"
        ).fetchall()
        funnels: Dict[int, List[Dict[str, Any]]] = {}
        for history_id, stage, count in self._execute(
            "SELECT history_id, stage, count FROM history_funnel "
            "ORDER BY history_id, seq"
        ):
            funnels.setdefault(int(history_id), []).append(
                {"stage": stage, "count": None if count is None else int(count)}
            )
        return [
            {
                "history_id": int(r[0]),
                "run_id": None if r[1] is None else int(r[1]),
                "source": r[2],
                "label": r[3],
                "created_unix": float(r[4]),
                "seed": None if r[5] is None else int(r[5]),
                "epoch": None if r[6] is None else int(r[6]),
                "wall_seconds": None if r[7] is None else float(r[7]),
                "cpu_seconds": None if r[8] is None else float(r[8]),
                "peak_rss_kb": None if r[9] is None else int(r[9]),
                "n_spans": int(r[10]),
                "n_events": int(r[11]),
                "n_records": None if r[12] is None else int(r[12]),
                "n_quarantined": None if r[13] is None else int(r[13]),
                "profiled": bool(r[14]),
                "executor": r[15],
                "workers": None if r[16] is None else int(r[16]),
                "cpu_count": None if r[17] is None else int(r[17]),
                "funnel": funnels.get(int(r[0]), []),
            }
            for r in rows
        ]

    def history_spans(self, history_id: int) -> List[Dict[str, Any]]:
        """Per-name span summaries of one history row, hottest first."""
        rows = self._execute(
            "SELECT name, count, total_seconds, self_seconds, max_seconds, "
            "errors, cpu_seconds, rss_peak_kb, alloc_kb FROM history_spans "
            "WHERE history_id=? ORDER BY self_seconds DESC, name",
            (int(history_id),),
        ).fetchall()
        return [
            {
                "name": r[0],
                "count": int(r[1]),
                "total_seconds": float(r[2]),
                "self_seconds": float(r[3]),
                "max_seconds": float(r[4]),
                "errors": int(r[5]),
                "cpu_seconds": None if r[6] is None else float(r[6]),
                "rss_peak_kb": None if r[7] is None else int(r[7]),
                "alloc_kb": None if r[8] is None else float(r[8]),
            }
            for r in rows
        ]

    def history_metrics(self, history_id: int) -> List[Dict[str, Any]]:
        """One history row's deterministic metric snapshot, re-inflated."""
        rows = self._execute(
            "SELECT name, labels, kind, payload FROM history_metrics "
            "WHERE history_id=? ORDER BY name, labels",
            (int(history_id),),
        ).fetchall()
        try:
            return [
                {
                    "name": r[0],
                    "labels": json.loads(r[1]),
                    "kind": r[2],
                    **json.loads(r[3]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: history metric payload is not JSON: {exc}"
            ) from exc

    def profile_samples(self, history_id: int) -> List[Dict[str, float]]:
        """One history row's resource samples, in capture order."""
        rows = self._execute(
            "SELECT t, rss_kb, cpu_seconds FROM profile_samples "
            "WHERE history_id=? ORDER BY seq",
            (int(history_id),),
        ).fetchall()
        return [
            {"t": float(r[0]), "rss_kb": float(r[1]), "cpu_seconds": float(r[2])}
            for r in rows
        ]

    def ingest_bench(self, name: str, payload: Any, recorded_unix: float) -> bool:
        """Record one benchmark result; idempotent on (name, timestamp)."""
        try:
            encoded = json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"bench result {name!r} is not JSON-serialisable: {exc}"
            ) from exc
        cursor = self._execute(
            "INSERT OR IGNORE INTO bench_results (name, recorded_unix, payload) "
            "VALUES (?, ?, ?)",
            (name, float(recorded_unix), encoded),
        )
        self.commit()
        return cursor.rowcount > 0

    def bench_results(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Ingested bench results, oldest first (optionally one name)."""
        if name is None:
            rows = self._execute(
                "SELECT name, recorded_unix, payload FROM bench_results "
                "ORDER BY recorded_unix, name"
            ).fetchall()
        else:
            rows = self._execute(
                "SELECT name, recorded_unix, payload FROM bench_results "
                "WHERE name=? ORDER BY recorded_unix",
                (name,),
            ).fetchall()
        try:
            return [
                {
                    "name": r[0],
                    "recorded_unix": float(r[1]),
                    "payload": json.loads(r[2]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: bench result payload is not JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """On-disk footprint (main file + WAL, for growth benchmarks)."""
        total = self.path.stat().st_size if self.path.exists() else 0
        for suffix in ("-wal", "-shm"):
            side = Path(str(self.path) + suffix)
            if side.exists():
                total += side.stat().st_size
        return total

    def checkpoint_wal(self) -> None:
        """Fold the WAL into the main file (before size measurements)."""
        try:
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc
