"""The append-only SQLite run store behind ``repro run --store``.

One :class:`RunStore` file persists the full funnel across runs:

* the forum corpus (typed tables generalising the JSONL
  :mod:`repro.forum.store`, with the indexes the store cursors read);
* per-stage watermarks — the observation epoch (and its post-date
  cutoff) up to which the corpus has been generated and measured;
* the warm-path memos that make delta runs cheap: the digest-keyed
  :class:`~repro.vision.cache.VisionCache`, the per-payload crawl
  :class:`~repro.web.crawler.IngestMemo`, the
  :class:`~repro.media.validate.ValidationMemo`, the world perceptual-
  hash memo, and per-stage :class:`~repro.web.checkpoint.CrawlCheckpoint`
  snapshots;
* run history — one row per pipeline run with its digest, funnel and
  quarantine ledger, plus persisted longitudinal aggregates as JSON
  blobs.

Every SQLite failure crossing this boundary is wrapped in the typed
taxonomy of :mod:`repro.store.errors`; a damaged file raises
:class:`StoreCorruptionError` at open (integrity is probed eagerly) and
never half-loads into a run.

Writes are batched (``executemany`` inside one transaction per logical
save) and dataset appends are idempotent ``INSERT OR IGNORE`` — the
nested-epoch construction of :func:`repro.synth.world.epoch_cutoff`
guarantees each epoch's visible records are a superset of the last, so
re-appending is a no-op and the store is append-only by construction.

Crash consistency (DESIGN.md §13): an incremental run wraps *all* of an
epoch's writes — corpus delta, watermarks, memos, run record,
measurement blob — in one :meth:`RunStore.transaction`.  Inside the
block every :meth:`commit` defers to the single ``COMMIT`` issued at
exit, so a process dying at any instant (the chaos harness injects
``SIGKILL`` on the commit edge itself) leaves the store exactly at the
previous watermark; a partial epoch is never visible to a reader.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import asdict
from datetime import datetime
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..chaos.sites import kill_point
from ..forum.dataset import ForumDataset
from ..forum.models import Actor, Board, Forum, Post, Thread
from .errors import StoreConfigError, StoreCorruptionError, StoreError

__all__ = ["RunStore", "config_fingerprint"]

_SCHEMA_VERSION = 1

#: WorldConfig fields excluded from the identity fingerprint: the epoch
#: is the watermark axis (it *varies* across runs of one store), and the
#: worker count is a pure throughput knob that provably cannot change
#: any measurement (PR 5's bit-identity invariant).
_FINGERPRINT_EXCLUDED = ("epoch", "crawl_workers")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS forums (
    forum_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    has_ewhoring_board INTEGER NOT NULL,
    bans_ewhoring INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS boards (
    board_id INTEGER PRIMARY KEY,
    forum_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    category TEXT,
    is_ewhoring_board INTEGER NOT NULL,
    is_currency_exchange INTEGER NOT NULL,
    is_bragging_board INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS actors (
    actor_id INTEGER PRIMARY KEY,
    forum_id INTEGER NOT NULL,
    username TEXT NOT NULL,
    registered_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS threads (
    thread_id INTEGER PRIMARY KEY,
    board_id INTEGER NOT NULL,
    forum_id INTEGER NOT NULL,
    author_id INTEGER NOT NULL,
    heading TEXT NOT NULL,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS posts (
    post_id INTEGER PRIMARY KEY,
    thread_id INTEGER NOT NULL,
    author_id INTEGER NOT NULL,
    created_at TEXT NOT NULL,
    content TEXT NOT NULL,
    position INTEGER NOT NULL,
    quoted_post_id INTEGER
);
CREATE INDEX IF NOT EXISTS idx_boards_forum ON boards (forum_id);
CREATE INDEX IF NOT EXISTS idx_threads_board ON threads (board_id);
CREATE INDEX IF NOT EXISTS idx_threads_created ON threads (created_at);
CREATE INDEX IF NOT EXISTS idx_posts_thread ON posts (thread_id, position);
CREATE INDEX IF NOT EXISTS idx_posts_author ON posts (author_id);
CREATE INDEX IF NOT EXISTS idx_posts_created ON posts (created_at);
CREATE TABLE IF NOT EXISTS watermarks (
    stage TEXT PRIMARY KEY,
    epoch INTEGER NOT NULL,
    cutoff TEXT,
    run_id INTEGER
);
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    epoch INTEGER NOT NULL,
    crawl_digest TEXT NOT NULL,
    n_quarantined INTEGER NOT NULL,
    funnel TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    run_id INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    stage TEXT NOT NULL,
    ref TEXT NOT NULL,
    error_type TEXT NOT NULL,
    message TEXT NOT NULL,
    context TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS images (
    digest TEXT PRIMARY KEY,
    first_epoch INTEGER NOT NULL,
    link_kind TEXT
);
CREATE TABLE IF NOT EXISTS vision_cache (
    digest TEXT NOT NULL,
    field TEXT NOT NULL,
    value TEXT NOT NULL,
    PRIMARY KEY (digest, field)
);
CREATE TABLE IF NOT EXISTS validation_memo (
    digest TEXT PRIMARY KEY,
    ok INTEGER NOT NULL,
    error_type TEXT,
    message TEXT
);
CREATE TABLE IF NOT EXISTS ingest_memo (
    stage TEXT NOT NULL,
    url TEXT NOT NULL,
    pack_id INTEGER NOT NULL,
    member_index INTEGER NOT NULL,
    ok INTEGER NOT NULL,
    digest TEXT,
    error_type TEXT,
    message TEXT,
    PRIMARY KEY (stage, url, pack_id, member_index)
);
CREATE TABLE IF NOT EXISTS world_hashes (
    image_id INTEGER PRIMARY KEY,
    hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS blobs (
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (kind, key)
);
"""

#: ``pack_id``/``member_index`` are part of the ingest-memo primary key,
#: so NULL (preview links) is stored as this sentinel.
_NULL_SENTINEL = -1


def config_fingerprint(config) -> str:
    """Canonical JSON identity of a world config, minus the epoch axis.

    Two runs share a store iff their fingerprints match: same seed,
    scale, fault/payload/drift profiles and rates.  The observation
    ``epoch`` is deliberately excluded (it is the watermark, not the
    identity) and so is ``crawl_workers`` (bit-identical by PR 5).
    """
    payload = asdict(config)
    for excluded in _FINGERPRINT_EXCLUDED:
        payload.pop(excluded, None)
    return json.dumps(payload, sort_keys=True)


def _iso(value: datetime) -> str:
    return value.isoformat()


def _from_iso(value: str) -> datetime:
    return datetime.fromisoformat(value)


class RunStore:
    """One SQLite-backed persistent store for incremental pipeline runs."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._txn_depth = 0
        try:
            self._conn = sqlite3.connect(str(self.path))
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Probe integrity eagerly: a truncated or garbage file must
            # fail here, typed, before anything is read out of it.
            # quick_check catches malformed pages and truncation like the
            # full check but skips index-order scans, keeping the probe
            # O(pages) cheap on every open of a grown store.
            probe = self._conn.execute("PRAGMA quick_check").fetchone()
            if probe is None or probe[0] != "ok":
                raise StoreCorruptionError(
                    f"{self.path}: integrity check failed: {probe and probe[0]}"
                )
            self._conn.executescript(_SCHEMA)
            self._migrate_meta()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreCorruptionError(
                f"{self.path}: not a usable store: {exc}"
            ) from exc

    def _migrate_meta(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(_SCHEMA_VERSION),),
            )
        elif int(row[0]) != _SCHEMA_VERSION:
            raise StoreCorruptionError(
                f"{self.path}: schema version {row[0]} unsupported "
                f"(expected {_SCHEMA_VERSION})"
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, params: Tuple = ()):
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    def _executemany(self, sql: str, rows: Iterable[Tuple]) -> None:
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    def commit(self) -> None:
        """Commit pending writes — deferred inside a :meth:`transaction`.

        Every logical save calls this, so wrapping a sequence of saves
        in :meth:`transaction` atomically batches them: the per-save
        commits become no-ops and the one real ``COMMIT`` happens at
        block exit (or nothing does, on a crash).
        """
        if self._txn_depth:
            return
        try:
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc

    @property
    def in_transaction(self) -> bool:
        """True inside an open :meth:`transaction` block."""
        return self._txn_depth > 0

    @contextmanager
    def transaction(self) -> Iterator["RunStore"]:
        """One atomic commit unit spanning many logical saves.

        The crash-consistency primitive of the store: all writes issued
        inside the block become visible in a single SQLite ``COMMIT``
        at exit; any exception — including ``BaseException`` stop
        requests like :class:`~repro.chaos.SignalInterrupt` — rolls the
        whole unit back.  Reads inside the block observe the pending
        writes (same connection), so watermark checks and canonical
        re-reads work mid-epoch.  Nested use flattens into the
        outermost unit.
        """
        if self._txn_depth:
            self._txn_depth += 1
            try:
                yield self
            finally:
                self._txn_depth -= 1
            return
        self._txn_depth = 1
        try:
            yield self
        except BaseException:
            self._txn_depth = 0
            try:
                self._conn.rollback()
            except sqlite3.Error:  # pragma: no cover - rollback best effort
                pass
            raise
        else:
            self._txn_depth = 0
            kill_point("store.commit.before")
            self.commit()
            kill_point("store.commit.after")

    # ------------------------------------------------------------------
    # Config binding
    # ------------------------------------------------------------------
    def bind_config(self, config) -> None:
        """Bind the store to a world config, or verify an existing binding.

        First call stores the fingerprint; later calls require an exact
        match (:class:`StoreConfigError` otherwise).  The *persisted*
        copy is re-validated through ``WorldConfig(**payload)`` before
        comparison — its eager ``__post_init__`` re-checks every profile
        name, so a tampered store cannot smuggle an invalid
        ``drift_profile``/``payload_profile`` string into a run.
        """
        from ..synth.world import WorldConfig

        fingerprint = config_fingerprint(config)
        row = self._execute(
            "SELECT value FROM meta WHERE key='config_fingerprint'"
        ).fetchone()
        if row is None:
            self._execute(
                "INSERT INTO meta (key, value) VALUES ('config_fingerprint', ?)",
                (fingerprint,),
            )
            self.commit()
            return
        stored = row[0]
        try:
            payload = json.loads(stored)
            revalidated = WorldConfig(**payload)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise StoreCorruptionError(
                f"{self.path}: persisted config does not re-validate: {exc}"
            ) from exc
        if config_fingerprint(revalidated) != fingerprint:
            raise StoreConfigError(
                f"{self.path}: store is bound to a different world "
                f"configuration; refusing to mix runs.\n"
                f"  stored:    {stored}\n  requested: {fingerprint}"
            )

    # ------------------------------------------------------------------
    # Watermarks
    # ------------------------------------------------------------------
    def watermark(self, stage: str = "dataset") -> Optional[Dict[str, Any]]:
        row = self._execute(
            "SELECT epoch, cutoff, run_id FROM watermarks WHERE stage=?",
            (stage,),
        ).fetchone()
        if row is None:
            return None
        return {"epoch": int(row[0]), "cutoff": row[1], "run_id": row[2]}

    def set_watermark(
        self,
        stage: str,
        epoch: int,
        cutoff: Optional[str] = None,
        run_id: Optional[int] = None,
    ) -> None:
        existing = self.watermark(stage)
        if existing is not None and epoch < existing["epoch"]:
            raise StoreConfigError(
                f"{self.path}: watermark for {stage!r} is at epoch "
                f"{existing['epoch']}; the store is append-only and cannot "
                f"rewind to epoch {epoch}"
            )
        self._execute(
            "INSERT INTO watermarks (stage, epoch, cutoff, run_id) "
            "VALUES (?, ?, ?, ?) ON CONFLICT(stage) DO UPDATE SET "
            "epoch=excluded.epoch, cutoff=excluded.cutoff, run_id=excluded.run_id",
            (stage, int(epoch), cutoff, run_id),
        )

    # ------------------------------------------------------------------
    # Dataset tables
    # ------------------------------------------------------------------
    def append_dataset(
        self, dataset: ForumDataset, since: Optional[str] = None
    ) -> int:
        """Idempotently upsert the dataset's records; returns rows added.

        ``INSERT OR IGNORE`` keyed on primary ids makes the append a
        delta write: records already persisted by an earlier epoch cost
        one index probe each and change nothing.

        ``since`` (the previous watermark's cutoff, an ISO timestamp —
        by construction the newest post date visible at that epoch)
        skips even the index probes for the bulk tables: threads created
        at or before it, and each thread's post prefix up to the first
        post after it, are exactly the records the earlier epoch already
        persisted (the nested-epoch prefix rule of
        :func:`~repro.synth.world.slice_dataset_to_epoch`), so only the
        suffix is offered to SQLite at all.  Correctness never depends
        on the filter — ``INSERT OR IGNORE`` would absorb any overlap —
        it only removes ~90 % of the probe work from a ≤10 % delta.
        """
        before = self.row_counts()
        threads = list(dataset.threads())
        if since is None:
            new_threads = threads
            new_posts: Iterable[Post] = dataset.posts()
        else:
            since_dt = _from_iso(since)
            new_threads = [t for t in threads if t.created_at > since_dt]
            suffix: List[Post] = []
            for thread in threads:
                thread_posts = dataset.posts_in_thread(thread.thread_id)
                prefix = 0
                for post in thread_posts:
                    if post.created_at > since_dt:
                        break
                    prefix += 1
                suffix.extend(thread_posts[prefix:])
            new_posts = suffix
        self._executemany(
            "INSERT OR IGNORE INTO forums VALUES (?, ?, ?, ?)",
            (
                (f.forum_id, f.name, int(f.has_ewhoring_board), int(f.bans_ewhoring))
                for f in dataset.forums()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO boards VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    b.board_id, b.forum_id, b.name, b.category,
                    int(b.is_ewhoring_board), int(b.is_currency_exchange),
                    int(b.is_bragging_board),
                )
                for b in dataset.boards()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO actors VALUES (?, ?, ?, ?)",
            (
                (a.actor_id, a.forum_id, a.username, _iso(a.registered_at))
                for a in dataset.actors()
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO threads VALUES (?, ?, ?, ?, ?, ?)",
            (
                (
                    t.thread_id, t.board_id, t.forum_id, t.author_id,
                    t.heading, _iso(t.created_at),
                )
                for t in new_threads
            ),
        )
        self._executemany(
            "INSERT OR IGNORE INTO posts VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    p.post_id, p.thread_id, p.author_id, _iso(p.created_at),
                    p.content, p.position, p.quoted_post_id,
                )
                for p in new_posts
            ),
        )
        self.commit()
        after = self.row_counts()
        return sum(after.values()) - sum(before.values())

    def read_dataset(self) -> ForumDataset:
        """The persisted corpus, in canonical id order, fully validated.

        Both cold and incremental runs read their dataset back through
        this cursor, so stage inputs are identical whenever the record
        *sets* are — insertion-order accidents of in-memory generation
        cannot leak into the equivalence contract.
        """
        from_iso = _from_iso
        try:
            forums = [
                Forum(int(r[0]), r[1], bool(r[2]), bool(r[3]))
                for r in self._execute(
                    "SELECT forum_id, name, has_ewhoring_board, bans_ewhoring "
                    "FROM forums ORDER BY forum_id"
                )
            ]
            boards = [
                Board(
                    int(r[0]), int(r[1]), r[2], r[3],
                    bool(r[4]), bool(r[5]), bool(r[6]),
                )
                for r in self._execute(
                    "SELECT board_id, forum_id, name, category, "
                    "is_ewhoring_board, is_currency_exchange, "
                    "is_bragging_board FROM boards ORDER BY board_id"
                )
            ]
            actors = [
                Actor(int(r[0]), int(r[1]), r[2], from_iso(r[3]))
                for r in self._execute(
                    "SELECT actor_id, forum_id, username, registered_at "
                    "FROM actors ORDER BY actor_id"
                )
            ]
            threads = [
                Thread(
                    int(r[0]), int(r[1]), int(r[2]), int(r[3]),
                    r[4], from_iso(r[5]),
                )
                for r in self._execute(
                    "SELECT thread_id, board_id, forum_id, author_id, "
                    "heading, created_at FROM threads ORDER BY thread_id"
                )
            ]
            posts = [
                Post(
                    int(r[0]), int(r[1]), int(r[2]), from_iso(r[3]),
                    r[4], int(r[5]),
                    None if r[6] is None else int(r[6]),
                )
                for r in self._execute(
                    "SELECT post_id, thread_id, author_id, created_at, "
                    "content, position, quoted_post_id FROM posts "
                    "ORDER BY thread_id, position"
                )
            ]
            dataset = ForumDataset.from_sorted_records(
                forums, boards, actors, threads, posts
            )
        except (ValueError, TypeError) as exc:
            # DatasetError subclasses ValueError: a store whose rows no
            # longer satisfy forum integrity is corrupt, not half-usable.
            raise StoreCorruptionError(
                f"{self.path}: persisted dataset fails integrity checks: {exc}"
            ) from exc
        return dataset

    def row_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for table in ("forums", "boards", "actors", "threads", "posts"):
            counts[table] = int(
                self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
        return counts

    # ------------------------------------------------------------------
    # Memo persistence
    # ------------------------------------------------------------------
    def save_vision_cache(self, cache) -> int:
        items = cache.items()
        self._executemany(
            "INSERT OR REPLACE INTO vision_cache (digest, field, value) "
            "VALUES (?, ?, ?)",
            (
                (digest, fld, json.dumps(value))
                for digest, entry in items
                for fld, value in entry.items()
            ),
        )
        self.commit()
        return len(items)

    def load_vision_cache(self, cache) -> int:
        rows = self._execute(
            "SELECT digest, field, value FROM vision_cache ORDER BY digest, field"
        ).fetchall()
        try:
            grouped: Dict[str, Dict[str, object]] = {}
            for digest, fld, value in rows:
                grouped.setdefault(digest, {})[fld] = json.loads(value)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: vision cache payload is not JSON: {exc}"
            ) from exc
        cache.preload(list(grouped.items()))
        return len(grouped)

    def save_validation_memo(self, memo) -> int:
        items = memo.items()
        self._executemany(
            "INSERT OR REPLACE INTO validation_memo "
            "(digest, ok, error_type, message) VALUES (?, ?, ?, ?)",
            (
                (
                    digest,
                    int(outcome is None),
                    None if outcome is None else outcome[0],
                    None if outcome is None else outcome[1],
                )
                for digest, outcome in items
            ),
        )
        self.commit()
        return len(items)

    def load_validation_memo(self, memo) -> int:
        rows = self._execute(
            "SELECT digest, ok, error_type, message FROM validation_memo"
        ).fetchall()
        memo.preload(
            (digest, None if ok else (error_type, message))
            for digest, ok, error_type, message in rows
        )
        return len(rows)

    def save_ingest_memo(self, stage: str, memo) -> int:
        items = memo.items()
        self._executemany(
            "INSERT OR REPLACE INTO ingest_memo "
            "(stage, url, pack_id, member_index, ok, digest, error_type, message) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    stage,
                    key[0],
                    _NULL_SENTINEL if key[1] is None else int(key[1]),
                    _NULL_SENTINEL if key[2] is None else int(key[2]),
                    int(outcome[0] == "ok"),
                    outcome[1] if outcome[0] == "ok" else None,
                    outcome[1] if outcome[0] == "err" else None,
                    outcome[2] if outcome[0] == "err" else None,
                )
                for key, outcome in items
            ),
        )
        self.commit()
        return len(items)

    def load_ingest_memo(self, stage: str, memo) -> int:
        rows = self._execute(
            "SELECT url, pack_id, member_index, ok, digest, error_type, message "
            "FROM ingest_memo WHERE stage=?",
            (stage,),
        ).fetchall()
        entries = []
        for url, pack_id, member_index, ok, digest, error_type, message in rows:
            key = (
                url,
                None if pack_id == _NULL_SENTINEL else int(pack_id),
                None if member_index == _NULL_SENTINEL else int(member_index),
            )
            if ok:
                if digest is None:
                    raise StoreCorruptionError(
                        f"{self.path}: ingest memo row for {url} marked ok "
                        f"but has no digest"
                    )
                entries.append((key, ("ok", digest)))
            else:
                entries.append((key, ("err", error_type or "", message or "")))
        memo.preload(entries)
        return len(entries)

    def save_world_hashes(self, hashes: Dict[int, int]) -> int:
        self._executemany(
            "INSERT OR REPLACE INTO world_hashes (image_id, hash) VALUES (?, ?)",
            ((int(image_id), str(int(value))) for image_id, value in hashes.items()),
        )
        self.commit()
        return len(hashes)

    def load_world_hashes(self) -> Dict[int, int]:
        try:
            return {
                int(row[0]): int(row[1])
                for row in self._execute(
                    "SELECT image_id, hash FROM world_hashes"
                )
            }
        except ValueError as exc:
            raise StoreCorruptionError(
                f"{self.path}: world hash rows are not integers: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Checkpoints and aggregate blobs
    # ------------------------------------------------------------------
    def save_checkpoint(self, stage: str, checkpoint) -> None:
        payload = {
            "completed": checkpoint.completed,
            "stats": checkpoint.stats,
            "breakers": checkpoint.breakers,
            "clock": checkpoint.clock,
            "budget_spent": checkpoint.budget_spent,
            "domain_clocks": checkpoint.domain_clocks,
        }
        self.save_blob("checkpoint", stage, payload)

    def load_checkpoint(self, stage: str):
        from ..web.checkpoint import CrawlCheckpoint

        payload = self.load_blob("checkpoint", stage)
        if payload is None:
            return CrawlCheckpoint()
        try:
            return CrawlCheckpoint(
                completed=dict(payload["completed"]),
                stats=payload.get("stats"),
                breakers=payload.get("breakers"),
                clock=float(payload.get("clock", 0.0)),
                budget_spent=int(payload.get("budget_spent", 0)),
                domain_clocks={
                    str(d): float(t)
                    for d, t in payload.get("domain_clocks", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptionError(
                f"{self.path}: checkpoint blob for {stage!r} is malformed: {exc}"
            ) from exc

    def save_blob(self, kind: str, key: str, payload: Any) -> None:
        try:
            encoded = json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"blob {kind}/{key} is not JSON-serialisable: {exc}") from exc
        self._execute(
            "INSERT OR REPLACE INTO blobs (kind, key, payload) VALUES (?, ?, ?)",
            (kind, key, encoded),
        )
        self.commit()

    def load_blob(self, kind: str, key: str) -> Optional[Any]:
        row = self._execute(
            "SELECT payload FROM blobs WHERE kind=? AND key=?", (kind, key)
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: blob {kind}/{key} is not JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Run history
    # ------------------------------------------------------------------
    def record_run(
        self,
        epoch: int,
        crawl_digest: str,
        quarantine_records: List[dict],
        funnel: List[dict],
    ) -> int:
        cursor = self._execute(
            "INSERT INTO runs (epoch, crawl_digest, n_quarantined, funnel) "
            "VALUES (?, ?, ?, ?)",
            (
                int(epoch),
                crawl_digest,
                len(quarantine_records),
                json.dumps(funnel, sort_keys=True),
            ),
        )
        run_id = int(cursor.lastrowid)
        self._executemany(
            "INSERT INTO quarantine "
            "(run_id, seq, stage, ref, error_type, message, context) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    run_id, seq, record["stage"], record["ref"],
                    record["error_type"], record["message"],
                    json.dumps(record.get("context", {}), sort_keys=True),
                )
                for seq, record in enumerate(quarantine_records)
            ),
        )
        self.commit()
        return run_id

    def runs(self) -> List[Dict[str, Any]]:
        rows = self._execute(
            "SELECT run_id, epoch, crawl_digest, n_quarantined, funnel "
            "FROM runs ORDER BY run_id"
        ).fetchall()
        try:
            return [
                {
                    "run_id": int(r[0]),
                    "epoch": int(r[1]),
                    "crawl_digest": r[2],
                    "n_quarantined": int(r[3]),
                    "funnel": json.loads(r[4]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: run funnel payload is not JSON: {exc}"
            ) from exc

    def quarantine_records(self, run_id: int) -> List[dict]:
        rows = self._execute(
            "SELECT stage, ref, error_type, message, context FROM quarantine "
            "WHERE run_id=? ORDER BY seq",
            (run_id,),
        ).fetchall()
        try:
            return [
                {
                    "stage": r[0],
                    "ref": r[1],
                    "error_type": r[2],
                    "message": r[3],
                    "context": json.loads(r[4]),
                }
                for r in rows
            ]
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: quarantine context is not JSON: {exc}"
            ) from exc

    def record_images(self, epoch: int, crawled: Iterable) -> int:
        rows = [
            (c.digest, int(epoch), c.link.link_kind) for c in crawled
        ]
        self._executemany(
            "INSERT OR IGNORE INTO images (digest, first_epoch, link_kind) "
            "VALUES (?, ?, ?)",
            rows,
        )
        self.commit()
        return len(rows)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """On-disk footprint (main file + WAL, for growth benchmarks)."""
        total = self.path.stat().st_size if self.path.exists() else 0
        for suffix in ("-wal", "-shm"):
            side = Path(str(self.path) + suffix)
            if side.exists():
                total += side.stat().st_size
        return total

    def checkpoint_wal(self) -> None:
        """Fold the WAL into the main file (before size measurements)."""
        try:
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise StoreCorruptionError(f"{self.path}: {exc}") from exc
