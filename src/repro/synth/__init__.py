"""World generation: profiles, supply side, forums, earnings, orchestration."""

from .earnings_gen import EarningsPlanner, ProofPlan
from .forum_gen import (
    FORUM_SPECS,
    ForumSpec,
    ForumWorldGenerator,
    GeneratedForums,
    IdAllocator,
)
from .models_gen import (
    CirculatingImage,
    ModelIdentity,
    OriginCopy,
    SupplySide,
    generate_supply_side,
)
from .profiles import (
    INTEREST_CATEGORIES,
    ActorProfile,
    Archetype,
    sample_ewhoring_post_count,
    sample_profile,
)
from .world import World, WorldConfig, build_world

__all__ = [
    "ActorProfile",
    "Archetype",
    "CirculatingImage",
    "EarningsPlanner",
    "FORUM_SPECS",
    "ForumSpec",
    "ForumWorldGenerator",
    "GeneratedForums",
    "IdAllocator",
    "INTEREST_CATEGORIES",
    "ModelIdentity",
    "OriginCopy",
    "ProofPlan",
    "SupplySide",
    "World",
    "WorldConfig",
    "build_world",
    "generate_supply_side",
    "sample_ewhoring_post_count",
    "sample_profile",
]
