"""Proof-of-earnings generation (§5 ground truth).

Each earning actor produces a sequence of proof screenshots: dated
transaction lists on a payment platform, denominated in a currency, with
a total.  Calibration targets the §5.2 aggregates:

* ~660 actors posting proofs at full scale, mean ≈ US$774 reported each,
  the top reporter around US$20k over dozens of images;
* mean transaction ≈ US$42, bulk between US$5–50, with a minority of
  US$150–400 cam-show payments;
* platform mix shifting from PayPal to Amazon Gift Cards around 2016
  (Figure 3), with a trickle of Bitcoin and other platforms;
* ~60% of proofs show itemised transactions, the rest only a balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import List, Optional, Tuple

import numpy as np

from ..finance.money import Currency, PaymentPlatform
from ..finance.rates import HistoricalRates
from .profiles import ActorProfile, Archetype

__all__ = ["EarningsPlanner", "ProofPlan"]

_RATES = HistoricalRates()

#: Proof-count range per archetype (low, high); heavy reporters post
#: running updates (§5.2: one actor posted 46 images).
_PROOF_RANGE = {
    Archetype.LURKER: (1, 2),
    Archetype.CASUAL: (1, 3),
    Archetype.ACTIVE: (2, 8),
    Archetype.HEAVY: (4, 24),
    Archetype.ELITE: (10, 46),
}

_CURRENCY_WEIGHTS: Tuple[Tuple[Currency, float], ...] = (
    (Currency.USD, 0.78),
    (Currency.GBP, 0.10),
    (Currency.EUR, 0.08),
    (Currency.CAD, 0.02),
    (Currency.AUD, 0.02),
)


def _agc_share(when: datetime) -> float:
    """Probability a proof uses Amazon Gift Cards, by date (Figure 3).

    Marginal AGC/PayPal split before 2014, AGC overtaking PayPal during
    2016 and dominating after.
    """
    year = when.year + (when.month - 1) / 12.0
    if year < 2012.0:
        return 0.05
    if year < 2016.0:
        return 0.05 + (year - 2012.0) * (0.40 / 4.0)
    return min(0.45 + (year - 2016.0) * 0.12, 0.75)


@dataclass(frozen=True)
class ProofPlan:
    """Ground truth behind one proof-of-earnings image.

    This is what a human annotator would read off the screenshot (§5.1):
    platform, currency, transaction dates/amounts, time span and total.
    Amounts are in the proof's own currency; USD conversion happens in
    the measurement pipeline with historical rates.
    """

    date: datetime
    platform: PaymentPlatform
    currency: Currency
    transactions: Tuple[Tuple[datetime, float], ...]
    shows_transactions: bool
    note: Optional[str] = None

    @property
    def total_in_currency(self) -> float:
        return float(sum(amount for _, amount in self.transactions))

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    @property
    def span_days(self) -> float:
        if len(self.transactions) < 2:
            return 0.0
        dates = [d for d, _ in self.transactions]
        return (max(dates) - min(dates)).total_seconds() / 86_400.0


class EarningsPlanner:
    """Draws proof sequences for earning actors."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def plan_actor_proofs(
        self, profile: ActorProfile, window: Tuple[datetime, datetime]
    ) -> List[ProofPlan]:
        """Plan all proofs one actor will post within their window."""
        rng = self.rng
        low, high = _PROOF_RANGE[profile.archetype]
        n_proofs = int(rng.integers(low, high + 1))
        #: Per-actor "skill": scales every transaction; the long tail of
        #: reported income comes from skilled regulars, not many proofs.
        skill = float(np.clip(rng.lognormal(0.0, 0.65), 0.25, 6.0))

        start, end = window
        if end <= start:
            end = start + timedelta(days=30)
        span = (end - start).total_seconds()

        proofs = []
        offsets = np.sort(rng.random(n_proofs))
        for offset in offsets:
            when = start + timedelta(seconds=float(offset) * span)
            proofs.append(self._plan_one(when, skill))
        return proofs

    # ------------------------------------------------------------------
    def _plan_one(self, when: datetime, skill: float) -> ProofPlan:
        rng = self.rng
        platform = self._pick_platform(when)
        currency = self._pick_currency(platform)
        n_transactions = 1 + int(rng.poisson(4.0))
        span_days = float(rng.uniform(1.0, 30.0))
        amounts = self._transaction_amounts(n_transactions, skill)
        if currency.is_crypto:
            # Customers pay dollar-scale values; crypto proofs show the
            # equivalent in coins at the day's rate.
            amounts = np.round(amounts / _RATES.rate_to_usd(currency, when), 6)
        offsets = np.sort(rng.random(n_transactions)) * span_days
        transactions = tuple(
            (when - timedelta(days=span_days - float(offset)), float(amount))
            for offset, amount in zip(offsets, amounts)
        )
        return ProofPlan(
            date=when,
            platform=platform,
            currency=currency,
            transactions=transactions,
            shows_transactions=bool(rng.random() < 0.60),
            note="cam show" if any(a >= 150.0 for a in amounts) else None,
        )

    def _pick_platform(self, when: datetime) -> PaymentPlatform:
        rng = self.rng
        roll = rng.random()
        agc = _agc_share(when)
        if roll < agc:
            return PaymentPlatform.AMAZON_GIFT_CARD
        if roll < agc + 0.02:
            return PaymentPlatform.BITCOIN
        if roll < agc + 0.055:
            return PaymentPlatform(
                ["Skrill", "Western Union", "Cash", "Other"][int(rng.integers(0, 4))]
            )
        return PaymentPlatform.PAYPAL

    def _pick_currency(self, platform: PaymentPlatform) -> Currency:
        rng = self.rng
        if platform is PaymentPlatform.BITCOIN:
            return Currency.BTC
        currencies = [c for c, _ in _CURRENCY_WEIGHTS]
        weights = np.array([w for _, w in _CURRENCY_WEIGHTS])
        weights /= weights.sum()
        return currencies[int(rng.choice(len(currencies), p=weights))]

    def _transaction_amounts(self, n: int, skill: float) -> np.ndarray:
        """Transaction values: US$5–50 image trades, occasional US$150–400
        cam shows (§5.2)."""
        rng = self.rng
        base = rng.lognormal(3.0, 0.65, size=n)
        base = np.clip(base * skill, 3.0, 140.0)
        cam_mask = rng.random(n) < 0.05
        base[cam_mask] = rng.uniform(150.0, 400.0, size=int(cam_mask.sum()))
        return np.round(base, 2)
