"""Forum world generation: forums, boards, actors, threads, posts, packs.

The generator plans every forum's eWhoring activity — thread types,
authorship, reply flows, pack/preview/proof hosting — then emits a
consistent :class:`~repro.forum.dataset.ForumDataset`.  All published
marginals of Table 1 (threads, posts, actors, TOPs, first-post dates per
forum) are generation targets, scaled by ``scale``; actor behaviour comes
from :mod:`repro.synth.profiles`, image supply from
:mod:`repro.synth.models_gen`, money from
:mod:`repro.synth.earnings_gen`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..forum.dataset import ForumDataset
from ..forum.models import Actor, Board, Forum, Post, Thread
from ..media.image import ImageKind, SyntheticImage, sample_latent
from ..media.pack import Pack
from ..web.internet import FetchStatus, SimulatedInternet
from ..web.sites import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    HostingService,
)
from ..web.url import Url
from . import templates as T
from .earnings_gen import EarningsPlanner, ProofPlan
from .models_gen import ModelIdentity, SupplySide
from .profiles import INTEREST_CATEGORIES, ActorProfile, Archetype, sample_profile

__all__ = ["ForumSpec", "FORUM_SPECS", "ForumWorldGenerator", "GeneratedForums", "IdAllocator"]

#: Dataset time bounds (§3: 11/2008 – 03/2019).
DATASET_START = datetime(2008, 4, 1)
DATASET_END = datetime(2019, 3, 31)

#: Fraction of TOPs whose opener contains extractable links (§4.2: 774 of
#: 4 137 = 18.7%); the rest gate the link behind replies or payment.
TOP_LINK_RATE = 0.187

#: Probability a shared pack is an evasion pack (mirrored images ⇒
#: zero-match in reverse search; §4.5 finds 203 / 1 255 such packs).
PACK_EVASION_RATE = 0.14

#: Probability a TOP re-shares an existing pack instead of compiling one.
PACK_RESHARE_RATE = 0.18

#: Fraction of eWhoring headings written in leet-speak / stretched form
#: (the §4.1 noisy-text limitation; the A4 ablation measures the cost).
HEADING_CORRUPTION_RATE = 0.08


@dataclass(frozen=True, slots=True)
class ForumSpec:
    """Full-scale Table 1 targets for one forum."""

    name: str
    n_threads: int
    n_posts: int
    n_actors: int
    n_tops: int
    first_post: Tuple[int, int]  # (year, month)
    has_ewhoring_board: bool = False
    bans_ewhoring: bool = False
    account_trading: bool = False


#: Table 1, verbatim ("Others (4)" split into four small forums).
FORUM_SPECS: Tuple[ForumSpec, ...] = (
    ForumSpec("Hackforums", 42_292, 596_827, 64_035, 4_027, (2008, 11),
              has_ewhoring_board=True),
    ForumSpec("OGUsers", 1_744, 23_974, 5_586, 76, (2017, 4), account_trading=True),
    ForumSpec("BlackHatWorld", 258, 2_694, 1_420, 0, (2008, 4), bans_ewhoring=True),
    ForumSpec("V3rmillion", 95, 1_348, 697, 6, (2016, 2)),
    ForumSpec("MPGH", 62, 922, 341, 12, (2012, 7)),
    ForumSpec("RaidForums", 48, 405, 318, 10, (2015, 3)),
    ForumSpec("DarkestNet", 6, 160, 150, 2, (2015, 5)),
    ForumSpec("LeakLounge", 6, 170, 160, 2, (2015, 8)),
    ForumSpec("CrackSpot", 5, 150, 140, 1, (2016, 1)),
    ForumSpec("NullBay", 4, 134, 135, 1, (2016, 6)),
)


class IdAllocator:
    """Monotonic id source shared across the world build."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)

    def take(self, n: int) -> List[int]:
        return [next(self._counter) for _ in range(n)]


# ----------------------------------------------------------------------
# Plan records (pre-emission representations)
# ----------------------------------------------------------------------

@dataclass
class GenActor:
    """One planned actor.

    ``win_start``/``win_end`` bound the actor's eWhoring involvement: all
    their eWhoring posts fall inside this window, so the Table 8
    before/after spans and the Figure 4 CDFs have the right structure
    (actors join, are active for a while, then move on).
    """

    actor_id: int
    forum_id: int
    username: str
    profile: ActorProfile
    win_start: datetime = DATASET_START
    win_end: datetime = DATASET_END
    #: Post budget within this forum (the global activity curve scaled by
    #: the forum's posts-per-actor ratio from Table 1).
    budget: int = 1
    first_ewhoring: Optional[datetime] = None
    last_ewhoring: Optional[datetime] = None


@dataclass
class ReplyPlan:
    author_id: int
    created_at: datetime
    content: str
    #: Index (position) of the quoted post within the thread, or None.
    quote_position: Optional[int] = None


@dataclass
class ThreadPlan:
    thread_id: int
    forum_id: int
    board_id: int
    thread_type: str
    heading: str
    author_id: int
    created_at: datetime
    opener: str
    replies: List[ReplyPlan] = field(default_factory=list)
    is_ewhoring: bool = True
    pack_ids: Tuple[int, ...] = ()
    #: Relative pull on repliers; reply counts emerge from attractiveness
    #: times the audience active at the thread's date (heavy-tailed).
    attractiveness: float = 1.0


@dataclass
class GeneratedForums:
    """Everything the forum generator produced, plus ground truth."""

    dataset: ForumDataset
    actors: Dict[int, GenActor]
    #: Ground-truth thread types: thread_id -> type string
    #: ("top", "request", "tutorial", "earnings", "discussion",
    #:  "account_trade", "ce", "other").
    thread_types: Dict[int, str]
    packs: Dict[int, Pack]
    #: pack_id -> URLs it was hosted at.
    pack_urls: Dict[int, List[Url]]
    #: preview image id -> (source pack id, url).
    preview_sources: Dict[int, Tuple[int, Url]]
    #: proof ground truth: image id -> ProofPlan.
    proof_truth: Dict[int, ProofPlan]
    #: image ids of earnings-link images that are NOT proofs.
    non_proof_earning_images: Set[int]
    #: thread ids on the Currency Exchange board.
    ce_thread_ids: List[int]
    #: actor ids who shared at least one pack.
    pack_sharer_ids: Set[int]
    #: actor ids who posted proof-of-earnings.
    earner_ids: Set[int]


# ----------------------------------------------------------------------
# Helper samplers
# ----------------------------------------------------------------------

def _service_sampler(
    rng: np.random.Generator, services: Sequence[HostingService]
):
    weights = np.array([s.weight for s in services], dtype=np.float64)
    weights /= weights.sum()

    def sample() -> HostingService:
        return services[int(rng.choice(len(services), p=weights))]

    return sample


def _ramp_date(rng: np.random.Generator, start: datetime, end: datetime) -> datetime:
    """Sample a date with linearly increasing density (forum growth)."""
    span = (end - start).total_seconds()
    u = float(np.sqrt(rng.random()))  # CDF of a linear ramp
    return start + timedelta(seconds=u * span)


def _reply_schedule(
    rng: np.random.Generator, created_at: datetime, n_replies: int
) -> List[datetime]:
    """Reply timestamps: bursty at first, long tail afterwards.

    Replies that would land beyond the dataset's crawl date are dropped
    (not clamped): the scrape simply never saw them, and clamping would
    pile an artificial spike onto the final month.
    """
    if n_replies == 0:
        return []
    gaps = rng.exponential(2.0, size=n_replies)  # days
    gaps[0] = rng.exponential(0.25)
    times = np.cumsum(gaps)
    stamps = [created_at + timedelta(days=float(t)) for t in times]
    return [s for s in stamps if s <= DATASET_END]


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------

class ForumWorldGenerator:
    """Plans and emits the whole multi-forum dataset."""

    def __init__(
        self,
        rng: np.random.Generator,
        supply: SupplySide,
        internet: SimulatedInternet,
        ids: IdAllocator,
        scale: float = 0.05,
        with_other_activity: bool = True,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.rng = rng
        self.supply = supply
        self.internet = internet
        self.ids = ids
        self.scale = scale
        self.with_other_activity = with_other_activity
        self.earnings = EarningsPlanner(rng)

        self._image_service = _service_sampler(rng, IMAGE_SHARING_SERVICES)
        self._cloud_service = _service_sampler(rng, CLOUD_STORAGE_SERVICES)

        # Model popularity for pack compilation: Zipf over models.
        ranks = np.arange(1, len(supply.models) + 1, dtype=np.float64)
        self._model_weights = 1.0 / ranks**0.8
        self._model_weights /= self._model_weights.sum()

        # Outputs
        self.dataset = ForumDataset()
        self.actors: Dict[int, GenActor] = {}
        self.thread_types: Dict[int, str] = {}
        self.packs: Dict[int, Pack] = {}
        self.pack_urls: Dict[int, List[Url]] = {}
        self.preview_sources: Dict[int, Tuple[int, Url]] = {}
        self.proof_truth: Dict[int, ProofPlan] = {}
        self.non_proof_earning_images: Set[int] = set()
        self.ce_thread_ids: List[int] = []
        self.pack_sharer_ids: Set[int] = set()
        self.earner_ids: Set[int] = set()
        self._pack_counter = itertools.count(1)
        self._reshare_pool: List[Pack] = []

    # ------------------------------------------------------------------
    def generate(self) -> GeneratedForums:
        """Generate every forum and return the populated world slice."""
        for spec in FORUM_SPECS:
            self._generate_forum(spec)
        return GeneratedForums(
            dataset=self.dataset,
            actors=self.actors,
            thread_types=self.thread_types,
            packs=self.packs,
            pack_urls=self.pack_urls,
            preview_sources=self.preview_sources,
            proof_truth=self.proof_truth,
            non_proof_earning_images=self.non_proof_earning_images,
            ce_thread_ids=self.ce_thread_ids,
            pack_sharer_ids=self.pack_sharer_ids,
            earner_ids=self.earner_ids,
        )

    # ------------------------------------------------------------------
    def _scaled(self, value: int, minimum: int = 0) -> int:
        return max(minimum, int(round(value * self.scale)))

    def _generate_forum(self, spec: ForumSpec) -> None:
        rng = self.rng
        forum_id = self.ids.next()
        forum = Forum(
            forum_id=forum_id,
            name=spec.name,
            has_ewhoring_board=spec.has_ewhoring_board,
            bans_ewhoring=spec.bans_ewhoring,
        )
        self.dataset.add_forum(forum)
        boards = self._make_boards(spec, forum_id)

        n_actors = self._scaled(spec.n_actors, minimum=8)
        n_threads = self._scaled(spec.n_threads, minimum=3)
        n_tops = min(self._scaled(spec.n_tops), n_threads)
        if spec.n_tops > 0 and n_tops == 0:
            n_tops = 1

        forum_start = datetime(spec.first_post[0], spec.first_post[1], 1)

        # --- actors -----------------------------------------------------
        gen_actors = self._make_actors(spec, forum_id, n_actors, forum_start)

        # --- eWhoring threads -------------------------------------------
        thread_plans = self._plan_ewhoring_threads(
            spec, forum_id, boards, gen_actors, n_threads, n_tops,
            forum_start,
        )
        self._assign_replies(gen_actors, thread_plans)
        self._set_ewhoring_windows(gen_actors, thread_plans)

        # --- earnings proofs (inserted into earnings threads) ------------
        self._plan_earnings(spec, gen_actors, thread_plans)

        # --- currency exchange / other boards ----------------------------
        ce_plans: List[ThreadPlan] = []
        other_plans: List[ThreadPlan] = []
        if spec.has_ewhoring_board:
            ce_plans = self._plan_currency_exchange(forum_id, boards, gen_actors)
        if self.with_other_activity:
            other_plans = self._plan_other_activity(forum_id, boards, gen_actors, forum_start)

        # --- emission -----------------------------------------------------
        self._emit_actors(gen_actors, forum_start)
        for plan in itertools.chain(thread_plans, ce_plans, other_plans):
            self._emit_thread(plan)

    # ------------------------------------------------------------------
    def _make_boards(self, spec: ForumSpec, forum_id: int) -> Dict[str, Board]:
        boards: Dict[str, Board] = {}

        def add(key: str, name: str, category: Optional[str], **flags) -> None:
            board = Board(
                board_id=self.ids.next(),
                forum_id=forum_id,
                name=name,
                category=category,
                **flags,
            )
            self.dataset.add_board(board)
            boards[key] = board

        for category in INTEREST_CATEGORIES:
            add(category, f"{category} Discussion", category)
        if spec.has_ewhoring_board:
            add("ewhoring", "eWhoring", "Market", is_ewhoring_board=True)
            add("ce", "Currency Exchange", "Market", is_currency_exchange=True)
            add("bragging", "Bragging Rights", "Common", is_bragging_board=True)
        return boards

    #: Mean eWhoring-involvement span in days per archetype.
    _WINDOW_SPAN_MEAN = {
        Archetype.LURKER: 25.0,
        Archetype.CASUAL: 130.0,
        Archetype.ACTIVE: 420.0,
        Archetype.HEAVY: 900.0,
        Archetype.ELITE: 1500.0,
    }

    def _make_actors(
        self, spec: ForumSpec, forum_id: int, n_actors: int, forum_start: datetime
    ) -> List[GenActor]:
        rng = self.rng
        # Per-forum activity factor: Table 1's posts-per-actor ratio over
        # the global curve's mean (~8.6) — small forums host drive-by
        # posters, Hackforums the regulars.
        forum_factor = spec.n_posts / (spec.n_actors * 8.6)
        actors: List[GenActor] = []
        for _ in range(n_actors):
            profile = sample_profile(rng)
            actor_id = self.ids.next()
            username = f"{T.choose(rng, T.GIRL_NAMES).lower()}_{spec.name[:2].lower()}{actor_id}"
            start = _ramp_date(rng, forum_start, DATASET_END)
            span_days = float(
                rng.exponential(self._WINDOW_SPAN_MEAN[profile.archetype])
            ) + 3.0
            end = min(start + timedelta(days=span_days), DATASET_END)
            if end <= start:
                end = min(start + timedelta(days=3), DATASET_END)
                start = end - timedelta(days=3)
            actors.append(
                GenActor(
                    actor_id=actor_id,
                    forum_id=forum_id,
                    username=username,
                    profile=profile,
                    win_start=start,
                    win_end=end,
                    budget=max(1, int(round(profile.ewhoring_posts * forum_factor))),
                )
            )
        return actors

    # ------------------------------------------------------------------
    # eWhoring thread planning
    # ------------------------------------------------------------------
    def _plan_ewhoring_threads(
        self,
        spec: ForumSpec,
        forum_id: int,
        boards: Dict[str, Board],
        gen_actors: List[GenActor],
        n_threads: int,
        n_tops: int,
        forum_start: datetime,
    ) -> List[ThreadPlan]:
        rng = self.rng
        board = boards["ewhoring"] if spec.has_ewhoring_board else boards["Market"]

        sharers = [a for a in gen_actors if a.profile.shares_packs]
        actives = [a for a in gen_actors
                   if a.profile.archetype in (Archetype.ACTIVE, Archetype.HEAVY, Archetype.ELITE)]
        casuals = [a for a in gen_actors
                   if a.profile.archetype in (Archetype.LURKER, Archetype.CASUAL)]
        if not sharers:
            sharers = gen_actors[:1]
        if not actives:
            actives = gen_actors[:1]
        if not casuals:
            casuals = gen_actors

        # Expand sharers by their pack budget, then cycle to cover n_tops.
        top_authors: List[GenActor] = []
        for sharer in sharers:
            top_authors.extend([sharer] * max(sharer.profile.n_packs_shared, 1))
        rng.shuffle(top_authors)  # type: ignore[arg-type]
        if len(top_authors) < n_tops:
            top_authors = list(
                itertools.islice(itertools.cycle(top_authors or gen_actors), n_tops)
            )

        n_rest = n_threads - n_tops
        type_sequence = ["top"] * n_tops
        if spec.account_trading:
            mix = [("account_trade", 0.55), ("request", 0.15),
                   ("discussion", 0.20), ("tutorial", 0.05), ("earnings", 0.05)]
        elif spec.bans_ewhoring:
            mix = [("discussion", 0.55), ("tutorial", 0.20), ("request", 0.25)]
        else:
            mix = [("request", 0.24), ("tutorial", 0.10),
                   ("earnings", 0.08), ("discussion", 0.58)]
        names = [name for name, _ in mix]
        weights = np.array([w for _, w in mix])
        weights /= weights.sum()
        type_sequence.extend(
            names[i] for i in rng.choice(len(names), size=n_rest, p=weights)
        )

        plans: List[ThreadPlan] = []
        top_author_iter = iter(top_authors)
        for thread_type in type_sequence:
            if thread_type == "top":
                author = next(top_author_iter)
                created_at = self._date_in_window(author)
                plan = self._plan_top_thread(spec, forum_id, board, author, created_at)
            else:
                author = self._pick_author(thread_type, actives, casuals, gen_actors)
                created_at = self._date_in_window(author)
                heading, opener = self._render_thread_text(spec, thread_type)
                thread_board = board
                if (
                    thread_type == "earnings"
                    and "bragging" in boards
                    and rng.random() < 0.4
                ):
                    # Part of the earnings bragging happens on the
                    # dedicated Bragging Rights board (§5.1).
                    thread_board = boards["bragging"]
                plan = ThreadPlan(
                    thread_id=self.ids.next(),
                    forum_id=forum_id,
                    board_id=thread_board.board_id,
                    thread_type=thread_type,
                    heading=heading,
                    author_id=author.actor_id,
                    created_at=created_at,
                    opener=opener,
                )
            multiplier = {"top": 4.0, "earnings": 1.8}.get(thread_type, 1.0)
            plan.attractiveness = float(rng.lognormal(0.0, 1.2)) * multiplier
            plans.append(plan)
            self.thread_types[plan.thread_id] = thread_type
        return plans

    def _date_in_window(self, actor: GenActor) -> datetime:
        """A date within the actor's involvement window."""
        span = (actor.win_end - actor.win_start).total_seconds()
        return actor.win_start + timedelta(seconds=float(self.rng.random()) * span)

    def _pick_author(
        self,
        thread_type: str,
        actives: List[GenActor],
        casuals: List[GenActor],
        everyone: List[GenActor],
    ) -> GenActor:
        rng = self.rng
        if thread_type in ("tutorial", "earnings"):
            pool = actives
        elif thread_type == "request":
            pool = casuals
        else:
            pool = everyone
        return pool[int(rng.integers(0, len(pool)))]

    def _render_thread_text(self, spec: ForumSpec, thread_type: str) -> Tuple[str, str]:
        rng = self.rng
        needs_keyword = not spec.has_ewhoring_board
        pools = {
            "request": (T.REQUEST_HEADINGS, T.REQUEST_HARD_HEADINGS, 0.015),
            "tutorial": (T.TUTORIAL_HEADINGS, (), 0.0),
            "earnings": (T.EARNINGS_HEADINGS, (), 0.0),
            "discussion": (T.DISCUSSION_HEADINGS, T.DISCUSSION_HARD_HEADINGS, 0.012),
            "account_trade": (T.ACCOUNT_TRADE_HEADINGS, (), 0.0),
        }
        if spec.bans_ewhoring:
            common, rare, p_rare = T.BHW_HEADINGS, (), 0.0
        else:
            common, rare, p_rare = pools[thread_type]
        heading = T.render_template(rng, T.choose_mixed(rng, common, rare, p_rare))
        if rng.random() < HEADING_CORRUPTION_RATE:
            heading = T.corrupt_heading(rng, heading)
        if needs_keyword and "ewhor" not in heading.lower() and "e-whor" not in heading.lower():
            heading = f"{heading} (ewhoring)"
        opener = T.render_template(rng, T.choose(rng, T.REPLY_BODIES))
        if thread_type == "earnings":
            opener = "Post your proof screenshots below, let's compare earnings."
        return heading, opener

    # ------------------------------------------------------------------
    # TOP threads: packs, previews, hosting
    # ------------------------------------------------------------------
    def _plan_top_thread(
        self,
        spec: ForumSpec,
        forum_id: int,
        board: Board,
        author: GenActor,
        created_at: datetime,
    ) -> ThreadPlan:
        rng = self.rng
        self.pack_sharer_ids.add(author.actor_id)
        pack = self._obtain_pack(author, created_at)
        heading = T.render_template(
            rng, T.choose_mixed(rng, T.TOP_HEADINGS, T.TOP_HARD_HEADINGS, 0.10)
        )
        if rng.random() < HEADING_CORRUPTION_RATE:
            heading = T.corrupt_heading(rng, heading)
        if not spec.has_ewhoring_board and "ewhor" not in heading.lower():
            heading = f"[ewhoring] {heading}"

        # Only a minority of TOPs carry extractable links (§4.2: 18.7%);
        # the rest gate previews and packs behind replies or payment, so
        # nothing is hosted for them.
        with_links = rng.random() < TOP_LINK_RATE
        pack_ids = [pack.pack_id]
        if with_links:
            preview_urls = self._host_previews(pack, created_at)
            pack_urls = self._host_pack(pack, created_at)
            # Big sharers dump several sets/mirrors per thread (the paper
            # downloads 1 255 packs from 774 link-bearing threads).
            for _ in range(int(rng.poisson(0.6))):
                extra = self._obtain_pack(author, created_at)
                pack_ids.append(extra.pack_id)
                pack_urls.extend(self._host_pack(extra, created_at))
            opener_template = T.choose(rng, T.TOP_OPENERS)
            opener = T.render_template(
                rng,
                opener_template,
                previews=" ".join(str(u) for u in preview_urls),
                packlink=" ".join(str(u) for u in pack_urls),
            )
        else:
            opener_template = T.choose(rng, T.TOP_OPENERS_GATED)
            opener = T.render_template(rng, opener_template, previews="")
        return ThreadPlan(
            thread_id=self.ids.next(),
            forum_id=forum_id,
            board_id=board.board_id,
            thread_type="top",
            heading=heading,
            author_id=author.actor_id,
            created_at=created_at,
            opener=opener,
            pack_ids=tuple(pack_ids),
        )

    def _obtain_pack(self, author: GenActor, when: datetime) -> Pack:
        rng = self.rng
        if self._reshare_pool and rng.random() < PACK_RESHARE_RATE:
            pack = self._reshare_pool[int(rng.integers(0, len(self._reshare_pool)))]
            return pack

        model_index = int(rng.choice(len(self.supply.models), p=self._model_weights))
        model = self.supply.models[model_index]
        n_images = int(np.clip(rng.lognormal(4.31, 0.6), 8, 400))
        pool = model.pool
        if n_images >= len(pool):
            chosen = list(pool)
        else:
            indices = rng.choice(len(pool), size=n_images, replace=False)
            chosen = [pool[int(i)] for i in indices]

        evading = rng.random() < PACK_EVASION_RATE
        if evading:
            images = []
            for circulating in chosen:
                latent = circulating.image.latent.with_transform("mirror")
                images.append(SyntheticImage(self.ids.next(), latent))
            evasion = ("mirror",)
        else:
            images = [c.image for c in chosen]
            evasion = ()

        pack = Pack(
            pack_id=next(self._pack_counter),
            model_id=model.model_id,
            images=images,
            compiler_actor_id=author.actor_id,
            saturated=not evading,
            evasion=evasion,
        )
        self.packs[pack.pack_id] = pack
        self._reshare_pool.append(pack)
        return pack

    def _host_pack(self, pack: Pack, when: datetime) -> List[Url]:
        rng = self.rng
        n_links = 1 + int(rng.poisson(1.1))
        urls: List[Url] = []
        for _ in range(n_links):
            service = self._cloud_service()
            url = self.internet.host_on_service(service, pack, when, contains_nudity=True)
            urls.append(url)
        self.pack_urls.setdefault(pack.pack_id, []).extend(urls)
        return urls

    def _host_previews(self, pack: Pack, when: datetime) -> List[Url]:
        rng = self.rng
        n_previews = 1 + int(rng.poisson(8.4))
        urls: List[Url] = []
        for _ in range(n_previews):
            service = self._image_service()
            roll = rng.random()
            if roll < 0.06:
                # A screenshot of the pack's directory listing (§4.4).
                latent = sample_latent(rng, ImageKind.DIRECTORY_THUMB)
                image = SyntheticImage(self.ids.next(), latent)
            else:
                source = pack.images[int(rng.integers(0, len(pack.images)))]
                transform = self._preview_transform(roll)
                if transform is None:
                    latent = source.latent
                else:
                    latent = source.latent.with_transform(transform)
                image = SyntheticImage(self.ids.next(), latent)
            url = self.internet.host_on_service(service, image, when, contains_nudity=True)
            hosted = self.internet.hosted(url)
            assert hosted is not None
            if hosted.status is FetchStatus.REMOVED_TOS:
                # Image hosts serve an error *image* for removed content,
                # which the crawler downloads (§4.4 observes these).
                banner = SyntheticImage(
                    self.ids.next(), sample_latent(rng, ImageKind.ERROR_BANNER)
                )
                hosted.resource = banner
                hosted.status = FetchStatus.OK
            self.preview_sources[image.image_id] = (pack.pack_id, url)
            urls.append(url)
        return urls

    @staticmethod
    def _preview_transform(roll: float) -> Optional[str]:
        """Transform mix for previews (actors brand/evade; §4.5)."""
        if roll < 0.40:
            return None
        if roll < 0.66:
            return "watermark"
        if roll < 0.84:
            return "shadow"
        return "mirror"

    # ------------------------------------------------------------------
    # Reply assignment and actor windows
    # ------------------------------------------------------------------
    #: Hard cap on replies per thread (forum software paginates; the
    #: biggest sticky threads top out around a thousand replies).
    _MAX_REPLIES = 1000

    def _assign_replies(
        self,
        gen_actors: List[GenActor],
        plans: List[ThreadPlan],
    ) -> None:
        """Distribute each actor's post budget over threads in their window.

        Every actor spends their budget on threads created while they
        were involved, drawn proportionally to thread attractiveness.
        Reply counts per thread therefore emerge as (attractiveness ×
        audience at that date) — heavy-tailed, with popular TOPs largest,
        and each actor's eWhoring activity confined to their window.
        """
        rng = self.rng
        if not plans:
            return
        order = sorted(range(len(plans)), key=lambda i: plans[i].created_at)
        sorted_plans = [plans[i] for i in order]
        dates = np.array([p.created_at.timestamp() for p in sorted_plans])
        attract = np.array([p.attractiveness for p in sorted_plans], dtype=np.float64)
        cumulative = np.cumsum(attract)

        assigned: List[List[int]] = [[] for _ in sorted_plans]
        n_plans = len(sorted_plans)
        for actor in gen_actors:
            i0 = int(np.searchsorted(dates, actor.win_start.timestamp(), side="left"))
            i1 = int(np.searchsorted(dates, actor.win_end.timestamp(), side="right"))
            if i1 <= i0:
                # Nothing created during the window: post in the threads
                # nearest in time instead of not at all.
                i1 = min(n_plans, i0 + 3)
                i0 = max(0, i1 - 3)
            base = cumulative[i0 - 1] if i0 > 0 else 0.0
            total = cumulative[i1 - 1] - base
            if total <= 0.0:
                continue
            draws = rng.random(actor.budget) * total + base
            picks = np.searchsorted(cumulative, draws, side="left")
            for pick in picks:
                assigned[int(pick)].append(actor.actor_id)

        for plan, author_ids in zip(sorted_plans, assigned):
            if len(author_ids) > self._MAX_REPLIES:
                author_ids = author_ids[: self._MAX_REPLIES]
            rng.shuffle(author_ids)  # type: ignore[arg-type]
            stamps = _reply_schedule(rng, plan.created_at, len(author_ids))
            pool = T.TOP_REPLY_BODIES if plan.thread_type == "top" else T.REPLY_BODIES
            replies: List[ReplyPlan] = []
            for reply_index, (author_id, stamp) in enumerate(zip(author_ids, stamps)):
                quote: Optional[int] = None
                if reply_index > 0 and rng.random() < 0.25:
                    quote = int(rng.integers(0, reply_index + 1))
                replies.append(
                    ReplyPlan(
                        author_id=author_id,
                        created_at=stamp,
                        content=T.choose(rng, pool),
                        quote_position=quote,
                    )
                )
            plan.replies = replies

    def _set_ewhoring_windows(
        self, gen_actors: List[GenActor], plans: List[ThreadPlan]
    ) -> None:
        by_id = {a.actor_id: a for a in gen_actors}
        for plan in plans:
            self._touch_window(by_id.get(plan.author_id), plan.created_at)
            for reply in plan.replies:
                self._touch_window(by_id.get(reply.author_id), reply.created_at)
        # Actors with no eWhoring activity at this scale still need a
        # window for the other-activity planner: give them a token one.
        for actor in gen_actors:
            if actor.first_ewhoring is None:
                midpoint = DATASET_START + (DATASET_END - DATASET_START) / 2
                actor.first_ewhoring = midpoint
                actor.last_ewhoring = midpoint

    @staticmethod
    def _touch_window(actor: Optional[GenActor], when: datetime) -> None:
        if actor is None:
            return
        if actor.first_ewhoring is None or when < actor.first_ewhoring:
            actor.first_ewhoring = when
        if actor.last_ewhoring is None or when > actor.last_ewhoring:
            actor.last_ewhoring = when

    # ------------------------------------------------------------------
    # Earnings
    # ------------------------------------------------------------------
    def _plan_earnings(
        self,
        spec: ForumSpec,
        gen_actors: List[GenActor],
        plans: List[ThreadPlan],
    ) -> None:
        rng = self.rng
        earnings_threads = [p for p in plans if p.thread_type == "earnings"]
        if not earnings_threads:
            return
        earners = [a for a in gen_actors if a.profile.posts_earnings]
        for actor in earners:
            self.earner_ids.add(actor.actor_id)
            window = (actor.first_ewhoring or DATASET_START,
                      actor.last_ewhoring or DATASET_END)
            proofs = self.earnings.plan_actor_proofs(actor.profile, window)
            for proof in proofs:
                url, image_id, is_proof = self._host_earning_image(proof)
                if image_id is not None:
                    if is_proof:
                        self.proof_truth[image_id] = proof
                    else:
                        self.non_proof_earning_images.add(image_id)
                # Post into an earnings thread that already exists at the
                # proof's date, so the posted_at timeline matches the
                # platform era (Figure 3 depends on this coherence).
                candidates = [
                    t for t in earnings_threads if t.created_at <= proof.date
                ]
                if not candidates:
                    candidates = earnings_threads
                thread = candidates[int(rng.integers(0, len(candidates)))]
                body_pool = (
                    T.PROOF_MENTION_BODIES if rng.random() < 0.3 else T.EARNINGS_POST_BODIES
                )
                content = T.render_template(
                    rng,
                    T.choose(rng, body_pool),
                    url=str(url),
                    amount=f"${proof.total_in_currency:,.0f}",
                )
                thread.replies.append(
                    ReplyPlan(
                        author_id=actor.actor_id,
                        created_at=min(max(proof.date, thread.created_at), DATASET_END),
                        content=content,
                    )
                )

    def _host_earning_image(
        self, proof: ProofPlan
    ) -> Tuple[Url, Optional[int], bool]:
        """Host the image behind one earnings link.

        Most links point to genuine proof screenshots; some to chat
        screenshots or banners (the 199 non-proofs of §5.1); a few to
        indecent pack previews that the NSFV filter must catch.
        """
        rng = self.rng
        roll = rng.random()
        if roll < 0.79:
            latent = sample_latent(rng, ImageKind.PROOF_SCREENSHOT)
            is_proof = True
        elif roll < 0.875:
            kind = ImageKind.CHAT_SCREENSHOT if rng.random() < 0.8 else ImageKind.ERROR_BANNER
            latent = sample_latent(rng, kind)
            is_proof = False
        else:
            # An indecent image slipped into an earnings thread.
            model = self.supply.models[int(rng.integers(0, len(self.supply.models)))]
            source = model.pool[int(rng.integers(0, len(model.pool)))]
            latent = source.image.latent
            is_proof = False
        image = SyntheticImage(self.ids.next(), latent)
        service = self._image_service()
        url = self.internet.host_on_service(
            service, image, proof.date, contains_nudity=latent.kind.is_nude
        )
        hosted = self.internet.hosted(url)
        assert hosted is not None
        if hosted.status is not FetchStatus.OK:
            return url, None, False
        return url, image.image_id, is_proof

    # ------------------------------------------------------------------
    # Currency Exchange
    # ------------------------------------------------------------------

    #: Joint (offered, wanted) weights calibrated to Table 7 marginals.
    _CE_JOINT: Tuple[Tuple[str, str, float], ...] = (
        ("PayPal", "BTC", 0.300),
        ("PayPal", "?", 0.055),
        ("PayPal", "AGC", 0.018),
        ("PayPal", "others", 0.020),
        ("PayPal", "PayPal", 0.015),
        ("BTC", "PayPal", 0.230),
        ("BTC", "?", 0.040),
        ("BTC", "others", 0.018),
        ("BTC", "AGC", 0.014),
        ("AGC", "BTC", 0.105),
        ("AGC", "PayPal", 0.050),
        ("AGC", "?", 0.010),
        ("?", "?", 0.062),
        ("?", "BTC", 0.018),
        ("?", "PayPal", 0.012),
        ("others", "PayPal", 0.012),
        ("others", "BTC", 0.014),
        ("others", "?", 0.007),
    )

    _CE_ALIASES: Dict[str, Tuple[str, ...]] = {
        "PayPal": ("PayPal", "pp", "Paypal $%d" , "PP"),
        "BTC": ("BTC", "bitcoin", "Btc", "$%d BTC"),
        "AGC": ("Amazon GC", "AGC", "amazon gift card", "$%d amazon"),
        "others": ("Skrill", "LTC", "WU", "paysafecard", "steam"),
    }

    def _plan_currency_exchange(
        self, forum_id: int, boards: Dict[str, Board], gen_actors: List[GenActor]
    ) -> List[ThreadPlan]:
        rng = self.rng
        board = boards["ce"]
        users = [a for a in gen_actors if a.profile.uses_currency_exchange]
        joint = self._CE_JOINT
        weights = np.array([w for _, _, w in joint], dtype=np.float64)
        weights /= weights.sum()

        plans: List[ThreadPlan] = []
        for actor in users:
            start = actor.first_ewhoring or DATASET_START
            end = min(
                (actor.last_ewhoring or DATASET_END)
                + timedelta(days=actor.profile.days_after),
                DATASET_END,
            )
            if end <= start:
                end = min(start + timedelta(days=30), DATASET_END)
            for _ in range(actor.profile.n_ce_threads):
                offered, wanted, _ = joint[int(rng.choice(len(joint), p=weights))]
                heading = self._ce_heading(offered, wanted)
                created_at = start + (end - start) * float(rng.random())
                plan = ThreadPlan(
                    thread_id=self.ids.next(),
                    forum_id=forum_id,
                    board_id=board.board_id,
                    thread_type="ce",
                    heading=heading,
                    author_id=actor.actor_id,
                    created_at=created_at,
                    opener=T.choose(rng, T.REPLY_BODIES),
                    is_ewhoring=False,
                )
                n_replies = int(rng.poisson(1.2))
                stamps = _reply_schedule(rng, created_at, n_replies)
                others = [a for a in gen_actors if a.actor_id != actor.actor_id]
                plan.replies = [
                    ReplyPlan(
                        author_id=others[int(rng.integers(0, len(others)))].actor_id,
                        created_at=stamp,
                        content=T.choose(rng, T.REPLY_BODIES),
                    )
                    for stamp in stamps
                ]
                plans.append(plan)
                self.ce_thread_ids.append(plan.thread_id)
                self.thread_types[plan.thread_id] = "ce"
        return plans

    def _ce_heading(self, offered: str, wanted: str) -> str:
        rng = self.rng
        if offered == "?" and wanted == "?":
            return T.choose(rng, T.CE_FALLBACK_HEADINGS)

        def render(bucket: str) -> str:
            if bucket == "?":
                return T.choose(rng, ("rare items", "offers", "anything good"))
            alias = T.choose(rng, self._CE_ALIASES[bucket])
            if "%d" in alias:
                return alias % int(rng.integers(10, 500))
            return alias

        return f"[H] {render(offered)} [W] {render(wanted)}"

    # ------------------------------------------------------------------
    # Other-board activity
    # ------------------------------------------------------------------
    def _plan_other_activity(
        self,
        forum_id: int,
        boards: Dict[str, Board],
        gen_actors: List[GenActor],
        forum_start: datetime,
    ) -> List[ThreadPlan]:
        rng = self.rng
        # Collect per-category dated posts for every actor, then pack them
        # into threads of ~8 posts per category.
        category_posts: Dict[str, List[Tuple[datetime, int]]] = {
            c: [] for c in INTEREST_CATEGORIES
        }
        phase_split = (("before", 0.30), ("during", 0.45), ("after", 0.25))
        for actor in gen_actors:
            profile = actor.profile
            if profile.other_posts <= 0:
                continue
            first = actor.first_ewhoring or forum_start
            last = actor.last_ewhoring or first
            windows = {
                "before": (first - timedelta(days=max(profile.days_before, 1.0)), first),
                "during": (first, max(last, first + timedelta(days=1))),
                "after": (last, last + timedelta(days=max(profile.days_after, 1.0))),
            }
            for phase, share in phase_split:
                n_phase = int(round(profile.other_posts * share))
                if n_phase == 0:
                    continue
                lo, hi = windows[phase]
                lo = max(lo, DATASET_START - timedelta(days=365))
                hi = min(max(hi, lo + timedelta(days=1)), DATASET_END)
                span = (hi - lo).total_seconds()
                mix = np.asarray(profile.interests[phase])
                choices = rng.choice(len(INTEREST_CATEGORIES), size=n_phase, p=mix)
                offsets = rng.random(n_phase)
                for cat_index, offset in zip(choices, offsets):
                    when = lo + timedelta(seconds=float(offset) * span)
                    category_posts[INTEREST_CATEGORIES[int(cat_index)]].append(
                        (when, actor.actor_id)
                    )

        plans: List[ThreadPlan] = []
        for category, posts in category_posts.items():
            if not posts:
                continue
            posts.sort(key=lambda pair: pair[0])
            board = boards[category]
            chunk = 8
            for start in range(0, len(posts), chunk):
                group = posts[start : start + chunk]
                when, author_id = group[0]
                plan = ThreadPlan(
                    thread_id=self.ids.next(),
                    forum_id=forum_id,
                    board_id=board.board_id,
                    thread_type="other",
                    heading=T.render_template(rng, T.choose(rng, T.OTHER_BOARD_HEADINGS)),
                    author_id=author_id,
                    created_at=when,
                    opener=T.choose(rng, T.OTHER_BOARD_BODIES),
                    is_ewhoring=False,
                )
                plan.replies = [
                    ReplyPlan(
                        author_id=reply_author,
                        created_at=reply_when,
                        content=T.choose(rng, T.OTHER_BOARD_BODIES),
                    )
                    for reply_when, reply_author in group[1:]
                ]
                plans.append(plan)
                self.thread_types[plan.thread_id] = "other"
        return plans

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_actors(self, gen_actors: List[GenActor], forum_start: datetime) -> None:
        for actor in gen_actors:
            first = actor.first_ewhoring or forum_start
            registered = first - timedelta(days=actor.profile.days_before + 1.0)
            registered = max(registered, DATASET_START - timedelta(days=730))
            self.dataset.add_actor(
                Actor(
                    actor_id=actor.actor_id,
                    forum_id=actor.forum_id,
                    username=actor.username,
                    registered_at=registered,
                )
            )
            self.actors[actor.actor_id] = actor

    def _emit_thread(self, plan: ThreadPlan) -> None:
        self.dataset.add_thread(
            Thread(
                thread_id=plan.thread_id,
                board_id=plan.board_id,
                forum_id=plan.forum_id,
                author_id=plan.author_id,
                heading=plan.heading,
                created_at=plan.created_at,
            )
        )
        opener_id = self.ids.next()
        self.dataset.add_post(
            Post(
                post_id=opener_id,
                thread_id=plan.thread_id,
                author_id=plan.author_id,
                created_at=plan.created_at,
                content=plan.opener,
                position=0,
            )
        )
        replies = sorted(plan.replies, key=lambda r: r.created_at)
        position_to_id: Dict[int, int] = {0: opener_id}
        for position, reply in enumerate(replies, start=1):
            post_id = self.ids.next()
            quoted_id: Optional[int] = None
            if reply.quote_position is not None:
                quoted_id = position_to_id.get(min(reply.quote_position, position - 1))
            self.dataset.add_post(
                Post(
                    post_id=post_id,
                    thread_id=plan.thread_id,
                    author_id=reply.author_id,
                    created_at=reply.created_at,
                    content=reply.content,
                    position=position,
                    quoted_post_id=quoted_id,
                )
            )
            position_to_id[position] = post_id
