"""Generation of models, origin sites, and image provenance ground truth.

This module builds the *supply side* of the eWhoring ecosystem:

* **origin sites** — the domains images are stolen from, with ground-truth
  categories weighted as §4.5 observed (porn-related sites dominate, with
  social networks, blogs, photo sharing, shops in the tail);
* **models** — depicted persons, each with a pool of circulating images
  (dressed / nude / sexual) first published on a home origin site;
* **propagation copies** — every circulating image is republished on many
  domains over time; the copy set is what the TinEye-analogue indexes and
  the Wayback-analogue archives, producing the Table 5 match structure;
* **underage ground truth** — a small fraction of models are underage;
  a subset of their images is known to the hashlist service (§4.3).

Copy counts per image follow a heavy-tailed distribution calibrated to
the paper's matches-per-image statistics (average ≈ 12–17, long tail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..domains.taxonomy import MASTER_CATEGORIES
from ..media.image import ImageKind, SyntheticImage, sample_latent
from ..web.internet import OriginSite

__all__ = [
    "CirculatingImage",
    "ModelIdentity",
    "OriginCopy",
    "SupplySide",
    "generate_supply_side",
]

#: Hosting regions with sampling weights (shapes the §4.3 IWF geography).
_REGIONS: Tuple[Tuple[str, float], ...] = (
    ("North America", 0.47),
    ("Europe", 0.42),
    ("UK", 0.03),
    ("Other", 0.08),
)

#: Master category → §4.3 site typology.
_SITE_TYPES: Dict[str, str] = {
    "Pornography": "regular website",
    "Provocative Attire": "regular website",
    "Photo Sharing": "image sharing site",
    "Forums": "forum",
    "Blogs": "blog",
    "Social Networking": "social network",
    "Streaming": "video channel",
    "Dating": "regular website",
}

#: Fraction of models who are underage (ground truth for §4.3).
UNDERAGE_MODEL_RATE = 0.012
#: Fraction of an underage model's images known to the hashlist service.
#: Calibrated so that a full-scale crawl matches ≈ 36 images (§4.3) —
#: hashlists know only a sliver of circulating abuse material.
HASHLIST_KNOWLEDGE_RATE = 0.055
#: Fraction of circulating images present in the reverse-search index at
#: all (§4.5: zero-match images come from unindexed sites or are private).
INDEX_COVERAGE = 0.88


@dataclass(frozen=True, slots=True)
class OriginCopy:
    """One republication of a circulating image on some domain."""

    domain: str
    published_at: datetime
    #: Perceptual hash of this copy (origin hash with recompression noise).
    copy_hash: int
    url_path: str


@dataclass
class CirculatingImage:
    """An image in a model's circulating pool, with its copy set."""

    image: SyntheticImage
    home_domain: str
    first_published: datetime
    indexed: bool
    copies: List[OriginCopy] = field(default_factory=list)
    #: True when the hashlist service knows this image (underage only).
    in_hashlist: bool = False

    @property
    def n_copies(self) -> int:
        return len(self.copies)


@dataclass
class ModelIdentity:
    """One depicted person and their circulating image pool."""

    model_id: int
    home_domain: str
    origin_date: datetime
    is_underage: bool
    pool: List[CirculatingImage] = field(default_factory=list)
    #: Popularity multiplier for copy counts (some models are everywhere).
    popularity: float = 1.0

    @property
    def pool_size(self) -> int:
        return len(self.pool)


@dataclass
class SupplySide:
    """Everything the demand side (forums) draws images from."""

    origin_sites: List[OriginSite]
    models: List[ModelIdentity]
    #: image_id → CirculatingImage for provenance lookups in experiments.
    by_image_id: Dict[int, CirculatingImage] = field(default_factory=dict)

    def circulating_images(self) -> List[CirculatingImage]:
        return [ci for model in self.models for ci in model.pool]


# ----------------------------------------------------------------------
# Origin-site generation
# ----------------------------------------------------------------------

_DOMAIN_WORDS = (
    "amber", "angel", "baby", "blue", "candy", "cherry", "crystal", "daily",
    "dark", "dream", "flash", "free", "fresh", "glam", "gold", "hot",
    "insta", "lady", "late", "luna", "meta", "midnight", "neon", "night",
    "petal", "pixel", "prime", "rose", "ruby", "silk", "star", "sugar",
    "sunny", "sweet", "teen", "velvet", "viral", "vivid", "wild", "zen",
)
_DOMAIN_SUFFIXES = ("hub", "tube", "cams", "pics", "snaps", "zone", "spot",
                    "world", "club", "life", "gram", "book", "space", "net")
_TLDS = (".com", ".net", ".org", ".tv", ".xxx", ".me", ".co")


def _mint_domain(rng: np.random.Generator, taken: set) -> str:
    while True:
        word = _DOMAIN_WORDS[int(rng.integers(0, len(_DOMAIN_WORDS)))]
        suffix = _DOMAIN_SUFFIXES[int(rng.integers(0, len(_DOMAIN_SUFFIXES)))]
        tld = _TLDS[int(rng.integers(0, len(_TLDS)))]
        number = int(rng.integers(0, 1000))
        domain = f"{word}{suffix}{number}{tld}"
        if domain not in taken:
            taken.add(domain)
            return domain


def _generate_origin_sites(rng: np.random.Generator, n_sites: int) -> List[OriginSite]:
    categories = [name for name, _ in MASTER_CATEGORIES]
    weights = np.array([w for _, w in MASTER_CATEGORIES], dtype=np.float64)
    weights /= weights.sum()
    regions = [name for name, _ in _REGIONS]
    region_weights = np.array([w for _, w in _REGIONS], dtype=np.float64)
    region_weights /= region_weights.sum()

    taken: set = set()
    sites: List[OriginSite] = []
    for _ in range(n_sites):
        category = categories[int(rng.choice(len(categories), p=weights))]
        region = regions[int(rng.choice(len(regions), p=region_weights))]
        sites.append(
            OriginSite(
                domain=_mint_domain(rng, taken),
                category=category,
                site_type=_SITE_TYPES.get(category, "regular website"),
                region=region,
            )
        )
    return sites


# ----------------------------------------------------------------------
# Copy-count and hash-noise models
# ----------------------------------------------------------------------

def _sample_copy_count(rng: np.random.Generator, popularity: float) -> int:
    """Sites carrying one image: lognormal bulk + a viral Pareto tail.

    Calibrated to Table 5: mean ≈ 13 matches per matched image with a
    long tail (hundreds of matches for the most-recycled material).
    """
    if rng.random() < 0.02:
        count = 40.0 * (1.0 + float(rng.pareto(1.1)))
    else:
        count = float(rng.lognormal(mean=2.2, sigma=1.05))
    return int(np.clip(round(count * popularity), 1, 2500))


def _noisy_hash(rng: np.random.Generator, base_hash: int) -> int:
    """Per-copy hash: the origin hash with 0–3 recompression bit flips.

    Copies are never downloaded by the pipeline, only matched against, so
    their rasters are not materialised; the flip model reproduces the
    Hamming perturbation that re-hosting (recompression, thumbnailing)
    introduces — see DESIGN.md §2.
    """
    n_flips = int(rng.integers(0, 4))
    value = base_hash
    for _ in range(n_flips):
        value ^= 1 << int(rng.integers(0, 64))
    return value


# ----------------------------------------------------------------------
# Supply-side generation
# ----------------------------------------------------------------------

def generate_supply_side(
    rng: np.random.Generator,
    n_models: int,
    n_origin_sites: int,
    pool_size_range: Tuple[int, int] = (40, 140),
    world_start: datetime = datetime(2006, 1, 1),
    world_end: datetime = datetime(2019, 3, 31),
    image_id_start: int = 1,
    underage_rate: float = UNDERAGE_MODEL_RATE,
    hashlist_rate: float = HASHLIST_KNOWLEDGE_RATE,
) -> SupplySide:
    """Build the full supply side of the synthetic world.

    ``n_models`` and ``n_origin_sites`` are already scaled by the caller.
    Image ids are allocated from ``image_id_start`` upward; the caller
    owns the id space.
    """
    if n_models < 1 or n_origin_sites < 5:
        raise ValueError("need at least 1 model and 5 origin sites")

    sites = _generate_origin_sites(rng, n_origin_sites)
    porn_sites = [s for s in sites if s.category in ("Pornography", "Provocative Attire")]
    if not porn_sites:
        porn_sites = sites[:1]

    # Domain popularity for propagation targets: Zipf-weighted.
    ranks = np.arange(1, len(sites) + 1, dtype=np.float64)
    zipf_weights = 1.0 / ranks**0.85
    zipf_weights /= zipf_weights.sum()

    total_days = (world_end - world_start).days
    supply = SupplySide(origin_sites=sites, models=[])
    next_image_id = image_id_start

    for model_id in range(1, n_models + 1):
        # Models mostly come from porn-industry sites; ~25% from social
        # media, blogs and other personal sources ("stolen from social
        # networking sites, blogs, photo sharing sites", §1).
        if rng.random() < 0.75:
            home = porn_sites[int(rng.integers(0, len(porn_sites)))]
        else:
            home = sites[int(rng.choice(len(sites), p=zipf_weights))]
        origin_day = int(rng.uniform(0.0, 0.85) * total_days)
        origin_date = world_start + timedelta(days=origin_day)
        is_underage = bool(rng.random() < underage_rate)
        popularity = float(np.clip(rng.lognormal(0.0, 0.5), 0.3, 6.0))
        model = ModelIdentity(
            model_id=model_id,
            home_domain=home.domain,
            origin_date=origin_date,
            is_underage=is_underage,
            popularity=popularity,
        )

        pool_size = int(rng.integers(pool_size_range[0], pool_size_range[1] + 1))
        from ..media.pack import pack_stage_mix

        for kind in pack_stage_mix(pool_size):
            latent = sample_latent(rng, kind, model_id=model_id, is_underage=is_underage)
            image = SyntheticImage(next_image_id, latent)
            next_image_id += 1
            first_published = origin_date + timedelta(days=float(rng.exponential(90.0)))
            first_published = min(first_published, world_end)
            circulating = CirculatingImage(
                image=image,
                home_domain=home.domain,
                first_published=first_published,
                indexed=bool(rng.random() < INDEX_COVERAGE),
                in_hashlist=bool(is_underage and rng.random() < hashlist_rate),
            )
            model.pool.append(circulating)
            supply.by_image_id[image.image_id] = circulating
        supply.models.append(model)

    # Propagation: copy sets are attached lazily per image because hashing
    # requires rendering; the world builder materialises them for the
    # images it publishes (see world.py).
    _attach_copy_plans(rng, supply, sites, zipf_weights, world_end)
    return supply


def _attach_copy_plans(
    rng: np.random.Generator,
    supply: SupplySide,
    sites: List[OriginSite],
    zipf_weights: np.ndarray,
    world_end: datetime,
) -> None:
    """Draw each circulating image's copy domains and publish dates.

    Hashes are filled in by the world builder once the origin raster has
    been hashed; here we only fix the *plan* (domains and dates) so that
    generation order never depends on rendering.
    """
    n_sites = len(sites)
    for model in supply.models:
        for circulating in model.pool:
            n_copies = _sample_copy_count(rng, model.popularity)
            domain_indices = rng.choice(n_sites, size=n_copies, p=zipf_weights)
            span_days = max((world_end - circulating.first_published).days, 1)
            for domain_index in domain_indices:
                # Re-hosting happens continuously while the image stays in
                # circulation; a uniform spread (rather than a front-loaded
                # one) matches Table 5's seen-before rates, where a large
                # minority of matches were only crawled after the forum post.
                lag = float(rng.uniform(0.0, span_days))
                published = circulating.first_published + timedelta(days=min(lag, span_days))
                circulating.copies.append(
                    OriginCopy(
                        domain=sites[int(domain_index)].domain,
                        published_at=published,
                        copy_hash=0,  # filled by the world builder
                        url_path=f"/img/{circulating.image.image_id}-{int(domain_index)}",
                    )
                )


def fill_copy_hashes(
    rng: np.random.Generator, circulating: CirculatingImage, base_hash: int
) -> None:
    """Assign per-copy hashes derived from the origin image's hash."""
    circulating.copies = [
        OriginCopy(
            domain=copy.domain,
            published_at=copy.published_at,
            copy_hash=_noisy_hash(rng, base_hash),
            url_path=copy.url_path,
        )
        for copy in circulating.copies
    ]
