"""Actor behaviour profiles for the synthetic forum world.

The generator draws each actor's behaviour from distributions calibrated
to the paper's published aggregates:

* the eWhoring post-count survival curve follows Table 8 exactly
  (73k actors ≥1 post, 13k ≥10, 2.1k ≥50, …, 13 ≥1000) via inverse-CDF
  sampling through the published anchor points;
* days active before/after eWhoring and the eWhoring share of activity
  track the Table 8 columns per activity band;
* interest mixes over Hackforums categories shift from gaming/hacking
  toward market boards across the before → during → after phases, the
  Figure 5 trajectory.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "ActorProfile",
    "Archetype",
    "INTEREST_CATEGORIES",
    "POST_COUNT_ANCHORS",
    "sample_ewhoring_post_count",
    "sample_profile",
]

#: Survival anchors (posts, P(X >= posts)) from Table 8 at full scale.
POST_COUNT_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (1.0, 1.0),
    (10.0, 13014 / 72982),
    (50.0, 2146 / 72982),
    (100.0, 815 / 72982),
    (200.0, 263 / 72982),
    (500.0, 46 / 72982),
    (1000.0, 13 / 72982),
    (2800.0, 1 / 72982),
)


def sample_ewhoring_post_count(rng: np.random.Generator) -> int:
    """Draw an actor's eWhoring post count from the Table 8 curve.

    Inverse-CDF sampling with log-log interpolation between anchors, so
    the generated population reproduces the published band sizes in
    expectation at any scale.
    """
    u = float(rng.random())
    anchors = POST_COUNT_ANCHORS
    if u >= anchors[0][1]:
        return 1
    if u <= anchors[-1][1]:
        return int(anchors[-1][0])
    for (x0, s0), (x1, s1) in zip(anchors, anchors[1:]):
        if s1 <= u <= s0:
            # Log-log linear interpolation of the survival function.
            t = (math.log(u) - math.log(s0)) / (math.log(s1) - math.log(s0))
            log_x = math.log(x0) + t * (math.log(x1) - math.log(x0))
            return max(1, int(round(math.exp(log_x))))
    return 1  # pragma: no cover - anchors span (0, 1]


class Archetype(enum.Enum):
    """Activity band an actor falls into (Table 8 rows)."""

    LURKER = "lurker"      # < 10 eWhoring posts
    CASUAL = "casual"      # 10 – 49
    ACTIVE = "active"      # 50 – 199
    HEAVY = "heavy"        # 200 – 999
    ELITE = "elite"        # >= 1000

    @staticmethod
    def for_post_count(posts: int) -> "Archetype":
        if posts >= 1000:
            return Archetype.ELITE
        if posts >= 200:
            return Archetype.HEAVY
        if posts >= 50:
            return Archetype.ACTIVE
        if posts >= 10:
            return Archetype.CASUAL
        return Archetype.LURKER


#: Hackforums interest categories used for the Figure 5 analysis.
INTEREST_CATEGORIES: Tuple[str, ...] = (
    "Gaming",
    "Hacking",
    "Market",
    "Coding",
    "Common",
    "Tech",
)

#: Phase → mean interest mix over INTEREST_CATEGORIES (Figure 5 shape:
#: gaming/hacking attract members first; market boards take over once
#: they monetise; Common rises slightly after).
_PHASE_INTEREST_MEANS: Dict[str, Tuple[float, ...]] = {
    "before": (0.28, 0.25, 0.13, 0.10, 0.12, 0.12),
    "during": (0.18, 0.17, 0.34, 0.07, 0.15, 0.09),
    "after": (0.14, 0.14, 0.38, 0.06, 0.19, 0.09),
}

#: Mean days of forum activity before the first eWhoring post, per
#: archetype (Table 8: roughly 130–165, except elite actors at 400+).
_DAYS_BEFORE_MEAN: Dict[Archetype, float] = {
    Archetype.LURKER: 168.0,
    Archetype.CASUAL: 138.0,
    Archetype.ACTIVE: 128.0,
    Archetype.HEAVY: 150.0,
    Archetype.ELITE: 415.0,
}

#: Mean days of forum activity after the last eWhoring post.
_DAYS_AFTER_MEAN: Dict[Archetype, float] = {
    Archetype.LURKER: 500.0,
    Archetype.CASUAL: 330.0,
    Archetype.ACTIVE: 185.0,
    Archetype.HEAVY: 150.0,
    Archetype.ELITE: 135.0,
}

#: Mean percentage of the actor's posts that are eWhoring-related
#: (Table 8 column '%ewhor.': rises with involvement).
_EWHORING_SHARE_MEAN: Dict[Archetype, float] = {
    Archetype.LURKER: 0.22,
    Archetype.CASUAL: 0.24,
    Archetype.ACTIVE: 0.28,
    Archetype.HEAVY: 0.35,
    Archetype.ELITE: 0.38,
}

#: Probability of behaviours per archetype:
#: (shares packs, posts proof-of-earnings, uses Currency Exchange).
_BEHAVIOUR_RATES: Dict[Archetype, Tuple[float, float, float]] = {
    Archetype.LURKER: (0.012, 0.002, 0.004),
    Archetype.CASUAL: (0.09, 0.018, 0.03),
    Archetype.ACTIVE: (0.28, 0.16, 0.24),
    Archetype.HEAVY: (0.45, 0.30, 0.35),
    Archetype.ELITE: (0.80, 0.55, 0.55),
}


@dataclass(frozen=True)
class ActorProfile:
    """Everything the generator needs to emit one actor's activity."""

    ewhoring_posts: int
    archetype: Archetype
    days_before: float
    days_after: float
    other_posts: int
    #: Interest mix per phase: phase name -> weights over
    #: INTEREST_CATEGORIES (each sums to 1).
    interests: Dict[str, Tuple[float, ...]]
    shares_packs: bool
    n_packs_shared: int
    posts_earnings: bool
    uses_currency_exchange: bool
    n_ce_threads: int


def _dirichlet_around(
    rng: np.random.Generator, means: Tuple[float, ...], concentration: float = 25.0
) -> Tuple[float, ...]:
    alphas = np.maximum(np.asarray(means) * concentration, 0.05)
    return tuple(float(x) for x in rng.dirichlet(alphas))


def _sample_pack_count(rng: np.random.Generator, archetype: Archetype) -> int:
    """Packs shared by a sharer: heavy-tailed — most share 1–3, the top
    sharers dozens (§4.5 observes one actor with 100 shared packs)."""
    base = float(rng.pareto(1.35)) + 1.0
    if archetype is Archetype.ELITE:
        base *= 6.0
    elif archetype is Archetype.HEAVY:
        base *= 2.5
    return int(min(round(base), 110))


def _sample_ce_threads(rng: np.random.Generator, archetype: Archetype) -> int:
    """CE thread count for a CE user (§5.1: 9 066 threads by 686 actors)."""
    mean = {
        Archetype.LURKER: 1.5,
        Archetype.CASUAL: 3.0,
        Archetype.ACTIVE: 9.0,
        Archetype.HEAVY: 22.0,
        Archetype.ELITE: 45.0,
    }[archetype]
    return max(1, int(rng.poisson(mean)))


def sample_profile(rng: np.random.Generator) -> ActorProfile:
    """Draw one actor's full behaviour profile."""
    posts = sample_ewhoring_post_count(rng)
    archetype = Archetype.for_post_count(posts)

    days_before = float(rng.exponential(_DAYS_BEFORE_MEAN[archetype]))
    days_after = float(rng.exponential(_DAYS_AFTER_MEAN[archetype]))

    share_mean = _EWHORING_SHARE_MEAN[archetype]
    share = float(np.clip(rng.normal(share_mean, 0.10), 0.05, 0.95))
    other_posts = int(round(posts * (1.0 - share) / share))

    interests = {
        phase: _dirichlet_around(rng, means)
        for phase, means in _PHASE_INTEREST_MEANS.items()
    }

    p_packs, p_earn, p_ce = _BEHAVIOUR_RATES[archetype]
    shares_packs = bool(rng.random() < p_packs)
    # Sharers monetise and brag more (Table 10: the packs group also
    # reports earnings and uses Currency Exchange).
    if shares_packs:
        p_earn = min(p_earn * 2.0, 0.9)
        p_ce = min(p_ce * 1.5, 0.9)
    posts_earnings = bool(rng.random() < p_earn)
    uses_ce = bool(rng.random() < p_ce)

    return ActorProfile(
        ewhoring_posts=posts,
        archetype=archetype,
        days_before=days_before,
        days_after=days_after,
        other_posts=other_posts,
        interests=interests,
        shares_packs=shares_packs,
        n_packs_shared=_sample_pack_count(rng, archetype) if shares_packs else 0,
        posts_earnings=posts_earnings,
        uses_currency_exchange=uses_ce,
        n_ce_threads=_sample_ce_threads(rng, archetype) if uses_ce else 0,
    )
