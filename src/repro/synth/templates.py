"""Text templates for synthetic forum content.

Headings and post bodies are assembled from these pools.  They are
written so that the Table 2 lexicons and the TF-IDF features find the
same signal structure the paper found: TOP headings carry pack/selling
vocabulary, request threads carry question/buy vocabulary, tutorials the
tutorial markers, earnings threads the earnings markers — with enough
overlap and noise that the hybrid classifier is useful but imperfect
(the paper reports 92% precision / 93% recall, not 100%).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "choose",
    "choose_mixed",
    "corrupt_heading",
    "render_template",
    "TOP_HEADINGS",
    "TOP_HARD_HEADINGS",
    "TOP_OPENERS",
    "REQUEST_HEADINGS",
    "REQUEST_HARD_HEADINGS",
    "DISCUSSION_HARD_HEADINGS",
    "TUTORIAL_HEADINGS",
    "EARNINGS_HEADINGS",
    "DISCUSSION_HEADINGS",
    "ACCOUNT_TRADE_HEADINGS",
    "BHW_HEADINGS",
    "REPLY_BODIES",
    "TOP_REPLY_BODIES",
    "EARNINGS_POST_BODIES",
    "PROOF_MENTION_BODIES",
    "CE_FALLBACK_HEADINGS",
    "OTHER_BOARD_HEADINGS",
    "OTHER_BOARD_BODIES",
    "GIRL_NAMES",
]

GIRL_NAMES: Tuple[str, ...] = (
    "Amber", "Ashley", "Bella", "Brooke", "Chloe", "Crystal", "Daisy",
    "Emma", "Hailey", "Jade", "Jessie", "Katie", "Lana", "Lily", "Mia",
    "Nina", "Olivia", "Ruby", "Sasha", "Skye", "Sophie", "Tina", "Violet",
)

# {name} model name, {n}/{m} counts, {year} year, {site} platform name.
TOP_HEADINGS: Tuple[str, ...] = (
    "[FREE] Unsaturated {name} pack - {n} pics + {m} vids",
    "Unsaturated pack of {name} ({n} pictures)",
    "WTS private {name} collection - HQ previews inside",
    "Giving away my {name} pack, {n} pics, sexy girl",
    "[HQ] New pack - {name} - {n} pics {m} videos",
    "Selling fresh pack, barely used, previews inside",
    "{name} pack with verification pics - free download",
    "Huge compilation: {n} pics of {name} [unsaturated]",
    "My private girl pack - {name} - enjoy",
    "[PACK] {name} set, dressed + more, {n} pics",
    "Free pack dump: {name} collection, vids included",
    "Offering unsaturated sets - {name} + previews",
    "{name} - new girl pack - {n} pictures {m} vids",
    "Mega pack release: {name} ({n} pics)",
    "sexy {name} pack. free. previews in thread",
)

#: Atypical TOP headings without the telltale vocabulary — mixed in at a
#: low rate so classifier recall stays below 100% as in §4.1.
TOP_HARD_HEADINGS: Tuple[str, ...] = (
    "My new collection, enjoy guys",
    "{name} rars inside, get them while hot",
    "dumping my old stuff ({name})",
    "fresh stuff inside, grab it",
    "{name} - you know what this is",
    "early xmas present for the community",
    "sharing something special today ({name})",
)

TOP_OPENERS: Tuple[str, ...] = (
    "Sharing my {name} pack with the community. Previews: {previews} "
    "Full pack here: {packlink} Enjoy and leave a thanks!",
    "Fresh unsaturated pack of {name}. {n} pics, {m} vids. "
    "Previews: {previews} Download: {packlink}",
    "As promised, here is the {name} collection. Previews below. "
    "{previews} Pack link: {packlink} Don't leech, say thanks.",
    "HQ pack, barely used. Previews: {previews} Link: {packlink}",
)

TOP_OPENERS_GATED: Tuple[str, ...] = (
    "Unsaturated {name} pack, {n} pics. Previews: {previews} "
    "Reply to this thread to unlock the download link.",
    "Sharing my private {name} set. Previews: {previews} "
    "Pack link goes to the first 20 who reply.",
    "New pack of {name}. Previews: {previews} PM me or reply for the link.",
    "{name} collection, vids included. Reply + like to get the link.",
)

REQUEST_HEADINGS: Tuple[str, ...] = (
    "[Question] where do you get unsaturated packs?",
    "Looking for a good pack, any help?",
    "Need a fresh pack please",
    "WTB unsaturated pack - paying well",
    "[HELP] need advice on ewhoring packs",
    "Anyone got a {name} pack? request inside",
    "How to find new packs? quick question",
    "Request: pack with verification pictures",
    "i have a question about packs",
    "Need some help with my ewhoring setup",
    "want to buy private pack, who is selling?",
    "seeking good vids for cam shows, help please",
)

#: Requests phrased like offers — rare hard negatives.
REQUEST_HARD_HEADINGS: Tuple[str, ...] = (
    "unsaturated pack wanted, will trade",
    "pack trade - your sets for my sets",
    "one more pack for my rotation, trading mine",
)

TUTORIAL_HEADINGS: Tuple[str, ...] = (
    "[TUT] The definite guide to ewhoring {year}",
    "Complete ewhoring tutorial - from zero to ${n}/day",
    "How-to: ewhoring on {site} without bans",
    "Ewhoring guide {year} edition [TUT]",
    "My ewhoring method - full tutorial inside",
    "Beginners guide to ewhoring - step by step",
    "[GUIDE] advanced ewhoring techniques",
    "howto avoid chargebacks - ewhoring guide",
)

EARNINGS_HEADINGS: Tuple[str, ...] = (
    "Post your ewhoring earnings!",
    "How much you make ewhoring?",
    "My ewhoring profit journey - updated weekly",
    "${n} in one week - proof inside",
    "Ewhoring money thread - post your gains",
    "What do you earn per day ewhoring?",
    "Show your profit screenshots",
    "ewhoring earnings check - how much you make this month?",
)

DISCUSSION_HEADINGS: Tuple[str, ...] = (
    "Is ewhoring dead in {year}?",
    "Best sites for ewhoring right now?",
    "ewhoring ban risk - discussion",
    "Funny customer story from last night (ewhoring)",
    "Ethics of ewhoring - your thoughts",
    "Which payment platform for ewhoring?",
    "e-whoring on {site}: still worth it?",
    "Do you feel bad about ewhoring?",
    "My first week of ewhoring - experiences",
    "ewhoring and VPNs - what do you use?",
)

#: Discussions that borrow pack vocabulary — rare hard negatives.
DISCUSSION_HARD_HEADINGS: Tuple[str, ...] = (
    "my pack collection story - how it started",
    "this pack got me banned, rant inside",
    "are video packs overrated",
    "saturated packs ruined the market imo",
)

ACCOUNT_TRADE_HEADINGS: Tuple[str, ...] = (
    "Selling Snapchat account with girl name - perfect for ewhoring",
    "[WTS] Kik account, female OG name ({name}) - ewhoring ready",
    "Aged Skype account for ewhoring, feminine handle",
    "OG girl-name Instagram for sale - ewhor setup",
    "Selling {name} Snapchat + email combo (ewhoring)",
    "Female-name Kik accounts, bulk, ewhoring grade",
)

BHW_HEADINGS: Tuple[str, ...] = (
    "Why is ewhoring banned here? discussion",
    "ewhoring ebook I found - is it legit?",
    "Mods keep deleting ewhoring threads",
    "e-whoring: the business model explained",
    "Is ewhoring against the rules on this forum?",
    "Request: ewhoring pictures (yes I know it's banned)",
)

REPLY_BODIES: Tuple[str, ...] = (
    "thanks for this",
    "interesting, following",
    "bump, anyone?",
    "good point mate",
    "this. exactly this.",
    "lol what a story",
    "not sure I agree but ok",
    "can confirm, happened to me too",
    "any update on this?",
    "solid thread, thanks op",
)

TOP_REPLY_BODIES: Tuple[str, ...] = (
    "Downloading, thanks for the share!",
    "just download the pack, amazing pack",
    "thanks op, great pack",
    "mirror please? link is dead for me",
    "replying for the link",
    "leeching this, cheers",
    "quality previews, grabbing it now",
    "is this one saturated already?",
    "thanks! exactly what I needed",
    "vouch, pack is HQ",
)

EARNINGS_POST_BODIES: Tuple[str, ...] = (
    "Made {amount} this week. Proof: {url}",
    "My earnings so far: {url} ({amount})",
    "{amount} today alone, screenshot: {url}",
    "Weekly earn update: {url}",
    "proof of my profit: {url} - AMA",
    "cashed out {amount}, proof attached {url}",
)

PROOF_MENTION_BODIES: Tuple[str, ...] = (
    "Selling my mentoring service, proof of earnings: {url}",
    "My ebook works, here is proof: {url} - selling for cheap",
    "Buy my method, {amount} proof here {url}",
    "vouch me, proof of my sales: {url}",
)

CE_FALLBACK_HEADINGS: Tuple[str, ...] = (
    "Exchange deal inside, quick",
    "need exchange asap, good rates",
    "trading currencies, pm me",
    "quick swap anyone?",
)

OTHER_BOARD_HEADINGS: Tuple[str, ...] = (
    "Thoughts on the latest update?",
    "Anyone playing this weekend?",
    "Best setup for beginners",
    "Rate my configuration",
    "Issue with my account - help",
    "General discussion thread #{n}",
    "What are you working on?",
    "Tips and tricks compilation",
)

OTHER_BOARD_BODIES: Tuple[str, ...] = (
    "pretty sure this was answered before",
    "works fine for me",
    "try reinstalling first",
    "nice share, thanks",
    "anyone else seeing this?",
    "been using this for months, solid",
    "meh, overrated imo",
    "+1, same here",
)


_LEET_FORWARD = {"a": "4", "e": "3", "o": "0", "s": "5", "i": "1", "t": "7"}


def corrupt_heading(rng: np.random.Generator, heading: str, intensity: float = 0.35) -> str:
    """Leetify a heading the way forum users do (``p4ck``, ``fr33``).

    Each eligible letter flips with probability ``intensity``; one random
    vowel may also be stretched.  Used on a small fraction of generated
    headings so the §4.1 normalisation extension has real work to do.
    """
    chars = []
    for ch in heading:
        replacement = _LEET_FORWARD.get(ch.lower())
        if replacement is not None and rng.random() < intensity:
            chars.append(replacement)
        else:
            chars.append(ch)
    corrupted = "".join(chars)
    if rng.random() < 0.4:
        vowel_positions = [i for i, c in enumerate(corrupted) if c.lower() in "aeiou"]
        if vowel_positions:
            pos = vowel_positions[int(rng.integers(0, len(vowel_positions)))]
            corrupted = corrupted[: pos + 1] + corrupted[pos] * 2 + corrupted[pos + 1 :]
    return corrupted


def choose(rng: np.random.Generator, pool: Sequence[str]) -> str:
    """Pick one template uniformly."""
    return pool[int(rng.integers(0, len(pool)))]


def choose_mixed(
    rng: np.random.Generator,
    common: Sequence[str],
    rare: Sequence[str],
    p_rare: float,
) -> str:
    """Pick from ``rare`` with probability ``p_rare``, else from ``common``.

    Keeps the hard cases present but infrequent, as in real forum data —
    the classifier metrics of §4.1 depend on the base rate of ambiguous
    headings, not just their existence.
    """
    if rare and rng.random() < p_rare:
        return choose(rng, rare)
    return choose(rng, common)


def render_template(rng: np.random.Generator, template: str, **extra: str) -> str:
    """Fill a template's placeholders with plausible values.

    ``extra`` overrides the random defaults (e.g. a concrete ``previews``
    URL list).  Unknown placeholders in ``extra`` are ignored by templates
    that do not use them.
    """
    values = {
        "name": choose(rng, GIRL_NAMES),
        "n": str(int(rng.integers(10, 400))),
        "m": str(int(rng.integers(1, 30))),
        "year": str(int(rng.integers(2009, 2020))),
        "site": choose(rng, ("Omegle", "Kik", "Snapchat", "Skype", "Tinder", "Chatroulette")),
        "amount": f"${int(rng.integers(20, 900))}",
        "url": "",
        "previews": "",
        "packlink": "",
    }
    values.update(extra)
    return template.format(**values)
