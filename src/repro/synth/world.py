"""World builder: one seed → the complete synthetic measurement setting.

:func:`build_world` wires every substrate together in dependency order:

1. supply side — origin sites, models, circulating images (models_gen);
2. forums — datasets, packs, previews, proofs, CE boards (forum_gen);
3. web intelligence — the reverse-search index, Wayback archive and
   abuse hashlist, built by hashing the circulating images that actually
   entered circulation through packs/previews.

The returned :class:`World` carries both the *observable* artefacts the
pipeline is allowed to touch (dataset, internet, services) and the
*ground truth* experiments score against (thread types, proof plans,
provenance, underage flags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .._rng import SeedSequenceTree
from ..forum.dataset import ForumDataset
from ..media.image import ImageKind
from ..vision.photodna import (
    AbuseSeverity,
    HashListEntry,
    HashListService,
)
from ..vision.reverse_search import IndexedCopy, ReverseImageIndex
from ..web.archive import WaybackArchive
from ..web.faults import FaultInjector, fault_profile
from ..web.internet import SimulatedInternet
from ..web.payload_faults import PayloadFaultInjector, payload_profile
from ..vision.photodna import robust_hash
from .forum_gen import (
    DATASET_END,
    ForumWorldGenerator,
    GeneratedForums,
    IdAllocator,
)
from .models_gen import (
    CirculatingImage,
    SupplySide,
    fill_copy_hashes,
    generate_supply_side,
)

__all__ = [
    "World",
    "WorldConfig",
    "build_world",
    "epoch_cutoff",
    "slice_dataset_to_epoch",
]

#: Latest date the TinEye-analogue could have crawled anything.
_CRAWL_HORIZON = datetime(2019, 9, 30)

#: Full-scale supply-side sizes (see DESIGN.md calibration notes).
_FULL_MODELS = 900
_FULL_ORIGIN_SITES = 7000


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for world construction.

    ``scale`` multiplies every full-scale population count (Table 1
    thread/actor counts, model counts, origin-site counts).  ``scale=1.0``
    reproduces the paper-sized world; the default keeps unit-test and
    benchmark runtimes reasonable while preserving every distributional
    shape.
    """

    seed: int = 7
    scale: float = 0.05
    with_other_activity: bool = True
    reverse_index_radius: int = 9
    hashlist_radius: int = 10
    archive_coverage: float = 0.35
    #: Ground-truth rate of underage models; override upward in tests and
    #: in the E3 bench so small worlds still contain hashlist matches.
    underage_rate: float = 0.012
    #: Fraction of an underage model's images the hashlist service knows.
    hashlist_rate: float = 0.055
    #: Named transient-fault profile (see :data:`repro.web.faults.
    #: FAULT_PROFILES`) injected into the internet at fetch time, or
    #: ``None`` for a perfectly reliable network.  Fault draws use their
    #: own seed stream, so world *content* is identical across profiles.
    fault_profile: Optional[str] = None
    #: Named corrupt-payload profile (see :data:`repro.web.payload_faults.
    #: PAYLOAD_PROFILES`) applied to OK fetches, or ``None`` for pristine
    #: payloads.  Corruption wraps fetched views only — hosted content is
    #: never mutated — and uses its own seed stream, so world *content*
    #: is identical across profiles.
    payload_profile: Optional[str] = None
    #: Default worker count for the §4.2 crawl: ``None`` runs the serial
    #: loop, ``N >= 1`` the sharded executor of :mod:`repro.web.parallel`
    #: (bit-identical results either way — a pure throughput knob that
    #: perturbs neither world content nor any measurement).
    crawl_workers: Optional[int] = None
    #: Executor backend for parallel crawls: ``"thread"`` (default,
    #: sharded lanes of :mod:`repro.web.parallel`) or ``"process"``
    #: (true multi-core lanes of :mod:`repro.web.procpool`).  Like
    #: ``crawl_workers`` this is a pure throughput knob: results are
    #: bit-identical across executors, and it is ignored when
    #: ``crawl_workers`` is ``None``.
    crawl_executor: str = "thread"
    #: Named adversarial-drift profile (see :data:`repro.drift.profiles.
    #: DRIFT_PROFILES`) applied to the freshly built world, or ``None``
    #: (≡ ``"none"``) for the static paper-world.  Drift mutations are a
    #: pure hash function of ``(seed, channel, epoch, entity)`` layered
    #: *after* build, so the pre-drift world is identical across
    #: profiles and ``none``/epoch-0 is a strict no-op.
    drift_profile: Optional[str] = None
    #: How many drift epochs to apply cumulatively (0 = none).
    drift_epoch: int = 0
    #: Observation epoch for incremental runs: ``None`` observes the
    #: whole timeline; ``epoch=e`` of ``epoch_total=N`` truncates the
    #: *observable* dataset at the e/N-th post-date quantile (the
    #: ground-truth oracles stay whole).  ``epoch == epoch_total`` is
    #: by construction identical to ``epoch=None``.  Epochs nest: the
    #: records visible at epoch e are a strict prefix (per thread) of
    #: those visible at e+1, which is what makes watermark-based delta
    #: runs append-only (see :mod:`repro.store`).
    epoch: Optional[int] = None
    #: Number of equal-population observation epochs the timeline is
    #: divided into (only meaningful alongside ``epoch``).
    epoch_total: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 2.0:
            raise ValueError("scale must be in (0, 2]")
        if self.crawl_workers is not None and self.crawl_workers < 1:
            raise ValueError("crawl_workers must be >= 1 or None")
        if self.crawl_executor not in ("thread", "process"):
            raise ValueError(
                f"crawl_executor must be 'thread' or 'process', got {self.crawl_executor!r}"
            )
        if self.fault_profile is not None:
            fault_profile(self.fault_profile)  # validate the name eagerly
        if self.payload_profile is not None:
            payload_profile(self.payload_profile)  # validate the name eagerly
        if self.drift_epoch < 0:
            raise ValueError("drift_epoch must be >= 0")
        if self.epoch_total < 1:
            raise ValueError("epoch_total must be >= 1")
        if self.epoch is not None and not (1 <= self.epoch <= self.epoch_total):
            raise ValueError("epoch must be in [1, epoch_total]")
        if self.drift_profile is not None:
            from ..drift.profiles import drift_profile

            drift_profile(self.drift_profile)  # validate the name eagerly


@dataclass
class World:
    """The complete synthetic setting handed to the pipeline."""

    config: WorldConfig
    dataset: ForumDataset
    internet: SimulatedInternet
    archive: WaybackArchive
    reverse_index: ReverseImageIndex
    hashlist: HashListService
    supply: SupplySide
    forums: GeneratedForums
    #: domain → ground-truth category (for the domain classifiers).
    domain_categories: Dict[str, str] = field(default_factory=dict)
    #: Content-tracking ledger from the drift engine (set when the config
    #: names a drift profile, even at epoch 0 / ``none`` — the ledger is
    #: then pure bookkeeping over an unmutated world).
    drift_ledger: Optional[object] = None

    @property
    def truth(self) -> GeneratedForums:
        """Alias emphasising that ``forums`` carries the ground truth."""
        return self.forums


def build_world(
    config: Optional[WorldConfig] = None,
    world_hashes: Optional[Dict[int, int]] = None,
    **overrides,
) -> World:
    """Construct a fully wired synthetic world.

    Accepts either a prebuilt :class:`WorldConfig` or keyword overrides:
    ``build_world(seed=3, scale=0.02)``.

    ``world_hashes`` is an optional ``image_id -> perceptual hash`` memo
    (plain ints) consulted and filled while building the web
    intelligence: hashing circulating images dominates build time, and
    the hash of an image is a pure function of the world seed, so a
    persistent store can carry it across runs.  The memo changes no rng
    draw and no value — bit-identity is unaffected.
    """
    if config is None:
        config = WorldConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a WorldConfig or keyword overrides, not both")

    tree = SeedSequenceTree(config.seed, "world")
    internet = SimulatedInternet(seed=tree.seed("internet"))
    if config.fault_profile is not None:
        internet.set_fault_injector(
            FaultInjector(fault_profile(config.fault_profile), seed=tree.seed("faults"))
        )
    if config.payload_profile is not None:
        internet.set_payload_injector(
            PayloadFaultInjector(
                payload_profile(config.payload_profile),
                seed=tree.seed("payload_faults"),
            )
        )
    archive = WaybackArchive(
        seed=tree.seed("archive"), coverage=config.archive_coverage
    )
    reverse_index = ReverseImageIndex(radius=config.reverse_index_radius)
    hashlist = HashListService(radius=config.hashlist_radius)

    # ------------------------------------------------------------- supply
    n_models = max(4, int(round(_FULL_MODELS * config.scale)))
    n_sites = max(60, int(round(_FULL_ORIGIN_SITES * config.scale)))
    supply = generate_supply_side(
        tree.rng("supply"),
        n_models=n_models,
        n_origin_sites=n_sites,
        underage_rate=config.underage_rate,
        hashlist_rate=config.hashlist_rate,
    )
    for site in supply.origin_sites:
        internet.register_origin_site(site)
    domain_categories = {site.domain: site.category for site in supply.origin_sites}

    # ------------------------------------------------------------- forums
    max_image_id = max(supply.by_image_id, default=0)
    ids = IdAllocator(start=max_image_id + 1)
    generator = ForumWorldGenerator(
        tree.rng("forums"),
        supply=supply,
        internet=internet,
        ids=ids,
        scale=config.scale,
        with_other_activity=config.with_other_activity,
    )
    forums = generator.generate()

    # ----------------------------------------------------- web intelligence
    _build_web_intelligence(
        tree, supply, forums, reverse_index, archive, hashlist,
        world_hashes=world_hashes,
    )

    world = World(
        config=config,
        dataset=forums.dataset,
        internet=internet,
        archive=archive,
        reverse_index=reverse_index,
        hashlist=hashlist,
        supply=supply,
        forums=forums,
        domain_categories=domain_categories,
    )

    # ------------------------------------------------------------- drift
    # Applied last, over the finished world, so the pre-drift content
    # (and the web intelligence built from it) is identical across
    # profiles; "none"/epoch-0 leaves the world untouched.
    if config.drift_profile is not None:
        from ..drift.engine import apply_drift
        from ..drift.profiles import drift_profile

        world.drift_ledger = apply_drift(
            world,
            drift_profile(config.drift_profile),
            epoch=config.drift_epoch,
            seed=tree.seed("drift"),
        )

    # ------------------------------------------------------------- epoch
    # Observation-epoch truncation comes last of all, over the (possibly
    # drifted) full world, so the generated content and every rng stream
    # are identical across epochs — an epoch only restricts what the
    # pipeline may *observe*, never what exists.
    if config.epoch is not None:
        cutoff = epoch_cutoff(world.dataset, config.epoch, config.epoch_total)
        if cutoff is not None:
            world.dataset = slice_dataset_to_epoch(world.dataset, cutoff)
    return world


# ----------------------------------------------------------------------
# Observation epochs
# ----------------------------------------------------------------------

def epoch_cutoff(
    dataset: ForumDataset, epoch: int, epoch_total: int
) -> Optional[datetime]:
    """Post-date quantile cutoff for observation epoch ``epoch`` of ``epoch_total``.

    Forum activity is heavily tail-weighted (the paper's Figure 4 growth
    curve), so equal *time* slices would make late epochs far larger
    than early ones.  Epochs are therefore equal-*population*: the
    cutoff for epoch ``e`` is the date of the ``ceil(n·e/N)``-th oldest
    post, giving every delta roughly ``1/N`` of the records.  The final
    epoch returns ``None`` — no truncation, by construction identical to
    observing the whole timeline.
    """
    if epoch >= epoch_total:
        return None
    dates = sorted(post.created_at for post in dataset.posts())
    if not dates:
        return None
    index = -(-len(dates) * epoch // epoch_total) - 1  # ceil(n·e/N) - 1
    return dates[max(0, index)]


def slice_dataset_to_epoch(dataset: ForumDataset, cutoff: datetime) -> ForumDataset:
    """The observable prefix of ``dataset`` at ``cutoff``, as a new dataset.

    Inclusion rules (all deterministic, all order-preserving):

    * forums and boards — always (structure predates activity);
    * threads — ``created_at <= cutoff``;
    * posts — the per-thread *prefix* up to the first post dated after
      the cutoff, so positions stay contiguous and the visible set at
      epoch ``e`` is a prefix of the set at ``e+1`` (append-only
      deltas);
    * actors — registered by the cutoff, or the author of any included
      thread/post (authorship integrity beats registration date).
    """
    included_threads = [t for t in dataset.threads() if t.created_at <= cutoff]
    included_ids = {t.thread_id for t in included_threads}
    included_posts = []
    for thread in included_threads:
        for post in dataset.posts_in_thread(thread.thread_id):
            if post.created_at > cutoff:
                break
            included_posts.append(post)

    author_ids = {t.author_id for t in included_threads}
    author_ids.update(p.author_id for p in included_posts)

    sliced = ForumDataset()
    for forum in dataset.forums():
        sliced.add_forum(forum)
    for board in dataset.boards():
        sliced.add_board(board)
    for actor in dataset.actors():
        if actor.registered_at <= cutoff or actor.actor_id in author_ids:
            sliced.add_actor(actor)
    for thread in included_threads:
        sliced.add_thread(thread)
    for post in included_posts:
        sliced.add_post(post)
    return sliced


# ----------------------------------------------------------------------
# Index / archive / hashlist construction
# ----------------------------------------------------------------------

def _circulating_in_use(supply: SupplySide, forums: GeneratedForums) -> List[CirculatingImage]:
    """Circulating images that entered circulation through packs/previews.

    Only these can ever be queried by the pipeline, so only they need
    hashing.  Evasion packs reference *transformed* children of the pool
    images; their originals are included because the hashlist and index
    represent the open web, where the originals live.
    """
    used_ids: Set[int] = set()
    for pack in forums.packs.values():
        for image in pack.images:
            used_ids.add(image.image_id)
    in_use: List[CirculatingImage] = []
    for model in supply.models:
        for circulating in model.pool:
            image_id = circulating.image.image_id
            if image_id in used_ids or circulating.in_hashlist:
                in_use.append(circulating)
            else:
                # Evasion packs carry children with fresh ids; map back via
                # the shared visual seed is unnecessary — mirrored copies
                # intentionally do not match, so skipping is sound.
                continue
    return in_use


def _build_web_intelligence(
    tree: SeedSequenceTree,
    supply: SupplySide,
    forums: GeneratedForums,
    reverse_index: ReverseImageIndex,
    archive: WaybackArchive,
    hashlist: HashListService,
    world_hashes: Optional[Dict[int, int]] = None,
) -> None:
    rng = tree.rng("webintel")
    in_use = _circulating_in_use(supply, forums)

    # Up to two "verified victims" (§4.3: the IWF actioned URLs for one
    # 17-year-old and one 7–10-year-old victim; other matches were not
    # actionable because age could not be verified).
    verified_model_ids: Set[int] = set()
    victim_ages: Dict[int, int] = {}
    for circulating in in_use:
        if not circulating.in_hashlist:
            continue
        model_id = circulating.image.latent.model_id
        if model_id is None:
            continue
        if len(verified_model_ids) < 2 and model_id not in verified_model_ids:
            verified_model_ids.add(model_id)
            victim_ages[model_id] = 17 if len(verified_model_ids) == 1 else 8

    for circulating in in_use:
        image_id = circulating.image.image_id
        memoised = None if world_hashes is None else world_hashes.get(image_id)
        if memoised is None:
            # Rendering + hashing here dominates world-build time; the
            # hash is a pure function of the world seed, so persistent
            # runs memoise it by image id (no rng draw is involved, so
            # the memo cannot perturb any stream below).
            base_hash = robust_hash(circulating.image.pixels)
            if world_hashes is not None:
                world_hashes[image_id] = int(base_hash)
        else:
            base_hash = int(memoised)
        circulating.image.drop_pixels()
        fill_copy_hashes(rng, circulating, base_hash)

        if circulating.indexed:
            for copy in circulating.copies:
                url = f"https://{copy.domain}{copy.url_path}"
                crawl_lag = float(rng.exponential(700.0))
                crawl_date = copy.published_at + timedelta(days=crawl_lag)
                crawl_date = min(crawl_date, _CRAWL_HORIZON)
                reverse_index.index_hash(
                    copy.copy_hash,
                    IndexedCopy(
                        url=url,
                        domain=copy.domain,
                        crawl_date=crawl_date,
                        backlink=f"https://{copy.domain}/",
                    ),
                )
                archive.observe_publication(url, copy.published_at)

        if circulating.in_hashlist:
            model_id = circulating.image.latent.model_id
            actionable = model_id in verified_model_ids
            hashlist.add_entry(
                HashListEntry(
                    entry_hash=base_hash,
                    severity=_severity_for(circulating.image.kind),
                    victim_age=victim_ages.get(model_id) if actionable else None,
                    actionable=actionable,
                )
            )


def _severity_for(kind: ImageKind) -> AbuseSeverity:
    """IWF grading by depiction stage (§4.3 category definitions)."""
    if kind is ImageKind.MODEL_SEXUAL:
        return AbuseSeverity.CATEGORY_A
    if kind is ImageKind.MODEL_NUDE:
        return AbuseSeverity.CATEGORY_B
    return AbuseSeverity.CATEGORY_C
