"""NLP substrate: tokenisation, stop words, TF-IDF, methodology lexicons."""

from .lexicon import (
    EARNINGS_KEYWORDS,
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    TABLE2_LEXICONS,
    TUTORIAL_KEYWORDS,
    Lexicon,
)
from .normalize import (
    collapse_stretches,
    deleet,
    normalize_forum_text,
    strip_markup,
)
from .stopwords import STOPWORDS, is_stopword
from .tokenize import count_question_marks, tokenize, tokenize_raw
from .vectorize import TfidfVectorizer, Vocabulary, build_vocabulary

__all__ = [
    "EARNINGS_KEYWORDS",
    "EWHORING_KEYWORDS",
    "Lexicon",
    "PACK_KEYWORDS",
    "REQUEST_KEYWORDS",
    "STOPWORDS",
    "TABLE2_LEXICONS",
    "TUTORIAL_KEYWORDS",
    "TfidfVectorizer",
    "Vocabulary",
    "build_vocabulary",
    "collapse_stretches",
    "count_question_marks",
    "deleet",
    "normalize_forum_text",
    "strip_markup",
    "is_stopword",
    "tokenize",
    "tokenize_raw",
]
