"""The methodology keyword lexicons of Table 2, verbatim.

Five lexicons drive the semi-automatic stages of the pipeline: selecting
eWhoring threads, classifying Threads Offering Packs (TOPs), discarding
info-requesting threads, detecting tutorials, and finding posts that share
earnings.  Multi-word entries are matched as substrings of the lowercased
text, single words as whole tokens, mirroring how forum headings are
scanned in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from .tokenize import tokenize_raw

__all__ = [
    "EARNINGS_KEYWORDS",
    "EWHORING_KEYWORDS",
    "Lexicon",
    "PACK_KEYWORDS",
    "REQUEST_KEYWORDS",
    "TUTORIAL_KEYWORDS",
]


@dataclass(frozen=True)
class Lexicon:
    """A named keyword set with token- and phrase-level matching.

    With ``match_substrings=True`` every entry is matched as a raw
    substring of the lowercased text — the semantics of the paper's
    heading search, where ``'ewhor'`` must hit ``'ewhoring'``.
    """

    name: str
    entries: Tuple[str, ...]
    match_substrings: bool = False

    def __post_init__(self) -> None:
        lowered = tuple(entry.lower() for entry in self.entries)
        object.__setattr__(self, "entries", lowered)
        if self.match_substrings:
            words: FrozenSet[str] = frozenset()
            phrases = lowered
        else:
            words = frozenset(e for e in lowered if " " not in e and "[" not in e)
            phrases = tuple(e for e in lowered if " " in e or "[" in e)
        object.__setattr__(self, "_words", words)
        object.__setattr__(self, "_phrases", phrases)

    @property
    def words(self) -> FrozenSet[str]:
        """Single-token entries, matched as whole tokens."""
        return self._words  # type: ignore[attr-defined]

    @property
    def phrases(self) -> Tuple[str, ...]:
        """Multi-word or bracketed entries, matched as substrings."""
        return self._phrases  # type: ignore[attr-defined]

    def count_matches(self, text: str) -> int:
        """Number of lexicon hits in ``text`` (token + phrase matches)."""
        lowered = text.lower()
        tokens = tokenize_raw(lowered)
        token_hits = sum(1 for token in tokens if token in self.words)
        phrase_hits = sum(lowered.count(phrase) for phrase in self.phrases)
        return token_hits + phrase_hits

    def matches(self, text: str) -> bool:
        """True when any entry occurs in ``text``."""
        lowered = text.lower()
        if any(phrase in lowered for phrase in self.phrases):
            return True
        words = self.words
        return any(token in words for token in tokenize_raw(lowered))

    def __len__(self) -> int:
        return len(self.entries)


#: Row 1 of Table 2 — selects eWhoring-related threads by heading.
#: Substring semantics: the paper searches for these inside lowercased
#: headings, so 'ewhor' hits 'ewhoring'.
EWHORING_KEYWORDS = Lexicon("ewhoring", ("ewhor", "e-whor"), match_substrings=True)

#: Row 2 of Table 2 — indicative of Threads Offering Packs.
PACK_KEYWORDS = Lexicon(
    "packs",
    (
        "pack", "packs", "package", "packages", "pics", "pictures",
        "videos", "vids", "video", "collection", "collections", "set",
        "sets", "repository", "repositories", "selling", "wts",
        "offering", "free", "unsaturated", "new", "giving",
        "compilation", "private", "girl", "girls", "sexy",
    ),
)

#: Row 3 of Table 2 — info-requesting posts (used to *discard* threads
#: asking for rather than offering packs).
REQUEST_KEYWORDS = Lexicon(
    "requests",
    (
        "[question]", "[help]", "need advice", "need", "needed", "wtb",
        "want to buy", "req", "request", "question", "looking for",
        "give me advice", "quick question", "question for",
        "i wonder whether", "i wonder if", "im asking for",
        "general query", "general question", "i have a question",
        "i have a doubt", "help requested", "how to", "help please",
        "help with", "need help", "need a", "need some help",
        "help needed", "i want help", "help me", "seeking",
    ),
)

#: Row 4 of Table 2 — threads providing tutorials.
TUTORIAL_KEYWORDS = Lexicon(
    "tutorials",
    ("tutorial", "[tut]", "howto", "how-to", "definite guide", "guide"),
)

#: Row 5 of Table 2 — posts sharing earnings.
EARNINGS_KEYWORDS = Lexicon("earnings", ("earn", "profit", "money", "gain"))

#: All lexicons in Table 2 order, for documentation and the T2 benchmark.
TABLE2_LEXICONS: Tuple[Lexicon, ...] = (
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    TUTORIAL_KEYWORDS,
    EARNINGS_KEYWORDS,
)
