"""Forum-text normalisation (the §4.1 limitation's proposed remedy).

§4.1 notes that NLP over underground-forum text suffers from "specific
jargon, misleading vocabulary or syntax and grammar errors", and that
"a potential solution would be to normalise the data into a common
format".  This module implements that normaliser:

* **de-leeting** — character substitutions inside words
  (``p4ck`` → ``pack``, ``s3lling`` → ``selling``, ``pic$`` → ``pics``);
* **stretch collapsing** — ``freeeee`` → ``free``;
* **markup stripping** — BBCode-style ``[b]..[/b]`` tags are removed
  (the bracketed *keywords* like ``[TUT]`` that Table 2 matches are
  preserved — only paired formatting tags are stripped);
* **whitespace canonicalisation**.

The feature extractor and the heuristic classifier accept the
normaliser as an optional preprocessing step; the A4 ablation measures
what it buys on corrupted headings.
"""

from __future__ import annotations

import re
from typing import Dict

__all__ = ["deleet", "normalize_forum_text", "collapse_stretches", "strip_markup"]

#: Leet substitutions applied inside alphabetic words.
_LEET_MAP: Dict[str, str] = {
    "0": "o",
    "1": "i",
    "3": "e",
    "4": "a",
    "5": "s",
    "7": "t",
    "$": "s",
    "@": "a",
    "+": "t",
}

_LEET_CHARS = set(_LEET_MAP)
_WORD_SPLIT = re.compile(r"(\s+)")

#: Paired BBCode formatting tags (``[b]bold[/b]``); single bracketed
#: markers like ``[TUT]`` are left alone.
_MARKUP = re.compile(r"\[(/?)(b|i|u|url|img|size|color|font|center|quote)(=[^\]]*)?\]",
                     re.IGNORECASE)

#: Three or more repeats of one letter.
_STRETCH = re.compile(r"([a-zA-Z])\1{2,}")


def deleet(text: str) -> str:
    """Replace leet characters inside mixed alphanumeric words.

    A token is de-leeted when it mixes letters with leet characters and
    nothing else — pure numbers ("50") and ordinary punctuation are left
    untouched.

    >>> deleet("uns4tur4ted p4ck with pic$")
    'unsaturated pack with pics'
    >>> deleet("50 pics")
    '50 pics'
    """
    parts = _WORD_SPLIT.split(text)
    out = []
    for part in parts:
        core = part.strip(".,!?:;()[]\"'")
        if (
            core
            and any(ch.isalpha() for ch in core)
            and any(ch in _LEET_CHARS for ch in core)
            and all(ch.isalpha() or ch in _LEET_CHARS for ch in core)
        ):
            fixed = "".join(_LEET_MAP.get(ch, ch) for ch in core)
            part = part.replace(core, fixed, 1)
        out.append(part)
    return "".join(out)


def collapse_stretches(text: str) -> str:
    """Collapse letter stretches to two repeats (``freeee`` → ``free``).

    Two repeats, not one, so legitimate doubles ('telling', 'account')
    survive; triples in English are effectively always stretching.
    """
    return _STRETCH.sub(lambda m: m.group(1) * 2, text)


def strip_markup(text: str) -> str:
    """Remove paired BBCode formatting tags, preserving their content."""
    return _MARKUP.sub("", text)


def normalize_forum_text(text: str) -> str:
    """Full normalisation pass: markup → leet → stretches → whitespace."""
    text = strip_markup(text)
    text = deleet(text)
    text = collapse_stretches(text)
    return " ".join(text.split())
