"""English stop-word list used by the document-term pipeline (§4.1).

The paper excludes stop words before building the document-term matrix.
This list covers standard English function words plus the forum-markup
tokens (``quote``, ``img`` …) that would otherwise dominate post text.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = ["STOPWORDS", "is_stopword"]

STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at
    be because been before being below between both but by
    can cannot could couldn
    did didn do does doesn doing don down during
    each few for from further
    had hadn has hasn have haven having he her here hers herself him himself
    his how
    i if in into is isn it its itself
    just
    me more most mustn my myself
    no nor not now
    of off on once only or other ought our ours ourselves out over own
    same shan she should shouldn so some such
    than that the their theirs them themselves then there these they this
    those through to too
    under until up
    very
    was wasn we were weren what when where which while who whom why will with
    won would wouldn
    you your yours yourself yourselves
    quote img url attachment spoiler
    """.split()
)


def is_stopword(token: str) -> bool:
    """True when ``token`` (already lowercased) is a stop word."""
    return token in STOPWORDS
