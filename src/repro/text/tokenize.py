"""Tokenisation as specified in §4.1 of the paper.

The document-term pipeline strips punctuation, lowercases, ignores pure
numbers and drops stop words.  Tokenisation is intentionally simple —
underground-forum text is noisy (jargon, misspellings) and the paper
compensates with statistical features, not with heavier NLP.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from .stopwords import STOPWORDS

__all__ = ["count_question_marks", "tokenize", "tokenize_raw", "word_pattern"]

#: Words are runs of letters possibly containing internal apostrophes or
#: hyphens (``e-whoring`` must survive as one token).
word_pattern = re.compile(r"[a-zA-Z][a-zA-Z'\-]*")

_number_pattern = re.compile(r"^\d+$")


def tokenize_raw(text: str) -> List[str]:
    """Lowercased word tokens with punctuation stripped, stop words kept."""
    return [match.group(0).lower() for match in word_pattern.finditer(text)]


def tokenize(text: str) -> List[str]:
    """Tokens ready for the document-term matrix.

    Lowercases, strips punctuation, ignores numbers and removes stop
    words — the exact preprocessing of §4.1.

    >>> tokenize("Selling UNSATURATED pack!!! 50 pics, no timewasters")
    ['selling', 'unsaturated', 'pack', 'pics', 'timewasters']
    """
    return [
        token
        for token in tokenize_raw(text)
        if token not in STOPWORDS and not _number_pattern.match(token)
    ]


def count_question_marks(text: str) -> int:
    """Number of ``?`` characters — a §4.1 statistical feature."""
    return text.count("?")


def ngrams(tokens: List[str], n: int) -> Iterator[tuple]:
    """Yield ``n``-grams over a token list (used by lexicon phrase search)."""
    if n <= 0:
        raise ValueError("n must be positive")
    for index in range(len(tokens) - n + 1):
        yield tuple(tokens[index : index + n])
