"""Document-term matrix and TF-IDF transform (§4.1).

Implements the textual half of the hybrid classifier's feature space: a
word-count matrix over a learned vocabulary, transformed with TF-IDF
("term frequency – inverse document frequency").  Built on numpy only; the
matrix is dense because the TOP-classification corpora are small (hundreds
to a few thousand threads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .tokenize import tokenize

__all__ = ["TfidfVectorizer", "Vocabulary", "build_vocabulary"]


@dataclass(frozen=True)
class Vocabulary:
    """An ordered term → column-index mapping."""

    terms: tuple
    index: Dict[str, int] = field(repr=False, default_factory=dict)

    @staticmethod
    def from_terms(terms: Sequence[str]) -> "Vocabulary":
        ordered = tuple(terms)
        return Vocabulary(terms=ordered, index={t: i for i, t in enumerate(ordered)})

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term in self.index


def build_vocabulary(
    documents: Iterable[str],
    min_df: int = 2,
    max_terms: Optional[int] = 2000,
) -> Vocabulary:
    """Learn a vocabulary from raw documents.

    Terms must appear in at least ``min_df`` documents; if more than
    ``max_terms`` qualify, the most document-frequent are kept.  Ties are
    broken alphabetically so the vocabulary is deterministic.
    """
    if min_df < 1:
        raise ValueError("min_df must be >= 1")
    document_frequency: Counter = Counter()
    for document in documents:
        document_frequency.update(set(tokenize(document)))
    qualifying = [(term, df) for term, df in document_frequency.items() if df >= min_df]
    qualifying.sort(key=lambda pair: (-pair[1], pair[0]))
    if max_terms is not None:
        qualifying = qualifying[:max_terms]
    return Vocabulary.from_terms([term for term, _ in sorted(qualifying)])


class TfidfVectorizer:
    """Word-count + TF-IDF vectoriser fitted on a training corpus.

    The IDF uses the smoothed form ``log((1 + n) / (1 + df)) + 1`` and rows
    are L2-normalised, matching common information-retrieval practice.
    """

    def __init__(self, min_df: int = 2, max_terms: Optional[int] = 2000):
        self.min_df = min_df
        self.max_terms = max_terms
        self.vocabulary: Optional[Vocabulary] = None
        self._idf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from ``documents``."""
        self.vocabulary = build_vocabulary(documents, self.min_df, self.max_terms)
        counts = self._count_matrix(documents)
        n_docs = len(documents)
        document_frequency = (counts > 0).sum(axis=0)
        self._idf = np.log((1.0 + n_docs) / (1.0 + document_frequency)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Map documents to L2-normalised TF-IDF rows."""
        if self.vocabulary is None or self._idf is None:
            raise RuntimeError("vectorizer must be fitted before transform")
        counts = self._count_matrix(documents)
        weighted = counts * self._idf[np.newaxis, :]
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return weighted / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit`` followed by ``transform``."""
        return self.fit(documents).transform(documents)

    # ------------------------------------------------------------------
    def _count_matrix(self, documents: Sequence[str]) -> np.ndarray:
        """Vectorised document-term counts.

        Tokens are mapped to vocabulary column ids per document, then the
        whole corpus is accumulated with one ``np.bincount`` over
        flattened ``row * n_terms + column`` indices — equivalent to the
        obvious nested loop (see ``test_count_matrix_matches_loop``) but
        without the per-token Python overhead.
        """
        assert self.vocabulary is not None
        index = self.vocabulary.index
        n_terms = len(self.vocabulary)
        matrix = np.zeros((len(documents), n_terms), dtype=np.float64)
        if n_terms == 0 or not documents:
            return matrix
        flat_indices: List[np.ndarray] = []
        for row, document in enumerate(documents):
            columns = [
                column
                for column in map(index.get, tokenize(document))
                if column is not None
            ]
            if columns:
                flat_indices.append(
                    np.asarray(columns, dtype=np.intp) + row * n_terms
                )
        if flat_indices:
            flat = np.concatenate(flat_indices)
            counts = np.bincount(flat, minlength=matrix.size)
            matrix += counts.reshape(matrix.shape)
        return matrix
