"""Image-analysis substrate: NSFW scoring, OCR, robust hashing, reverse search."""

from .nsfw import NsfwScorer, nsfw_score, skin_mask
from .ocr import OcrEngine, WordBox, ocr_word_count
from .photodna import (
    AbuseSeverity,
    HashListEntry,
    HashListService,
    MatchResult,
    ReportLog,
    ReportRecord,
    hamming_distance,
    robust_hash,
)
from .reverse_search import (
    IndexedCopy,
    ReverseImageIndex,
    ReverseMatch,
    ReverseSearchReport,
)

__all__ = [
    "AbuseSeverity",
    "HashListEntry",
    "HashListService",
    "IndexedCopy",
    "MatchResult",
    "NsfwScorer",
    "OcrEngine",
    "ReportLog",
    "ReportRecord",
    "ReverseImageIndex",
    "ReverseMatch",
    "ReverseSearchReport",
    "WordBox",
    "hamming_distance",
    "nsfw_score",
    "ocr_word_count",
    "robust_hash",
    "skin_mask",
]
