"""Image-analysis substrate: NSFW scoring, OCR, robust hashing, reverse search.

Hot-path batching lives in :mod:`repro.vision.batch` (stacked DCT
hashing, vectorised bit packing) on top of the :mod:`repro.vision.bits`
kernels (popcount with a NumPy<2 fallback, Hamming matrices), and
:mod:`repro.vision.cache` provides the content-addressed
:class:`VisionCache` that memoises hash / NSFW / OCR work across
pipeline stages.
"""

from .batch import hash_batch, hash_batch_ints, prepare_thumbnails
from .bits import hamming_matrix, pack_bits_rows, popcount
from .cache import VisionCache, VisionCacheStats
from .nsfw import NsfwScorer, nsfw_score, skin_mask
from .ocr import OcrEngine, WordBox, ocr_word_count
from .photodna import (
    AbuseSeverity,
    HashListEntry,
    HashListService,
    MatchResult,
    ReportLog,
    ReportRecord,
    hamming_distance,
    robust_hash,
)
from .reverse_search import (
    IndexedCopy,
    ReverseImageIndex,
    ReverseMatch,
    ReverseSearchReport,
)

__all__ = [
    "AbuseSeverity",
    "HashListEntry",
    "HashListService",
    "IndexedCopy",
    "MatchResult",
    "NsfwScorer",
    "OcrEngine",
    "ReportLog",
    "ReportRecord",
    "ReverseImageIndex",
    "ReverseMatch",
    "ReverseSearchReport",
    "VisionCache",
    "VisionCacheStats",
    "WordBox",
    "hamming_distance",
    "hamming_matrix",
    "hash_batch",
    "hash_batch_ints",
    "nsfw_score",
    "ocr_word_count",
    "pack_bits_rows",
    "popcount",
    "prepare_thumbnails",
    "robust_hash",
    "skin_mask",
]
