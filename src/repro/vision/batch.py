"""Batched vision engine: hash whole image stacks in one NumPy pass.

The scalar hot path (:func:`repro.vision.photodna.robust_hash`) costs a
Python-level round trip per image — resize, a tiny 32×32 DCT, a 64-step
bit-packing loop.  At corpus scale (the paper's §4.2 crawl, or the
hundreds of millions of items of comparable hash-matching measurement
studies) those per-call overheads dominate.  This module provides the
batched equivalents:

* :func:`prepare_thumbnails` — grayscale + 32×32 block-mean thumbnails
  for a sequence of rasters, with a fully-vectorised fast path when all
  rasters share one shape (chunked to bound memory);
* :func:`hash_batch` — one ``scipy.fft.dctn`` over the whole thumbnail
  stack plus vectorised median-threshold bit packing.  **Bit-identical**
  to mapping :func:`robust_hash` over the same rasters (property-tested
  in ``tests/test_vision_batch.py``);
* :func:`popcount` / :func:`hamming_matrix` — re-exported uint64 bit
  kernels (see :mod:`repro.vision.bits`) behind the many-vs-many
  matching paths of :class:`~repro.vision.photodna.HashListService` and
  :class:`~repro.vision.reverse_search.ReverseImageIndex`.

All functions work on any NumPy ≥ 1.24; ``popcount`` transparently falls
back to a lookup table below NumPy 2.0 (see DESIGN.md §7).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy import fft as scipy_fft

from ..media.validate import (
    DecoyPayloadError,
    EmptyPayloadError,
    NonFinitePixelError,
    WrongShapeError,
)
from ..obs.trace import NULL_TRACER
from .bits import hamming_matrix, pack_bits_rows, popcount
from .photodna import _HASH_GRID, _resize_axis, _to_grayscale, robust_hash

__all__ = [
    "hamming_matrix",
    "hash_batch",
    "hash_batch_ints",
    "pack_bits_rows",
    "popcount",
    "prepare_thumbnails",
]

#: Same-shape rasters are stacked and resized in chunks of this many
#: images, bounding the transient full-resolution stack memory and
#: keeping each chunk L2/L3-resident across the grayscale passes.
_STACK_CHUNK = 64


def _guard_raster(raster, index: int) -> None:
    """Cheap structural defence for one batch member.

    Metadata-only checks (type, rank, emptiness) so the clean hot path
    stays O(1) per image: a decoy payload or a wrong-rank raster in a
    batch raises the typed corrupt-payload taxonomy *before* it can
    poison the shared thumbnail stack.  Pixel-value poison (NaN/Inf) is
    caught after thumbnailing — see :func:`hash_batch` — where a full
    scan costs 32×32 floats per image instead of H×W.
    """
    arr = raster if isinstance(raster, np.ndarray) else np.asarray(raster)
    if arr.dtype == object or arr.ndim == 0:
        raise DecoyPayloadError(
            f"batch item {index} is not an image raster: "
            f"{type(raster).__name__}"
        )
    if arr.ndim not in (2, 3):
        raise WrongShapeError(
            f"batch item {index} is not a 2-D or H×W×C raster: "
            f"ndim={arr.ndim}"
        )
    if arr.size == 0:
        raise EmptyPayloadError(f"batch item {index} is an empty raster")


def _thumbnail(raster: np.ndarray) -> np.ndarray:
    """One grayscale ``grid×grid`` thumbnail (scalar-path identical)."""
    gray = _to_grayscale(np.asarray(raster, dtype=np.float64))
    return _resize_axis(_resize_axis(gray, _HASH_GRID, axis=0), _HASH_GRID, axis=1)


def prepare_thumbnails(rasters: Sequence[np.ndarray]) -> np.ndarray:
    """Grayscale 32×32 thumbnails of ``rasters`` as an ``(n, 32, 32)`` stack.

    When every raster shares one shape the whole chunk is grayscaled and
    block-mean resized with two ``reduceat`` calls instead of ``2n``;
    mixed-shape batches fall back to per-image resizing.  Both paths
    produce floats identical to the scalar pipeline.
    """
    items = rasters if isinstance(rasters, list) else list(rasters)
    n = len(items)
    thumbs = np.empty((n, _HASH_GRID, _HASH_GRID), dtype=np.float64)
    if n == 0:
        return thumbs
    for i, raster in enumerate(items):
        _guard_raster(raster, i)
    first_shape = np.shape(items[0])
    uniform = len(first_shape) in (2, 3) and all(
        np.shape(r) == first_shape for r in items
    )
    if uniform and (len(first_shape) == 2 or first_shape[2] <= 8):
        _thumbnails_uniform(items, first_shape, thumbs)
        return thumbs
    for i, raster in enumerate(items):
        thumbs[i] = _thumbnail(raster)
    return thumbs


def _thumbnails_uniform(
    items: Sequence[np.ndarray],
    shape: Sequence[int],
    thumbs: np.ndarray,
) -> None:
    """Vectorised thumbnail path for same-shape rasters.

    Colour rasters are copied channel-plane by channel-plane into a
    ``(channels, chunk, h, w)`` buffer while each raster is still
    cache-warm, so the grayscale step becomes sequential whole-plane
    adds — the identical per-element operation order of
    ``pixels.mean(axis=2)`` (sum left-to-right, one divide), hence
    bit-identical to the scalar path.  Resizing then runs on the whole
    chunk with two :func:`_resize_axis` calls instead of ``2·chunk``.
    """
    n = len(items)
    height, width = int(shape[0]), int(shape[1])
    channels = int(shape[2]) if len(shape) == 3 else 0
    chunk_size = min(n, _STACK_CHUNK)
    planes = np.empty((max(channels, 1), chunk_size, height, width), dtype=np.float64)
    gray_buf = np.empty((chunk_size, height, width), dtype=np.float64)
    for start in range(0, n, _STACK_CHUNK):
        block = items[start : start + _STACK_CHUNK]
        c = len(block)
        if channels:
            dest = planes[:, :c]
            for i, raster in enumerate(block):
                # One strided copy per image: (h, w, c) → (c, h, w).
                dest[:, i] = np.asarray(raster).transpose(2, 0, 1)
            if channels > 1:
                gray = np.add(planes[0, :c], planes[1, :c], out=gray_buf[:c])
                for ch in range(2, channels):
                    gray += planes[ch, :c]
            else:
                gray = gray_buf[:c]
                np.copyto(gray, planes[0, :c])
            gray /= float(channels)
        else:
            for i, raster in enumerate(block):
                planes[0, i] = raster
            gray = planes[0, :c]
        small = _resize_axis(_resize_axis(gray, _HASH_GRID, axis=1), _HASH_GRID, axis=2)
        thumbs[start : start + c] = small


def hash_batch(rasters: Sequence[np.ndarray], tracer=None) -> np.ndarray:
    """64-bit DCT perceptual hashes of many rasters, as a ``uint64`` array.

    Pipeline per image is exactly :func:`robust_hash` — grayscale →
    32×32 block-mean resize → 2-D DCT → 8×8 low-frequency block with the
    DC term replaced → median threshold → MSB-first 64-bit pack — but
    the DCT runs once over the whole ``(n, 32, 32)`` stack and the bit
    packing is a single vectorised shift/sum instead of ``64n`` Python
    loop iterations.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`-shaped recorder, used
    by direct callers outside the :class:`~repro.vision.cache.
    VisionCache` batching path, which already spans its own calls) wraps
    the kernel in a ``vision.hash_batch`` span carrying the image count.

    Returns an empty array for an empty input.  Results are
    bit-identical to ``[robust_hash(r) for r in rasters]``.
    """
    if tracer is not None and tracer is not NULL_TRACER:
        with tracer.span("vision.hash_batch", n_images=len(rasters)):
            return hash_batch(rasters)
    thumbs = prepare_thumbnails(rasters)
    n = thumbs.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    finite = np.isfinite(thumbs.reshape(n, -1)).all(axis=1)
    if not bool(finite.all()):
        bad = np.flatnonzero(~finite)
        raise NonFinitePixelError(
            "non-finite hash thumbnails (NaN/Inf pixels) for batch items "
            f"{bad[:8].tolist()}{'...' if bad.size > 8 else ''}"
        )
    spectra = scipy_fft.dctn(thumbs, axes=(1, 2), norm="ortho")
    blocks = spectra[:, :8, :8].reshape(n, 64).copy()
    blocks[:, 0] = spectra[:, 8, 8]  # drop the DC term (pure brightness)
    medians = np.median(blocks, axis=1, keepdims=True)
    return pack_bits_rows(blocks > medians)


def hash_batch_ints(rasters: Sequence[np.ndarray]) -> List[int]:
    """Like :func:`hash_batch` but returning Python ints (API sugar)."""
    return [int(h) for h in hash_batch(rasters)]
