"""Low-level bit kernels shared by the vision stack.

Three primitives every hash-heavy stage leans on:

* :func:`popcount` — per-element set-bit counts over ``uint64`` arrays.
  Uses :func:`numpy.bitwise_count` when available (NumPy ≥ 2.0) and a
  byte lookup table otherwise, so the library keeps working on the 1.x
  series the fallback matrix in DESIGN.md §7 documents;
* :func:`pack_bits_rows` — vectorised MSB-first bit packing, replacing
  the per-bit Python loops the hash functions shipped with;
* :func:`hamming_matrix` — many-vs-many Hamming distances via a single
  broadcast XOR + popcount, the kernel behind batched hashlist matching
  and reverse search.

This module sits below :mod:`repro.vision.photodna` in the import graph
and depends only on NumPy.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "HAS_NATIVE_POPCOUNT",
    "hamming_matrix",
    "pack_bits_rows",
    "popcount",
]

#: True when :func:`numpy.bitwise_count` exists (NumPy ≥ 2.0).
HAS_NATIVE_POPCOUNT: bool = hasattr(np, "bitwise_count")

#: Set-bit count of every byte value, for the NumPy < 2.0 fallback.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
_BYTE_SHIFTS = np.arange(0, 64, 8, dtype=np.uint64)


def _popcount_lookup(values: np.ndarray) -> np.ndarray:
    """Pure-NumPy popcount: split each word into bytes, sum table hits."""
    words = np.asarray(values, dtype=np.uint64)
    nibbles = (words[..., None] >> _BYTE_SHIFTS) & np.uint64(0xFF)
    return _POPCOUNT_TABLE[nibbles.astype(np.intp)].sum(axis=-1, dtype=np.int64)


def popcount(values: Union[int, np.ndarray]) -> np.ndarray:
    """Per-element count of set bits of ``values`` as ``uint64`` words.

    Accepts scalars or arrays of any shape; returns ``int64`` counts of
    the same shape.  Dispatches to :func:`numpy.bitwise_count` on
    NumPy ≥ 2.0 and to a byte lookup table on older releases, so callers
    never touch the version split.

    >>> int(popcount(0b1011))
    3
    """
    words = np.asarray(values, dtype=np.uint64)
    if HAS_NATIVE_POPCOUNT:
        return np.bitwise_count(words).astype(np.int64)
    return _popcount_lookup(words)


def pack_bits_rows(bits: np.ndarray) -> np.ndarray:
    """Pack each row of a boolean ``(n, k)`` array into one ``uint64``.

    MSB-first: ``bits[:, 0]`` lands in the highest of the ``k`` packed
    bits, matching the scalar ``value = (value << 1) | bit`` loop the
    hash functions historically used.  ``k`` must be ≤ 64.

    >>> int(pack_bits_rows(np.array([[True, False, True]]))[0])
    5
    """
    rows = np.asarray(bits, dtype=bool)
    if rows.ndim != 2:
        raise ValueError("pack_bits_rows expects a 2-D (n, k) bit array")
    k = rows.shape[1]
    if k > 64:
        raise ValueError("cannot pack more than 64 bits per row")
    shifts = np.arange(k - 1, -1, -1, dtype=np.uint64)
    return np.left_shift(rows.astype(np.uint64), shifts).sum(axis=1, dtype=np.uint64)


def hamming_matrix(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """All-pairs Hamming distances between two ``uint64`` hash vectors.

    Returns an ``(n_queries, n_corpus)`` ``int64`` matrix — one
    broadcast XOR plus one popcount, replacing a Python double loop.
    """
    q = np.asarray(queries, dtype=np.uint64).reshape(-1)
    c = np.asarray(corpus, dtype=np.uint64).reshape(-1)
    return popcount(q[:, None] ^ c[None, :])
