"""Content-addressed vision cache: one computation per distinct image.

The pipeline's image stages all key their work off
``CrawledImage.digest`` (the exact-content SHA-1 of the raster), yet the
seed code re-derived the same quantities independently per stage: the
abuse filter hashed pixels, the reverse-search stage hashed the same
pixels again, provenance re-scored NSFW values the NSFV stage had
already computed.  :class:`VisionCache` memoises the three per-image
quantities —

* ``"hash"``  — the 64-bit DCT perceptual hash,
* ``"nsfw"``  — the OpenNSFW-analogue score,
* ``"ocr"``   — the Tesseract-analogue word count,

— under the image digest, so each distinct image is processed **once
across all stages**.  Hit/miss/evict counters are exposed through
:meth:`VisionCache.stats` and surfaced in the pipeline report and CLI.

The cache is bounded (LRU per digest) so corpus-scale runs cannot grow
it without limit, and thread-safe so future parallel stages can share
one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import NULL_TRACER

__all__ = ["VisionCache", "VisionCacheStats"]

#: The memoisable per-image quantities.
_FIELDS = ("hash", "nsfw", "ocr")

_MISSING = object()


@dataclass(frozen=True, slots=True)
class VisionCacheStats:
    """Counter snapshot of a :class:`VisionCache`."""

    hits: int
    misses: int
    evictions: int
    n_entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        """One-line human-readable rendering (CLI / report use)."""
        return (
            f"hits={self.hits} misses={self.misses} "
            f"hit_rate={self.hit_rate:.1%} evictions={self.evictions} "
            f"entries={self.n_entries}"
        )

    def as_dict(self) -> dict:
        """Snapshot-protocol view (manifest / export use, DESIGN.md §9)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "n_entries": self.n_entries,
            "hit_rate": self.hit_rate,
        }


class VisionCache:
    """LRU cache of per-image vision quantities keyed by content digest.

    ``max_entries`` bounds the number of distinct digests retained
    (``None`` = unbounded).  Eviction is least-recently-used at digest
    granularity: all memoised fields of the evicted digest go together.
    """

    def __init__(self, max_entries: Optional[int] = None, tracer=None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def set_tracer(self, tracer) -> None:
        """Install the run's span recorder (``None`` restores the no-op).

        The pipeline owns one cache across runs, so each
        :meth:`EwhoringPipeline.run` re-points the cache at its own
        tracer; batched computations then emit ``vision.hash_batch``
        spans under whichever stage triggered them.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    def get(self, digest: str, field: str):
        """The memoised ``field`` for ``digest``, or ``None`` on a miss.

        Counts one hit or one miss.  Use :meth:`get_or_compute` when a
        compute function is at hand.
        """
        value = self._lookup(digest, field)
        return None if value is _MISSING else value

    def put(self, digest: str, field: str, value) -> None:
        """Memoise ``field`` = ``value`` for ``digest`` (LRU-refreshing)."""
        self._check_field(field)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                entry = {}
                self._entries[digest] = entry
            else:
                self._entries.move_to_end(digest)
            entry[field] = value
            self._evict_locked()

    def get_or_compute(self, digest: str, field: str, compute: Callable[[], object]):
        """The memoised value, computing and storing it on a miss."""
        value = self._lookup(digest, field)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(digest, field, value)
        return value

    def peek(self, digest: str, field: str):
        """Uncounted, LRU-neutral lookup: the memoised value or ``None``.

        The streaming prefetcher (:class:`~repro.core.abuse_filter.StreamMatcher`)
        uses this to skip recomputing quantities a warm cache already
        holds *without* perturbing the hit/miss counters or the LRU
        order, both of which belong to the canonical stage lookups.
        """
        self._check_field(field)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and field in entry:
                return entry[field]
            return None

    # -- convenience wrappers ------------------------------------------
    def hash_for(self, digest: str, compute: Callable[[], int]) -> int:
        return self.get_or_compute(digest, "hash", compute)  # type: ignore[return-value]

    def nsfw_for(self, digest: str, compute: Callable[[], float]) -> float:
        return self.get_or_compute(digest, "nsfw", compute)  # type: ignore[return-value]

    def ocr_for(self, digest: str, compute: Callable[[], int]) -> int:
        return self.get_or_compute(digest, "ocr", compute)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def hashes_for(
        self,
        keyed_rasters: Sequence[Tuple[str, Callable[[], "object"]]],
        compute_batch: Callable[[List[object]], Sequence[int]],
    ) -> List[int]:
        """Batch get-or-compute of perceptual hashes.

        ``keyed_rasters`` is a sequence of ``(digest, raster_fn)`` pairs
        (``raster_fn`` defers pixel materialisation to cache misses);
        ``compute_batch`` maps the missing rasters to hashes in order —
        normally :func:`repro.vision.batch.hash_batch`.  Returns one
        hash per input pair, preserving order, with each distinct digest
        computed at most once.
        """
        results: List[Optional[int]] = [None] * len(keyed_rasters)
        missing_digests: List[str] = []
        missing_rasters: List[object] = []
        first_slot: Dict[str, List[int]] = {}
        for i, (digest, raster_fn) in enumerate(keyed_rasters):
            value = self._lookup(digest, "hash")
            if value is not _MISSING:
                results[i] = int(value)  # type: ignore[arg-type]
                continue
            slots = first_slot.get(digest)
            if slots is None:
                first_slot[digest] = [i]
                missing_digests.append(digest)
                missing_rasters.append(raster_fn())
            else:
                slots.append(i)
        if missing_digests:
            with self._tracer.span(
                "vision.hash_batch",
                n_requested=len(keyed_rasters),
                n_missing=len(missing_digests),
            ):
                computed = compute_batch(missing_rasters)
            for digest, value in zip(missing_digests, computed):
                as_int = int(value)
                self.put(digest, "hash", as_int)
                for slot in first_slot[digest]:
                    results[slot] = as_int
        return [int(v) for v in results]  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def stats(self) -> VisionCacheStats:
        """Snapshot of the hit/miss/evict counters."""
        with self._lock:
            return VisionCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                n_entries=len(self._entries),
            )

    def items(self) -> List[Tuple[str, Dict[str, object]]]:
        """Snapshot of every entry as ``(digest, {field: value})`` pairs.

        Values are the plain ints/floats the cache memoises, so the
        snapshot is JSON-serialisable as-is — this is the persistence
        export used by :mod:`repro.store`.  LRU order and counters are
        unaffected.
        """
        with self._lock:
            return [(digest, dict(entry)) for digest, entry in self._entries.items()]

    def preload(self, items: Sequence[Tuple[str, Dict[str, object]]]) -> None:
        """Bulk-install persisted entries without touching hit/miss counters.

        The inverse of :meth:`items`: warm-starting a run from a
        persistent store must not perturb the cache statistics that
        belong to the run itself (``put`` already counts nothing).
        """
        for digest, entry in items:
            for fld, value in entry.items():
                self.put(digest, fld, value)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    # ------------------------------------------------------------------
    def _lookup(self, digest: str, field: str):
        self._check_field(field)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None and field in entry:
                self._entries.move_to_end(digest)
                self._hits += 1
                return entry[field]
            self._misses += 1
            return _MISSING

    def _evict_locked(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    @staticmethod
    def _check_field(field: str) -> None:
        if field not in _FIELDS:
            raise ValueError(f"unknown vision-cache field {field!r}; expected one of {_FIELDS}")
