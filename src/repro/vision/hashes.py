"""Alternative perceptual hashes (aHash, dHash) beside the DCT hash.

§4.3's PhotoDNA and §4.5's TinEye both rest on *robust* image hashing.
The package's primary hash is the DCT perceptual hash in
:mod:`repro.vision.photodna`; this module adds the two classic cheaper
alternatives so their robustness/evasion trade-offs can be measured
(the A5 ablation):

* **average hash** (aHash) — threshold an 8×8 block-mean thumbnail at
  its mean;
* **difference hash** (dHash) — sign of horizontal neighbour
  differences on a 9×8 thumbnail.

All three return 64-bit integers comparable with
:func:`repro.vision.photodna.hamming_distance`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .bits import pack_bits_rows
from .photodna import _block_mean_resize, _to_grayscale, robust_hash

__all__ = ["HASH_FUNCTIONS", "average_hash", "difference_hash"]


def _pack_bits(bits: np.ndarray) -> int:
    """MSB-first pack of up to 64 bits (vectorised; see bits.py)."""
    return int(pack_bits_rows(np.asarray(bits).ravel()[None, :])[0])


def average_hash(pixels: np.ndarray) -> int:
    """64-bit aHash: 8×8 block means thresholded at their mean."""
    gray = _to_grayscale(np.asarray(pixels, dtype=np.float64))
    small = _block_mean_resize(gray, 8)
    return _pack_bits(small > small.mean())


def difference_hash(pixels: np.ndarray) -> int:
    """64-bit dHash: signs of horizontal gradients on a 9×8 thumbnail."""
    gray = _to_grayscale(np.asarray(pixels, dtype=np.float64))
    # 8 rows × 9 columns → 8×8 horizontal differences.
    rows = _block_mean_resize(gray, 9)[:8, :]  # 8×9
    return _pack_bits(rows[:, 1:] > rows[:, :-1])


#: Name → hash function, for sweeps over hash designs.
HASH_FUNCTIONS: Dict[str, Callable[[np.ndarray], int]] = {
    "dct (default)": robust_hash,
    "average": average_hash,
    "difference": difference_hash,
}
