"""OpenNSFW analogue: a nudity-probability scorer over pixels (§4.4).

The real pipeline used Yahoo's OpenNSFW deep model, which returns a
probability that an image contains indecent content.  This analogue
detects skin-tone pixels chromatically, measures their coverage and
spatial coherence, and maps the result through a calibrated logistic.

The calibration reproduces the score *distribution* reported in §4.4:
non-nude images score below 0.3 (text screenshots effectively 0), clothed
models land in the ambiguous 0.1–0.7 band, and nude/sexual images score
high.  Sand, wood and similar warm textures are false skin — the paper's
"colours or textures resembling the human body" failure mode emerges
naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..media.validate import ensure_color_raster

__all__ = ["NsfwScorer", "nsfw_score", "skin_mask"]


def skin_mask(pixels: np.ndarray) -> np.ndarray:
    """Boolean mask of skin-tone pixels.

    Chromatic rule: warm colours with red > green > blue, a sufficient
    red–blue gap and mid-to-high brightness.  This is the classic
    rule-based skin detector family; it has the same known failure modes
    (sand, wood, beige walls) as the originals.

    Defensive kernel contract: the raster passes through
    :func:`~repro.media.validate.ensure_color_raster`, so decoys, wrong
    ranks and NaN/Inf poison fail loudly with the typed corrupt-payload
    taxonomy (still a :class:`ValueError`) instead of producing a silent
    garbage score.
    """
    ensure_color_raster(pixels)
    red = pixels[..., 0]
    green = pixels[..., 1]
    blue = pixels[..., 2]
    return (
        (red > 0.5)
        & (red > green)
        & (green > blue)
        & ((red - blue) > 0.12)
        & ((red - green) > 0.03)
        & (red < 0.99)
    )


@dataclass(frozen=True)
class NsfwScorer:
    """Calibrated logistic scorer combining skin coverage and coherence.

    ``score = sigmoid(gain · (0.8·coverage + 0.4·largest_blob − midpoint))``

    where *coverage* is the skin-pixel fraction and *largest_blob* the
    fraction covered by the single largest connected skin region (bodies
    are coherent; scattered warm speckle is not).
    """

    gain: float = 18.0
    midpoint: float = 0.30

    def score(self, pixels: np.ndarray) -> float:
        """NSFW probability in (0, 1) for one image raster."""
        mask = skin_mask(pixels)
        total = mask.size
        coverage = float(mask.sum()) / total
        if coverage > 0.0:
            labels, n_components = ndimage.label(mask)
            if n_components > 0:
                sizes = ndimage.sum_labels(mask, labels, index=range(1, n_components + 1))
                largest = float(np.max(sizes)) / total
            else:  # pragma: no cover - coverage>0 implies components
                largest = 0.0
        else:
            largest = 0.0
        effective = 0.8 * coverage + 0.4 * largest
        return float(1.0 / (1.0 + np.exp(-self.gain * (effective - self.midpoint))))

    def __call__(self, pixels: np.ndarray) -> float:
        return self.score(pixels)


_DEFAULT_SCORER = NsfwScorer()


def nsfw_score(pixels: np.ndarray) -> float:
    """Score with the default calibration (module-level convenience)."""
    return _DEFAULT_SCORER.score(pixels)
