"""Tesseract analogue: count recognisable words in an image (§4.4).

The pipeline uses OCR only for its *word count* — "the Tesseract software,
which outputs the number of words recognised in an image".  This analogue
recovers word blocks structurally:

1. binarise against the dominant background luminance,
2. extract connected components,
3. keep components whose geometry is word-like (small, wide-or-squat,
   well-filled rectangles), and
4. group horizontally adjacent glyph fragments into words.

Because it keys on geometry rather than ground truth, it miscounts in the
same ways real OCR does: dense text merges, photos yield spurious
fragments, tiny text vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage

from ..media.validate import ensure_color_raster

__all__ = ["OcrEngine", "WordBox", "ocr_word_count"]


@dataclass(frozen=True, slots=True)
class WordBox:
    """Bounding box of one recognised word (row/col, half-open)."""

    top: int
    left: int
    bottom: int
    right: int

    @property
    def height(self) -> int:
        return self.bottom - self.top

    @property
    def width(self) -> int:
        return self.right - self.left

    @property
    def area(self) -> int:
        return self.height * self.width


@dataclass(frozen=True)
class OcrEngine:
    """Structural word detector with tunable geometry limits."""

    #: Minimum luminance deviation from background to count as ink.
    ink_threshold: float = 0.32
    #: Component pixel-count bounds for a word candidate.
    min_area: int = 5
    max_area: int = 24
    #: Geometry bounds (pixels).
    max_height: int = 3
    min_width: int = 3
    max_width: int = 8
    #: Minimum fraction of the bounding box filled with ink (words are
    #: solid glyph blocks; photographic speckle is ragged).
    min_fill: float = 0.75

    def find_words(self, pixels: np.ndarray) -> List[WordBox]:
        """Return bounding boxes of word-like components.

        The raster is checked through :func:`~repro.media.validate.
        ensure_color_raster`, so poison payloads surface as the typed
        corrupt-payload taxonomy rather than a shape error inside scipy.
        """
        ensure_color_raster(pixels)
        luminance = pixels.mean(axis=2)
        background = float(np.median(luminance))
        ink = np.abs(luminance - background) > self.ink_threshold

        labels, n_components = ndimage.label(ink)
        if n_components == 0:
            return []
        boxes: List[WordBox] = []
        slices = ndimage.find_objects(labels)
        for index, box_slices in enumerate(slices, start=1):
            if box_slices is None:
                continue
            row_slice, col_slice = box_slices
            height = row_slice.stop - row_slice.start
            width = col_slice.stop - col_slice.start
            area = int(np.sum(labels[row_slice, col_slice] == index))
            if not (self.min_area <= area <= self.max_area):
                continue
            if height > self.max_height:
                continue
            if not (self.min_width <= width <= self.max_width):
                continue
            if area / (height * width) < self.min_fill:
                continue
            boxes.append(
                WordBox(
                    top=row_slice.start,
                    left=col_slice.start,
                    bottom=row_slice.stop,
                    right=col_slice.stop,
                )
            )
        boxes.sort(key=lambda b: (b.top, b.left))
        return boxes

    def word_count(self, pixels: np.ndarray) -> int:
        """Number of recognised words — the Algorithm 1 input."""
        return len(self.find_words(pixels))

    def __call__(self, pixels: np.ndarray) -> int:
        return self.word_count(pixels)


_DEFAULT_ENGINE = OcrEngine()


def ocr_word_count(pixels: np.ndarray) -> int:
    """Word count with the default engine (module-level convenience)."""
    return _DEFAULT_ENGINE.word_count(pixels)
