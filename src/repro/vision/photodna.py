"""PhotoDNA analogue: robust perceptual hashing and a hashlist service.

§4.3 of the paper matches every downloaded image against the PhotoDNA
Cloud Service hashlist of known child-abuse material, immediately reports
matches to the IWF and deletes them.  This module provides:

* :func:`robust_hash` — a 64-bit DCT perceptual hash (pHash family) that
  survives recompression, light cropping and resizing, i.e. the "Robust
  Hashing" property §4.3 cites;
* :func:`hamming_distance` — bit distance between hashes;
* :class:`HashListService` — the PhotoDNA-cloud analogue holding graded
  hashlist entries and answering match queries;
* :class:`ReportLog` — the IWF-reporting analogue recording actioned
  URLs, severity grades and hosting metadata.

No image classified as matching is ever re-exposed: the service's match
API consumes pixels and returns only the verdict and grading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as scipy_fft

from ..media.validate import NonFinitePixelError
from .bits import pack_bits_rows, popcount

__all__ = [
    "AbuseSeverity",
    "HashListEntry",
    "HashListService",
    "MatchResult",
    "ReportLog",
    "ReportRecord",
    "hamming_distance",
    "robust_hash",
]

_HASH_GRID = 32
_HASH_BITS = 64


def _to_grayscale(pixels: np.ndarray) -> np.ndarray:
    if pixels.ndim == 3:
        return pixels.mean(axis=2)
    return pixels


def _resize_axis(values: np.ndarray, target: int, axis: int) -> np.ndarray:
    """Resize one axis to ``target`` samples.

    Axes at least ``target`` long are block-averaged (area
    interpolation) with ``np.add.reduceat``; shorter axes are upsampled
    by nearest-neighbour.  Works on arrays of any rank, so the batched
    engine can resize a whole ``(n, h, w)`` stack with two calls.
    """
    length = values.shape[axis]
    if length < target:
        # Upsample the short axis by nearest-neighbour.
        idx = np.clip((np.arange(target) * length / target).astype(int), 0, length - 1)
        return np.take(values, idx, axis=axis).astype(np.float64, copy=False)
    if length % target == 0:
        # Evenly divisible: reshape + small-axis sum (contiguous, far
        # faster than reduceat, and bit-identical for these tiny block
        # sizes where NumPy's reduction is sequential).
        k = length // target
        shaped = values.reshape(
            values.shape[:axis] + (target, k) + values.shape[axis + 1 :]
        )
        if k == 2 and shaped.ndim <= 26:
            # Axis halving: einsum's contraction avoids NumPy's slow
            # small-axis reduction loop.  A k=2 sum is a single IEEE
            # add (commutative, exact), so this is exactly
            # ``shaped.sum(...)``.
            letters = "abcdefghijklmnopqrstuvwxyz"[: shaped.ndim]
            out = letters[: axis + 1] + letters[axis + 2 :]
            return np.einsum(f"{letters}->{out}", shaped) / float(k)
        return shaped.sum(axis=axis + 1, dtype=np.float64) / float(k)
    edges = np.linspace(0, length, target + 1).astype(int)
    counts = np.diff(edges).astype(np.float64)
    sums = np.add.reduceat(values, edges[:-1], axis=axis)
    shape = [1] * values.ndim
    shape[axis] = target
    return sums / counts.reshape(shape)


def _block_mean_resize(gray: np.ndarray, target: int) -> np.ndarray:
    """Resize to target×target by block averaging (area interpolation).

    Implemented with ``np.add.reduceat`` over row/column bins so hashing
    stays cheap even when the index covers tens of thousands of images.
    Each axis is handled independently: a 4×1000 raster still
    area-averages its long axis while only the 4-row axis is
    nearest-neighbour upsampled, keeping hashes stable under extreme
    aspect ratios.
    """
    return _resize_axis(_resize_axis(gray, target, axis=0), target, axis=1)


def robust_hash(pixels: np.ndarray) -> int:
    """64-bit DCT perceptual hash of an image raster.

    Pipeline: grayscale → 32×32 block-mean resize → 2-D DCT → keep the
    8×8 lowest-frequency block (minus the DC term, replaced by the next
    coefficient) → threshold at the median → pack 64 bits.
    """
    gray = _to_grayscale(np.asarray(pixels, dtype=np.float64))
    small = _block_mean_resize(gray, _HASH_GRID)
    if not bool(np.isfinite(small).all()):
        raise NonFinitePixelError(
            "raster produced a non-finite hash thumbnail (NaN/Inf pixels)"
        )
    spectrum = scipy_fft.dctn(small, norm="ortho")
    block = spectrum[:8, :8].copy().ravel()
    block[0] = spectrum[8, 8]  # drop the DC term (pure brightness)
    median = np.median(block)
    bits = block > median
    return int(pack_bits_rows(bits[None, :])[0])


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two 64-bit hashes."""
    return int(popcount((hash_a ^ hash_b) & ((1 << _HASH_BITS) - 1)))


class AbuseSeverity(enum.Enum):
    """IWF grading categories (§4.3)."""

    CATEGORY_A = "A"  # penetrative / sadistic
    CATEGORY_B = "B"  # non-penetrative sexual activity
    CATEGORY_C = "C"  # other indecent images


@dataclass(frozen=True, slots=True)
class HashListEntry:
    """One hashlist record: a known-abuse hash with grading metadata.

    ``actionable`` mirrors §4.3: some entries were graded by other
    organisations and the IWF could not verify age, so matches are
    reported but not actioned.
    """

    entry_hash: int
    severity: AbuseSeverity
    victim_age: Optional[int] = None
    actionable: bool = True


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of a hashlist lookup."""

    matched: bool
    entry: Optional[HashListEntry] = None
    distance: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ReportRecord:
    """One actioned report: the URL set sent to the hotline for an image."""

    image_ref: str
    urls: Tuple[str, ...]
    severity: AbuseSeverity
    victim_age: Optional[int]
    hosting_regions: Tuple[str, ...]
    site_types: Tuple[str, ...]


class ReportLog:
    """IWF-analogue report sink with aggregate statistics (§4.3 results)."""

    def __init__(self) -> None:
        self._records: List[ReportRecord] = []

    def report(self, record: ReportRecord) -> None:
        """Record one actioned report."""
        self._records.append(record)

    @property
    def records(self) -> List[ReportRecord]:
        return list(self._records)

    @property
    def n_reports(self) -> int:
        return len(self._records)

    def actioned_urls(self) -> List[str]:
        """All URLs actioned across reports, preserving order."""
        urls: List[str] = []
        for record in self._records:
            urls.extend(record.urls)
        return urls

    def severity_histogram(self) -> Dict[AbuseSeverity, int]:
        """Actioned URL count per severity grade."""
        histogram: Dict[AbuseSeverity, int] = {}
        for record in self._records:
            histogram[record.severity] = histogram.get(record.severity, 0) + len(record.urls)
        return histogram

    def region_histogram(self) -> Dict[str, int]:
        """Actioned URL count per hosting region."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            for region in record.hosting_regions:
                histogram[region] = histogram.get(region, 0) + 1
        return histogram

    def site_type_histogram(self) -> Dict[str, int]:
        """Actioned URL count per site type."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            for site_type in record.site_types:
                histogram[site_type] = histogram.get(site_type, 0) + 1
        return histogram


class HashListService:
    """The PhotoDNA-cloud analogue: hashlist storage and match queries.

    Matching tolerates up to ``radius`` differing bits so that platform
    recompression does not hide known material — the robust-hashing
    property the paper relies on.
    """

    def __init__(self, radius: int = 10):
        if not 0 <= radius < _HASH_BITS:
            raise ValueError("radius must be within [0, 63]")
        self.radius = radius
        self._entries: List[HashListEntry] = []
        self._hash_array: Optional[np.ndarray] = None

    def set_radius(self, radius: int) -> None:
        """Retune the match tolerance (adaptive threshold-sweep defense)."""
        if not 0 <= radius < _HASH_BITS:
            raise ValueError("radius must be within [0, 63]")
        self.radius = int(radius)

    # ------------------------------------------------------------------
    def add_entry(self, entry: HashListEntry) -> None:
        """Add a graded hash to the list."""
        self._entries.append(entry)
        self._hash_array = None

    def add_known_image(
        self,
        pixels: np.ndarray,
        severity: AbuseSeverity,
        victim_age: Optional[int] = None,
        actionable: bool = True,
    ) -> HashListEntry:
        """Hash ``pixels`` and add the resulting entry."""
        entry = HashListEntry(
            entry_hash=robust_hash(pixels),
            severity=severity,
            victim_age=victim_age,
            actionable=actionable,
        )
        self.add_entry(entry)
        return entry

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def match_hash(self, image_hash: int) -> MatchResult:
        """Match a precomputed hash against the list (nearest entry wins)."""
        if not self._entries:
            return MatchResult(matched=False)
        hashes = self._hashes()
        distances = popcount(hashes ^ np.uint64(image_hash))
        best = int(np.argmin(distances))
        best_distance = int(distances[best])
        if best_distance <= self.radius:
            return MatchResult(matched=True, entry=self._entries[best], distance=best_distance)
        return MatchResult(matched=False, distance=best_distance)

    def match_hashes(
        self, image_hashes: Sequence[int], chunk_size: int = 1024
    ) -> List[MatchResult]:
        """Match many precomputed hashes in one vectorised sweep.

        Equivalent to ``[self.match_hash(h) for h in image_hashes]`` but
        computes the whole query×entry Hamming matrix per chunk (one XOR
        + popcount) instead of one row at a time.  ``chunk_size`` bounds
        the matrix memory for very large query batches.
        """
        queries = np.asarray(list(image_hashes), dtype=np.uint64)
        if queries.size == 0:
            return []
        if not self._entries:
            return [MatchResult(matched=False) for _ in range(queries.size)]
        from .bits import hamming_matrix  # local: keeps module-level deps minimal

        hashes = self._hashes()
        results: List[MatchResult] = []
        for start in range(0, queries.size, chunk_size):
            block = queries[start : start + chunk_size]
            distances = hamming_matrix(block, hashes)
            best_idx = np.argmin(distances, axis=1)
            best_dist = distances[np.arange(block.size), best_idx]
            for entry_i, dist in zip(best_idx, best_dist):
                if int(dist) <= self.radius:
                    results.append(
                        MatchResult(
                            matched=True,
                            entry=self._entries[int(entry_i)],
                            distance=int(dist),
                        )
                    )
                else:
                    results.append(MatchResult(matched=False, distance=int(dist)))
        return results

    def match(self, pixels: np.ndarray) -> MatchResult:
        """Hash ``pixels`` and match against the list."""
        return self.match_hash(robust_hash(pixels))

    # ------------------------------------------------------------------
    def _hashes(self) -> np.ndarray:
        if self._hash_array is None:
            self._hash_array = np.array(
                [entry.entry_hash for entry in self._entries], dtype=np.uint64
            )
        return self._hash_array
