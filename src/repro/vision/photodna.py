"""PhotoDNA analogue: robust perceptual hashing and a hashlist service.

§4.3 of the paper matches every downloaded image against the PhotoDNA
Cloud Service hashlist of known child-abuse material, immediately reports
matches to the IWF and deletes them.  This module provides:

* :func:`robust_hash` — a 64-bit DCT perceptual hash (pHash family) that
  survives recompression, light cropping and resizing, i.e. the "Robust
  Hashing" property §4.3 cites;
* :func:`hamming_distance` — bit distance between hashes;
* :class:`HashListService` — the PhotoDNA-cloud analogue holding graded
  hashlist entries and answering match queries;
* :class:`ReportLog` — the IWF-reporting analogue recording actioned
  URLs, severity grades and hosting metadata.

No image classified as matching is ever re-exposed: the service's match
API consumes pixels and returns only the verdict and grading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as scipy_fft

__all__ = [
    "AbuseSeverity",
    "HashListEntry",
    "HashListService",
    "MatchResult",
    "ReportLog",
    "ReportRecord",
    "hamming_distance",
    "robust_hash",
]

_HASH_GRID = 32
_HASH_BITS = 64


def _to_grayscale(pixels: np.ndarray) -> np.ndarray:
    if pixels.ndim == 3:
        return pixels.mean(axis=2)
    return pixels


def _block_mean_resize(gray: np.ndarray, target: int) -> np.ndarray:
    """Resize to target×target by block averaging (area interpolation).

    Implemented with ``np.add.reduceat`` over row/column bins so hashing
    stays cheap even when the index covers tens of thousands of images.
    """
    height, width = gray.shape
    if height < target or width < target:
        # Upsample tiny inputs by nearest-neighbour first.
        row_idx = np.clip((np.arange(target) * height / target).astype(int), 0, height - 1)
        col_idx = np.clip((np.arange(target) * width / target).astype(int), 0, width - 1)
        return gray[np.ix_(row_idx, col_idx)].astype(np.float64)
    row_edges = np.linspace(0, height, target + 1).astype(int)
    col_edges = np.linspace(0, width, target + 1).astype(int)
    row_counts = np.diff(row_edges).astype(np.float64)
    col_counts = np.diff(col_edges).astype(np.float64)
    sums = np.add.reduceat(gray, row_edges[:-1], axis=0)
    sums = np.add.reduceat(sums, col_edges[:-1], axis=1)
    return sums / (row_counts[:, None] * col_counts[None, :])


def robust_hash(pixels: np.ndarray) -> int:
    """64-bit DCT perceptual hash of an image raster.

    Pipeline: grayscale → 32×32 block-mean resize → 2-D DCT → keep the
    8×8 lowest-frequency block (minus the DC term, replaced by the next
    coefficient) → threshold at the median → pack 64 bits.
    """
    gray = _to_grayscale(np.asarray(pixels, dtype=np.float64))
    small = _block_mean_resize(gray, _HASH_GRID)
    spectrum = scipy_fft.dctn(small, norm="ortho")
    block = spectrum[:8, :8].copy().ravel()
    block[0] = spectrum[8, 8]  # drop the DC term (pure brightness)
    median = np.median(block)
    bits = block > median
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def hamming_distance(hash_a: int, hash_b: int) -> int:
    """Number of differing bits between two 64-bit hashes."""
    return int(bin((hash_a ^ hash_b) & ((1 << _HASH_BITS) - 1)).count("1"))


class AbuseSeverity(enum.Enum):
    """IWF grading categories (§4.3)."""

    CATEGORY_A = "A"  # penetrative / sadistic
    CATEGORY_B = "B"  # non-penetrative sexual activity
    CATEGORY_C = "C"  # other indecent images


@dataclass(frozen=True, slots=True)
class HashListEntry:
    """One hashlist record: a known-abuse hash with grading metadata.

    ``actionable`` mirrors §4.3: some entries were graded by other
    organisations and the IWF could not verify age, so matches are
    reported but not actioned.
    """

    entry_hash: int
    severity: AbuseSeverity
    victim_age: Optional[int] = None
    actionable: bool = True


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of a hashlist lookup."""

    matched: bool
    entry: Optional[HashListEntry] = None
    distance: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ReportRecord:
    """One actioned report: the URL set sent to the hotline for an image."""

    image_ref: str
    urls: Tuple[str, ...]
    severity: AbuseSeverity
    victim_age: Optional[int]
    hosting_regions: Tuple[str, ...]
    site_types: Tuple[str, ...]


class ReportLog:
    """IWF-analogue report sink with aggregate statistics (§4.3 results)."""

    def __init__(self) -> None:
        self._records: List[ReportRecord] = []

    def report(self, record: ReportRecord) -> None:
        """Record one actioned report."""
        self._records.append(record)

    @property
    def records(self) -> List[ReportRecord]:
        return list(self._records)

    @property
    def n_reports(self) -> int:
        return len(self._records)

    def actioned_urls(self) -> List[str]:
        """All URLs actioned across reports, preserving order."""
        urls: List[str] = []
        for record in self._records:
            urls.extend(record.urls)
        return urls

    def severity_histogram(self) -> Dict[AbuseSeverity, int]:
        """Actioned URL count per severity grade."""
        histogram: Dict[AbuseSeverity, int] = {}
        for record in self._records:
            histogram[record.severity] = histogram.get(record.severity, 0) + len(record.urls)
        return histogram

    def region_histogram(self) -> Dict[str, int]:
        """Actioned URL count per hosting region."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            for region in record.hosting_regions:
                histogram[region] = histogram.get(region, 0) + 1
        return histogram

    def site_type_histogram(self) -> Dict[str, int]:
        """Actioned URL count per site type."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            for site_type in record.site_types:
                histogram[site_type] = histogram.get(site_type, 0) + 1
        return histogram


class HashListService:
    """The PhotoDNA-cloud analogue: hashlist storage and match queries.

    Matching tolerates up to ``radius`` differing bits so that platform
    recompression does not hide known material — the robust-hashing
    property the paper relies on.
    """

    def __init__(self, radius: int = 10):
        if not 0 <= radius < _HASH_BITS:
            raise ValueError("radius must be within [0, 63]")
        self.radius = radius
        self._entries: List[HashListEntry] = []
        self._hash_array: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def add_entry(self, entry: HashListEntry) -> None:
        """Add a graded hash to the list."""
        self._entries.append(entry)
        self._hash_array = None

    def add_known_image(
        self,
        pixels: np.ndarray,
        severity: AbuseSeverity,
        victim_age: Optional[int] = None,
        actionable: bool = True,
    ) -> HashListEntry:
        """Hash ``pixels`` and add the resulting entry."""
        entry = HashListEntry(
            entry_hash=robust_hash(pixels),
            severity=severity,
            victim_age=victim_age,
            actionable=actionable,
        )
        self.add_entry(entry)
        return entry

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def match_hash(self, image_hash: int) -> MatchResult:
        """Match a precomputed hash against the list (nearest entry wins)."""
        if not self._entries:
            return MatchResult(matched=False)
        hashes = self._hashes()
        query = np.uint64(image_hash)
        distances = np.bitwise_count(hashes ^ query)
        best = int(np.argmin(distances))
        best_distance = int(distances[best])
        if best_distance <= self.radius:
            return MatchResult(matched=True, entry=self._entries[best], distance=best_distance)
        return MatchResult(matched=False, distance=best_distance)

    def match(self, pixels: np.ndarray) -> MatchResult:
        """Hash ``pixels`` and match against the list."""
        return self.match_hash(robust_hash(pixels))

    # ------------------------------------------------------------------
    def _hashes(self) -> np.ndarray:
        if self._hash_array is None:
            self._hash_array = np.array(
                [entry.entry_hash for entry in self._entries], dtype=np.uint64
            )
        return self._hash_array
