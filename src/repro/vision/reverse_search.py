"""TinEye analogue: reverse image search over the simulated web (§4.5).

The real study queried TinEye's 29-billion-image index.  Here the index is
built over every image published on the simulated internet: each indexed
copy stores its URL, domain, backlink and crawl date — exactly the fields
the paper extracts from TinEye reports.

Matching uses the :func:`~repro.vision.photodna.robust_hash` perceptual
hash with a Hamming-radius tolerance, so recompressed and lightly cropped
copies match while mirrored copies (the documented evasion) do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bits import hamming_matrix, popcount
from .photodna import robust_hash

__all__ = ["IndexedCopy", "ReverseImageIndex", "ReverseMatch", "ReverseSearchReport"]


@dataclass(frozen=True, slots=True)
class IndexedCopy:
    """One crawled copy of an image known to the index."""

    url: str
    domain: str
    crawl_date: datetime
    backlink: Optional[str] = None


@dataclass(frozen=True, slots=True)
class ReverseMatch:
    """One hit in a reverse-search report."""

    copy: IndexedCopy
    similarity: float
    distance: int


@dataclass(frozen=True)
class ReverseSearchReport:
    """Result of a reverse search for one image (§4.5 report fields)."""

    query_hash: int
    matches: Tuple[ReverseMatch, ...]

    @property
    def n_matches(self) -> int:
        return len(self.matches)

    @property
    def matched(self) -> bool:
        """A report counts as a match when the similarity score exceeds zero."""
        return bool(self.matches)

    def domains(self) -> List[str]:
        """Distinct matched domains in best-match-first order."""
        seen: Dict[str, None] = {}
        for match in self.matches:
            seen.setdefault(match.copy.domain, None)
        return list(seen)

    def earliest_crawl(self) -> Optional[datetime]:
        """Earliest crawl date across matches (for seen-before analysis)."""
        if not self.matches:
            return None
        return min(match.copy.crawl_date for match in self.matches)


class ReverseImageIndex:
    """Perceptual-hash index answering reverse image searches.

    ``radius`` is the maximum Hamming distance counted as a match; the
    default tolerates platform recompression and light crops but not
    mirroring, reproducing the evasion economics of §4.5.
    """

    def __init__(self, radius: int = 9):
        if not 0 <= radius < 64:
            raise ValueError("radius must be within [0, 63]")
        self.radius = radius
        self._hashes: List[int] = []
        self._copies: List[IndexedCopy] = []
        self._hash_array: Optional[np.ndarray] = None

    def set_radius(self, radius: int) -> None:
        """Retune the match tolerance (adaptive threshold-sweep defense)."""
        if not 0 <= radius < 64:
            raise ValueError("radius must be within [0, 63]")
        self.radius = int(radius)

    # ------------------------------------------------------------------
    def index_hash(self, image_hash: int, copy: IndexedCopy) -> None:
        """Add one crawled copy under a precomputed hash."""
        self._hashes.append(image_hash)
        self._copies.append(copy)
        self._hash_array = None

    def index_pixels(self, pixels: np.ndarray, copy: IndexedCopy) -> int:
        """Hash ``pixels`` and index the copy; returns the hash."""
        image_hash = robust_hash(pixels)
        self.index_hash(image_hash, copy)
        return image_hash

    @property
    def n_indexed(self) -> int:
        return len(self._hashes)

    # ------------------------------------------------------------------
    def search_hash(self, query_hash: int, max_results: Optional[int] = None) -> ReverseSearchReport:
        """Search by precomputed hash; matches sorted by similarity."""
        if not self._hashes:
            return ReverseSearchReport(query_hash=query_hash, matches=())
        hashes = self._array()
        distances = popcount(hashes ^ np.uint64(query_hash))
        return self._report_from_distances(query_hash, distances, max_results)

    def search_hashes(
        self,
        query_hashes: Sequence[int],
        max_results: Optional[int] = None,
        chunk_size: int = 1024,
    ) -> List[ReverseSearchReport]:
        """Batched reverse search: one report per query hash.

        Equivalent to ``[self.search_hash(h) for h in query_hashes]``
        but computes whole query×index Hamming blocks at once
        (``chunk_size`` rows per block bounds the matrix memory).
        """
        queries = np.asarray(list(query_hashes), dtype=np.uint64)
        if queries.size == 0:
            return []
        if not self._hashes:
            return [
                ReverseSearchReport(query_hash=int(q), matches=()) for q in queries
            ]
        hashes = self._array()
        reports: List[ReverseSearchReport] = []
        for start in range(0, queries.size, chunk_size):
            block = queries[start : start + chunk_size]
            distances = hamming_matrix(block, hashes)
            for row, query in enumerate(block):
                reports.append(
                    self._report_from_distances(int(query), distances[row], max_results)
                )
        return reports

    def _report_from_distances(
        self,
        query_hash: int,
        distances: np.ndarray,
        max_results: Optional[int],
    ) -> ReverseSearchReport:
        hit_indices = np.flatnonzero(distances <= self.radius)
        if max_results is not None and 0 < max_results < hit_indices.size:
            # Top-k selection in O(n) instead of a full O(n log n) sort.
            # The combined key is distance-major / index-minor — exactly
            # the order a stable sort on distance produces — so the k
            # smallest keys are precisely the first k rows of the full
            # stable sort (tie-break stability preserved; distances are
            # <= 64 and indices < n, so the key never overflows int64).
            keys = distances[hit_indices].astype(np.int64) * np.int64(
                len(self._copies)
            ) + hit_indices.astype(np.int64)
            part = np.argpartition(keys, max_results - 1)[:max_results]
            order = hit_indices[part[np.argsort(keys[part])]]
        else:
            order = hit_indices[np.argsort(distances[hit_indices], kind="stable")]
            if max_results is not None:
                order = order[:max_results]
        matches = tuple(
            ReverseMatch(
                copy=self._copies[int(i)],
                similarity=1.0 - float(distances[int(i)]) / 64.0,
                distance=int(distances[int(i)]),
            )
            for i in order
        )
        return ReverseSearchReport(query_hash=query_hash, matches=matches)

    def search_pixels(self, pixels: np.ndarray, max_results: Optional[int] = None) -> ReverseSearchReport:
        """Search by raster (hashes internally)."""
        return self.search_hash(robust_hash(pixels), max_results=max_results)

    # ------------------------------------------------------------------
    def _array(self) -> np.ndarray:
        if self._hash_array is None:
            self._hash_array = np.array(self._hashes, dtype=np.uint64)
        return self._hash_array
