"""Simulated-internet substrate: URLs, hosting services, fetch, archive, crawler.

Fault tolerance lives here too: :mod:`~repro.web.faults` injects
transient fetch failures, :mod:`~repro.web.retry` supplies the retry /
circuit-breaker discipline, :mod:`~repro.web.checkpoint` makes crawls
resumable, and :mod:`~repro.web.payload_faults` injects *corrupt
payloads* (truncated/NaN/decoy rasters) that the crawler's ingest
validation boundary excises into the quarantine ledger.
"""

from .archive import CrawlRecord, WaybackArchive
from .checkpoint import CrawlCheckpoint, link_key
from .crawler import (
    CrawlResult,
    CrawlStats,
    CrawledImage,
    Crawler,
    LinkAttempt,
    LinkAttemptLog,
    LinkOutcome,
    LinkRecord,
    ShardState,
    content_digest,
)
from .parallel import (
    Lane,
    ReorderBuffer,
    crawl_sharded,
    merge_outcomes,
    partition_lanes,
)
from .procpool import crawl_procpool
from .faults import (
    FAULT_PROFILES,
    DomainFaultSpec,
    FaultInjector,
    FaultProfile,
    ScriptedFaultInjector,
    TransientFault,
    fault_profile,
    stable_uniform,
)
from .internet import (
    TRANSIENT_STATUSES,
    FetchResult,
    FetchStatus,
    HostedResource,
    OriginSite,
    SimulatedInternet,
)
from .payload_faults import (
    CORRUPTION_KINDS,
    PAYLOAD_PROFILES,
    CorruptImage,
    PayloadFaultInjector,
    PayloadFaultProfile,
    PayloadFaultSpec,
    corrupt_raster,
    payload_profile,
    stable_noise_seed,
)
from .retry import BreakerBoard, BreakerState, CircuitBreaker, RetryPolicy
from .sites import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    HostingService,
    ServiceKind,
    all_services,
    service_by_domain,
)
from .url import Url, extract_urls, normalize_url, registrable_domain

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CLOUD_STORAGE_SERVICES",
    "CORRUPTION_KINDS",
    "CircuitBreaker",
    "CorruptImage",
    "CrawlCheckpoint",
    "CrawlRecord",
    "CrawlResult",
    "CrawlStats",
    "CrawledImage",
    "Crawler",
    "DomainFaultSpec",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FetchResult",
    "FetchStatus",
    "HostedResource",
    "HostingService",
    "IMAGE_SHARING_SERVICES",
    "Lane",
    "LinkAttempt",
    "LinkAttemptLog",
    "LinkOutcome",
    "LinkRecord",
    "OriginSite",
    "PAYLOAD_PROFILES",
    "PayloadFaultInjector",
    "PayloadFaultProfile",
    "PayloadFaultSpec",
    "ReorderBuffer",
    "RetryPolicy",
    "ScriptedFaultInjector",
    "ServiceKind",
    "ShardState",
    "SimulatedInternet",
    "TRANSIENT_STATUSES",
    "TransientFault",
    "Url",
    "WaybackArchive",
    "all_services",
    "content_digest",
    "corrupt_raster",
    "crawl_procpool",
    "crawl_sharded",
    "extract_urls",
    "merge_outcomes",
    "fault_profile",
    "link_key",
    "normalize_url",
    "partition_lanes",
    "payload_profile",
    "registrable_domain",
    "service_by_domain",
    "stable_noise_seed",
    "stable_uniform",
]
