"""Simulated-internet substrate: URLs, hosting services, fetch, archive, crawler."""

from .archive import CrawlRecord, WaybackArchive
from .crawler import (
    CrawlResult,
    CrawlStats,
    CrawledImage,
    Crawler,
    LinkRecord,
    content_digest,
)
from .internet import (
    FetchResult,
    FetchStatus,
    HostedResource,
    OriginSite,
    SimulatedInternet,
)
from .sites import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    HostingService,
    ServiceKind,
    all_services,
    service_by_domain,
)
from .url import Url, extract_urls, normalize_url, registrable_domain

__all__ = [
    "CLOUD_STORAGE_SERVICES",
    "CrawlRecord",
    "CrawlResult",
    "CrawlStats",
    "CrawledImage",
    "Crawler",
    "FetchResult",
    "FetchStatus",
    "HostedResource",
    "HostingService",
    "IMAGE_SHARING_SERVICES",
    "LinkRecord",
    "OriginSite",
    "ServiceKind",
    "SimulatedInternet",
    "Url",
    "WaybackArchive",
    "all_services",
    "content_digest",
    "extract_urls",
    "normalize_url",
    "registrable_domain",
    "service_by_domain",
]
