"""Simulated-internet substrate: URLs, hosting services, fetch, archive, crawler.

Fault tolerance lives here too: :mod:`~repro.web.faults` injects
transient fetch failures, :mod:`~repro.web.retry` supplies the retry /
circuit-breaker discipline, and :mod:`~repro.web.checkpoint` makes
crawls resumable.
"""

from .archive import CrawlRecord, WaybackArchive
from .checkpoint import CrawlCheckpoint, link_key
from .crawler import (
    CrawlResult,
    CrawlStats,
    CrawledImage,
    Crawler,
    LinkAttempt,
    LinkAttemptLog,
    LinkRecord,
    content_digest,
)
from .faults import (
    FAULT_PROFILES,
    DomainFaultSpec,
    FaultInjector,
    FaultProfile,
    ScriptedFaultInjector,
    TransientFault,
    fault_profile,
    stable_uniform,
)
from .internet import (
    TRANSIENT_STATUSES,
    FetchResult,
    FetchStatus,
    HostedResource,
    OriginSite,
    SimulatedInternet,
)
from .retry import BreakerBoard, BreakerState, CircuitBreaker, RetryPolicy
from .sites import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    HostingService,
    ServiceKind,
    all_services,
    service_by_domain,
)
from .url import Url, extract_urls, normalize_url, registrable_domain

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CLOUD_STORAGE_SERVICES",
    "CircuitBreaker",
    "CrawlCheckpoint",
    "CrawlRecord",
    "CrawlResult",
    "CrawlStats",
    "CrawledImage",
    "Crawler",
    "DomainFaultSpec",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FetchResult",
    "FetchStatus",
    "HostedResource",
    "HostingService",
    "IMAGE_SHARING_SERVICES",
    "LinkAttempt",
    "LinkAttemptLog",
    "LinkRecord",
    "OriginSite",
    "RetryPolicy",
    "ScriptedFaultInjector",
    "ServiceKind",
    "SimulatedInternet",
    "TRANSIENT_STATUSES",
    "TransientFault",
    "Url",
    "WaybackArchive",
    "all_services",
    "content_digest",
    "extract_urls",
    "fault_profile",
    "link_key",
    "normalize_url",
    "registrable_domain",
    "service_by_domain",
    "stable_uniform",
]
